// rwbc_cli — command-line front end for the library.
//
//   rwbc_cli generate <family> <n> <seed> [out.edges]
//       emit a generated graph as an edge list (stdout or file)
//   rwbc_cli exact <graph.edges> [--dot out.dot]
//       exact random-walk betweenness (Newman); optional DOT rendering
//   rwbc_cli distributed <graph.edges> [K] [l] [seed]
//       the paper's CONGEST pipeline with metrics
//   rwbc_cli compare <graph.edges> [K] [l] [seed]
//       exact vs distributed, with error and rank agreement
//   rwbc_cli measures <graph.edges>
//       the full centrality panel (degree/closeness/eigenvector/Katz/
//       SPBC/RWBC/PageRank)
//   rwbc_cli spbc <graph.edges> [seed]
//       the distributed shortest-path betweenness of [5], vs Brandes
//
// Graph files use the `n m` + `u v` edge-list format (see graph/io.hpp);
// "-" reads from stdin.
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "centrality/brandes.hpp"
#include "centrality/classic.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/pagerank.hpp"
#include "centrality/ranking.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"

namespace {

using namespace rwbc;

// Simulator threads for every subcommand that runs the CONGEST pipeline;
// set by the global --threads flag (0 = serial, -1 = hardware threads).
// Results are bit-identical across settings; only wall-clock changes.
int g_threads = 0;

// Deterministic fault injection for the `distributed`/`compare` pipelines,
// set by the global --drop-prob/--dup-prob/--crash/--fault-seed flags;
// --reliable turns on the self-healing transport.
FaultPlan g_faults;
bool g_reliable = false;

// Checkpoint/restore for the `distributed`/`compare` pipelines, set by the
// global --checkpoint-dir/--checkpoint-every/--resume flags.  --kill-at-round
// hard-kills the process (SIGKILL, no cleanup) after the given cumulative
// simulator round — the crash half of the recovery drill.
std::string g_checkpoint_dir;
std::uint64_t g_checkpoint_every = 0;
bool g_resume = false;
std::uint64_t g_kill_at_round = 0;  // 0 = never

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  rwbc_cli [flags] <command> ...\n"
         "  rwbc_cli generate <family> <n> <seed> [out.edges]\n"
         "  rwbc_cli exact <graph.edges> [--dot out.dot]\n"
         "  rwbc_cli distributed <graph.edges> [K] [l] [seed]\n"
         "  rwbc_cli compare <graph.edges> [K] [l] [seed]\n"
         "  rwbc_cli measures <graph.edges>\n"
         "  rwbc_cli spbc <graph.edges> [seed]\n"
         "families: path cycle star grid tree complete barbell er ba ws "
         "fig1\n"
         "flags:\n"
         "  --threads N      simulator threads (0 = serial, -1 = one per\n"
         "                   hardware thread); output is identical either way\n"
         "  --drop-prob P    drop each message with probability P in [0,1]\n"
         "  --dup-prob P     duplicate surviving messages with prob. P\n"
         "  --crash V@R      crash-stop node V at round R (repeatable)\n"
         "  --fault-seed S   dedicated RNG seed for the fault schedule\n"
         "  --reliable       self-healing ack/retransmit transport\n"
         "  --checkpoint-dir D   snapshot directory for distributed/compare\n"
         "  --checkpoint-every R snapshot every R phase rounds (default 0 =\n"
         "                   off; requires --checkpoint-dir)\n"
         "  --resume         resume from the newest usable snapshot in\n"
         "                   --checkpoint-dir\n"
         "  --kill-at-round R    SIGKILL the process after cumulative\n"
         "                   simulator round R (crash-recovery drills)\n"
         "fault flags apply to the distributed/compare data phases only.\n";
  std::exit(2);
}

double parse_probability(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value >= 0.0 && value <= 1.0)) {
    throw Error(std::string(flag) + " expects a probability in [0,1], got '" +
                text + "'");
  }
  return value;
}

CrashEvent parse_crash(const char* text) {
  const std::string spec(text);
  const std::size_t at = spec.find('@');
  char* end = nullptr;
  CrashEvent crash;
  if (at != std::string::npos) {
    crash.node = static_cast<NodeId>(
        std::strtol(spec.c_str(), &end, 10));
    const bool node_ok = end == spec.c_str() + at && crash.node >= 0;
    crash.round = std::strtoull(spec.c_str() + at + 1, &end, 10);
    if (node_ok && *end == '\0' && at + 1 < spec.size()) return crash;
  }
  throw Error(std::string("--crash expects NODE@ROUND, got '") + text + "'");
}

Graph load(const std::string& path) {
  if (path == "-") return read_edge_list(std::cin);
  return load_edge_list(path);
}

Graph generate(const std::string& family, NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "complete") return make_complete(n);
  if (family == "barbell") return make_barbell(n / 2, 2);
  if (family == "er") {
    return make_erdos_renyi(n, std::min(1.0, 4.0 / static_cast<double>(n)),
                            rng);
  }
  if (family == "ba") return make_barabasi_albert(n, 2, rng);
  if (family == "ws") return make_watts_strogatz(n, 4, 0.2, rng);
  if (family == "fig1") return make_fig1_graph(n / 2).graph;
  throw Error("unknown family: " + family);
}

void print_scores(const Graph& g, const std::vector<double>& scores,
                  const char* name) {
  Table table({"node", "degree", name});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    table.add_row({Table::fmt(v), Table::fmt(g.degree(v)),
                   Table::fmt(scores[static_cast<std::size_t>(v)], 6)});
  }
  table.print(std::cout);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 5) usage();
  const Graph g = generate(argv[2], static_cast<NodeId>(std::atoi(argv[3])),
                           static_cast<std::uint64_t>(std::atoll(argv[4])));
  if (argc > 5) {
    save_edge_list(g, argv[5]);
    std::cerr << "wrote " << g.node_count() << " nodes / " << g.edge_count()
              << " edges to " << argv[5] << "\n";
  } else {
    write_edge_list(g, std::cout);
  }
  return 0;
}

int cmd_exact(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto scores = current_flow_betweenness(g);
  print_scores(g, scores, "exact RWBC");
  if (argc >= 5 && std::string(argv[3]) == "--dot") {
    std::ofstream out(argv[4]);
    RWBC_REQUIRE(out.good(), std::string("cannot write ") + argv[4]);
    write_dot(g, out, scores);
    std::cerr << "wrote DOT to " << argv[4] << "\n";
  }
  return 0;
}

DistributedRwbcResult run_distributed(const Graph& g, int argc, char** argv) {
  DistributedRwbcOptions options;
  if (argc > 3) options.walks_per_source = std::strtoull(argv[3], nullptr, 10);
  if (argc > 4) options.cutoff = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) {
    options.congest.seed = std::strtoull(argv[5], nullptr, 10);
  }
  // Users often pass big K; widen the budget floor accordingly.
  options.congest.bit_floor = 128;
  options.congest.num_threads = g_threads;
  options.congest.faults = g_faults;
  options.reliable_transport = g_reliable;
  options.checkpoint.dir = g_checkpoint_dir;
  options.checkpoint.interval = g_checkpoint_every;
  options.checkpoint.resume = g_resume;
  if (g_kill_at_round > 0) {
    // Crash drill: count rounds across every phase (observers see
    // phase-local numbers; the shared counter makes the kill point global)
    // and die with no chance to flush or unwind — exactly what a power
    // loss or OOM kill would do.
    auto rounds_seen = std::make_shared<std::uint64_t>(0);
    options.congest.round_observer = [rounds_seen](const RoundSnapshot&) {
      if (++*rounds_seen == g_kill_at_round) std::raise(SIGKILL);
    };
  }
  return distributed_rwbc(g, options);
}

int cmd_distributed(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto result = run_distributed(g, argc, argv);
  print_scores(g, result.betweenness, "distributed RWBC");
  std::cout << "\ntarget = " << result.target
            << ", K = " << result.params.walks_per_source
            << ", l = " << result.params.cutoff
            << "\nrounds = " << result.total.rounds
            << ", messages = " << result.total.total_messages
            << ", peak bits/edge/round = "
            << result.total.max_bits_per_edge_round << "\n";
  if (g_faults.any() || g_reliable) {
    std::cout << "faults: dropped = " << result.total.dropped_messages
              << ", duplicated = " << result.total.duplicated_messages
              << ", crashed = " << result.total.crashed_nodes
              << ", retransmissions = " << result.total.retransmissions
              << "\n";
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto exact = current_flow_betweenness(g);
  const auto result = run_distributed(g, argc, argv);
  Table table({"node", "exact", "distributed", "rel err"});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const double err = std::abs(result.betweenness[vi] - exact[vi]) /
                       std::max(std::abs(exact[vi]), 1e-12);
    table.add_row({Table::fmt(v), Table::fmt(exact[vi], 6),
                   Table::fmt(result.betweenness[vi], 6),
                   Table::fmt(err, 4)});
  }
  table.print(std::cout);
  std::cout << "\nmax rel err = "
            << max_relative_error(exact, result.betweenness)
            << ", Kendall tau = "
            << kendall_tau(exact, result.betweenness)
            << ", rounds = " << result.total.rounds << "\n";
  return 0;
}

int cmd_spbc(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  DistributedSpbcOptions options;
  options.congest.bit_floor = 64;
  options.congest.num_threads = g_threads;
  if (argc > 3) options.congest.seed = std::strtoull(argv[3], nullptr, 10);
  const auto result = distributed_spbc(g, options);
  print_scores(g, result.betweenness, "distributed SPBC");
  const auto exact = brandes_betweenness(g);
  std::cout << "\nrounds = " << result.total.rounds
            << " (forward " << result.forward_metrics.rounds << ", backward "
            << result.backward_metrics.rounds << ")"
            << ", max |diff| vs Brandes = "
            << max_relative_error(exact, result.betweenness, 1e-6) << "\n";
  return 0;
}

int cmd_measures(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto degree = degree_centrality(g);
  const auto closeness = closeness_centrality(g);
  const auto eigen = eigenvector_centrality(g);
  const auto katz = katz_centrality(g);
  const auto spbc = brandes_betweenness(g);
  const auto rw = current_flow_betweenness(g);
  const auto pr = pagerank_power(g);
  Table table({"node", "degree", "closeness", "eigenvector", "katz", "SPBC",
               "RWBC", "pagerank"});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    table.add_row({Table::fmt(v), Table::fmt(degree[vi]),
                   Table::fmt(closeness[vi]), Table::fmt(eigen[vi]),
                   Table::fmt(katz[vi]), Table::fmt(spbc[vi]),
                   Table::fmt(rw[vi]), Table::fmt(pr[vi])});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip the global flags before dispatching on the subcommand.  Flag
    // errors throw rwbc::Error, so a bad value exits with one line on
    // stderr, never a backtrace.
    std::vector<char*> args(argv, argv + argc);
    std::size_t i = 1;
    while (i < args.size()) {
      const std::string flag(args[i]);
      const bool takes_value = flag == "--threads" || flag == "--drop-prob" ||
                               flag == "--dup-prob" || flag == "--crash" ||
                               flag == "--fault-seed" ||
                               flag == "--checkpoint-dir" ||
                               flag == "--checkpoint-every" ||
                               flag == "--kill-at-round";
      if (takes_value && i + 1 >= args.size()) {
        throw Error(flag + " requires a value");
      }
      if (flag == "--threads") {
        g_threads = std::atoi(args[i + 1]);
      } else if (flag == "--drop-prob") {
        g_faults.drop_prob = parse_probability("--drop-prob", args[i + 1]);
      } else if (flag == "--dup-prob") {
        g_faults.dup_prob = parse_probability("--dup-prob", args[i + 1]);
      } else if (flag == "--crash") {
        g_faults.crashes.push_back(parse_crash(args[i + 1]));
      } else if (flag == "--fault-seed") {
        g_faults.seed = std::strtoull(args[i + 1], nullptr, 10);
      } else if (flag == "--checkpoint-dir") {
        g_checkpoint_dir = args[i + 1];
      } else if (flag == "--checkpoint-every") {
        g_checkpoint_every = std::strtoull(args[i + 1], nullptr, 10);
      } else if (flag == "--kill-at-round") {
        g_kill_at_round = std::strtoull(args[i + 1], nullptr, 10);
      } else if (flag == "--reliable") {
        g_reliable = true;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      } else if (flag == "--resume") {
        g_resume = true;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
        continue;
      } else if (flag.rfind("--", 0) == 0 && flag != "--dot") {
        throw Error("unknown flag: " + flag);
      } else {
        ++i;
        continue;
      }
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
    }
    argc = static_cast<int>(args.size());
    argv = args.data();
    if (g_resume && g_checkpoint_dir.empty()) {
      throw Error("--resume requires --checkpoint-dir");
    }
    if (g_checkpoint_every > 0 && g_checkpoint_dir.empty()) {
      throw Error("--checkpoint-every requires --checkpoint-dir");
    }
    if (argc < 2) usage();
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "exact") return cmd_exact(argc, argv);
    if (command == "distributed") return cmd_distributed(argc, argv);
    if (command == "compare") return cmd_compare(argc, argv);
    if (command == "measures") return cmd_measures(argc, argv);
    if (command == "spbc") return cmd_spbc(argc, argv);
    usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
