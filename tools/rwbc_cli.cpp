// rwbc_cli — command-line front end for the library.
//
//   rwbc_cli generate <family> <n> <seed> [out.edges]
//       emit a generated graph as an edge list (stdout or file)
//   rwbc_cli exact <graph.edges> [--dot out.dot]
//       exact random-walk betweenness (Newman); optional DOT rendering
//   rwbc_cli distributed <graph.edges> [K] [l] [seed]
//       the paper's CONGEST pipeline with metrics
//   rwbc_cli compare <graph.edges> [K] [l] [seed]
//       exact vs distributed, with error and rank agreement
//   rwbc_cli measures <graph.edges>
//       the full centrality panel (degree/closeness/eigenvector/Katz/
//       SPBC/RWBC/PageRank)
//   rwbc_cli spbc <graph.edges> [seed]
//       the distributed shortest-path betweenness of [5], vs Brandes
//
// Graph files use the `n m` + `u v` edge-list format (see graph/io.hpp);
// "-" reads from stdin.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "centrality/brandes.hpp"
#include "centrality/classic.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/pagerank.hpp"
#include "centrality/ranking.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "rwbc/pipeline.hpp"

namespace {

using namespace rwbc;

// The shared operational knobs (--threads, fault flags, checkpoint flags,
// --kill-at-round), parsed and validated by rwbc/pipeline.hpp — the CLI
// owns no flag parsing of its own.  Subcommands copy this spec, set their
// per-algorithm fields, and dispatch through run_pipeline.
PipelineSpec g_spec;

[[noreturn]] void usage() {
  std::cerr
      << "usage:\n"
         "  rwbc_cli [flags] <command> ...\n"
         "  rwbc_cli generate <family> <n> <seed> [out.edges]\n"
         "  rwbc_cli exact <graph.edges> [--dot out.dot]\n"
         "  rwbc_cli distributed <graph.edges> [K] [l] [seed]\n"
         "  rwbc_cli compare <graph.edges> [K] [l] [seed]\n"
         "  rwbc_cli measures <graph.edges>\n"
         "  rwbc_cli spbc <graph.edges> [seed]\n"
         "families: path cycle star grid tree complete barbell er ba ws "
         "fig1\n"
         "flags:\n"
         "  --threads N      simulator threads (0 = serial, -1 = one per\n"
         "                   hardware thread); output is identical either way\n"
         "  --drop-prob P    drop each message with probability P in [0,1]\n"
         "  --dup-prob P     duplicate surviving messages with prob. P\n"
         "  --crash V@R      crash-stop node V at round R (repeatable)\n"
         "  --fault-seed S   dedicated RNG seed for the fault schedule\n"
         "  --reliable       self-healing ack/retransmit transport\n"
         "  --checkpoint-dir D   snapshot directory for distributed/compare\n"
         "  --checkpoint-every R snapshot every R phase rounds (default 0 =\n"
         "                   off; requires --checkpoint-dir)\n"
         "  --resume         resume from the newest usable snapshot in\n"
         "                   --checkpoint-dir\n"
         "  --kill-at-round R    SIGKILL the process after cumulative\n"
         "                   simulator round R (crash-recovery drills)\n"
         "  --walks-per-edge N   walk tokens per edge direction per round\n"
         "                   (rwbc; default 1 = the paper's model)\n"
         "  --no-coalesce    legacy one-message-per-token walk wire (rwbc;\n"
         "                   differential baseline for the coalesced path)\n"
         "  --guardian       crash-lossless counting: mirror held walks to\n"
         "                   a guardian that adopts them if this node dies\n"
         "  --no-guardian    disable guardian mirroring (the default)\n"
         "fault flags apply to the distributed/compare data phases only.\n";
  std::exit(2);
}

Graph load(const std::string& path) {
  if (path == "-") return read_edge_list(std::cin);
  return load_edge_list(path);
}

Graph generate(const std::string& family, NodeId n, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "complete") return make_complete(n);
  if (family == "barbell") return make_barbell(n / 2, 2);
  if (family == "er") {
    return make_erdos_renyi(n, std::min(1.0, 4.0 / static_cast<double>(n)),
                            rng);
  }
  if (family == "ba") return make_barabasi_albert(n, 2, rng);
  if (family == "ws") return make_watts_strogatz(n, 4, 0.2, rng);
  if (family == "fig1") return make_fig1_graph(n / 2).graph;
  throw Error("unknown family: " + family);
}

void print_scores(const Graph& g, const std::vector<double>& scores,
                  const char* name) {
  Table table({"node", "degree", name});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    table.add_row({Table::fmt(v), Table::fmt(g.degree(v)),
                   Table::fmt(scores[static_cast<std::size_t>(v)], 6)});
  }
  table.print(std::cout);
}

int cmd_generate(int argc, char** argv) {
  if (argc < 5) usage();
  const Graph g = generate(argv[2], static_cast<NodeId>(std::atoi(argv[3])),
                           static_cast<std::uint64_t>(std::atoll(argv[4])));
  if (argc > 5) {
    save_edge_list(g, argv[5]);
    std::cerr << "wrote " << g.node_count() << " nodes / " << g.edge_count()
              << " edges to " << argv[5] << "\n";
  } else {
    write_edge_list(g, std::cout);
  }
  return 0;
}

int cmd_exact(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto scores = current_flow_betweenness(g);
  print_scores(g, scores, "exact RWBC");
  if (argc >= 5 && std::string(argv[3]) == "--dot") {
    std::ofstream out(argv[4]);
    RWBC_REQUIRE(out.good(), std::string("cannot write ") + argv[4]);
    write_dot(g, out, scores);
    std::cerr << "wrote DOT to " << argv[4] << "\n";
  }
  return 0;
}

DistributedRwbcResult run_distributed(const Graph& g, int argc, char** argv) {
  PipelineSpec spec = g_spec;
  spec.algorithm = "rwbc";
  if (argc > 3) {
    spec.rwbc.walks_per_source = std::strtoull(argv[3], nullptr, 10);
  }
  if (argc > 4) spec.rwbc.cutoff = std::strtoull(argv[4], nullptr, 10);
  if (argc > 5) spec.seed = std::strtoull(argv[5], nullptr, 10);
  // Users often pass big K; widen the budget floor accordingly.
  spec.bit_floor = 128;
  DistributedRwbcResult result;
  spec.rwbc_result = &result;
  run_pipeline(g, spec);
  return result;
}

int cmd_distributed(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto result = run_distributed(g, argc, argv);
  print_scores(g, result.report.scores, "distributed RWBC");
  std::cout << "\ntarget = " << result.target
            << ", K = " << result.params.walks_per_source
            << ", l = " << result.params.cutoff
            << "\nrounds = " << result.report.metrics.rounds
            << ", messages = " << result.report.metrics.total_messages
            << ", peak bits/edge/round = "
            << result.report.metrics.max_bits_per_edge_round << "\n";
  if (g_spec.faults.any() || g_spec.reliable_transport) {
    std::cout << "faults: dropped = " << result.report.metrics.dropped_messages
              << ", duplicated = " << result.report.metrics.duplicated_messages
              << ", crashed = " << result.report.metrics.crashed_nodes
              << ", retransmissions = " << result.report.metrics.retransmissions
              << "\n";
  }
  if (g_spec.rwbc.guardian_handoff) {
    const WalkAccounting& walks = result.report.walks;
    std::cout << "walks: expected = " << walks.expected
              << ", died = " << walks.died
              << ", adopted = " << walks.adopted
              << ", abandoned = " << walks.abandoned
              << ", lost = " << walks.lost
              << (walks.exact() ? " (exact)" : "") << "\n";
  }
  return 0;
}

int cmd_compare(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto exact = current_flow_betweenness(g);
  const auto result = run_distributed(g, argc, argv);
  Table table({"node", "exact", "distributed", "rel err"});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const double err = std::abs(result.report.scores[vi] - exact[vi]) /
                       std::max(std::abs(exact[vi]), 1e-12);
    table.add_row({Table::fmt(v), Table::fmt(exact[vi], 6),
                   Table::fmt(result.report.scores[vi], 6),
                   Table::fmt(err, 4)});
  }
  table.print(std::cout);
  std::cout << "\nmax rel err = "
            << max_relative_error(exact, result.report.scores)
            << ", Kendall tau = "
            << kendall_tau(exact, result.report.scores)
            << ", rounds = " << result.report.metrics.rounds << "\n";
  return 0;
}

int cmd_spbc(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  PipelineSpec spec = g_spec;
  spec.algorithm = "spbc";
  spec.bit_floor = 64;
  // Fault/reliability/checkpoint flags apply to the distributed/compare
  // data phases only (see usage()); spbc runs clean regardless.
  spec.faults = FaultPlan{};
  spec.reliable_transport = false;
  spec.checkpoint_dir.clear();
  spec.checkpoint_every = 0;
  spec.resume = false;
  if (argc > 3) spec.seed = std::strtoull(argv[3], nullptr, 10);
  DistributedSpbcResult result;
  spec.spbc_result = &result;
  run_pipeline(g, spec);
  print_scores(g, result.report.scores, "distributed SPBC");
  const auto exact = brandes_betweenness(g);
  std::cout << "\nrounds = " << result.report.metrics.rounds
            << " (forward " << result.forward_metrics.rounds << ", backward "
            << result.backward_metrics.rounds << ")"
            << ", max |diff| vs Brandes = "
            << max_relative_error(exact, result.report.scores, 1e-6) << "\n";
  return 0;
}

int cmd_measures(int argc, char** argv) {
  if (argc < 3) usage();
  const Graph g = load(argv[2]);
  const auto degree = degree_centrality(g);
  const auto closeness = closeness_centrality(g);
  const auto eigen = eigenvector_centrality(g);
  const auto katz = katz_centrality(g);
  const auto spbc = brandes_betweenness(g);
  const auto rw = current_flow_betweenness(g);
  const auto pr = pagerank_power(g);
  Table table({"node", "degree", "closeness", "eigenvector", "katz", "SPBC",
               "RWBC", "pagerank"});
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    table.add_row({Table::fmt(v), Table::fmt(degree[vi]),
                   Table::fmt(closeness[vi]), Table::fmt(eigen[vi]),
                   Table::fmt(katz[vi]), Table::fmt(spbc[vi]),
                   Table::fmt(rw[vi]), Table::fmt(pr[vi])});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    // Strip the shared pipeline flags before dispatching on the
    // subcommand; parsing and validation live in rwbc/pipeline.hpp.  Flag
    // errors throw rwbc::Error, so a bad value exits with one line on
    // stderr, never a backtrace.
    std::vector<char*> args(argv, argv + argc);
    strip_pipeline_flags(args, g_spec);
    for (std::size_t i = 1; i < args.size(); ++i) {
      const std::string flag(args[i]);
      if (flag.rfind("--", 0) == 0 && flag != "--dot") {
        throw Error("unknown flag: " + flag);
      }
    }
    argc = static_cast<int>(args.size());
    argv = args.data();
    validate_pipeline_spec(g_spec);
    if (argc < 2) usage();
    const std::string command = argv[1];
    if (command == "generate") return cmd_generate(argc, argv);
    if (command == "exact") return cmd_exact(argc, argv);
    if (command == "distributed") return cmd_distributed(argc, argv);
    if (command == "compare") return cmd_compare(argc, argv);
    if (command == "measures") return cmd_measures(argc, argv);
    if (command == "spbc") return cmd_spbc(argc, argv);
    usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
