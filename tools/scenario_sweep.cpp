// scenario_sweep — the composable fault-scenario matrix driver.
//
// One binary crosses every fault class the simulator can inject with every
// resilience knob the pipeline exposes and prints ONE comparative table, so
// the fault-tolerance story is auditable at a glance instead of scattered
// across test logs:
//
//   faults   {none, crash, drop, dup, linkdown}
//     x guardian  {off, on}     (crash-lossless walk mirroring, DESIGN.md §10)
//     x reliable  {off, on}     (ack/retransmit transport)
//     x ckpt      {off, on}     (snapshot mid-phase, resume, compare)
//   over the 7 graph families of the differential suites.
//
// Each row reports rounds, messages, the walk census (lost / abandoned /
// adopted, loss%), whether the run recovered its walk population exactly,
// and — for ckpt rows — whether the resumed run reproduced the writer run
// bit-identically.  The `expect` column is the protocol's a-priori claim
// (survivors_connected + the knob matrix decides "exact" vs "lossy"); the
// binary exits non-zero if any row breaks its claim, which is what makes
// the CI smoke leg meaningful.
//
// usage: scenario_sweep [--quick] [--family F] [--fault F] [--out PATH]
//                       [--threads N]
//   --quick    family ba, faults {none, crash} only (the CI smoke leg)
//   --family   restrict to one family (repeatable flag wins last)
//   --fault    restrict to one fault class
//   --out      also write the table to PATH (CI uploads it as an artifact)
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "congest/faults.hpp"
#include "graph/generators.hpp"
#include "rwbc/pipeline.hpp"

namespace rwbc {
namespace {

Graph family_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  if (family == "cycle") return make_cycle(14);
  throw Error("unknown family: " + family);
}

const char* const kFamilies[] = {"er",      "ba",   "ws", "grid",
                                 "tree", "barbell", "cycle"};
const char* const kFaults[] = {"none", "crash", "drop", "dup", "linkdown"};

constexpr NodeId kTarget = 1;  // forced so the crash pick can avoid it

/// The crash plan every row with fault=crash uses: the highest-id node
/// whose removal keeps survivors connected, never the leader (0) or the
/// target.  Mid-phase round so walks are both pooled and in flight.
FaultPlan make_crash_plan(const Graph& g) {
  for (NodeId v = g.node_count() - 1; v > 0; --v) {
    if (v == kTarget) continue;
    FaultPlan plan;
    plan.crashes.push_back({v, 6});
    if (survivors_connected(g, plan)) return plan;
  }
  throw Error("no crashable node in graph");
}

FaultPlan make_fault_plan(const std::string& fault, const Graph& g,
                          std::uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed ^ 0xfau;
  if (fault == "none") return plan;
  if (fault == "crash") {
    FaultPlan crash = make_crash_plan(g);
    crash.seed = plan.seed;
    return crash;
  }
  if (fault == "drop") {
    // A 30-round loss burst, deliberately shorter than the reliable link's
    // give-up horizon (ack_timeout 4 x (max_retries 8 + 1) = 36 rounds):
    // no frame can exhaust its retry budget inside the burst, so the
    // transport recovers every frame deterministically and the
    // drop+reliable rows' exactness is a contract, not luck.  Unbounded
    // 20% loss would occasionally eat a frame's ack nine times in a row —
    // finite-retry reliability degrades to at-least-once and a delivered
    // walk gets refunded (counted twice).
    plan.drop_prob = 0.2;
    plan.message_fault_first_round = 5;
    plan.message_fault_last_round = 34;
    return plan;
  }
  if (fault == "dup") {
    plan.dup_prob = 0.2;
    return plan;
  }
  if (fault == "linkdown") {
    // Sever the leader's first incident edge for ten mid-phase rounds —
    // with high odds a sweep-tree edge, so termination detection and (for
    // guardian rows) re-anchoring both get exercised.
    plan.link_downs.push_back({Edge{0, g.neighbors(0).front()}, 5, 15});
    return plan;
  }
  throw Error("unknown fault class: " + fault);
}

struct Combo {
  std::string family;
  std::string fault;
  bool guardian = false;
  bool reliable = false;
  bool ckpt = false;
};

/// The protocol's a-priori claim for a combo, decided from the knob matrix
/// and survivors_connected — the quantity each row is checked against.
///   exact: every walk accounted as died, nothing lost or abandoned.
///   lossy: loss is possible and must be REPORTED, not hidden.
bool expect_exact(const Combo& c, const Graph& g, const FaultPlan& plan) {
  if (c.fault == "none") return true;
  // Pure message faults: the reliable transport alone restores exactness
  // (retransmission for drops and link-downs, dedup for duplicates).
  if (c.fault == "drop" || c.fault == "dup" || c.fault == "linkdown") {
    return c.reliable;
  }
  // Crash-stop: needs the guardian for held walks, the reliable link for
  // in-flight ones, and connected survivors to finish the phase.
  return c.guardian && c.reliable && survivors_connected(g, plan);
}

std::uint64_t score_digest(const DistributedRwbcResult& result) {
  std::uint64_t d = 0x5eedULL;
  const auto fold = [&d](std::uint64_t v) {
    std::uint64_t state = d ^ v;
    d = splitmix64(state);
  };
  for (double s : result.report.scores) {
    std::uint64_t bits;
    std::memcpy(&bits, &s, sizeof(bits));
    fold(bits);
  }
  fold(result.report.metrics.rounds);
  fold(result.report.walks.died);
  fold(result.report.walks.adopted);
  fold(result.report.walks.abandoned);
  return d;
}

struct RowResult {
  RunReport report;
  DistributedRwbcResult result;
  bool resume_identical = true;  // ckpt rows only
};

RowResult run_combo(const Combo& combo, const Graph& g, int threads) {
  PipelineSpec spec;
  spec.algorithm = "rwbc";
  spec.threads = threads;
  spec.seed = 7;
  spec.bit_floor = 128;
  spec.rwbc.walks_per_source = 4;
  spec.rwbc.cutoff = 20;
  spec.rwbc.forced_target = kTarget;
  spec.rwbc.guardian_handoff = combo.guardian;
  spec.rwbc.fault_deadline_rounds = 400;
  spec.faults = make_fault_plan(combo.fault, g, spec.seed);
  spec.reliable_transport = combo.reliable;

  RowResult row;
  spec.rwbc_result = &row.result;
  if (!combo.ckpt) {
    row.report = run_pipeline(g, spec);
    return row;
  }
  // ckpt rows: write snapshots mid-phase, then resume from the newest one
  // and require the resumed run to reproduce the writer run exactly.
  std::ostringstream dir;
  dir << "/tmp/rwbc_sweep_" << combo.family << "_" << combo.fault << "_g"
      << combo.guardian << "_r" << combo.reliable;
  spec.checkpoint_dir = dir.str();
  spec.checkpoint_every = 10;
  // Stale snapshots from an earlier sweep (same dir name, possibly a longer
  // run) would win the newest-checkpoint race on resume — start clean.
  std::filesystem::remove_all(spec.checkpoint_dir);
  row.report = run_pipeline(g, spec);
  const std::uint64_t want = score_digest(row.result);

  PipelineSpec resume_spec = spec;
  DistributedRwbcResult resumed;
  resume_spec.rwbc_result = &resumed;
  resume_spec.checkpoint_every = 0;
  resume_spec.resume = true;
  (void)run_pipeline(g, resume_spec);
  row.resume_identical = resumed.report.resumed_from_round > 0 &&
                         score_digest(resumed) == want;
  return row;
}

const char* onoff(bool b) { return b ? "on" : "off"; }

int sweep_main(int argc, char** argv) {
  bool quick = false;
  int threads = 0;
  std::string only_family, only_fault, out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw Error(flag + " requires a value");
      return argv[++i];
    };
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--family") {
      only_family = value();
    } else if (flag == "--fault") {
      only_fault = value();
    } else if (flag == "--out") {
      out_path = value();
    } else if (flag == "--threads") {
      threads = std::atoi(value().c_str());
    } else {
      throw Error("unknown flag: " + flag);
    }
  }

  std::vector<std::string> families, faults;
  for (const char* f : kFamilies) {
    if (only_family.empty() ? !quick || std::string(f) == "ba"
                            : only_family == f) {
      families.push_back(f);
    }
  }
  for (const char* f : kFaults) {
    if (only_fault.empty()
            ? !quick || std::string(f) == "none" || std::string(f) == "crash"
            : only_fault == f) {
      faults.push_back(f);
    }
  }
  if (families.empty()) throw Error("unknown family: " + only_family);
  if (faults.empty()) throw Error("unknown fault class: " + only_fault);

  Table table({"family", "fault", "guardian", "reliable", "ckpt", "rounds",
               "msgs", "loss%", "lost", "abandoned", "adopted", "expect",
               "exact", "resume"});
  int violations = 0;
  for (const std::string& family : families) {
    const Graph g = family_graph(family, 1);
    for (const std::string& fault : faults) {
      for (bool guardian : {false, true}) {
        for (bool reliable : {false, true}) {
          for (bool ckpt : {false, true}) {
            const Combo combo{family, fault, guardian, reliable, ckpt};
            const FaultPlan plan = make_fault_plan(fault, g, 7);
            const RowResult row = run_combo(combo, g, threads);
            const WalkAccounting& walks = row.report.walks;
            const bool exact = walks.exact();
            const bool expected_exact = expect_exact(combo, g, plan);
            // An expected-exact row must be exact; an expected-lossy row
            // only has to keep honest books (never a negative residual,
            // which would mean double counting; dup rows are exempt — an
            // unreliable duplicated walk genuinely lands twice and the
            // accounting is REQUIRED to surface that as lost < 0).  A
            // guardian without the reliable link has no failure detector:
            // silence-only adoption can fire on a live ward muted by drop
            // or linkdown streaks, double-counting its deaths, so those
            // rows are dup-like too.  (With the link, adoption waits for
            // the slot's confirmed death and stays honest.)
            const bool honest =
                walks.lost >= 0 || (fault == "dup" && !reliable) ||
                (guardian && !reliable &&
                 (fault == "drop" || fault == "linkdown"));
            const bool ok = (expected_exact ? exact : honest) &&
                            row.resume_identical;
            if (!ok) ++violations;
            const double loss_pct =
                walks.expected == 0
                    ? 0.0
                    : 100.0 *
                          static_cast<double>(static_cast<std::int64_t>(
                                                  walks.expected) -
                                              static_cast<std::int64_t>(
                                                  walks.died)) /
                          static_cast<double>(walks.expected);
            table.add_row({family, fault, onoff(guardian), onoff(reliable),
                           onoff(ckpt), Table::fmt(row.report.metrics.rounds),
                           Table::fmt(row.report.metrics.total_messages),
                           Table::fmt(loss_pct, 1), Table::fmt(walks.lost),
                           Table::fmt(walks.abandoned),
                           Table::fmt(walks.adopted),
                           expected_exact ? "exact" : "lossy",
                           exact ? "yes" : "no",
                           ckpt ? (row.resume_identical ? "ok" : "MISMATCH")
                                : "-"});
          }
        }
      }
    }
  }
  table.print(std::cout);
  std::cout << table.row_count() << " scenarios, " << violations
            << " contract violations\n";
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    table.print(out);
    out << table.row_count() << " scenarios, " << violations
        << " contract violations\n";
  }
  return violations == 0 ? 0 : 1;
}

}  // namespace
}  // namespace rwbc

int main(int argc, char** argv) {
  try {
    return rwbc::sweep_main(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
