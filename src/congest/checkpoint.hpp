// Versioned, checksummed binary checkpoints for the CONGEST simulator.
//
// A long RWBC run (O(n log n) rounds, paper Section V-VI) that dies at 90%
// loses everything: walk tokens are the sole carrier of Algorithm 1's state
// and live spread across every node's held pool, the in-flight mailboxes,
// and the reliability layer's retransmission windows.  A checkpoint captures
// ALL of that — per-node program state, per-node RNG streams, undelivered
// messages, the fault injector's dedicated RNG and crash bookkeeping, and
// the accumulated RunMetrics — so a resumed run replays the remaining
// rounds BIT-IDENTICALLY to an uninterrupted one, at any thread count
// (snapshots are taken in the serial driver section, where state is already
// in canonical node-id order; see DESIGN.md §7).
//
// Wire format (all little-endian):
//
//   envelope  :=  magic[8]="RWBCCKP\1"  version:u32  payload_len:u64
//                 crc32:u32  payload[payload_len]
//   payload   :=  caller sections (CheckpointWriter primitives)
//
// The CRC32 (IEEE 802.3 polynomial) covers the payload only, so a truncated
// file fails the length check and a bit-flipped one fails the checksum —
// both surface as rwbc::CheckpointError, never as garbage state.  Format
// changes bump kCheckpointVersion; readers reject every other version
// outright (a checkpoint is a process-lifetime artifact, not an archive
// format — no cross-version migration is attempted).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace rwbc {

/// Current checkpoint format version; bump on any layout change.
/// v2: guardian-handoff fields in RunMetrics and CountingNode state.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// CRC32 (IEEE, reflected, init/final 0xffffffff) of `data`.
std::uint32_t crc32_ieee(std::span<const std::uint8_t> data);

/// Append-only little-endian byte buffer for checkpoint payloads.
class CheckpointWriter {
 public:
  void u8(std::uint8_t value) { buffer_.push_back(value); }
  void u32(std::uint32_t value);
  void u64(std::uint64_t value);
  void i64(std::int64_t value) { u64(static_cast<std::uint64_t>(value)); }
  /// Doubles travel as their IEEE-754 bit pattern — bit-identical restore.
  void f64(double value);
  void boolean(bool value) { u8(value ? 1 : 0); }
  /// Length-prefixed byte blob.
  void blob(std::span<const std::uint8_t> bytes);
  /// Length-prefixed UTF-8 string.
  void str(const std::string& text);

  const std::vector<std::uint8_t>& buffer() const { return buffer_; }

 private:
  std::vector<std::uint8_t> buffer_;
};

/// Sequential reader over a checkpoint payload.  Every primitive throws
/// rwbc::CheckpointError on overrun, so a truncated payload can never be
/// silently mis-parsed into plausible state.
class CheckpointReader {
 public:
  /// Reads over a payload the reader takes ownership of.
  explicit CheckpointReader(std::vector<std::uint8_t> payload)
      : payload_(std::move(payload)) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  bool boolean();
  std::vector<std::uint8_t> blob();
  std::string str();

  std::size_t remaining() const { return payload_.size() - cursor_; }

 private:
  void need(std::size_t bytes) const;

  std::vector<std::uint8_t> payload_;
  std::size_t cursor_ = 0;
};

/// Wraps a payload in the magic/version/length/CRC envelope.
std::vector<std::uint8_t> seal_checkpoint(const CheckpointWriter& payload);

/// Verifies the envelope (magic, version, length, CRC) and returns a reader
/// over the payload; throws rwbc::CheckpointError naming the defect
/// (`context` prefixes the message, e.g. the file path).
CheckpointReader open_checkpoint(std::span<const std::uint8_t> sealed,
                                 const std::string& context = "checkpoint");

}  // namespace rwbc
