// A CONGEST message: an opaque bit payload between two adjacent nodes.
//
// Payloads are produced by BitWriter so the network can meter the exact
// number of bits each edge carries per round — the quantity Theorem 4 and
// the CONGEST model itself are about.
#pragma once

#include <cstdint>

#include "common/bitcodec.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// An in-flight message. `from`/`to` are filled by the network at send time;
/// they model the fact that a receiver knows which port a message arrived on
/// (standard in CONGEST) and are not charged against the payload budget.
///
/// A Message does not own its payload: `payload` points into the network's
/// per-round message arena (see congest/arena.hpp), which stays immutable
/// for exactly the round in which the inbox span is handed to on_round.
/// Node programs that need a payload beyond the round must decode it (the
/// existing contract — inbox spans were never stable across rounds).
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  const std::uint8_t* payload = nullptr;  ///< arena-backed payload bytes
  int bit_count = 0;

  /// Number of payload bytes backing `bit_count` bits.
  std::size_t payload_bytes() const {
    return (static_cast<std::size_t>(bit_count) + 7) / 8;
  }

  /// Reader over the payload.
  BitReader reader() const { return BitReader(payload, bit_count); }
};

}  // namespace rwbc
