// A CONGEST message: an opaque bit payload between two adjacent nodes.
//
// Payloads are produced by BitWriter so the network can meter the exact
// number of bits each edge carries per round — the quantity Theorem 4 and
// the CONGEST model itself are about.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitcodec.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// An in-flight message. `from`/`to` are filled by the network at send time;
/// they model the fact that a receiver knows which port a message arrived on
/// (standard in CONGEST) and are not charged against the payload budget.
struct Message {
  NodeId from = -1;
  NodeId to = -1;
  std::vector<std::uint8_t> payload;
  int bit_count = 0;

  /// Reader over the payload.
  BitReader reader() const { return BitReader(payload, bit_count); }
};

}  // namespace rwbc
