// A CONGEST message: an opaque bit payload between two adjacent nodes.
//
// Payloads are produced by BitWriter so the network can meter the exact
// number of bits each edge carries per round — the quantity Theorem 4 and
// the CONGEST model itself are about.
#pragma once

#include <cstdint>
#include <cstring>

#include "common/bitcodec.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// An in-flight message. `from`/`to` are filled by the network at send time;
/// they model the fact that a receiver knows which port a message arrived on
/// (standard in CONGEST) and are not charged against the payload budget.
///
/// Payload storage is small-buffer inlined: a payload of up to kInlineBytes
/// (which covers every O(log n) CONGEST payload this repo sends, batched
/// walk payloads included) lives INSIDE the Message, so delivering a message
/// touches exactly one cache line end to end — no separate payload arena
/// write at placement, no pointer chase at read.  Longer payloads fall back
/// to a pointer into the network's per-round byte arena (congest/arena.hpp),
/// which stays immutable for exactly the round in which the inbox span is
/// handed to on_round.  Node programs that need a payload beyond the round
/// must decode it (the existing contract — inbox spans were never stable
/// across rounds).  Copying a Message copies an inline payload with it; a
/// spilled payload stays backed by the arena.
struct Message {
  /// Spill threshold: one 32-byte struct = ids + bit count + this buffer.
  static constexpr std::size_t kInlineBytes = 16;

  NodeId from = -1;
  NodeId to = -1;
  std::int32_t bit_count = 0;
  union Store {
    const std::uint8_t* ptr;  ///< payload_bytes() >  kInlineBytes
    std::uint8_t buf[kInlineBytes];  ///< payload_bytes() <= kInlineBytes
  } store_ = {nullptr};

  Message() = default;

  /// Builds a message, inlining the payload when it fits.  `bytes` may be
  /// null when `bits` is 0.  When the payload spills, `bytes` must stay
  /// alive as long as the message is readable (the arena contract above).
  Message(NodeId from_id, NodeId to_id, const std::uint8_t* bytes, int bits)
      : from(from_id), to(to_id), bit_count(bits) {
    const std::size_t len = payload_bytes();
    if (len <= kInlineBytes) {
      if (len > 0) std::memcpy(store_.buf, bytes, len);
    } else {
      store_.ptr = bytes;
    }
  }

  /// Number of payload bytes backing `bit_count` bits.
  std::size_t payload_bytes() const {
    return (static_cast<std::size_t>(bit_count) + 7) / 8;
  }

  /// The payload bytes (inline or arena-backed).
  const std::uint8_t* payload() const {
    return payload_bytes() <= kInlineBytes ? store_.buf : store_.ptr;
  }

  /// Reader over the payload.
  BitReader reader() const { return BitReader(payload(), bit_count); }
};

static_assert(sizeof(Message) == 32, "Message should stay one half-line");

}  // namespace rwbc
