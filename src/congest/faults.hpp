// Deterministic fault injection for the CONGEST simulator.
//
// The paper's model (Section III-A) assumes a perfectly reliable synchronous
// network.  A FaultPlan relaxes that assumption on purpose: per-message
// Bernoulli drops and duplications, crash-stop node failures at scheduled
// rounds, and link-down intervals — so the experiment suite can measure how
// Algorithm 1/2's approximation degrades when walk tokens (the sole state
// carrier) are lost, and how much the self-healing transport wins back.
//
// Determinism contract: all fault coin flips come from a DEDICATED RNG
// stream seeded by FaultPlan::seed, never from any node's private
// Rng(seed, id) stream.  Fault draws happen at the simulator's serial
// delivery-merge point, where messages are already in canonical (sender id,
// send order) order, so a given plan produces the SAME drops, duplicates,
// and crashes at every thread count — PR 1's serial-vs-parallel
// bit-identity is preserved with faults enabled.
//
// Coupling contract: every random-faultable message consumes exactly TWO
// uniform draws (one for drop, one for duplication), whether or not either
// fault fires.  With a fixed seed this couples runs across fault rates:
// raising drop_prob can only turn more of the same draw sequence into
// drops, so delivered-message counts are exactly monotone in the rate
// (asserted by tests/faults_test.cpp, not just in expectation).
// Structural faults (crashed destination, link-down) are decided before the
// coin flips and consume no draws.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace rwbc {

class CheckpointWriter;
class CheckpointReader;

/// A crash-stop failure: the node executes rounds < `round` and nothing
/// afterwards — it never runs on_round again, sends nothing, and every
/// message addressed to it from round `round` on is dropped.  `round` 0
/// means the node never executes a round at all (on_start still runs; it
/// models state that existed before the failure).
struct CrashEvent {
  NodeId node = 0;
  std::uint64_t round = 0;
};

/// An interval [first_round, last_round] (inclusive, in SEND rounds) during
/// which an edge delivers nothing in either direction.
struct LinkDownInterval {
  Edge edge{0, 0};
  std::uint64_t first_round = 0;
  std::uint64_t last_round = 0;
};

/// A deterministic fault schedule, configured on CongestConfig.  A
/// default-constructed plan injects nothing and adds no per-message cost.
struct FaultPlan {
  /// Seed of the dedicated fault RNG stream (independent of node streams).
  std::uint64_t seed = 0;

  /// Per-delivered-message drop probability (Bernoulli, per direction).
  double drop_prob = 0.0;

  /// Per-delivered-message duplication probability: the receiver sees two
  /// copies of the message in the SAME round's inbox.
  double dup_prob = 0.0;

  /// Send-round window (inclusive) during which drop_prob and dup_prob
  /// apply; outside it every message delivers normally.  The fate RNG still
  /// consumes its two uniforms per message either way, so narrowing the
  /// window — like raising a probability — never perturbs the draw
  /// sequence of the messages it does affect (the coupling contract
  /// above).  The default window is the whole run.  A bounded window lets
  /// a scenario model a loss burst the reliable transport provably rides
  /// out: keep it shorter than the link's give-up horizon
  /// (ack_timeout * (max_retries + 1) rounds) and no retry budget can be
  /// exhausted, so recovery is deterministic rather than probabilistic.
  std::uint64_t message_fault_first_round = 0;
  std::uint64_t message_fault_last_round = ~std::uint64_t{0};

  /// Crash-stop failures.  Multiple events for one node take the earliest.
  std::vector<CrashEvent> crashes;

  /// Link-down intervals; edges must exist in the simulated graph.
  std::vector<LinkDownInterval> link_downs;

  /// True if this plan can inject any fault at all.
  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || !crashes.empty() ||
           !link_downs.empty();
  }
};

/// True when the graph minus the plan's crash-stop nodes is non-empty and
/// connected — the exactness condition of the guardian handoff protocol
/// (DESIGN.md §10): with connected survivors a guardian+reliable run loses
/// zero walks under any crash-only plan; a disconnecting crash degrades to
/// explicit loss accounting.  Used by tests and the scenario_sweep driver
/// to label expected outcomes, not by the protocol itself (nodes only have
/// local knowledge).
bool survivors_connected(const Graph& graph, const FaultPlan& plan);

/// The per-run fault engine the Network drives.  Owns the dedicated RNG
/// stream and the crash bookkeeping; all methods are called from the
/// simulator's single-threaded driver sections only.
class FaultInjector {
 public:
  /// Validates the plan against the graph (probabilities in [0, 1], crash
  /// nodes and link-down edges in range); throws rwbc::Error otherwise.
  FaultInjector(const FaultPlan& plan, const Graph& graph);

  /// What the coin flips decide for one faultable message.
  enum class Fate { kDeliver, kDrop, kDuplicate };

  /// Draws the fate of one message sent in `round`.  Consumes exactly two
  /// uniforms whether or not the round is inside the message-fault window.
  Fate draw_fate(std::uint64_t round);

  /// True if `node` does not execute round `round` (crash-stop).
  bool node_crashed(NodeId node, std::uint64_t round) const {
    return crash_round_[static_cast<std::size_t>(node)] <= round;
  }

  /// True if the edge {u, v} is down for messages sent in `round`.
  bool link_down(NodeId u, NodeId v, std::uint64_t round) const;

  /// Number of nodes whose crash round is <= `round` and that were not yet
  /// reported by an earlier call; the Network folds this into
  /// RunMetrics::crashed_nodes exactly once per node.
  std::uint64_t activate_crashes(std::uint64_t round);

  bool has_crashes() const { return has_crashes_; }

  /// Checkpoints the mutable engine state: the dedicated RNG stream and the
  /// crash-reported bits.  The schedule itself (crash_round_, plan) is
  /// static and rebuilt from the FaultPlan on restore.
  void save_state(CheckpointWriter& out) const;
  void load_state(CheckpointReader& in);

 private:
  FaultPlan plan_;
  Rng rng_;
  std::vector<std::uint64_t> crash_round_;  ///< per node; UINT64_MAX = never
  std::vector<bool> crash_reported_;
  bool has_crashes_ = false;
};

}  // namespace rwbc
