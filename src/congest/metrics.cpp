#include "congest/metrics.hpp"

#include <algorithm>

#include "congest/checkpoint.hpp"

namespace rwbc {

RunMetrics& RunMetrics::operator+=(const RunMetrics& other) {
  rounds += other.rounds;
  total_messages += other.total_messages;
  total_bits += other.total_bits;
  max_bits_per_edge_round =
      std::max(max_bits_per_edge_round, other.max_bits_per_edge_round);
  max_messages_per_edge_round =
      std::max(max_messages_per_edge_round, other.max_messages_per_edge_round);
  cut_bits += other.cut_bits;
  cut_messages += other.cut_messages;
  dropped_messages += other.dropped_messages;
  duplicated_messages += other.duplicated_messages;
  crashed_nodes += other.crashed_nodes;
  retransmissions += other.retransmissions;
  replica_messages += other.replica_messages;
  replica_bits += other.replica_bits;
  adopted_walks += other.adopted_walks;
  abandoned_walks += other.abandoned_walks;
  return *this;
}

void save_metrics(CheckpointWriter& out, const RunMetrics& metrics) {
  out.u64(metrics.rounds);
  out.u64(metrics.total_messages);
  out.u64(metrics.total_bits);
  out.u64(metrics.max_bits_per_edge_round);
  out.u64(metrics.max_messages_per_edge_round);
  out.u64(metrics.cut_bits);
  out.u64(metrics.cut_messages);
  out.u64(metrics.dropped_messages);
  out.u64(metrics.duplicated_messages);
  out.u64(metrics.crashed_nodes);
  out.u64(metrics.retransmissions);
  out.u64(metrics.replica_messages);
  out.u64(metrics.replica_bits);
  out.u64(metrics.adopted_walks);
  out.u64(metrics.abandoned_walks);
}

RunMetrics load_metrics(CheckpointReader& in) {
  RunMetrics metrics;
  metrics.rounds = in.u64();
  metrics.total_messages = in.u64();
  metrics.total_bits = in.u64();
  metrics.max_bits_per_edge_round = in.u64();
  metrics.max_messages_per_edge_round = in.u64();
  metrics.cut_bits = in.u64();
  metrics.cut_messages = in.u64();
  metrics.dropped_messages = in.u64();
  metrics.duplicated_messages = in.u64();
  metrics.crashed_nodes = in.u64();
  metrics.retransmissions = in.u64();
  metrics.replica_messages = in.u64();
  metrics.replica_bits = in.u64();
  metrics.adopted_walks = in.u64();
  metrics.abandoned_walks = in.u64();
  return metrics;
}

}  // namespace rwbc
