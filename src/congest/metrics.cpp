#include "congest/metrics.hpp"

#include <algorithm>

namespace rwbc {

RunMetrics& RunMetrics::operator+=(const RunMetrics& other) {
  rounds += other.rounds;
  total_messages += other.total_messages;
  total_bits += other.total_bits;
  max_bits_per_edge_round =
      std::max(max_bits_per_edge_round, other.max_bits_per_edge_round);
  max_messages_per_edge_round =
      std::max(max_messages_per_edge_round, other.max_messages_per_edge_round);
  cut_bits += other.cut_bits;
  cut_messages += other.cut_messages;
  dropped_messages += other.dropped_messages;
  duplicated_messages += other.duplicated_messages;
  crashed_nodes += other.crashed_nodes;
  retransmissions += other.retransmissions;
  return *this;
}

}  // namespace rwbc
