// The node-program interface of the CONGEST simulator.
//
// A distributed algorithm is a NodeProcess implementation; the Network
// instantiates one per graph node and drives synchronous rounds:
//
//   round r:  every node's on_round() runs with the messages sent to it in
//             round r-1; messages it sends are delivered in round r+1.
//
// A node may call halt() when it is locally done; the run ends when every
// node has halted and no messages are in flight.  A message arriving at a
// halted node wakes it up (its on_round runs again).
//
// Nodes only see local information: their id, degree, neighbour ids, n (the
// paper's Algorithm 1 takes n as input), and a private RNG — matching the
// knowledge model of Section III-A.
#pragma once

#include <cstdint>
#include <span>

#include "common/bitcodec.hpp"
#include "common/rng.hpp"
#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Per-node view of the network, passed to NodeProcess callbacks.
/// Implemented by the Network; node programs never see global state.
class NodeContext {
 public:
  virtual ~NodeContext() = default;

  /// This node's id.
  virtual NodeId id() const = 0;

  /// Total number of nodes n (global knowledge assumed by Algorithm 1).
  virtual NodeId node_count() const = 0;

  /// Sorted ids of adjacent nodes.
  virtual std::span<const NodeId> neighbors() const = 0;

  /// Degree d(v) = neighbors().size().
  virtual NodeId degree() const = 0;

  /// Current round number (0-based).
  virtual std::uint64_t round() const = 0;

  /// This node's private random generator (deterministic per (seed, id)).
  virtual Rng& rng() = 0;

  /// Sends `payload` to an adjacent node; delivered next round.  Throws
  /// rwbc::Error if `neighbor` is not adjacent, or — in strict mode — if the
  /// per-edge per-round bit budget would be exceeded (a CONGEST violation is
  /// an algorithm bug, not a runtime condition to retry).
  virtual void send(NodeId neighbor, const BitWriter& payload) = 0;

  /// Sends to the neighbor at position `slot` in neighbors().  Semantically
  /// identical to send(neighbors()[slot], payload); the simulator overrides
  /// it to skip the neighbor-id lookup, which matters on the walk-token hot
  /// path where the sender already tracks slots, not ids.
  virtual void send_to_slot(NodeId slot, const BitWriter& payload) {
    send(neighbors()[static_cast<std::size_t>(slot)], payload);
  }

  /// Declares local termination; rescinded automatically if a message
  /// arrives later.
  virtual void halt() = 0;

  /// The enforced bit budget per edge-direction per round (for nodes that
  /// want to pack multiple logical items into one round's traffic).
  virtual std::uint64_t bit_budget() const = 0;

  /// Reliability layers call this once per resent frame so the simulator
  /// can meter self-healing overhead (RunMetrics::retransmissions).  The
  /// resent frame itself still goes through send() and is charged
  /// bandwidth like any other message.  Default: not metered.
  virtual void note_retransmission() {}

  /// Guardian-handoff hooks (DESIGN.md §10), same contract as
  /// note_retransmission: the frames/walks themselves still flow through
  /// send() or the pool; these only meter the protocol's observables
  /// (RunMetrics replica_messages/replica_bits/adopted_walks/
  /// abandoned_walks).  Defaults: not metered.
  virtual void note_replica_frame(std::uint64_t /*payload_bits*/) {}
  virtual void note_adopted_walks(std::uint64_t /*walks*/) {}
  virtual void note_abandoned_walks(std::uint64_t /*walks*/) {}
};

class CheckpointWriter;
class CheckpointReader;

/// A node program.  Implementations must be deterministic given the
/// NodeContext RNG (no other randomness, no global state).
class NodeProcess {
 public:
  virtual ~NodeProcess() = default;

  /// Called once before round 0.
  virtual void on_start(NodeContext& ctx) = 0;

  /// Called every round the node is awake with the messages addressed to it.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;

  /// Serializes all round-to-round mutable state into `out`.  Derived data
  /// that on_start() reconstructs from the config need not be written.  The
  /// default refuses, so pipelines that never implemented checkpointing
  /// fail loudly at snapshot time rather than resuming from partial state.
  virtual void save_state(CheckpointWriter& out) const;

  /// Inverse of save_state().  The Network calls it after on_start(), so
  /// implementations overwrite freshly-initialized state with the saved
  /// values (including any state on_start() created, e.g. initial walks).
  virtual void load_state(CheckpointReader& in);
};

}  // namespace rwbc
