#include "congest/node.hpp"

#include <typeinfo>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

void NodeProcess::save_state(CheckpointWriter&) const {
  throw Error(std::string("node program ") + typeid(*this).name() +
              " does not support checkpointing");
}

void NodeProcess::load_state(CheckpointReader&) {
  throw Error(std::string("node program ") + typeid(*this).name() +
              " does not support checkpointing");
}

}  // namespace rwbc
