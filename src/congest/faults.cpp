#include "congest/faults.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

namespace {

// Stream tag folded into the fault seed so a FaultPlan whose seed happens to
// equal CongestConfig::seed still draws from a different sequence than any
// node's Rng(seed, id) stream.
constexpr std::uint64_t kFaultStreamTag = 0xfa017ede7ec7ab1eULL;

}  // namespace

FaultInjector::FaultInjector(const FaultPlan& plan, const Graph& graph)
    : plan_(plan),
      rng_(plan.seed ^ kFaultStreamTag, 0xfa017ULL),
      crash_round_(static_cast<std::size_t>(graph.node_count()),
                   std::numeric_limits<std::uint64_t>::max()),
      crash_reported_(static_cast<std::size_t>(graph.node_count()), false) {
  RWBC_REQUIRE(plan_.drop_prob >= 0.0 && plan_.drop_prob <= 1.0,
               "FaultPlan drop_prob must be in [0, 1]");
  RWBC_REQUIRE(plan_.dup_prob >= 0.0 && plan_.dup_prob <= 1.0,
               "FaultPlan dup_prob must be in [0, 1]");
  RWBC_REQUIRE(
      plan_.message_fault_first_round <= plan_.message_fault_last_round,
      "FaultPlan message-fault window is empty (first > last)");
  for (const CrashEvent& crash : plan_.crashes) {
    RWBC_REQUIRE(crash.node >= 0 && crash.node < graph.node_count(),
                 "FaultPlan crash node out of range");
    auto& scheduled = crash_round_[static_cast<std::size_t>(crash.node)];
    scheduled = std::min(scheduled, crash.round);
    has_crashes_ = true;
  }
  const auto edges = graph.edges();
  for (const LinkDownInterval& down : plan_.link_downs) {
    const Edge e{std::min(down.edge.u, down.edge.v),
                 std::max(down.edge.u, down.edge.v)};
    const auto it = std::lower_bound(edges.begin(), edges.end(), e);
    RWBC_REQUIRE(it != edges.end() && *it == e,
                 "FaultPlan link-down edge " + std::to_string(e.u) + "-" +
                     std::to_string(e.v) + " is not an edge of the graph");
    RWBC_REQUIRE(down.first_round <= down.last_round,
                 "FaultPlan link-down interval is empty (first > last)");
  }
}

bool survivors_connected(const Graph& graph, const FaultPlan& plan) {
  const auto n = static_cast<std::size_t>(graph.node_count());
  std::vector<bool> crashed(n, false);
  for (const CrashEvent& crash : plan.crashes) {
    if (crash.node >= 0 && static_cast<std::size_t>(crash.node) < n) {
      crashed[static_cast<std::size_t>(crash.node)] = true;
    }
  }
  // BFS over the induced survivor subgraph from the smallest survivor.
  std::size_t start = n;
  std::size_t survivor_count = 0;
  for (std::size_t v = 0; v < n; ++v) {
    if (!crashed[v]) {
      ++survivor_count;
      if (start == n) start = v;
    }
  }
  if (survivor_count == 0) return false;
  std::vector<bool> seen(n, false);
  std::vector<NodeId> queue{static_cast<NodeId>(start)};
  seen[start] = true;
  std::size_t reached = 0;
  while (!queue.empty()) {
    const NodeId v = queue.back();
    queue.pop_back();
    ++reached;
    for (const NodeId u : graph.neighbors(v)) {
      const auto ui = static_cast<std::size_t>(u);
      if (!crashed[ui] && !seen[ui]) {
        seen[ui] = true;
        queue.push_back(u);
      }
    }
  }
  return reached == survivor_count;
}

FaultInjector::Fate FaultInjector::draw_fate(std::uint64_t round) {
  // Two draws ALWAYS happen — the coupling contract (see faults.hpp).
  const double u_drop = rng_.next_double();
  const double u_dup = rng_.next_double();
  if (round < plan_.message_fault_first_round ||
      round > plan_.message_fault_last_round) {
    return Fate::kDeliver;
  }
  if (u_drop < plan_.drop_prob) return Fate::kDrop;
  if (u_dup < plan_.dup_prob) return Fate::kDuplicate;
  return Fate::kDeliver;
}

bool FaultInjector::link_down(NodeId u, NodeId v, std::uint64_t round) const {
  if (plan_.link_downs.empty()) return false;
  const NodeId lo = std::min(u, v);
  const NodeId hi = std::max(u, v);
  for (const LinkDownInterval& down : plan_.link_downs) {
    const NodeId dlo = std::min(down.edge.u, down.edge.v);
    const NodeId dhi = std::max(down.edge.u, down.edge.v);
    if (dlo == lo && dhi == hi && round >= down.first_round &&
        round <= down.last_round) {
      return true;
    }
  }
  return false;
}

void FaultInjector::save_state(CheckpointWriter& out) const {
  for (std::uint64_t word : rng_.state()) out.u64(word);
  out.u64(crash_reported_.size());
  for (bool reported : crash_reported_) out.boolean(reported);
}

void FaultInjector::load_state(CheckpointReader& in) {
  std::array<std::uint64_t, 4> state{};
  for (auto& word : state) word = in.u64();
  rng_.set_state(state);
  const std::uint64_t count = in.u64();
  if (count != crash_reported_.size()) {
    throw CheckpointError("fault injector crash table size mismatch");
  }
  for (std::size_t v = 0; v < crash_reported_.size(); ++v) {
    crash_reported_[v] = in.boolean();
  }
}

std::uint64_t FaultInjector::activate_crashes(std::uint64_t round) {
  if (!has_crashes_) return 0;
  std::uint64_t newly = 0;
  for (std::size_t v = 0; v < crash_round_.size(); ++v) {
    if (!crash_reported_[v] && crash_round_[v] <= round) {
      crash_reported_[v] = true;
      ++newly;
    }
  }
  return newly;
}

}  // namespace rwbc
