// Run metrics collected by the CONGEST simulator.
//
// These are the observables of the experiment suite: round counts (the
// paper's time complexity), per-edge-per-round peak traffic (Theorem 4 /
// CONGEST compliance), aggregate message volume, and traffic across a
// registered edge cut (the lower-bound experiments of Section VIII).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Aggregate metrics for one simulation run (or a sum over phases).
struct RunMetrics {
  std::uint64_t rounds = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t total_bits = 0;
  /// Peak bits sent over a single (edge, direction) in one round.
  std::uint64_t max_bits_per_edge_round = 0;
  /// Peak messages sent over a single (edge, direction) in one round.
  std::uint64_t max_messages_per_edge_round = 0;
  /// Bits carried by edges registered as the "cut" (0 if none registered).
  std::uint64_t cut_bits = 0;
  /// Messages carried by cut edges.
  std::uint64_t cut_messages = 0;

  // Fault-injection observables (all 0 when no FaultPlan is configured).
  /// Messages removed at the delivery point: Bernoulli drops, link-down
  /// casualties, and messages addressed to crashed nodes.
  std::uint64_t dropped_messages = 0;
  /// Messages the receiver saw twice in one round (dup_prob faults).
  std::uint64_t duplicated_messages = 0;
  /// Nodes that crash-stopped during the run (each counted once).
  std::uint64_t crashed_nodes = 0;
  /// Retransmissions reported by reliability layers via
  /// NodeContext::note_retransmission (the self-healing overhead metric).
  std::uint64_t retransmissions = 0;

  // Guardian-handoff observables (all 0 unless guardian replication is on;
  // reported via the NodeContext::note_* hooks, DESIGN.md §10).
  /// Replica-delta frames sent by wards to their guardians.
  std::uint64_t replica_messages = 0;
  /// Payload bits of those frames (the replication bandwidth overhead).
  std::uint64_t replica_bits = 0;
  /// Orphaned walks adopted by guardians after a ward crashed.
  std::uint64_t adopted_walks = 0;
  /// Walks discarded at the fault deadline or a forced DONE (each walk
  /// counted exactly once: pool, in-flight frame, or give-up record).
  std::uint64_t abandoned_walks = 0;

  /// Accumulates another phase's metrics: counters (rounds, totals, cut
  /// traffic, fault/retransmission tallies) ADD; the per-edge-round peaks
  /// take MAX — a pipeline's peak is the worst single round of any phase,
  /// while its round/bit/fault budgets are the sum over phases.
  RunMetrics& operator+=(const RunMetrics& other);
};

class CheckpointWriter;
class CheckpointReader;

/// Checkpoint serialization: the 15 fields above, in declaration order,
/// as u64s.  Used by Network snapshots and by pipeline prologues that
/// carry completed-phase metrics across a resume.
void save_metrics(CheckpointWriter& out, const RunMetrics& metrics);
RunMetrics load_metrics(CheckpointReader& in);

}  // namespace rwbc
