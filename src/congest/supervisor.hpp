// Crash-recovery supervision: durable snapshot rotation with graceful
// degradation.
//
// RunSupervisor owns a checkpoint directory.  Writes are atomic
// (tmp + rename), named by round so lexicographic order is chronological,
// and pruned to a bounded rotation of the newest `keep` snapshots.  Loads
// scan newest-first and *verify each candidate's envelope* (magic, version,
// length, CRC32) before accepting it: a snapshot truncated by the very
// crash we are recovering from — or corrupted on disk — is skipped, and the
// previous good one is used instead.  Only when every candidate fails does
// load fail.  This is the degradation ladder the recovery drill
// (tests/recovery_drill.sh) exercises by corrupting the newest file.
#pragma once

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "congest/checkpoint.hpp"

namespace rwbc {

/// A snapshot successfully loaded and envelope-verified from disk.
struct LoadedSnapshot {
  std::filesystem::path path;
  std::uint64_t round = 0;          ///< Round parsed from the file name.
  std::vector<std::uint8_t> sealed; ///< Full file contents (envelope + payload).
  std::size_t skipped = 0;          ///< Newer candidates rejected as corrupt.
};

class RunSupervisor {
 public:
  /// Creates `dir` (and parents) if needed.  `keep` bounds the rotation;
  /// must be >= 1.
  RunSupervisor(std::filesystem::path dir, std::size_t keep = 3);

  /// Atomically writes `sealed` as the snapshot for `round` and prunes the
  /// rotation.  Returns the final path.
  std::filesystem::path write_snapshot(std::uint64_t round,
                                       const std::vector<std::uint8_t>& sealed);

  /// Returns the newest snapshot whose envelope verifies, skipping corrupt
  /// or truncated candidates; nullopt when no usable snapshot exists.
  std::optional<LoadedSnapshot> load_latest() const;

  /// Snapshot paths currently on disk, oldest first.
  std::vector<std::filesystem::path> snapshots() const;

  const std::filesystem::path& dir() const { return dir_; }

 private:
  std::filesystem::path dir_;
  std::size_t keep_;
};

}  // namespace rwbc
