// Arena-backed message delivery for the CONGEST simulator.
//
// The seed implementation delivered messages by a serial merge: one thread
// walked every sender's outbox and push_back'ed heap-owning Message objects
// into per-node inbox vectors.  Past n ~ 4096 that merge (and its per-message
// allocations) dominates wall-clock and blocks the linear-scaling sweeps the
// paper's O(n log n)-round claim is about.  This module replaces it with a
// two-pass count-then-place scheme over flat, round-double-buffered storage:
//
//   RoundArena        one round's delivered messages: a flat Message array
//                     plus a single payload byte buffer; each node's inbox is
//                     an (offset, count) slice.  Two arenas double-buffer the
//                     round loop — nodes read the front arena while the back
//                     arena is rebuilt, then the buffers swap.
//
//   DeliveryPlanner   the count-then-place machinery.  Sends tally per
//                     DIRECTED EDGE at send time (edge (u -> v) is touched
//                     only by u's thread, so counting is conflict-free).
//                     schedule() then computes, per destination, where each
//                     sender's block of messages lands: a parallel pass sums
//                     each destination's incoming-edge counts, a serial O(n)
//                     prefix sum assigns inbox slices, and a second parallel
//                     pass derives per-edge placement cursors in ascending
//                     sender order.  The placement pass (driven by the
//                     Network) then copies payload bytes in parallel over
//                     senders: edge e's cursor is advanced only by its
//                     sender's thread, and distinct edges own disjoint slice
//                     ranges, so no two threads ever write the same slot.
//
// Determinism: a destination's inbox is the concatenation, over senders in
// ascending id order, of that sender's messages in send order — exactly the
// canonical (sender id, send order) sequence the seed's serial merge
// produced.  Which thread places a block never affects where it lands, so
// the arena path is bit-identical at every thread count (extending the
// DESIGN.md section 5 argument; the shuffled-placement property test in
// tests/arena_test.cpp exercises this directly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace rwbc {

class ThreadPool;

/// Flat storage for one round's delivered messages.  Owns the Message slots
/// and the payload bytes they point into; node inboxes are (offset, count)
/// slices.  Buffers are bump-style: prepare() sizes them once per round (no
/// per-message allocation; capacity is retained across rounds) and the
/// placement pass fills the slots in place.
class RoundArena {
 public:
  /// Sizes the arena for one round: `message_count` Message slots,
  /// `payload_bytes` payload bytes, `node_count` inboxes.  Slice assignments
  /// are reset; slot contents are undefined until placed.  The reset is
  /// sparse: only the inboxes set since the previous prepare() are cleared,
  /// so an almost-quiet round costs O(active), not O(n).
  void prepare(std::size_t node_count, std::size_t message_count,
               std::size_t payload_bytes);

  /// Assigns node v's inbox slice [offset, offset + count).
  void set_inbox(NodeId v, std::size_t offset, std::size_t count) {
    offsets_[static_cast<std::size_t>(v)] = offset;
    counts_[static_cast<std::size_t>(v)] = count;
    active_.push_back(v);
  }

  /// Empties node v's inbox (crash-stop: pending deliveries are discarded).
  void clear_inbox(NodeId v) { counts_[static_cast<std::size_t>(v)] = 0; }

  /// Node v's delivered messages, in canonical (sender id, send order)
  /// order.  Valid until the next prepare() on this arena.
  std::span<const Message> inbox(NodeId v) const {
    return {messages_.data() + offsets_[static_cast<std::size_t>(v)],
            counts_[static_cast<std::size_t>(v)]};
  }

  std::size_t inbox_count(NodeId v) const {
    return counts_[static_cast<std::size_t>(v)];
  }

  std::size_t message_count() const { return messages_.size(); }
  std::size_t payload_byte_count() const { return bytes_.size(); }

  /// Raw slots for the placement pass.  Pointers are stable between
  /// prepare() calls on this arena.
  Message* message_slots() { return messages_.data(); }
  std::uint8_t* payload_slots() { return bytes_.data(); }

 private:
  std::vector<Message> messages_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::size_t> offsets_;  // per node, index into messages_
  std::vector<std::size_t> counts_;   // per node
  std::vector<NodeId> active_;        // inboxes assigned since last prepare
};

/// Totals of one round's delivered traffic (after faults, if any).
struct DeliveryTotals {
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;
  // Filled by schedule_sparse only (the fault-free path, where sent ==
  // delivered): total sent bits and the per-edge peaks, read straight off
  // the planner's tally arrays while the schedule walks the touched edges.
  // Lets the serial driver skip its per-context tally pass entirely.  The
  // dense schedule() leaves them zero — its callers tally per context.
  std::uint64_t bits = 0;
  std::uint64_t peak_bits = 0;
  std::uint64_t peak_msgs = 0;
};

/// Per-directed-edge round state, packed into one 32-byte struct so the send
/// path, the sparse schedule, and the placement pass each touch ONE cache
/// line per edge instead of scattering loads over five parallel arrays.
/// `bits`/`msgs`/`bytes` are the send tallies (written by the sender's
/// thread, cleared sparsely at end of round); the placement cursors are
/// schedule scratch, rewritten every round they are used.
struct EdgeTally {
  std::uint64_t bits = 0;
  std::uint32_t msgs = 0;
  std::uint32_t bytes = 0;
  std::uint64_t place_msg = 0;
  std::uint64_t place_byte = 0;
};

/// Per-node schedule scratch, packed for the same reason: the sparse
/// schedule's three walks over a round's receivers touch one line per node.
struct NodeSched {
  std::uint64_t msgs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t msg_off = 0;
  std::uint64_t byte_off = 0;
};

/// The count-then-place scheduler.  Directed edge (u -> neighbors(u)[slot])
/// has the dense id out_base(u) + slot; all per-round tallies and placement
/// cursors are flat arrays over these ids, and every id is touched by
/// exactly one sender's thread during counting and placement.
class DeliveryPlanner {
 public:
  /// Builds the directed-edge index from the graph.  `with_fault_buffers`
  /// additionally allocates the delivered-count arrays the fault fate pass
  /// writes (drops and duplications change what lands versus what was sent).
  DeliveryPlanner(const Graph& g, bool with_fault_buffers);

  std::size_t directed_edge_count() const { return edge_count_; }

  /// First directed-edge id of sender u (its slot s maps to out_base + s).
  std::size_t out_base(NodeId u) const {
    return out_base_[static_cast<std::size_t>(u)];
  }

  /// Per-round send tallies + placement cursors, as a segment pointer for
  /// sender u: index by the neighbour slot.  Tallies are written only by
  /// u's thread while its on_round runs.
  EdgeTally* edge_tally(NodeId u) { return edges_.data() + out_base(u); }
  /// The whole per-directed-edge array, indexed by dense edge id.
  EdgeTally* edge_tallies() { return edges_.data(); }

  // Delivered tallies (fault path only): what actually lands per edge after
  // the serial fate pass applied drops and duplications.
  std::uint32_t* delivered_msgs(NodeId u) {
    return deliv_msgs_.data() + out_base(u);
  }
  std::uint32_t* delivered_bytes(NodeId u) {
    return deliv_bytes_.data() + out_base(u);
  }

  /// Zeroes all per-round tallies (parallel when a pool is given).  The
  /// fault-free round loop clears tallies sparsely instead (each context
  /// zeroes exactly the slots it touched); this dense sweep remains for
  /// callers that lose track of what was touched.
  void zero_round(ThreadPool* pool);

  /// The two-pass schedule: from the per-edge counts (`use_delivered` picks
  /// the fate-pass outputs over the raw send tallies), computes every node's
  /// inbox slice in `arena` and every edge's placement cursors, and sizes
  /// the arena's buffers.  Parallel over destinations where a pool is given;
  /// the only serial part is the O(n) prefix sum over nodes.
  DeliveryTotals schedule(bool use_delivered, RoundArena& arena,
                          ThreadPool* pool);

  /// Sparse flavour of schedule() for fault-free rounds: `touched` is the
  /// exact set of directed edges carrying traffic this round, in ascending
  /// edge-id (= sender-major) order.  Cost is O(touched + receivers) — no
  /// per-round O(n + m) scans — and the resulting inbox CONTENT is
  /// identical to the dense schedule's (inbox slices may be laid out in a
  /// different order inside the arena, which nothing observes).  Also
  /// returns the distinct destination nodes in `receivers`, ascending —
  /// the round loop uses them to wake sleepers and maintain the awake set
  /// incrementally.  Serial by construction: the work is proportional to
  /// actual traffic, which is what the sparse regime makes small.
  DeliveryTotals schedule_sparse(std::span<const std::uint32_t> touched,
                                 RoundArena& arena,
                                 std::vector<NodeId>& receivers);

 private:
  std::span<const std::uint32_t> in_edges(NodeId v) const {
    return {in_edges_.data() + in_base_[static_cast<std::size_t>(v)],
            in_base_[static_cast<std::size_t>(v) + 1] -
                in_base_[static_cast<std::size_t>(v)]};
  }

  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;  // directed: 2m
  bool fault_buffers_ = false;

  std::vector<std::size_t> out_base_;    // n+1: sender u's first edge id
  std::vector<std::size_t> in_base_;     // n+1: offsets into in_edges_
  std::vector<std::uint32_t> in_edges_;  // edge ids into v, ascending sender
  std::vector<std::uint32_t> edge_dest_; // destination node of each edge

  // schedule_sparse() per-destination dedup: a destination is "seen this
  // round" iff its stamp equals the current round stamp — no O(n) clearing.
  std::vector<std::uint64_t> dest_stamp_;
  std::uint64_t stamp_ = 0;

  std::vector<EdgeTally> edges_;          // per directed edge
  std::vector<std::uint32_t> deliv_msgs_;
  std::vector<std::uint32_t> deliv_bytes_;

  // schedule() scratch, one entry per node.
  std::vector<NodeSched> nodes_;
};

}  // namespace rwbc
