// Arena-backed message delivery for the CONGEST simulator.
//
// The seed implementation delivered messages by a serial merge: one thread
// walked every sender's outbox and push_back'ed heap-owning Message objects
// into per-node inbox vectors.  Past n ~ 4096 that merge (and its per-message
// allocations) dominates wall-clock and blocks the linear-scaling sweeps the
// paper's O(n log n)-round claim is about.  This module replaces it with a
// two-pass count-then-place scheme over flat, round-double-buffered storage:
//
//   RoundArena        one round's delivered messages: a flat Message array
//                     plus a single payload byte buffer; each node's inbox is
//                     an (offset, count) slice.  Two arenas double-buffer the
//                     round loop — nodes read the front arena while the back
//                     arena is rebuilt, then the buffers swap.
//
//   DeliveryPlanner   the count-then-place machinery.  Sends tally per
//                     DIRECTED EDGE at send time (edge (u -> v) is touched
//                     only by u's thread, so counting is conflict-free).
//                     schedule() then computes, per destination, where each
//                     sender's block of messages lands: a parallel pass sums
//                     each destination's incoming-edge counts, a serial O(n)
//                     prefix sum assigns inbox slices, and a second parallel
//                     pass derives per-edge placement cursors in ascending
//                     sender order.  The placement pass (driven by the
//                     Network) then copies payload bytes in parallel over
//                     senders: edge e's cursor is advanced only by its
//                     sender's thread, and distinct edges own disjoint slice
//                     ranges, so no two threads ever write the same slot.
//
// Determinism: a destination's inbox is the concatenation, over senders in
// ascending id order, of that sender's messages in send order — exactly the
// canonical (sender id, send order) sequence the seed's serial merge
// produced.  Which thread places a block never affects where it lands, so
// the arena path is bit-identical at every thread count (extending the
// DESIGN.md section 5 argument; the shuffled-placement property test in
// tests/arena_test.cpp exercises this directly).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "congest/message.hpp"
#include "graph/graph.hpp"

namespace rwbc {

class ThreadPool;

/// Flat storage for one round's delivered messages.  Owns the Message slots
/// and the payload bytes they point into; node inboxes are (offset, count)
/// slices.  Buffers are bump-style: prepare() sizes them once per round (no
/// per-message allocation; capacity is retained across rounds) and the
/// placement pass fills the slots in place.
class RoundArena {
 public:
  /// Sizes the arena for one round: `message_count` Message slots,
  /// `payload_bytes` payload bytes, `node_count` inboxes.  Slice assignments
  /// are reset; slot contents are undefined until placed.
  void prepare(std::size_t node_count, std::size_t message_count,
               std::size_t payload_bytes);

  /// Assigns node v's inbox slice [offset, offset + count).
  void set_inbox(NodeId v, std::size_t offset, std::size_t count) {
    offsets_[static_cast<std::size_t>(v)] = offset;
    counts_[static_cast<std::size_t>(v)] = count;
  }

  /// Empties node v's inbox (crash-stop: pending deliveries are discarded).
  void clear_inbox(NodeId v) { counts_[static_cast<std::size_t>(v)] = 0; }

  /// Node v's delivered messages, in canonical (sender id, send order)
  /// order.  Valid until the next prepare() on this arena.
  std::span<const Message> inbox(NodeId v) const {
    return {messages_.data() + offsets_[static_cast<std::size_t>(v)],
            counts_[static_cast<std::size_t>(v)]};
  }

  std::size_t inbox_count(NodeId v) const {
    return counts_[static_cast<std::size_t>(v)];
  }

  std::size_t message_count() const { return messages_.size(); }
  std::size_t payload_byte_count() const { return bytes_.size(); }

  /// Raw slots for the placement pass.  Pointers are stable between
  /// prepare() calls on this arena.
  Message* message_slots() { return messages_.data(); }
  std::uint8_t* payload_slots() { return bytes_.data(); }

 private:
  std::vector<Message> messages_;
  std::vector<std::uint8_t> bytes_;
  std::vector<std::size_t> offsets_;  // per node, index into messages_
  std::vector<std::size_t> counts_;   // per node
};

/// Totals of one round's delivered traffic (after faults, if any).
struct DeliveryTotals {
  std::size_t messages = 0;
  std::size_t payload_bytes = 0;
};

/// The count-then-place scheduler.  Directed edge (u -> neighbors(u)[slot])
/// has the dense id out_base(u) + slot; all per-round tallies and placement
/// cursors are flat arrays over these ids, and every id is touched by
/// exactly one sender's thread during counting and placement.
class DeliveryPlanner {
 public:
  /// Builds the directed-edge index from the graph.  `with_fault_buffers`
  /// additionally allocates the delivered-count arrays the fault fate pass
  /// writes (drops and duplications change what lands versus what was sent).
  DeliveryPlanner(const Graph& g, bool with_fault_buffers);

  std::size_t directed_edge_count() const { return edge_count_; }

  /// First directed-edge id of sender u (its slot s maps to out_base + s).
  std::size_t out_base(NodeId u) const {
    return out_base_[static_cast<std::size_t>(u)];
  }

  // Per-round send tallies, as segment pointers for sender u: index by the
  // neighbour slot.  Written only by u's thread while its on_round runs.
  std::uint64_t* sent_bits(NodeId u) { return sent_bits_.data() + out_base(u); }
  std::uint32_t* sent_msgs(NodeId u) { return sent_msgs_.data() + out_base(u); }
  std::uint32_t* sent_bytes(NodeId u) {
    return sent_bytes_.data() + out_base(u);
  }
  std::span<const std::uint64_t> sent_bits_segment(NodeId u) const;
  std::span<const std::uint32_t> sent_msgs_segment(NodeId u) const;

  // Delivered tallies (fault path only): what actually lands per edge after
  // the serial fate pass applied drops and duplications.
  std::uint32_t* delivered_msgs(NodeId u) {
    return deliv_msgs_.data() + out_base(u);
  }
  std::uint32_t* delivered_bytes(NodeId u) {
    return deliv_bytes_.data() + out_base(u);
  }

  /// Zeroes all per-round tallies (parallel when a pool is given).  Runs at
  /// the top of every round, before any on_round may send.
  void zero_round(ThreadPool* pool);

  /// The two-pass schedule: from the per-edge counts (`use_delivered` picks
  /// the fate-pass outputs over the raw send tallies), computes every node's
  /// inbox slice in `arena` and every edge's placement cursors, and sizes
  /// the arena's buffers.  Parallel over destinations where a pool is given;
  /// the only serial part is the O(n) prefix sum over nodes.
  DeliveryTotals schedule(bool use_delivered, RoundArena& arena,
                          ThreadPool* pool);

  // Placement cursors (written by schedule(), advanced by the placement
  // pass; edge e's cursor is touched only by its sender's thread).
  std::size_t* place_msg() { return place_msg_.data(); }
  std::size_t* place_byte() { return place_byte_.data(); }

 private:
  std::span<const std::uint32_t> in_edges(NodeId v) const {
    return {in_edges_.data() + in_base_[static_cast<std::size_t>(v)],
            in_base_[static_cast<std::size_t>(v) + 1] -
                in_base_[static_cast<std::size_t>(v)]};
  }

  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;  // directed: 2m
  bool fault_buffers_ = false;

  std::vector<std::size_t> out_base_;    // n+1: sender u's first edge id
  std::vector<std::size_t> in_base_;     // n+1: offsets into in_edges_
  std::vector<std::uint32_t> in_edges_;  // edge ids into v, ascending sender

  std::vector<std::uint64_t> sent_bits_;
  std::vector<std::uint32_t> sent_msgs_;
  std::vector<std::uint32_t> sent_bytes_;
  std::vector<std::uint32_t> deliv_msgs_;
  std::vector<std::uint32_t> deliv_bytes_;
  std::vector<std::size_t> place_msg_;
  std::vector<std::size_t> place_byte_;

  // schedule() scratch, one entry per node.
  std::vector<std::size_t> node_msgs_;
  std::vector<std::size_t> node_bytes_;
  std::vector<std::size_t> node_msg_off_;
  std::vector<std::size_t> node_byte_off_;
};

}  // namespace rwbc
