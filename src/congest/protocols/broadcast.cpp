#include "congest/protocols/broadcast.hpp"

namespace rwbc {

void BroadcastNode::on_round(NodeContext& ctx,
                             std::span<const Message> inbox) {
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    value_ = reader.read(value_bits_);
    has_value_ = true;
  }
  if (has_value_ && !forwarded_) {
    BitWriter payload;
    payload.write(value_, value_bits_);
    for (NodeId child : children_) ctx.send(child, payload);
    forwarded_ = true;
  }
  if (forwarded_) ctx.halt();
}

BroadcastResult run_broadcast(const Graph& g, const SpanningTree& tree,
                              std::uint64_t value, int value_bits,
                              const CongestConfig& config) {
  RWBC_REQUIRE(tree.root >= 0 && tree.root < g.node_count(),
               "broadcast needs a valid tree root");
  RWBC_REQUIRE(value_bits >= 0 && value_bits <= 64, "value width invalid");
  RWBC_REQUIRE(value_bits == 64 || value < (1ULL << value_bits),
               "broadcast value exceeds declared width");
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    return std::make_unique<BroadcastNode>(
        tree.children[static_cast<std::size_t>(v)], v == tree.root, value,
        value_bits);
  });
  BroadcastResult result;
  result.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& program = static_cast<const BroadcastNode&>(net.node(v));
    RWBC_ASSERT(program.has_value() && program.value() == value,
                "broadcast did not reach every node");
  }
  result.value = value;
  return result;
}

}  // namespace rwbc
