#include "congest/protocols/bfs_tree.hpp"

#include <algorithm>

#include "common/bitcodec.hpp"
#include "graph/properties.hpp"

namespace rwbc {

void BfsTreeNode::on_start(NodeContext& ctx) {
  if (ctx.id() == root_) {
    joined_ = true;
    depth_ = 0;
    relay_pending_ = true;  // root floods JOIN in round 0
  }
}

void BfsTreeNode::on_round(NodeContext& ctx, std::span<const Message> inbox) {
  NodeId join_parent = -1;  // min-id JOIN sender this round
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    const auto type = reader.read(1);
    if (type == kJoin) {
      if (!joined_ && (join_parent < 0 || msg.from < join_parent)) {
        join_parent = msg.from;
      }
    } else {  // kChild
      children_.push_back(msg.from);
    }
  }
  if (join_parent >= 0) {
    joined_ = true;
    parent_ = join_parent;
    depth_ = static_cast<NodeId>(ctx.round());  // JOIN sent in round r-1
    relay_pending_ = true;
    BitWriter ack;
    ack.write(kChild, 1);
    ctx.send(parent_, ack);
  }
  if (relay_pending_ && joined_) {
    BitWriter join;
    join.write(kJoin, 1);
    for (NodeId nb : ctx.neighbors()) {
      if (nb != parent_) ctx.send(nb, join);
    }
    relay_pending_ = false;
  }
  if (ctx.round() >= round_budget_) {
    std::sort(children_.begin(), children_.end());
    ctx.halt();
  }
}

BfsTreeResult run_bfs_tree(const Graph& g, NodeId root,
                           const CongestConfig& config,
                           std::uint64_t round_budget) {
  RWBC_REQUIRE(root >= 0 && root < g.node_count(), "root out of range");
  require_connected(g, "BFS tree construction");
  Network net(g, config);
  net.set_all_nodes([&](NodeId) {
    return std::make_unique<BfsTreeNode>(root, round_budget);
  });
  BfsTreeResult result;
  result.metrics = net.run();
  const auto n = static_cast<std::size_t>(g.node_count());
  result.tree.root = root;
  result.tree.parent.resize(n);
  result.tree.children.resize(n);
  result.tree.depth.resize(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& program = static_cast<const BfsTreeNode&>(net.node(v));
    RWBC_ASSERT(program.depth() >= 0 || v == root,
                "BFS tree did not reach every node; raise round_budget");
    result.tree.parent[static_cast<std::size_t>(v)] = program.parent();
    result.tree.children[static_cast<std::size_t>(v)] = program.children();
    result.tree.depth[static_cast<std::size_t>(v)] = program.depth();
    result.tree.height =
        std::max(result.tree.height, program.depth());
  }
  return result;
}

}  // namespace rwbc
