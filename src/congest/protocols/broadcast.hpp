// Tree broadcast: the root pushes a fixed-width value down a previously
// constructed spanning tree; every node learns it in `height` rounds.
//
// Used by the RWBC driver to disseminate the randomly drawn absorbing
// target and the tree height (which paces Algorithm 1's termination
// sweeps).  Each message carries `value_bits` bits, O(log n) by choice of
// the value domain.
#pragma once

#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "congest/protocols/bfs_tree.hpp"

namespace rwbc {

/// Node program for a single-value tree broadcast.
class BroadcastNode final : public NodeProcess {
 public:
  /// `is_root` nodes already hold `value`; the rest receive it.  Each node
  /// knows its tree children (local knowledge from the BFS phase).
  BroadcastNode(std::vector<NodeId> children, bool is_root,
                std::uint64_t value, int value_bits)
      : children_(std::move(children)),
        has_value_(is_root),
        value_(value),
        value_bits_(value_bits) {}

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  /// After the run: the broadcast value.
  std::uint64_t value() const { return value_; }
  bool has_value() const { return has_value_; }

 private:
  std::vector<NodeId> children_;
  bool has_value_;
  std::uint64_t value_;
  int value_bits_;
  bool forwarded_ = false;
};

/// Result of a broadcast run.
struct BroadcastResult {
  std::uint64_t value = 0;
  RunMetrics metrics;
};

/// Broadcasts `value` from the tree's root; returns once every node holds
/// it.  `tree` must be a spanning tree of `g` (from run_bfs_tree).
BroadcastResult run_broadcast(const Graph& g, const SpanningTree& tree,
                              std::uint64_t value, int value_bits,
                              const CongestConfig& config);

}  // namespace rwbc
