#include "congest/protocols/convergecast.hpp"

#include <algorithm>

namespace rwbc {

void ConvergecastNode::on_round(NodeContext& ctx,
                                std::span<const Message> inbox) {
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    const std::uint64_t child_value = reader.read(value_bits_);
    accumulator_ = op_ == AggregateOp::kSum
                       ? accumulator_ + child_value
                       : std::max(accumulator_, child_value);
    RWBC_ASSERT(pending_children_ > 0, "convergecast: unexpected report");
    --pending_children_;
  }
  if (pending_children_ == 0 && !reported_) {
    reported_ = true;
    if (parent_ >= 0) {
      BitWriter payload;
      payload.write(accumulator_, value_bits_);
      ctx.send(parent_, payload);
    }
  }
  if (reported_) ctx.halt();
}

ConvergecastResult run_convergecast(const Graph& g, const SpanningTree& tree,
                                    std::span<const std::uint64_t> values,
                                    AggregateOp op, int value_bits,
                                    const CongestConfig& config) {
  RWBC_REQUIRE(values.size() == static_cast<std::size_t>(g.node_count()),
               "convergecast needs one value per node");
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    return std::make_unique<ConvergecastNode>(
        tree.parent[idx], tree.children[idx].size(), values[idx], op,
        value_bits);
  });
  ConvergecastResult result;
  result.metrics = net.run();
  const auto& root_program =
      static_cast<const ConvergecastNode&>(net.node(tree.root));
  RWBC_ASSERT(root_program.reported(), "convergecast did not complete");
  result.aggregate = root_program.aggregate();
  return result;
}

}  // namespace rwbc
