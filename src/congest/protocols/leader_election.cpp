#include "congest/protocols/leader_election.hpp"

#include "common/bitcodec.hpp"

namespace rwbc {

void LeaderElectionNode::on_start(NodeContext& ctx) {
  best_ = ctx.id();
  announce_ = true;
}

void LeaderElectionNode::on_round(NodeContext& ctx,
                                  std::span<const Message> inbox) {
  const int id_bits = bits_for(static_cast<std::uint64_t>(ctx.node_count()));
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    const auto candidate = static_cast<NodeId>(reader.read(id_bits));
    if (candidate < best_) {
      best_ = candidate;
      announce_ = true;
    }
  }
  if (ctx.round() >= round_budget_) {
    is_leader_ = (best_ == ctx.id());
    ctx.halt();
    return;
  }
  if (announce_) {
    BitWriter payload;
    payload.write(static_cast<std::uint64_t>(best_), id_bits);
    for (NodeId nb : ctx.neighbors()) ctx.send(nb, payload);
    announce_ = false;
  }
}

LeaderElectionResult run_leader_election(const Graph& g,
                                         const CongestConfig& config,
                                         std::uint64_t round_budget) {
  RWBC_REQUIRE(g.node_count() >= 1, "election needs a non-empty graph");
  Network net(g, config);
  net.set_all_nodes([&](NodeId) {
    return std::make_unique<LeaderElectionNode>(round_budget);
  });
  LeaderElectionResult result;
  result.metrics = net.run();
  result.leader =
      static_cast<const LeaderElectionNode&>(net.node(0)).leader();
  // Sanity: every node must agree.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& program = static_cast<const LeaderElectionNode&>(net.node(v));
    RWBC_ASSERT(program.leader() == result.leader,
                "leader election did not converge; raise round_budget");
  }
  return result;
}

}  // namespace rwbc
