// Distributed BFS spanning-tree construction from a known root.
//
// The tree is the backbone for broadcast, convergecast aggregation, and the
// termination-detection sweeps inside Algorithm 1.  Construction is the
// textbook layered flood: the root sends JOIN in round 0; a node adopts the
// minimum-id sender of its first JOIN round as parent, acknowledges with
// CHILD, and relays JOIN onward.  Completes within D + 2 rounds.
#pragma once

#include <memory>
#include <vector>

#include "congest/network.hpp"

namespace rwbc {

/// Node program for BFS-tree construction.
class BfsTreeNode final : public NodeProcess {
 public:
  /// Every node knows the root's id (e.g. from leader election) and a round
  /// budget >= D + 2 (pass n + 2 when D is unknown).
  BfsTreeNode(NodeId root, std::uint64_t round_budget)
      : root_(root), round_budget_(round_budget) {}

  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  /// After the run: parent in the tree (-1 for the root).
  NodeId parent() const { return parent_; }
  /// After the run: children in the tree (sorted by arrival, i.e. id order).
  const std::vector<NodeId>& children() const { return children_; }
  /// After the run: BFS depth (root = 0).
  NodeId depth() const { return depth_; }

 private:
  enum MsgType : std::uint64_t { kJoin = 0, kChild = 1 };

  NodeId root_;
  std::uint64_t round_budget_;
  NodeId parent_ = -1;
  NodeId depth_ = -1;
  std::vector<NodeId> children_;
  bool joined_ = false;
  bool relay_pending_ = false;
};

/// Global view of a constructed tree (assembled from node outputs — the
/// per-node fields remain purely local during the run).
struct SpanningTree {
  NodeId root = -1;
  std::vector<NodeId> parent;                 ///< -1 for root
  std::vector<std::vector<NodeId>> children;  ///< per node
  std::vector<NodeId> depth;                  ///< BFS depth per node
  NodeId height = 0;                          ///< max depth
};

/// Result of a BFS-tree construction run.
struct BfsTreeResult {
  SpanningTree tree;
  RunMetrics metrics;
};

/// Builds the BFS tree on its own network instance.  Requires a connected
/// graph and a valid root.
BfsTreeResult run_bfs_tree(const Graph& g, NodeId root,
                           const CongestConfig& config,
                           std::uint64_t round_budget);

}  // namespace rwbc
