// Tree convergecast: aggregates a per-node value up a spanning tree to the
// root (sum or max over uint64).  Leaves report immediately; an internal
// node reports once all children have.  Completes in `height + 1` rounds.
//
// Used to compute the tree height (max of depths) distributively and as the
// skeleton of Algorithm 1's termination-detection sweeps.
#pragma once

#include <memory>
#include <vector>

#include "congest/network.hpp"
#include "congest/protocols/bfs_tree.hpp"

namespace rwbc {

/// Aggregation operator for convergecast.
enum class AggregateOp { kSum, kMax };

/// Node program for a single convergecast.
class ConvergecastNode final : public NodeProcess {
 public:
  /// Each node holds `local_value`; child count is local tree knowledge.
  ConvergecastNode(NodeId parent, std::size_t child_count,
                   std::uint64_t local_value, AggregateOp op, int value_bits)
      : parent_(parent),
        pending_children_(child_count),
        accumulator_(local_value),
        op_(op),
        value_bits_(value_bits) {}

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  /// After the run, at the root: the tree-wide aggregate.
  std::uint64_t aggregate() const { return accumulator_; }
  bool reported() const { return reported_; }

 private:
  NodeId parent_;
  std::size_t pending_children_;
  std::uint64_t accumulator_;
  AggregateOp op_;
  int value_bits_;
  bool reported_ = false;
};

/// Result of a convergecast run.
struct ConvergecastResult {
  std::uint64_t aggregate = 0;
  RunMetrics metrics;
};

/// Aggregates `values[v]` over all nodes to the tree root.  `value_bits`
/// must bound every partial aggregate (e.g. bits of the total sum).
ConvergecastResult run_convergecast(const Graph& g, const SpanningTree& tree,
                                    std::span<const std::uint64_t> values,
                                    AggregateOp op, int value_bits,
                                    const CongestConfig& config);

}  // namespace rwbc
