// Flooding minimum-id leader election.
//
// Algorithm 1 line 2 needs a "randomly chosen target node"; in a real
// network somebody has to pick it.  The standard CONGEST idiom is: elect a
// leader (min id wins, floods in D <= budget rounds), have the leader draw
// the target and broadcast it.  Each message carries one id, so the
// protocol is trivially CONGEST-compliant.
//
// Nodes do not know D, but Algorithm 1 takes n as input and D <= n - 1, so
// the caller passes `round_budget = n` (or any upper bound on D).
#pragma once

#include <memory>

#include "congest/network.hpp"

namespace rwbc {

/// Node program: floods the smallest id seen; after `round_budget` rounds
/// every node knows the global minimum.
class LeaderElectionNode final : public NodeProcess {
 public:
  explicit LeaderElectionNode(std::uint64_t round_budget)
      : round_budget_(round_budget) {}

  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;

  /// After the run: the elected leader's id.
  NodeId leader() const { return best_; }

  /// After the run: whether this node won.
  bool is_leader() const { return is_leader_; }

 private:
  std::uint64_t round_budget_;
  NodeId best_ = -1;
  bool announce_ = false;  // forward `best_` to neighbours this round
  bool is_leader_ = false;
};

/// Result of a full leader-election run.
struct LeaderElectionResult {
  NodeId leader = -1;
  RunMetrics metrics;
};

/// Runs the election on its own network instance.  `round_budget` must be
/// >= D + 1; pass the graph's node count when D is unknown.
LeaderElectionResult run_leader_election(const Graph& g,
                                         const CongestConfig& config,
                                         std::uint64_t round_budget);

}  // namespace rwbc
