#include "congest/arena.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rwbc {

namespace {

/// Runs body(begin, end) over [0, count), split across the pool when one is
/// configured (serial otherwise).  The chunk boundaries never affect what is
/// written where — every body below writes to ranges derived from the index
/// alone — so pool size is a pure wall-clock knob here too.
void for_ranges(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for_ranges(count, body);
  } else if (count > 0) {
    body(0, count);
  }
}

}  // namespace

void RoundArena::prepare(std::size_t node_count, std::size_t message_count,
                         std::size_t payload_bytes) {
  messages_.resize(message_count);
  bytes_.resize(payload_bytes);
  offsets_.assign(node_count, 0);
  counts_.assign(node_count, 0);
}

DeliveryPlanner::DeliveryPlanner(const Graph& g, bool with_fault_buffers)
    : node_count_(static_cast<std::size_t>(g.node_count())),
      edge_count_(g.degree_sum()),
      fault_buffers_(with_fault_buffers) {
  // in_edges_ stores dense directed-edge ids as u32; 2m must fit.
  RWBC_REQUIRE(edge_count_ <= std::numeric_limits<std::uint32_t>::max(),
               "graph too large for the delivery index (2m must fit in 32 "
               "bits)");
  out_base_.resize(node_count_ + 1);
  in_base_.resize(node_count_ + 1);
  out_base_[0] = 0;
  in_base_[0] = 0;
  for (std::size_t v = 0; v < node_count_; ++v) {
    // An undirected edge contributes one outgoing and one incoming directed
    // edge at each endpoint, so both bases advance by degree(v).
    const auto deg =
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v)));
    out_base_[v + 1] = out_base_[v] + deg;
    in_base_[v + 1] = in_base_[v] + deg;
  }
  // Counting-sort the directed edges by destination.  Senders are visited in
  // ascending id order, so each destination's incoming-edge list comes out
  // sorted by sender id — the canonical inbox block order.
  in_edges_.resize(edge_count_);
  std::vector<std::size_t> cursor(in_base_.begin(), in_base_.end() - 1);
  for (std::size_t u = 0; u < node_count_; ++u) {
    const auto neighbors = g.neighbors(static_cast<NodeId>(u));
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      const auto v = static_cast<std::size_t>(neighbors[slot]);
      in_edges_[cursor[v]++] = static_cast<std::uint32_t>(out_base_[u] + slot);
    }
  }

  sent_bits_.assign(edge_count_, 0);
  sent_msgs_.assign(edge_count_, 0);
  sent_bytes_.assign(edge_count_, 0);
  if (fault_buffers_) {
    deliv_msgs_.assign(edge_count_, 0);
    deliv_bytes_.assign(edge_count_, 0);
  }
  place_msg_.resize(edge_count_);
  place_byte_.resize(edge_count_);
  node_msgs_.resize(node_count_);
  node_bytes_.resize(node_count_);
  node_msg_off_.resize(node_count_);
  node_byte_off_.resize(node_count_);
}

std::span<const std::uint64_t> DeliveryPlanner::sent_bits_segment(
    NodeId u) const {
  const auto v = static_cast<std::size_t>(u);
  return {sent_bits_.data() + out_base_[v], out_base_[v + 1] - out_base_[v]};
}

std::span<const std::uint32_t> DeliveryPlanner::sent_msgs_segment(
    NodeId u) const {
  const auto v = static_cast<std::size_t>(u);
  return {sent_msgs_.data() + out_base_[v], out_base_[v + 1] - out_base_[v]};
}

void DeliveryPlanner::zero_round(ThreadPool* pool) {
  for_ranges(pool, edge_count_, [this](std::size_t begin, std::size_t end) {
    std::fill(sent_bits_.begin() + static_cast<std::ptrdiff_t>(begin),
              sent_bits_.begin() + static_cast<std::ptrdiff_t>(end), 0);
    std::fill(sent_msgs_.begin() + static_cast<std::ptrdiff_t>(begin),
              sent_msgs_.begin() + static_cast<std::ptrdiff_t>(end), 0);
    std::fill(sent_bytes_.begin() + static_cast<std::ptrdiff_t>(begin),
              sent_bytes_.begin() + static_cast<std::ptrdiff_t>(end), 0);
    if (fault_buffers_) {
      std::fill(deliv_msgs_.begin() + static_cast<std::ptrdiff_t>(begin),
                deliv_msgs_.begin() + static_cast<std::ptrdiff_t>(end), 0);
      std::fill(deliv_bytes_.begin() + static_cast<std::ptrdiff_t>(begin),
                deliv_bytes_.begin() + static_cast<std::ptrdiff_t>(end), 0);
    }
  });
}

DeliveryTotals DeliveryPlanner::schedule(bool use_delivered, RoundArena& arena,
                                         ThreadPool* pool) {
  RWBC_ASSERT(!use_delivered || fault_buffers_,
              "fault schedule requested without fault buffers");
  const std::uint32_t* msgs =
      use_delivered ? deliv_msgs_.data() : sent_msgs_.data();
  const std::uint32_t* bytes =
      use_delivered ? deliv_bytes_.data() : sent_bytes_.data();

  // Pass 1 (parallel over destinations): each destination's totals come
  // from its own incoming edges only, so the writes are disjoint per v.
  for_ranges(pool, node_count_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::size_t m = 0;
      std::size_t b = 0;
      for (std::uint32_t e : in_edges(static_cast<NodeId>(v))) {
        m += msgs[e];
        b += bytes[e];
      }
      node_msgs_[v] = m;
      node_bytes_[v] = b;
    }
  });

  // Serial prefix sum: node-id order fixes every inbox slice, independent
  // of any thread schedule.
  DeliveryTotals totals;
  for (std::size_t v = 0; v < node_count_; ++v) {
    node_msg_off_[v] = totals.messages;
    node_byte_off_[v] = totals.payload_bytes;
    totals.messages += node_msgs_[v];
    totals.payload_bytes += node_bytes_[v];
  }
  arena.prepare(node_count_, totals.messages, totals.payload_bytes);
  for (std::size_t v = 0; v < node_count_; ++v) {
    arena.set_inbox(static_cast<NodeId>(v), node_msg_off_[v], node_msgs_[v]);
  }

  // Pass 2 (parallel over destinations): within each inbox, sender blocks
  // follow ascending sender id — in_edges(v) is already in that order.
  for_ranges(pool, node_count_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::size_t m = node_msg_off_[v];
      std::size_t b = node_byte_off_[v];
      for (std::uint32_t e : in_edges(static_cast<NodeId>(v))) {
        place_msg_[e] = m;
        place_byte_[e] = b;
        m += msgs[e];
        b += bytes[e];
      }
    }
  });
  return totals;
}

}  // namespace rwbc
