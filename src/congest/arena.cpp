#include "congest/arena.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rwbc {

namespace {

/// Runs body(begin, end) over [0, count), split across the pool when one is
/// configured (serial otherwise).  The chunk boundaries never affect what is
/// written where — every body below writes to ranges derived from the index
/// alone — so pool size is a pure wall-clock knob here too.
void for_ranges(ThreadPool* pool, std::size_t count,
                const std::function<void(std::size_t, std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for_ranges(count, body);
  } else if (count > 0) {
    body(0, count);
  }
}

}  // namespace

void RoundArena::prepare(std::size_t node_count, std::size_t message_count,
                         std::size_t payload_bytes) {
  messages_.resize(message_count);
  bytes_.resize(payload_bytes);
  if (offsets_.size() != node_count) {
    offsets_.assign(node_count, 0);
    counts_.assign(node_count, 0);
  } else {
    // Sparse reset: only inboxes assigned since the previous prepare() can
    // be nonzero.  (clear_inbox zeroes a count without delisting the node,
    // which just makes this loop clear it again — harmless.)
    for (const NodeId v : active_) {
      offsets_[static_cast<std::size_t>(v)] = 0;
      counts_[static_cast<std::size_t>(v)] = 0;
    }
  }
  active_.clear();
}

DeliveryPlanner::DeliveryPlanner(const Graph& g, bool with_fault_buffers)
    : node_count_(static_cast<std::size_t>(g.node_count())),
      edge_count_(g.degree_sum()),
      fault_buffers_(with_fault_buffers) {
  // in_edges_ stores dense directed-edge ids as u32; 2m must fit.
  RWBC_REQUIRE(edge_count_ <= std::numeric_limits<std::uint32_t>::max(),
               "graph too large for the delivery index (2m must fit in 32 "
               "bits)");
  out_base_.resize(node_count_ + 1);
  in_base_.resize(node_count_ + 1);
  out_base_[0] = 0;
  in_base_[0] = 0;
  for (std::size_t v = 0; v < node_count_; ++v) {
    // An undirected edge contributes one outgoing and one incoming directed
    // edge at each endpoint, so both bases advance by degree(v).
    const auto deg =
        static_cast<std::size_t>(g.degree(static_cast<NodeId>(v)));
    out_base_[v + 1] = out_base_[v] + deg;
    in_base_[v + 1] = in_base_[v] + deg;
  }
  // Counting-sort the directed edges by destination.  Senders are visited in
  // ascending id order, so each destination's incoming-edge list comes out
  // sorted by sender id — the canonical inbox block order.
  in_edges_.resize(edge_count_);
  edge_dest_.resize(edge_count_);
  std::vector<std::size_t> cursor(in_base_.begin(), in_base_.end() - 1);
  for (std::size_t u = 0; u < node_count_; ++u) {
    const auto neighbors = g.neighbors(static_cast<NodeId>(u));
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      const auto v = static_cast<std::size_t>(neighbors[slot]);
      in_edges_[cursor[v]++] = static_cast<std::uint32_t>(out_base_[u] + slot);
      edge_dest_[out_base_[u] + slot] = static_cast<std::uint32_t>(v);
    }
  }
  dest_stamp_.assign(node_count_, 0);

  edges_.assign(edge_count_, EdgeTally{});
  if (fault_buffers_) {
    deliv_msgs_.assign(edge_count_, 0);
    deliv_bytes_.assign(edge_count_, 0);
  }
  nodes_.resize(node_count_);
}

void DeliveryPlanner::zero_round(ThreadPool* pool) {
  for_ranges(pool, edge_count_, [this](std::size_t begin, std::size_t end) {
    for (std::size_t e = begin; e < end; ++e) {
      edges_[e].bits = 0;
      edges_[e].msgs = 0;
      edges_[e].bytes = 0;
    }
    if (fault_buffers_) {
      std::fill(deliv_msgs_.begin() + static_cast<std::ptrdiff_t>(begin),
                deliv_msgs_.begin() + static_cast<std::ptrdiff_t>(end), 0);
      std::fill(deliv_bytes_.begin() + static_cast<std::ptrdiff_t>(begin),
                deliv_bytes_.begin() + static_cast<std::ptrdiff_t>(end), 0);
    }
  });
}

DeliveryTotals DeliveryPlanner::schedule(bool use_delivered, RoundArena& arena,
                                         ThreadPool* pool) {
  RWBC_ASSERT(!use_delivered || fault_buffers_,
              "fault schedule requested without fault buffers");
  const auto edge_msgs = [&](std::uint32_t e) -> std::size_t {
    return use_delivered ? deliv_msgs_[e] : edges_[e].msgs;
  };
  const auto edge_bytes = [&](std::uint32_t e) -> std::size_t {
    return use_delivered ? deliv_bytes_[e] : edges_[e].bytes;
  };

  // Pass 1 (parallel over destinations): each destination's totals come
  // from its own incoming edges only, so the writes are disjoint per v.
  for_ranges(pool, node_count_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::size_t m = 0;
      std::size_t b = 0;
      for (std::uint32_t e : in_edges(static_cast<NodeId>(v))) {
        m += edge_msgs(e);
        b += edge_bytes(e);
      }
      nodes_[v].msgs = m;
      nodes_[v].bytes = b;
    }
  });

  // Serial prefix sum: node-id order fixes every inbox slice, independent
  // of any thread schedule.
  DeliveryTotals totals;
  for (std::size_t v = 0; v < node_count_; ++v) {
    nodes_[v].msg_off = totals.messages;
    nodes_[v].byte_off = totals.payload_bytes;
    totals.messages += nodes_[v].msgs;
    totals.payload_bytes += nodes_[v].bytes;
  }
  arena.prepare(node_count_, totals.messages, totals.payload_bytes);
  for (std::size_t v = 0; v < node_count_; ++v) {
    arena.set_inbox(static_cast<NodeId>(v), nodes_[v].msg_off, nodes_[v].msgs);
  }

  // Pass 2 (parallel over destinations): within each inbox, sender blocks
  // follow ascending sender id — in_edges(v) is already in that order.
  for_ranges(pool, node_count_, [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      std::size_t m = nodes_[v].msg_off;
      std::size_t b = nodes_[v].byte_off;
      for (std::uint32_t e : in_edges(static_cast<NodeId>(v))) {
        edges_[e].place_msg = m;
        edges_[e].place_byte = b;
        m += edge_msgs(e);
        b += edge_bytes(e);
      }
    }
  });
  return totals;
}

DeliveryTotals DeliveryPlanner::schedule_sparse(
    std::span<const std::uint32_t> touched, RoundArena& arena,
    std::vector<NodeId>& receivers) {
  // Pass 1: per-destination totals over exactly the touched edges.  The
  // stamp dedups destinations without any O(n) clearing.  Bit totals and
  // per-edge peaks ride along — the arrays are already hot here, and the
  // driver can then skip a whole per-context tally pass.
  DeliveryTotals totals;
  receivers.clear();
  ++stamp_;
  for (const std::uint32_t e : touched) {
    const EdgeTally& t = edges_[e];
    const auto v = static_cast<std::size_t>(edge_dest_[e]);
    if (dest_stamp_[v] != stamp_) {
      dest_stamp_[v] = stamp_;
      nodes_[v].msgs = 0;
      nodes_[v].bytes = 0;
      receivers.push_back(static_cast<NodeId>(v));
    }
    nodes_[v].msgs += t.msgs;
    nodes_[v].bytes += t.bytes;
    totals.bits += t.bits;
    totals.peak_bits = std::max(totals.peak_bits, t.bits);
    totals.peak_msgs =
        std::max(totals.peak_msgs, static_cast<std::uint64_t>(t.msgs));
  }
  // Receivers ascending: busy rounds (most of the graph receiving) come out
  // of an O(n) stamp scan, sparse rounds out of a small sort.
  if (receivers.size() > node_count_ / 16) {
    receivers.clear();
    for (std::size_t v = 0; v < node_count_; ++v) {
      if (dest_stamp_[v] == stamp_) receivers.push_back(static_cast<NodeId>(v));
    }
  } else {
    std::sort(receivers.begin(), receivers.end());
  }

  // Prefix sum in ascending receiver order, then per-edge placement cursors
  // in ascending edge-id (sender-major) order: within each inbox, sender
  // blocks ascend exactly as the dense schedule lays them out.
  for (const NodeId r : receivers) {
    const auto v = static_cast<std::size_t>(r);
    nodes_[v].msg_off = totals.messages;
    nodes_[v].byte_off = totals.payload_bytes;
    totals.messages += nodes_[v].msgs;
    totals.payload_bytes += nodes_[v].bytes;
  }
  arena.prepare(node_count_, totals.messages, totals.payload_bytes);
  for (const NodeId r : receivers) {
    const auto v = static_cast<std::size_t>(r);
    arena.set_inbox(r, nodes_[v].msg_off, nodes_[v].msgs);
  }
  for (const std::uint32_t e : touched) {
    EdgeTally& t = edges_[e];
    NodeSched& d = nodes_[static_cast<std::size_t>(edge_dest_[e])];
    t.place_msg = d.msg_off;
    t.place_byte = d.byte_off;
    d.msg_off += t.msgs;
    d.byte_off += t.bytes;
  }
  return totals;
}

}  // namespace rwbc
