#include "congest/checkpoint.hpp"

#include <array>
#include <cstring>

namespace rwbc {

namespace {

// "RWBCCKP" + format-family byte.  Distinct from any text format so a
// truncated edge list handed to --resume by mistake is rejected on byte 0.
constexpr std::array<std::uint8_t, 8> kMagic = {'R', 'W', 'B', 'C',
                                               'C', 'K', 'P', 1};
constexpr std::size_t kHeaderBytes =
    kMagic.size() + sizeof(std::uint32_t) + sizeof(std::uint64_t) +
    sizeof(std::uint32_t);

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xffffffffu;
  for (std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xffffffffu;
}

void CheckpointWriter::u32(std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void CheckpointWriter::u64(std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    buffer_.push_back(static_cast<std::uint8_t>(value >> shift));
  }
}

void CheckpointWriter::f64(double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  u64(bits);
}

void CheckpointWriter::blob(std::span<const std::uint8_t> bytes) {
  u64(bytes.size());
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

void CheckpointWriter::str(const std::string& text) {
  u64(text.size());
  buffer_.insert(buffer_.end(), text.begin(), text.end());
}

void CheckpointReader::need(std::size_t bytes) const {
  if (payload_.size() - cursor_ < bytes) {
    throw CheckpointError("checkpoint payload truncated: need " +
                          std::to_string(bytes) + " byte(s) at offset " +
                          std::to_string(cursor_) + ", have " +
                          std::to_string(payload_.size() - cursor_));
  }
}

std::uint8_t CheckpointReader::u8() {
  need(1);
  return payload_[cursor_++];
}

std::uint32_t CheckpointReader::u32() {
  need(4);
  std::uint32_t value = 0;
  for (int shift = 0; shift < 32; shift += 8) {
    value |= static_cast<std::uint32_t>(payload_[cursor_++]) << shift;
  }
  return value;
}

std::uint64_t CheckpointReader::u64() {
  need(8);
  std::uint64_t value = 0;
  for (int shift = 0; shift < 64; shift += 8) {
    value |= static_cast<std::uint64_t>(payload_[cursor_++]) << shift;
  }
  return value;
}

double CheckpointReader::f64() {
  const std::uint64_t bits = u64();
  double value = 0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

bool CheckpointReader::boolean() {
  const std::uint8_t byte = u8();
  if (byte > 1) {
    throw CheckpointError("checkpoint payload corrupt: boolean byte " +
                          std::to_string(byte));
  }
  return byte == 1;
}

std::vector<std::uint8_t> CheckpointReader::blob() {
  const std::uint64_t size = u64();
  need(size);
  std::vector<std::uint8_t> bytes(payload_.begin() + cursor_,
                                  payload_.begin() + cursor_ + size);
  cursor_ += size;
  return bytes;
}

std::string CheckpointReader::str() {
  const std::uint64_t size = u64();
  need(size);
  std::string text(payload_.begin() + cursor_,
                   payload_.begin() + cursor_ + size);
  cursor_ += size;
  return text;
}

std::vector<std::uint8_t> seal_checkpoint(const CheckpointWriter& payload) {
  const std::vector<std::uint8_t>& body = payload.buffer();
  CheckpointWriter header;
  for (std::uint8_t byte : kMagic) header.u8(byte);
  header.u32(kCheckpointVersion);
  header.u64(body.size());
  header.u32(crc32_ieee(body));
  std::vector<std::uint8_t> sealed = header.buffer();
  sealed.insert(sealed.end(), body.begin(), body.end());
  return sealed;
}

CheckpointReader open_checkpoint(std::span<const std::uint8_t> sealed,
                                 const std::string& context) {
  if (sealed.size() < kHeaderBytes) {
    throw CheckpointError(context + ": truncated header (" +
                          std::to_string(sealed.size()) + " byte(s), need " +
                          std::to_string(kHeaderBytes) + ")");
  }
  for (std::size_t i = 0; i < kMagic.size(); ++i) {
    if (sealed[i] != kMagic[i]) {
      throw CheckpointError(context + ": bad magic (not an RWBC checkpoint)");
    }
  }
  CheckpointReader header(std::vector<std::uint8_t>(
      sealed.begin() + kMagic.size(), sealed.begin() + kHeaderBytes));
  const std::uint32_t version = header.u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError(context + ": unsupported version " +
                          std::to_string(version) + " (expected " +
                          std::to_string(kCheckpointVersion) + ")");
  }
  const std::uint64_t payload_len = header.u64();
  const std::uint32_t stored_crc = header.u32();
  if (sealed.size() - kHeaderBytes != payload_len) {
    throw CheckpointError(
        context + ": truncated payload (" +
        std::to_string(sealed.size() - kHeaderBytes) + " byte(s), header says " +
        std::to_string(payload_len) + ")");
  }
  std::vector<std::uint8_t> body(sealed.begin() + kHeaderBytes, sealed.end());
  const std::uint32_t actual_crc = crc32_ieee(body);
  if (actual_crc != stored_crc) {
    throw CheckpointError(context + ": checksum mismatch (corrupted payload)");
  }
  return CheckpointReader(std::move(body));
}

}  // namespace rwbc
