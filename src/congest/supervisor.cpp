#include "congest/supervisor.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace rwbc {

namespace {

constexpr const char* kPrefix = "ckpt-";
constexpr const char* kSuffix = ".rwbc";

std::string snapshot_name(std::uint64_t round) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%s%012llu%s", kPrefix,
                static_cast<unsigned long long>(round), kSuffix);
  return buf;
}

/// Parses the round out of a snapshot file name; nullopt for foreign files.
std::optional<std::uint64_t> parse_round(const std::filesystem::path& path) {
  const std::string name = path.filename().string();
  const std::string prefix = kPrefix;
  const std::string suffix = kSuffix;
  if (name.size() <= prefix.size() + suffix.size()) return std::nullopt;
  if (name.compare(0, prefix.size(), prefix) != 0) return std::nullopt;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  std::uint64_t round = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return std::nullopt;
    round = round * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return round;
}

}  // namespace

RunSupervisor::RunSupervisor(std::filesystem::path dir, std::size_t keep)
    : dir_(std::move(dir)), keep_(keep) {
  RWBC_REQUIRE(keep_ >= 1, "snapshot rotation must keep at least one file");
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  RWBC_REQUIRE(!ec, "cannot create checkpoint directory " + dir_.string() +
                        ": " + ec.message());
}

std::vector<std::filesystem::path> RunSupervisor::snapshots() const {
  std::vector<std::filesystem::path> paths;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (entry.is_regular_file() && parse_round(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

std::filesystem::path RunSupervisor::write_snapshot(
    std::uint64_t round, const std::vector<std::uint8_t>& sealed) {
  const std::filesystem::path final_path = dir_ / snapshot_name(round);
  // Write-to-temp + rename keeps the rotation free of half-written files:
  // a crash mid-write leaves only a .tmp that load_latest() never considers.
  const std::filesystem::path tmp_path =
      final_path.string() + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    RWBC_REQUIRE(out.good(),
                 "cannot open checkpoint file " + tmp_path.string());
    out.write(reinterpret_cast<const char*>(sealed.data()),
              static_cast<std::streamsize>(sealed.size()));
    out.flush();
    RWBC_REQUIRE(out.good(),
                 "short write to checkpoint file " + tmp_path.string());
  }
  std::error_code ec;
  std::filesystem::rename(tmp_path, final_path, ec);
  RWBC_REQUIRE(!ec, "cannot rename checkpoint file " + tmp_path.string() +
                        ": " + ec.message());

  std::vector<std::filesystem::path> existing = snapshots();
  while (existing.size() > keep_) {
    std::filesystem::remove(existing.front(), ec);  // best-effort prune
    existing.erase(existing.begin());
  }
  return final_path;
}

std::optional<LoadedSnapshot> RunSupervisor::load_latest() const {
  std::vector<std::filesystem::path> paths = snapshots();
  std::size_t skipped = 0;
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    std::ifstream in(*it, std::ios::binary);
    if (!in.good()) {
      ++skipped;
      continue;
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    try {
      open_checkpoint(bytes, it->string());  // envelope verification only
    } catch (const CheckpointError&) {
      ++skipped;
      continue;
    }
    LoadedSnapshot snapshot;
    snapshot.path = *it;
    snapshot.round = *parse_round(*it);
    snapshot.sealed = std::move(bytes);
    snapshot.skipped = skipped;
    return snapshot;
  }
  return std::nullopt;
}

}  // namespace rwbc
