// The CONGEST round simulator.
//
// Faithful to Section III-A: synchronous rounds, each edge-direction carries
// at most O(log n) bits per round (configurable multiple of ceil(log2 n)),
// nodes run independent programs and see only local state.  The simulator
// meters every message so Theorem 4 (CONGEST compliance) and the Section
// VIII cut-communication claims are *measured*, not assumed.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "congest/arena.hpp"
#include "congest/faults.hpp"
#include "congest/metrics.hpp"
#include "congest/node.hpp"
#include "graph/graph.hpp"

namespace rwbc {

class ThreadPool;
class CheckpointWriter;
class CheckpointReader;

/// Per-round telemetry passed to a CongestConfig::round_observer.
struct RoundSnapshot {
  std::uint64_t round = 0;     ///< 0-based round index within this run
  std::uint64_t messages = 0;  ///< messages sent in this round
  std::uint64_t bits = 0;      ///< payload bits sent in this round
  std::uint64_t awake_nodes = 0;  ///< nodes whose on_round ran
  // Fault-injection telemetry (0 when no FaultPlan is configured).
  std::uint64_t dropped_messages = 0;     ///< of this round's sends
  std::uint64_t duplicated_messages = 0;  ///< of this round's sends
  std::uint64_t crashed_nodes = 0;  ///< cumulative crash-stopped nodes
  std::uint64_t retransmissions = 0;  ///< reliability-layer resends this round
  // Guardian-handoff telemetry (0 unless guardian replication is on).
  std::uint64_t replica_messages = 0;  ///< replica-delta frames this round
  std::uint64_t replica_bits = 0;      ///< their payload bits
  std::uint64_t adopted_walks = 0;     ///< walks adopted this round
  std::uint64_t abandoned_walks = 0;   ///< walks abandoned this round
};

/// Simulator configuration.
struct CongestConfig {
  /// Global seed; node v's private RNG is Rng(seed, v).
  std::uint64_t seed = 1;

  /// Per-edge-direction bit budget per round = max(bit_floor,
  /// bandwidth_log_multiplier * ceil(log2 n)).  The paper's model allows
  /// O(log n) bits; the multiplier is the hidden constant.
  std::uint64_t bandwidth_log_multiplier = 8;
  std::uint64_t bit_floor = 32;

  /// Strict mode throws on budget violation; non-strict ("ideal bandwidth",
  /// the E7 ablation) only meters.
  bool enforce_bandwidth = true;

  /// Hard stop for runaway algorithms; run() throws if it is reached.
  std::uint64_t max_rounds = 50'000'000;

  /// Round-execution threads: 0 = serial in the calling thread, N > 0 = a
  /// fork-join pool of N threads, -1 = one thread per hardware thread.
  /// Every setting produces bit-identical results — per-node RNG streams
  /// isolate randomness and sends are merged in canonical (sender id, send
  /// order) order after each round (see DESIGN.md, "Deterministic parallel
  /// round execution") — so this knob trades wall-clock only, never output.
  int num_threads = 0;

  /// Edges whose traffic is metered as "cut" traffic (Section VIII
  /// experiments).  Registered automatically on construction, so multi-phase
  /// pipelines meter the cut across every phase.
  std::vector<Edge> metered_cut;

  /// Deterministic fault schedule (drops, duplications, crash-stop
  /// failures, link-down intervals), applied at the delivery merge point.
  /// A default-constructed plan injects nothing and leaves every run
  /// bit-identical to the fault-free simulator; with faults enabled the
  /// plan's own seeded RNG stream keeps serial and parallel execution
  /// bit-identical at every num_threads setting.  Rounds in the plan are
  /// local to each Network instance (multi-phase pipelines decide per
  /// phase whether the plan applies).
  FaultPlan faults;

  /// Optional per-round observer, invoked after each round's sends are
  /// collected.  Used by the experiment harness to chart live quantities
  /// (e.g. the surviving-walk population decay of E2) without touching the
  /// node programs.  Round numbers are phase-local when a pipeline runs
  /// multiple Network instances.
  std::function<void(const RoundSnapshot&)> round_observer;

  /// Snapshot cadence: every `checkpoint_interval` rounds (at the top of the
  /// round loop, where per-node state is in canonical order at every thread
  /// count) the network serializes itself and hands the sealed bytes to
  /// `checkpoint_sink`.  0 disables checkpointing.  Requires every node
  /// program to implement save_state/load_state.
  std::uint64_t checkpoint_interval = 0;

  /// Receives each sealed snapshot (envelope + payload) with the round it
  /// captures.  Typically writes through a RunSupervisor.  Runs on the
  /// driver thread; an exception aborts the run (it propagates out of
  /// run()), which the kill-drill harness exploits deliberately.
  std::function<void(std::uint64_t round,
                     const std::vector<std::uint8_t>& sealed)>
      checkpoint_sink;

  /// Optional pipeline header written at the very start of each snapshot
  /// payload, before the network section.  A multi-phase pipeline records
  /// which phase the snapshot belongs to (plus phase-level parameters and
  /// carried-over metrics) so resume can rebuild the right Network before
  /// calling restore_checkpoint(); the resume path consumes this header
  /// itself and hands the reader to the network positioned at its section.
  std::function<void(CheckpointWriter&)> checkpoint_prologue;

  /// Free-form label baked into the snapshot fingerprint (e.g. the pipeline
  /// phase name); restore rejects a snapshot whose label differs.
  std::string checkpoint_label;

  /// Sealed snapshot bytes to resume from (as produced by checkpoint_sink).
  /// Empty = start fresh.  The restore is LABEL-SELECTIVE: if the
  /// snapshot's label differs from checkpoint_label the network ignores it
  /// and starts fresh, which makes resume work through multi-phase
  /// pipelines that thread one CongestConfig through several Network
  /// instances — only the phase that wrote the snapshot restores; phases
  /// before it re-run deterministically and phases after it start fresh,
  /// reproducing the uninterrupted run exactly.  Only valid for snapshots
  /// written without a checkpoint_prologue (a prologue-bearing pipeline
  /// consumes its own header and calls restore_checkpoint directly).
  std::vector<std::uint8_t> resume_checkpoint;
};

/// A synchronous message-passing network over a fixed graph.
class Network {
 public:
  /// The graph must outlive the network.
  Network(const Graph& graph, CongestConfig config);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Installs the program for node v.  Every node needs a program before
  /// run() is called.
  void set_node(NodeId v, std::unique_ptr<NodeProcess> process);

  /// Installs a program built per node by the factory.
  void set_all_nodes(
      const std::function<std::unique_ptr<NodeProcess>(NodeId)>& factory);

  /// Registers edges whose traffic should be metered as the "cut" (Section
  /// VIII experiments).  Edges must exist in the graph.
  void register_cut(std::span<const Edge> cut_edges);

  /// Runs rounds until all nodes halt and no messages are in flight.
  /// Throws if config.max_rounds is exceeded.  May be called once.
  RunMetrics run();

  /// Access to a node's program after the run (to read its outputs).
  NodeProcess& node(NodeId v);
  const NodeProcess& node(NodeId v) const;

  /// The enforced per-edge-direction bit budget.
  std::uint64_t bit_budget() const { return bit_budget_; }

  /// Serializes the complete simulator state — fingerprint, round, metrics,
  /// fault-injector state, and per node: RNG stream, halted flag, pending
  /// inbox, and the program's save_state() blob.  Writes the configured
  /// checkpoint_prologue (if any) first.  Normally invoked internally on
  /// the checkpoint_interval cadence; public for tests and benchmarks.
  void save_checkpoint(CheckpointWriter& out) const;

  /// Restores state saved by save_checkpoint().  Must be called after all
  /// programs are installed and before run(); the reader must be positioned
  /// past any pipeline prologue (the caller consumes its own header).  Runs
  /// each program's on_start() to rebuild derived state, then overwrites
  /// RNG streams, mailboxes, metrics, and program state with the snapshot.
  /// run() then continues from the captured round, bit-identical to the
  /// uninterrupted run.  Throws rwbc::CheckpointError on any fingerprint or
  /// payload mismatch.
  void restore_checkpoint(CheckpointReader& in);

 private:
  class ContextImpl;

  bool is_cut_edge(NodeId from, NodeId to) const;

  /// The serial fate pass of faulty rounds: walks every sender's outbox in
  /// canonical (sender id, send order) order, draws each message's fate
  /// from the injector's dedicated RNG stream (preserving the PR 2 draw
  /// sequence exactly), and recomputes per-edge delivered counts for the
  /// placement schedule.  Returns {dropped, duplicated} for this round.
  std::pair<std::uint64_t, std::uint64_t> run_fate_pass();

  /// The parallel placement pass: copies every surviving message of the
  /// awake senders into its canonical arena slot in `back_`.
  void place_messages();

  const Graph& graph_;
  CongestConfig config_;
  /// Directed-edge counting + placement machinery (see congest/arena.hpp).
  DeliveryPlanner planner_;
  /// Double-buffered round storage: nodes read front_ while back_ is
  /// rebuilt; the buffers swap after each round's delivery.
  RoundArena front_;
  RoundArena back_;
  std::uint64_t bit_budget_ = 0;
  std::uint64_t round_ = 0;
  RunMetrics metrics_;
  std::vector<std::unique_ptr<NodeProcess>> processes_;
  /// One contiguous array (ContextImpl is complete in network.cpp only;
  /// ~Network and the ctor are out of line, which is all vector needs).
  /// Contiguity matters: the round loop touches every awake context, and a
  /// flat array turns that walk into prefetchable ascending strides instead
  /// of a pointer chase per node.
  std::vector<ContextImpl> contexts_;
  std::vector<bool> cut_edge_flags_;  // indexed like graph_.edges()
  bool has_cut_ = false;
  bool ran_ = false;
  bool resumed_ = false;
  /// Round of the snapshot this run resumed from (or last one written);
  /// suppresses an immediate re-checkpoint when the resume round itself
  /// lies on the interval grid.
  std::uint64_t last_checkpoint_round_ = 0;
  std::unique_ptr<FaultInjector> injector_;  // null when faults.any() false
  std::unique_ptr<ThreadPool> pool_;   // live only while run() executes
  std::vector<std::size_t> awake_;     // scratch: awake node ids, ascending
  /// Serial fault-free fast path: send_impl appends each directed edge the
  /// round touches as it sees the first message for it, so the sparse
  /// schedule needs no per-context assembly pass.  Contexts run in
  /// ascending node-id order on the serial path, so the list is sorted
  /// unless some node sent out of slot order (tracked by the flag).
  bool serial_touch_ = false;
  bool touched_edges_sorted_ = true;
  std::vector<std::uint32_t> touched_edges_;
};

}  // namespace rwbc
