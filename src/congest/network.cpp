#include "congest/network.hpp"

#include <algorithm>
#include <cstring>
#include <string>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

namespace {

/// Per-message fate codes recorded by the serial fate pass and consumed by
/// the parallel placement pass (fault-injected runs only).
constexpr std::uint8_t kFateDeliver = 0;
constexpr std::uint8_t kFateDrop = 1;
constexpr std::uint8_t kFateDuplicate = 2;

}  // namespace

// Per-node view handed to NodeProcess callbacks.  Owns the node's outbox
// and per-round bandwidth accounting; all sends funnel through here so the
// Network can meter them.
//
// Thread-safety contract (the deterministic parallel round path): while
// on_round runs — possibly concurrently across nodes — a context touches
// only its own members, its own segments of the planner's flat per-edge
// tally arrays (directed edge (u -> v) belongs to u alone), plus const
// Network state (graph, bit budget, round number, cut flags).  All metering
// accumulates into per-context tallies that the single-threaded driver
// merges in canonical node-id order after the round, so serial and parallel
// execution produce bit-identical metrics, snapshots, and delivery order.
class Network::ContextImpl final : public NodeContext {
 public:
  /// One queued send: the payload bytes live in out_bytes_, packed in send
  /// order (ceil(bit_count / 8) bytes each, exactly as BitWriter packs).
  struct PendingSend {
    NodeId to = -1;
    std::uint32_t slot = 0;  ///< index of `to` in the sender's neighbour list
    std::int32_t bit_count = 0;
  };

  ContextImpl(Network& net, NodeId id)
      : net_(net),
        id_(id),
        rng_(net.config_.seed, static_cast<std::uint64_t>(id)),
        neighbors_(net.graph_.neighbors(id)),
        edge_base_(net.planner_.out_base(id)),
        slot_tally_(net.planner_.edge_tally(id)),
        slot_deliv_msgs_(net.config_.faults.any()
                             ? net.planner_.delivered_msgs(id)
                             : nullptr),
        slot_deliv_bytes_(net.config_.faults.any()
                              ? net.planner_.delivered_bytes(id)
                              : nullptr) {}

  NodeId id() const override { return id_; }
  NodeId node_count() const override { return net_.graph_.node_count(); }
  std::span<const NodeId> neighbors() const override { return neighbors_; }
  NodeId degree() const override {
    return static_cast<NodeId>(neighbors_.size());
  }
  std::uint64_t round() const override { return net_.round_; }
  Rng& rng() override { return rng_; }
  std::uint64_t bit_budget() const override { return net_.bit_budget_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
    RWBC_REQUIRE(it != neighbors_.end() && *it == neighbor,
                 "send target is not a neighbor");
    send_impl(static_cast<std::size_t>(it - neighbors_.begin()), neighbor,
              payload);
  }

  void send_to_slot(NodeId slot, const BitWriter& payload) override {
    RWBC_REQUIRE(slot >= 0 &&
                     static_cast<std::size_t>(slot) < neighbors_.size(),
                 "send_to_slot index out of range");
    send_impl(static_cast<std::size_t>(slot),
              neighbors_[static_cast<std::size_t>(slot)], payload);
  }

  void send_impl(std::size_t slot, NodeId neighbor, const BitWriter& payload) {
    const auto bits = static_cast<std::uint64_t>(payload.bit_count());
    EdgeTally& tally = slot_tally_[slot];
    if (tally.msgs == 0) {
      // Track sortedness as slots are recorded: almost every node sends in
      // ascending slot order (neighbour-loop order), so the end-of-round
      // touched-edge assembly can skip its sort entirely.
      if (!touched_slots_.empty() &&
          slot < touched_slots_.back()) {
        touched_sorted_ = false;
      }
      touched_slots_.push_back(static_cast<std::uint32_t>(slot));
      if (net_.serial_touch_) {
        // Serial fast path: feed the sparse schedule's edge list directly,
        // replacing the whole per-context assembly pass.
        const auto e = static_cast<std::uint32_t>(edge_base_ + slot);
        if (!net_.touched_edges_.empty() && e < net_.touched_edges_.back()) {
          net_.touched_edges_sorted_ = false;
        }
        net_.touched_edges_.push_back(e);
      }
    }
    tally.bits += bits;
    tally.msgs += 1;
    tally.bytes += static_cast<std::uint32_t>(payload.bytes().size());
    if (net_.config_.enforce_bandwidth) {
      RWBC_REQUIRE(tally.bits <= net_.bit_budget_,
                   "CONGEST bandwidth budget exceeded on edge " +
                       std::to_string(id_) + "->" + std::to_string(neighbor) +
                       " in round " + std::to_string(net_.round_));
    }
    // Peak tallies kept at send time (slot tallies only grow within a
    // round, so the running max equals the end-of-round segment max) —
    // this replaces the per-round scans over every edge segment.
    round_peak_bits_ = std::max(round_peak_bits_, tally.bits);
    round_peak_msgs_ = std::max(round_peak_msgs_,
                                static_cast<std::uint64_t>(tally.msgs));
    round_messages_ += 1;
    round_bits_ += bits;
    if (net_.has_cut_ && net_.is_cut_edge(id_, neighbor)) {
      round_cut_messages_ += 1;
      round_cut_bits_ += bits;
    }
    out_meta_.push_back(PendingSend{neighbor, static_cast<std::uint32_t>(slot),
                                    payload.bit_count()});
    out_bytes_.insert(out_bytes_.end(), payload.bytes().begin(),
                      payload.bytes().end());
  }

  void halt() override { halted_ = true; }

  void note_retransmission() override { round_retransmissions_ += 1; }

  void note_replica_frame(std::uint64_t payload_bits) override {
    round_replica_messages_ += 1;
    round_replica_bits_ += payload_bits;
  }
  void note_adopted_walks(std::uint64_t walks) override {
    round_adopted_walks_ += walks;
  }
  void note_abandoned_walks(std::uint64_t walks) override {
    round_abandoned_walks_ += walks;
  }

  // --- driver-side hooks -------------------------------------------------

  /// Resets everything a round writes, ready for the next one: the per-edge
  /// tallies this round's sends touched (the sparse replacement for the
  /// planner's dense zero_round sweep), the per-round scalar counters, and
  /// the outbox.  Runs at the END of each round, after the schedule and
  /// placement consumed the tallies, for awake nodes only — a halted node's
  /// state was already reset when it last ran, and freshly constructed
  /// contexts are zeroed.  (on_start never sends, so no top-of-round reset
  /// is needed; restore_checkpoint re-establishes the invariant on resume.)
  void clear_round_tallies() {
    for (const std::uint32_t slot : touched_slots_) {
      slot_tally_[slot].bits = 0;
      slot_tally_[slot].msgs = 0;
      slot_tally_[slot].bytes = 0;
      if (slot_deliv_msgs_ != nullptr) {
        slot_deliv_msgs_[slot] = 0;
        slot_deliv_bytes_[slot] = 0;
      }
    }
    touched_slots_.clear();
    touched_sorted_ = true;
    round_messages_ = 0;
    round_bits_ = 0;
    round_cut_messages_ = 0;
    round_cut_bits_ = 0;
    round_retransmissions_ = 0;
    round_replica_messages_ = 0;
    round_replica_bits_ = 0;
    round_adopted_walks_ = 0;
    round_abandoned_walks_ = 0;
    round_peak_bits_ = 0;
    round_peak_msgs_ = 0;
    out_meta_.clear();
    out_bytes_.clear();
  }

  Network& net_;
  NodeId id_;
  Rng rng_;
  std::span<const NodeId> neighbors_;
  std::size_t edge_base_;  ///< planner_.out_base(id_): first directed edge id
  // Per-slot send tallies: this context's segment of the planner's flat
  // per-directed-edge array (cleared sparsely each round).
  EdgeTally* slot_tally_;
  // Fault-path delivered tallies (null without fault buffers).  The fate
  // pass only ever writes slots that carried sends, so the sparse clearing
  // above covers them too.
  std::uint32_t* slot_deliv_msgs_;
  std::uint32_t* slot_deliv_bytes_;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_bits_ = 0;
  std::uint64_t round_cut_messages_ = 0;
  std::uint64_t round_cut_bits_ = 0;
  std::uint64_t round_retransmissions_ = 0;
  std::uint64_t round_replica_messages_ = 0;
  std::uint64_t round_replica_bits_ = 0;
  std::uint64_t round_adopted_walks_ = 0;
  std::uint64_t round_abandoned_walks_ = 0;
  std::uint64_t round_peak_bits_ = 0;
  std::uint64_t round_peak_msgs_ = 0;
  std::vector<std::uint32_t> touched_slots_;  ///< slots with sends this round
  bool touched_sorted_ = true;  ///< touched_slots_ recorded in ascending order
  std::vector<PendingSend> out_meta_;   ///< this round's sends, in order
  std::vector<std::uint8_t> out_bytes_; ///< their payload bytes, packed
  std::vector<std::uint8_t> fates_;     ///< per-send fate (faulty rounds)
  bool halted_ = false;
};

Network::Network(const Graph& graph, CongestConfig config)
    : graph_(graph),
      config_(std::move(config)),
      planner_(graph, config_.faults.any()) {
  const auto n = static_cast<std::uint64_t>(
      std::max<NodeId>(graph.node_count(), 2));
  bit_budget_ = std::max(
      config_.bit_floor,
      config_.bandwidth_log_multiplier * static_cast<std::uint64_t>(
                                              bits_for(n)));
  processes_.resize(static_cast<std::size_t>(graph.node_count()));
  contexts_.reserve(processes_.size());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    contexts_.emplace_back(*this, v);
  }
  front_.prepare(static_cast<std::size_t>(graph.node_count()), 0, 0);
  cut_edge_flags_.assign(graph.edge_count(), false);
  if (!config_.metered_cut.empty()) {
    register_cut(config_.metered_cut);
  }
  if (config_.faults.any()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults, graph_);
  }
}

Network::~Network() = default;

void Network::set_node(NodeId v, std::unique_ptr<NodeProcess> process) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  RWBC_REQUIRE(process != nullptr, "node program must not be null");
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Network::set_all_nodes(
    const std::function<std::unique_ptr<NodeProcess>(NodeId)>& factory) {
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    set_node(v, factory(v));
  }
}

void Network::register_cut(std::span<const Edge> cut_edges) {
  const auto all = graph_.edges();
  for (const Edge& raw : cut_edges) {
    Edge e{std::min(raw.u, raw.v), std::max(raw.u, raw.v)};
    const auto it = std::lower_bound(all.begin(), all.end(), e);
    RWBC_REQUIRE(it != all.end() && *it == e,
                 "cut edge is not an edge of the graph");
    cut_edge_flags_[static_cast<std::size_t>(it - all.begin())] = true;
    has_cut_ = true;
  }
}

bool Network::is_cut_edge(NodeId from, NodeId to) const {
  Edge e{std::min(from, to), std::max(from, to)};
  const auto all = graph_.edges();
  const auto it = std::lower_bound(all.begin(), all.end(), e);
  return it != all.end() && *it == e &&
         cut_edge_flags_[static_cast<std::size_t>(it - all.begin())];
}

NodeProcess& Network::node(NodeId v) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

const NodeProcess& Network::node(NodeId v) const {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  const auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

void Network::save_checkpoint(CheckpointWriter& out) const {
  if (config_.checkpoint_prologue) config_.checkpoint_prologue(out);
  // Fingerprint: enough to reject a snapshot resumed against the wrong
  // graph, seed, or pipeline phase before any state is touched.
  out.str(config_.checkpoint_label);
  out.u64(static_cast<std::uint64_t>(graph_.node_count()));
  out.u64(graph_.edge_count());
  out.u64(config_.seed);
  out.u64(bit_budget_);
  out.u64(round_);
  save_metrics(out, metrics_);
  // Fault-injector engine state (schedule is rebuilt from the plan).
  out.boolean(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(out);
  // Per-node: RNG stream, halted flag, pending inbox, program state.  The
  // inbox is serialized from the front arena (which at the snapshot point
  // holds last round's deliveries in canonical order), in exactly the byte
  // layout the pre-arena format used: count, then per message the sender,
  // bit count, and length-prefixed payload.  The program blob is
  // length-prefixed so restore can verify each program consumes exactly
  // what it saved.
  for (std::size_t v = 0; v < contexts_.size(); ++v) {
    const ContextImpl& ctx = contexts_[v];
    for (std::uint64_t word : ctx.rng_.state()) out.u64(word);
    out.boolean(ctx.halted_);
    const auto inbox = front_.inbox(static_cast<NodeId>(v));
    out.u64(inbox.size());
    for (const Message& msg : inbox) {
      out.u32(static_cast<std::uint32_t>(msg.from));
      out.u64(static_cast<std::uint64_t>(msg.bit_count));
      out.blob({msg.payload(), msg.payload_bytes()});
    }
    CheckpointWriter program;
    processes_[v]->save_state(program);
    out.blob(program.buffer());
  }
}

void Network::restore_checkpoint(CheckpointReader& in) {
  RWBC_REQUIRE(!ran_, "restore_checkpoint must be called before run()");
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_REQUIRE(processes_[v] != nullptr,
                 "every node needs a program before restore_checkpoint()");
  }
  const std::string label = in.str();
  if (label != config_.checkpoint_label) {
    throw CheckpointError("checkpoint label mismatch: snapshot is '" + label +
                          "', network expects '" + config_.checkpoint_label +
                          "'");
  }
  const std::uint64_t nodes = in.u64();
  const std::uint64_t edges = in.u64();
  const std::uint64_t seed = in.u64();
  const std::uint64_t budget = in.u64();
  if (nodes != static_cast<std::uint64_t>(graph_.node_count()) ||
      edges != graph_.edge_count()) {
    throw CheckpointError("checkpoint graph mismatch: snapshot has " +
                          std::to_string(nodes) + " nodes / " +
                          std::to_string(edges) + " edges");
  }
  if (seed != config_.seed) {
    throw CheckpointError("checkpoint seed mismatch: snapshot used seed " +
                          std::to_string(seed));
  }
  if (budget != bit_budget_) {
    throw CheckpointError("checkpoint bandwidth mismatch: snapshot budget " +
                          std::to_string(budget) + " bits, network has " +
                          std::to_string(bit_budget_));
  }
  // Rebuild derived state exactly as an uninterrupted run would have, then
  // overwrite everything mutable with the snapshot.  on_start never sends
  // (the per-context reset below would discard it anyway) and its RNG
  // draws are undone by the stream restore.
  for (std::size_t v = 0; v < n; ++v) {
    processes_[v]->on_start(contexts_[v]);
  }
  round_ = in.u64();
  metrics_ = load_metrics(in);
  const bool snapshot_has_injector = in.boolean();
  if (snapshot_has_injector != (injector_ != nullptr)) {
    throw CheckpointError(
        "checkpoint fault-plan mismatch: snapshot and network disagree on "
        "fault injection");
  }
  if (injector_ != nullptr) injector_->load_state(in);
  // In-flight messages are collected first (the reader is sequential), then
  // rebuilt into the front arena in one pass — slice pointers are taken
  // only after the payload buffer has its final size.
  struct RestoredMessage {
    NodeId from;
    NodeId to;
    std::int32_t bit_count;
    std::size_t byte_offset;
  };
  std::vector<RestoredMessage> restored;
  std::vector<std::uint8_t> restored_bytes;
  std::vector<std::size_t> inbox_counts(n, 0);
  for (std::size_t v = 0; v < n; ++v) {
    ContextImpl& ctx = contexts_[v];
    std::array<std::uint64_t, 4> rng_state{};
    for (auto& word : rng_state) word = in.u64();
    ctx.rng_.set_state(rng_state);
    ctx.halted_ = in.boolean();
    // Re-establish the between-rounds invariant (tallies zero, outbox
    // empty) that the end-of-round clear normally maintains, in case this
    // context carried state from before the restore.
    ctx.clear_round_tallies();
    const std::uint64_t inbox_size = in.u64();
    inbox_counts[v] = static_cast<std::size_t>(inbox_size);
    for (std::uint64_t i = 0; i < inbox_size; ++i) {
      RestoredMessage msg;
      msg.from = static_cast<NodeId>(in.u32());
      msg.to = static_cast<NodeId>(v);
      msg.bit_count = static_cast<std::int32_t>(in.u64());
      msg.byte_offset = restored_bytes.size();
      const std::vector<std::uint8_t> payload = in.blob();
      restored_bytes.insert(restored_bytes.end(), payload.begin(),
                            payload.end());
      restored.push_back(msg);
    }
    CheckpointReader program(in.blob());
    processes_[v]->load_state(program);
    if (program.remaining() != 0) {
      throw CheckpointError("node " + std::to_string(v) + " left " +
                            std::to_string(program.remaining()) +
                            " unread byte(s) in its checkpoint blob");
    }
  }
  if (in.remaining() != 0) {
    throw CheckpointError("trailing " + std::to_string(in.remaining()) +
                          " byte(s) after checkpoint payload");
  }
  front_.prepare(n, restored.size(), restored_bytes.size());
  if (!restored_bytes.empty()) {
    std::memcpy(front_.payload_slots(), restored_bytes.data(),
                restored_bytes.size());
  }
  Message* slots = front_.message_slots();
  const std::uint8_t* bytes = front_.payload_slots();
  for (std::size_t i = 0; i < restored.size(); ++i) {
    const RestoredMessage& msg = restored[i];
    slots[i] = Message{msg.from, msg.to, bytes + msg.byte_offset,
                       msg.bit_count};
  }
  std::size_t offset = 0;
  for (std::size_t v = 0; v < n; ++v) {
    front_.set_inbox(static_cast<NodeId>(v), offset, inbox_counts[v]);
    offset += inbox_counts[v];
  }
  resumed_ = true;
  last_checkpoint_round_ = round_;
}

std::pair<std::uint64_t, std::uint64_t> Network::run_fate_pass() {
  // Serial on purpose: the injector's dedicated RNG stream must see the
  // messages in canonical (sender id, send order) order — the same sequence
  // the pre-arena delivery merge consumed — so a given plan produces the
  // same drops and duplicates at every thread count AND the same bytes as
  // every checkpoint written before this refactor.
  // Iterating the awake set (ascending, so canonical order is preserved)
  // is equivalent to iterating every node: halted nodes have empty
  // outboxes, so they never contributed a draw.
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  for (const std::size_t v : awake_) {
    ContextImpl& ctx = contexts_[v];
    ctx.fates_.resize(ctx.out_meta_.size());
    std::uint32_t* deliv_msgs = planner_.delivered_msgs(ctx.id_);
    std::uint32_t* deliv_bytes = planner_.delivered_bytes(ctx.id_);
    for (std::size_t j = 0; j < ctx.out_meta_.size(); ++j) {
      const ContextImpl::PendingSend& send = ctx.out_meta_[j];
      // Structural faults first (no RNG draws): dead destination or a
      // downed link.  The destination is dead iff it will not execute the
      // round this message would be read in (round_ + 1).
      if (injector_->node_crashed(send.to, round_ + 1) ||
          injector_->link_down(ctx.id_, send.to, round_)) {
        ctx.fates_[j] = kFateDrop;
        ++dropped;
        continue;
      }
      std::uint32_t copies = 1;
      switch (injector_->draw_fate(round_)) {
        case FaultInjector::Fate::kDrop:
          ctx.fates_[j] = kFateDrop;
          ++dropped;
          continue;
        case FaultInjector::Fate::kDuplicate:
          ctx.fates_[j] = kFateDuplicate;
          ++duplicated;
          copies = 2;
          break;
        case FaultInjector::Fate::kDeliver:
          ctx.fates_[j] = kFateDeliver;
          break;
      }
      deliv_msgs[send.slot] += copies;
      deliv_bytes[send.slot] +=
          copies * static_cast<std::uint32_t>(
                       (static_cast<std::uint32_t>(send.bit_count) + 7) / 8);
    }
  }
  return {dropped, duplicated};
}

void Network::place_messages() {
  // Parallel over awake senders (halted nodes have empty outboxes): each
  // message is copied into the arena slot its edge's cursor points at.
  // Edge (u -> v)'s cursor is advanced only by u's thread and distinct
  // edges own disjoint slice ranges, so the writes never overlap; the final
  // buffer is a pure function of the outboxes, independent of scheduling.
  const bool faulty = injector_ != nullptr;
  Message* slots = back_.message_slots();
  std::uint8_t* bytes = back_.payload_slots();
  EdgeTally* edges = planner_.edge_tallies();
  const auto place_sender = [&](std::size_t i) {
    ContextImpl& ctx = contexts_[awake_[i]];
    const std::size_t edge_base = ctx.edge_base_;
    const std::uint8_t* src = ctx.out_bytes_.data();
    std::size_t src_offset = 0;
    for (std::size_t j = 0; j < ctx.out_meta_.size(); ++j) {
      const ContextImpl::PendingSend& send = ctx.out_meta_[j];
      const std::size_t len =
          (static_cast<std::size_t>(send.bit_count) + 7) / 8;
      const std::uint8_t fate = faulty ? ctx.fates_[j] : kFateDeliver;
      if (fate != kFateDrop) {
        EdgeTally& cursor = edges[edge_base + send.slot];
        // A duplicate lands as two adjacent, identical copies — the
        // same receiver-side picture the pre-arena merge produced.
        const int copies = fate == kFateDuplicate ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
          const std::size_t slot_index = cursor.place_msg++;
          const std::size_t byte_index = cursor.place_byte;
          cursor.place_byte += len;
          if (len > Message::kInlineBytes) {
            // Spill: the payload rides the byte arena, as before the
            // small-buffer optimization.  (The arena is sized for every
            // payload; inline ones just leave their slice unwritten.)
            std::memcpy(bytes + byte_index, src + src_offset, len);
            slots[slot_index] = Message{ctx.id_, send.to, bytes + byte_index,
                                        send.bit_count};
          } else {
            // Inline: one 32-byte slot write delivers the whole message.
            slots[slot_index] = Message{ctx.id_, send.to, src + src_offset,
                                        send.bit_count};
          }
        }
      }
      src_offset += len;
    }
  };
  if (pool_) {
    // Range flavour: one std::function hop per chunk, plain calls inside.
    pool_->parallel_for_ranges(
        awake_.size(), [&](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) place_sender(i);
        });
  } else {
    for (std::size_t i = 0; i < awake_.size(); ++i) place_sender(i);
  }
}

RunMetrics Network::run() {
  RWBC_REQUIRE(!ran_, "Network::run may only be called once");
  if (!resumed_ && !config_.resume_checkpoint.empty()) {
    // Label-selective resume (see CongestConfig::resume_checkpoint): peek
    // the snapshot's label with a throwaway reader; only a match restores.
    CheckpointReader peek =
        open_checkpoint(config_.resume_checkpoint, "resume checkpoint");
    if (peek.str() == config_.checkpoint_label) {
      CheckpointReader reader =
          open_checkpoint(config_.resume_checkpoint, "resume checkpoint");
      restore_checkpoint(reader);
    }
  }
  ran_ = true;
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_REQUIRE(processes_[v] != nullptr,
                 "every node needs a program before run()");
  }
  const std::size_t pool_threads =
      config_.num_threads < 0
          ? ThreadPool::hardware_threads()
          : static_cast<std::size_t>(config_.num_threads);
  if (pool_threads > 0) pool_ = std::make_unique<ThreadPool>(pool_threads);
  if (!resumed_) {
    for (std::size_t v = 0; v < n; ++v) {
      processes_[v]->on_start(contexts_[v]);
    }
    round_ = 0;
  }
  // When resumed, round_/metrics_/mailboxes/RNG streams were installed by
  // restore_checkpoint(); the loop below continues exactly where the
  // snapshot was taken.

  // Fault-free rounds run the sparse path: the schedule walks only the
  // edges that carried traffic, tallies are cleared sparsely, and the awake
  // set is maintained incrementally from survivors + receivers instead of
  // an O(n) wake scan.  All of it is serial, deterministic bookkeeping —
  // inbox content, metrics, and checkpoints are bit-identical to the dense
  // path at every thread count.  Fault plans keep the dense path (the fate
  // pass and crash activation need the full picture).
  const bool fault_free = injector_ == nullptr;
  // Serial fault-free runs let send_impl feed the sparse schedule's
  // touched-edge list directly (see the member's comment); contexts run in
  // ascending node-id order there, so the list comes out sorted.
  serial_touch_ = fault_free && !pool_;
  touched_edges_.clear();
  touched_edges_sorted_ = true;
  bool sparse_wake_ready = false;  // awake_ valid from the previous round?
  std::vector<std::size_t> next_awake;
  std::vector<NodeId> receivers;
  std::vector<std::uint32_t> touched_edges;

  while (true) {
    RWBC_REQUIRE(round_ < config_.max_rounds,
                 "simulation exceeded the configured max_rounds");
    // Snapshot point: top of the loop, before this round's crash
    // activation.  The front arena holds last round's deliveries in
    // canonical (sender id, send order) order and outboxes are empty, so
    // the serialized bytes are identical at every thread count.  Skipped at
    // round 0 (nothing to save) and at the round we just resumed from.
    if (config_.checkpoint_interval > 0 && config_.checkpoint_sink &&
        round_ > 0 && round_ % config_.checkpoint_interval == 0 &&
        round_ != last_checkpoint_round_) {
      CheckpointWriter writer;
      save_checkpoint(writer);
      config_.checkpoint_sink(round_, seal_checkpoint(writer));
      last_checkpoint_round_ = round_;
    }
    // Crash-stop failures scheduled for this round take effect before
    // anything else: a crashed node is permanently halted, cannot be woken
    // by messages, and counts toward RunMetrics::crashed_nodes exactly
    // once.  (Messages addressed to it were already discarded at the
    // delivery point below.)
    if (injector_ != nullptr && injector_->has_crashes()) {
      metrics_.crashed_nodes += injector_->activate_crashes(round_);
    }
    // A message arriving at a halted node wakes it.  The dense wake scan
    // runs on the first iteration, after a resume, and on every faulty
    // round; fault-free rounds afterwards reuse the incrementally
    // maintained awake set (survivors + last round's receivers).
    if (!sparse_wake_ready) {
      awake_.clear();
      for (std::size_t v = 0; v < n; ++v) {
        if (injector_ != nullptr &&
            injector_->node_crashed(static_cast<NodeId>(v), round_)) {
          contexts_[v].halted_ = true;
          front_.clear_inbox(static_cast<NodeId>(v));
          continue;
        }
        if (front_.inbox_count(static_cast<NodeId>(v)) > 0) {
          contexts_[v].halted_ = false;
        }
        if (!contexts_[v].halted_) awake_.push_back(v);
      }
    }
    if (awake_.empty()) break;
    const std::uint64_t awake_count = awake_.size();

    // Execute on_round for every awake node — concurrently when a pool is
    // configured.  Node programs only touch their own context (per-node
    // RNG, outbox, tallies), so the only ordering freedom is which node
    // runs first, and nothing observable depends on it: all sends land in
    // per-context outboxes (and the sender-owned per-edge tallies) and all
    // metering lands in per-context tallies, both merged below in canonical
    // node-id order.  A bandwidth violation throws inside a worker; the
    // pool rethrows the smallest failing node's exception — exactly what
    // the serial loop would have raised.
    const auto run_node = [this](std::size_t i) {
      const std::size_t v = awake_[i];
      processes_[v]->on_round(contexts_[v],
                              front_.inbox(static_cast<NodeId>(v)));
    };
    if (pool_) {
      pool_->parallel_for_ranges(awake_.size(),
                                 [&](std::size_t begin, std::size_t end) {
                                   for (std::size_t i = begin; i < end; ++i) {
                                     run_node(i);
                                   }
                                 });
    } else {
      for (std::size_t i = 0; i < awake_.size(); ++i) run_node(i);
    }

    // Canonical merge: fold per-context tallies into the run metrics with
    // the fixed-chunk reduction — per-thread partials combined in ascending
    // chunk order, so the result is the serial fold's exactly (integer sums
    // and maxes over disjoint awake ranges; halted nodes contribute
    // nothing).
    struct RoundTally {
      std::uint64_t messages = 0;
      std::uint64_t bits = 0;
      std::uint64_t cut_messages = 0;
      std::uint64_t cut_bits = 0;
      std::uint64_t retransmissions = 0;
      std::uint64_t replica_messages = 0;
      std::uint64_t replica_bits = 0;
      std::uint64_t adopted_walks = 0;
      std::uint64_t abandoned_walks = 0;
      std::uint64_t peak_bits = 0;
      std::uint64_t peak_msgs = 0;
    };
    const auto tally_range = [&](std::size_t begin, std::size_t end) {
      RoundTally t;
      for (std::size_t i = begin; i < end; ++i) {
        const ContextImpl& ctx = contexts_[awake_[i]];
        t.messages += ctx.round_messages_;
        t.bits += ctx.round_bits_;
        t.cut_messages += ctx.round_cut_messages_;
        t.cut_bits += ctx.round_cut_bits_;
        t.retransmissions += ctx.round_retransmissions_;
        t.replica_messages += ctx.round_replica_messages_;
        t.replica_bits += ctx.round_replica_bits_;
        t.adopted_walks += ctx.round_adopted_walks_;
        t.abandoned_walks += ctx.round_abandoned_walks_;
        t.peak_bits = std::max(t.peak_bits, ctx.round_peak_bits_);
        t.peak_msgs = std::max(t.peak_msgs, ctx.round_peak_msgs_);
      }
      return t;
    };
    const auto tally_combine = [](RoundTally a, const RoundTally& b) {
      a.messages += b.messages;
      a.bits += b.bits;
      a.cut_messages += b.cut_messages;
      a.cut_bits += b.cut_bits;
      a.retransmissions += b.retransmissions;
      a.replica_messages += b.replica_messages;
      a.replica_bits += b.replica_bits;
      a.adopted_walks += b.adopted_walks;
      a.abandoned_walks += b.abandoned_walks;
      a.peak_bits = std::max(a.peak_bits, b.peak_bits);
      a.peak_msgs = std::max(a.peak_msgs, b.peak_msgs);
      return a;
    };
    // The serial fault-free fast path skips the tally pass entirely:
    // messages/bits/peaks come off the sparse schedule's touched-edge walk
    // (sent == delivered without faults), and the rare leftovers (cut
    // metering, retransmission counts) fold into the awake-set merge below.
    RoundTally tally;
    const bool serial_fast = serial_touch_;
    if (!serial_fast) {
      tally = pool_ ? parallel_reduce(pool_.get(), awake_.size(), RoundTally{},
                                      tally_range, tally_combine)
                    : tally_range(0, awake_.size());
    }

    // Deliver: every outbox message becomes next round's inbox content, by
    // the count-then-place scheme (see congest/arena.hpp).  Fault-free
    // rounds use the sparse schedule over exactly the touched edges
    // (assembled in ascending edge-id order, so inbox content keeps the
    // canonical sender-major layout).  With a fault plan active, the serial
    // fate pass first decides every message's fate — preserving the
    // injector's canonical draw order — and rewrites the per-edge counts to
    // what actually lands; the dense schedule then consumes them.  Senders
    // were already charged bandwidth at send time — a dropped message is
    // traffic spent, value lost, exactly like a real lossy link.
    std::uint64_t round_dropped = 0;
    std::uint64_t round_duplicated = 0;
    DeliveryTotals delivered;
    if (fault_free) {
      if (serial_fast) {
        // send_impl already built the touched-edge list, in ascending order
        // unless some sender pushed slots out of order (rare; sort then).
        if (!touched_edges_sorted_) {
          std::sort(touched_edges_.begin(), touched_edges_.end());
        }
        delivered = planner_.schedule_sparse(touched_edges_, back_, receivers);
        touched_edges_.clear();
        touched_edges_sorted_ = true;
      } else {
        touched_edges.clear();
        for (const std::size_t v : awake_) {
          ContextImpl& ctx = contexts_[v];
          if (ctx.touched_slots_.empty()) continue;
          // Slots are recorded in first-send order; ascending edge ids need
          // them sorted (senders already ascend via awake_).
          if (!ctx.touched_sorted_) {
            std::sort(ctx.touched_slots_.begin(), ctx.touched_slots_.end());
          }
          for (const std::uint32_t slot : ctx.touched_slots_) {
            touched_edges.push_back(
                static_cast<std::uint32_t>(ctx.edge_base_ + slot));
          }
        }
        delivered = planner_.schedule_sparse(touched_edges, back_, receivers);
      }
    } else {
      const auto [dropped, duplicated] = run_fate_pass();
      round_dropped = dropped;
      round_duplicated = duplicated;
      delivered = planner_.schedule(true, back_, pool_.get());
    }
    place_messages();
    std::swap(front_, back_);

    // End-of-round bookkeeping over the awake set.  Fault-free rounds fuse
    // it with the next-awake merge: non-halted survivors merged with the
    // receivers (woken here, exactly as the dense scan would at the top of
    // the next round).  Both inputs ascend, so the merge keeps the
    // canonical order the sparse schedule depends on.  Every node that ran
    // this round is consumed exactly once, which is where its round state
    // is cleared (after the schedule and placement consumed the tallies) —
    // and, on the fast path, where the tallies the schedule cannot see (cut
    // metering, retransmissions) are folded in.
    if (fault_free) {
      for (const NodeId r : receivers) {
        contexts_[static_cast<std::size_t>(r)].halted_ = false;
      }
      const auto consume_awake = [&](std::size_t av) {
        ContextImpl& ctx = contexts_[av];
        if (serial_fast) {
          tally.cut_messages += ctx.round_cut_messages_;
          tally.cut_bits += ctx.round_cut_bits_;
          tally.retransmissions += ctx.round_retransmissions_;
          tally.replica_messages += ctx.round_replica_messages_;
          tally.replica_bits += ctx.round_replica_bits_;
          tally.adopted_walks += ctx.round_adopted_walks_;
          tally.abandoned_walks += ctx.round_abandoned_walks_;
        }
        ctx.clear_round_tallies();
        return !ctx.halted_;
      };
      next_awake.clear();
      std::size_t ai = 0;
      std::size_t ri = 0;
      while (ai < awake_.size() && ri < receivers.size()) {
        const std::size_t av = awake_[ai];
        const auto rv = static_cast<std::size_t>(receivers[ri]);
        if (av < rv) {
          if (consume_awake(av)) next_awake.push_back(av);
          ++ai;
        } else if (rv < av) {
          next_awake.push_back(rv);
          ++ri;
        } else {
          consume_awake(av);  // a receiver is never halted — always awake
          next_awake.push_back(av);
          ++ai;
          ++ri;
        }
      }
      for (; ai < awake_.size(); ++ai) {
        if (consume_awake(awake_[ai])) next_awake.push_back(awake_[ai]);
      }
      for (; ri < receivers.size(); ++ri) {
        next_awake.push_back(static_cast<std::size_t>(receivers[ri]));
      }
      awake_.swap(next_awake);
      sparse_wake_ready = true;
    } else {
      for (const std::size_t v : awake_) contexts_[v].clear_round_tallies();
    }

    if (serial_fast) {
      tally.messages = delivered.messages;
      tally.bits = delivered.bits;
      tally.peak_bits = delivered.peak_bits;
      tally.peak_msgs = delivered.peak_msgs;
    }
    metrics_.total_messages += tally.messages;
    metrics_.total_bits += tally.bits;
    metrics_.cut_messages += tally.cut_messages;
    metrics_.cut_bits += tally.cut_bits;
    metrics_.retransmissions += tally.retransmissions;
    metrics_.replica_messages += tally.replica_messages;
    metrics_.replica_bits += tally.replica_bits;
    metrics_.adopted_walks += tally.adopted_walks;
    metrics_.abandoned_walks += tally.abandoned_walks;
    metrics_.max_bits_per_edge_round =
        std::max(metrics_.max_bits_per_edge_round, tally.peak_bits);
    metrics_.max_messages_per_edge_round =
        std::max(metrics_.max_messages_per_edge_round, tally.peak_msgs);
    metrics_.dropped_messages += round_dropped;
    metrics_.duplicated_messages += round_duplicated;
    if (config_.round_observer) {
      RoundSnapshot snapshot;
      snapshot.round = round_;
      snapshot.messages = tally.messages;
      snapshot.bits = tally.bits;
      snapshot.awake_nodes = awake_count;
      snapshot.dropped_messages = round_dropped;
      snapshot.duplicated_messages = round_duplicated;
      snapshot.crashed_nodes = metrics_.crashed_nodes;
      snapshot.retransmissions = tally.retransmissions;
      snapshot.replica_messages = tally.replica_messages;
      snapshot.replica_bits = tally.replica_bits;
      snapshot.adopted_walks = tally.adopted_walks;
      snapshot.abandoned_walks = tally.abandoned_walks;
      config_.round_observer(snapshot);
    }
    ++round_;
    metrics_.rounds = round_;

    if (delivered.messages == 0) {
      // No traffic: the run ends as soon as everyone is halted.  Nodes
      // outside the awake set are halted by construction, so checking the
      // (fault-free: freshly merged) awake set covers all n.
      bool all_halted = true;
      if (fault_free) {
        all_halted = awake_.empty();
      } else {
        for (const std::size_t v : awake_) {
          if (!contexts_[v].halted_) {
            all_halted = false;
            break;
          }
        }
      }
      if (all_halted) break;
    }
  }
  serial_touch_ = false;
  pool_.reset();  // join workers; ~Network covers the exceptional paths
  return metrics_;
}

}  // namespace rwbc
