#include "congest/network.hpp"

#include <algorithm>
#include <string>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

// Per-node view handed to NodeProcess callbacks.  Owns the node's mailboxes
// and per-round bandwidth accounting; all sends funnel through here so the
// Network can meter them.
//
// Thread-safety contract (the deterministic parallel round path): while
// on_round runs — possibly concurrently across nodes — a context touches
// only its own members plus const Network state (graph, bit budget, round
// number, cut flags).  All metering accumulates into per-context tallies
// that the single-threaded driver merges in canonical node-id order after
// the round, so serial and parallel execution produce bit-identical
// metrics, snapshots, and delivery order.
class Network::ContextImpl final : public NodeContext {
 public:
  ContextImpl(Network& net, NodeId id)
      : net_(net),
        id_(id),
        rng_(net.config_.seed, static_cast<std::uint64_t>(id)),
        neighbors_(net.graph_.neighbors(id)),
        bits_this_round_(neighbors_.size(), 0),
        msgs_this_round_(neighbors_.size(), 0) {}

  NodeId id() const override { return id_; }
  NodeId node_count() const override { return net_.graph_.node_count(); }
  std::span<const NodeId> neighbors() const override { return neighbors_; }
  NodeId degree() const override {
    return static_cast<NodeId>(neighbors_.size());
  }
  std::uint64_t round() const override { return net_.round_; }
  Rng& rng() override { return rng_; }
  std::uint64_t bit_budget() const override { return net_.bit_budget_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
    RWBC_REQUIRE(it != neighbors_.end() && *it == neighbor,
                 "send target is not a neighbor");
    const auto slot = static_cast<std::size_t>(it - neighbors_.begin());
    const auto bits = static_cast<std::uint64_t>(payload.bit_count());
    bits_this_round_[slot] += bits;
    msgs_this_round_[slot] += 1;
    if (net_.config_.enforce_bandwidth) {
      RWBC_REQUIRE(bits_this_round_[slot] <= net_.bit_budget_,
                   "CONGEST bandwidth budget exceeded on edge " +
                       std::to_string(id_) + "->" + std::to_string(neighbor) +
                       " in round " + std::to_string(net_.round_));
    }
    round_messages_ += 1;
    round_bits_ += bits;
    if (net_.has_cut_ && net_.is_cut_edge(id_, neighbor)) {
      round_cut_messages_ += 1;
      round_cut_bits_ += bits;
    }
    Message msg;
    msg.from = id_;
    msg.to = neighbor;
    msg.payload = payload.bytes();
    msg.bit_count = payload.bit_count();
    outbox_.push_back(std::move(msg));
  }

  void halt() override { halted_ = true; }

  void note_retransmission() override { round_retransmissions_ += 1; }

  // --- driver-side hooks -------------------------------------------------

  void begin_round() {
    std::fill(bits_this_round_.begin(), bits_this_round_.end(), 0);
    std::fill(msgs_this_round_.begin(), msgs_this_round_.end(), 0);
    round_messages_ = 0;
    round_bits_ = 0;
    round_cut_messages_ = 0;
    round_cut_bits_ = 0;
    round_retransmissions_ = 0;
  }

  std::uint64_t peak_bits() const {
    return bits_this_round_.empty()
               ? 0
               : *std::max_element(bits_this_round_.begin(),
                                   bits_this_round_.end());
  }
  std::uint64_t peak_msgs() const {
    return msgs_this_round_.empty()
               ? 0
               : *std::max_element(msgs_this_round_.begin(),
                                   msgs_this_round_.end());
  }

  Network& net_;
  NodeId id_;
  Rng rng_;
  std::span<const NodeId> neighbors_;
  std::vector<std::uint64_t> bits_this_round_;
  std::vector<std::uint64_t> msgs_this_round_;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_bits_ = 0;
  std::uint64_t round_cut_messages_ = 0;
  std::uint64_t round_cut_bits_ = 0;
  std::uint64_t round_retransmissions_ = 0;
  std::vector<Message> inbox_;
  std::vector<Message> outbox_;
  bool halted_ = false;
};

Network::Network(const Graph& graph, CongestConfig config)
    : graph_(graph), config_(config) {
  const auto n = static_cast<std::uint64_t>(
      std::max<NodeId>(graph.node_count(), 2));
  bit_budget_ = std::max(
      config_.bit_floor,
      config_.bandwidth_log_multiplier * static_cast<std::uint64_t>(
                                              bits_for(n)));
  processes_.resize(static_cast<std::size_t>(graph.node_count()));
  contexts_.reserve(processes_.size());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    contexts_.push_back(std::make_unique<ContextImpl>(*this, v));
  }
  cut_edge_flags_.assign(graph.edge_count(), false);
  if (!config_.metered_cut.empty()) {
    register_cut(config_.metered_cut);
  }
  if (config_.faults.any()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults, graph_);
  }
}

Network::~Network() = default;

void Network::set_node(NodeId v, std::unique_ptr<NodeProcess> process) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  RWBC_REQUIRE(process != nullptr, "node program must not be null");
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Network::set_all_nodes(
    const std::function<std::unique_ptr<NodeProcess>(NodeId)>& factory) {
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    set_node(v, factory(v));
  }
}

void Network::register_cut(std::span<const Edge> cut_edges) {
  const auto all = graph_.edges();
  for (const Edge& raw : cut_edges) {
    Edge e{std::min(raw.u, raw.v), std::max(raw.u, raw.v)};
    const auto it = std::lower_bound(all.begin(), all.end(), e);
    RWBC_REQUIRE(it != all.end() && *it == e,
                 "cut edge is not an edge of the graph");
    cut_edge_flags_[static_cast<std::size_t>(it - all.begin())] = true;
    has_cut_ = true;
  }
}

bool Network::is_cut_edge(NodeId from, NodeId to) const {
  Edge e{std::min(from, to), std::max(from, to)};
  const auto all = graph_.edges();
  const auto it = std::lower_bound(all.begin(), all.end(), e);
  return it != all.end() && *it == e &&
         cut_edge_flags_[static_cast<std::size_t>(it - all.begin())];
}

NodeProcess& Network::node(NodeId v) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

const NodeProcess& Network::node(NodeId v) const {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  const auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

void Network::save_checkpoint(CheckpointWriter& out) const {
  if (config_.checkpoint_prologue) config_.checkpoint_prologue(out);
  // Fingerprint: enough to reject a snapshot resumed against the wrong
  // graph, seed, or pipeline phase before any state is touched.
  out.str(config_.checkpoint_label);
  out.u64(static_cast<std::uint64_t>(graph_.node_count()));
  out.u64(graph_.edge_count());
  out.u64(config_.seed);
  out.u64(bit_budget_);
  out.u64(round_);
  save_metrics(out, metrics_);
  // Fault-injector engine state (schedule is rebuilt from the plan).
  out.boolean(injector_ != nullptr);
  if (injector_ != nullptr) injector_->save_state(out);
  // Per-node: RNG stream, halted flag, pending inbox, program state.  The
  // program blob is length-prefixed so restore can verify each program
  // consumes exactly what it saved.
  for (std::size_t v = 0; v < contexts_.size(); ++v) {
    const ContextImpl& ctx = *contexts_[v];
    for (std::uint64_t word : ctx.rng_.state()) out.u64(word);
    out.boolean(ctx.halted_);
    out.u64(ctx.inbox_.size());
    for (const Message& msg : ctx.inbox_) {
      out.u32(static_cast<std::uint32_t>(msg.from));
      out.u64(static_cast<std::uint64_t>(msg.bit_count));
      out.blob(msg.payload);
    }
    CheckpointWriter program;
    processes_[v]->save_state(program);
    out.blob(program.buffer());
  }
}

void Network::restore_checkpoint(CheckpointReader& in) {
  RWBC_REQUIRE(!ran_, "restore_checkpoint must be called before run()");
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_REQUIRE(processes_[v] != nullptr,
                 "every node needs a program before restore_checkpoint()");
  }
  const std::string label = in.str();
  if (label != config_.checkpoint_label) {
    throw CheckpointError("checkpoint label mismatch: snapshot is '" + label +
                          "', network expects '" + config_.checkpoint_label +
                          "'");
  }
  const std::uint64_t nodes = in.u64();
  const std::uint64_t edges = in.u64();
  const std::uint64_t seed = in.u64();
  const std::uint64_t budget = in.u64();
  if (nodes != static_cast<std::uint64_t>(graph_.node_count()) ||
      edges != graph_.edge_count()) {
    throw CheckpointError("checkpoint graph mismatch: snapshot has " +
                          std::to_string(nodes) + " nodes / " +
                          std::to_string(edges) + " edges");
  }
  if (seed != config_.seed) {
    throw CheckpointError("checkpoint seed mismatch: snapshot used seed " +
                          std::to_string(seed));
  }
  if (budget != bit_budget_) {
    throw CheckpointError("checkpoint bandwidth mismatch: snapshot budget " +
                          std::to_string(budget) + " bits, network has " +
                          std::to_string(bit_budget_));
  }
  // Rebuild derived state exactly as an uninterrupted run would have, then
  // overwrite everything mutable with the snapshot.  on_start never sends
  // (outboxes are cleared below regardless) and its RNG draws are undone by
  // the stream restore.
  for (std::size_t v = 0; v < n; ++v) {
    processes_[v]->on_start(*contexts_[v]);
  }
  round_ = in.u64();
  metrics_ = load_metrics(in);
  const bool snapshot_has_injector = in.boolean();
  if (snapshot_has_injector != (injector_ != nullptr)) {
    throw CheckpointError(
        "checkpoint fault-plan mismatch: snapshot and network disagree on "
        "fault injection");
  }
  if (injector_ != nullptr) injector_->load_state(in);
  for (std::size_t v = 0; v < n; ++v) {
    ContextImpl& ctx = *contexts_[v];
    std::array<std::uint64_t, 4> rng_state{};
    for (auto& word : rng_state) word = in.u64();
    ctx.rng_.set_state(rng_state);
    ctx.halted_ = in.boolean();
    ctx.inbox_.clear();
    ctx.outbox_.clear();
    const std::uint64_t inbox_size = in.u64();
    for (std::uint64_t i = 0; i < inbox_size; ++i) {
      Message msg;
      msg.from = static_cast<NodeId>(in.u32());
      msg.to = static_cast<NodeId>(v);
      msg.bit_count = static_cast<std::size_t>(in.u64());
      msg.payload = in.blob();
      ctx.inbox_.push_back(std::move(msg));
    }
    CheckpointReader program(in.blob());
    processes_[v]->load_state(program);
    if (program.remaining() != 0) {
      throw CheckpointError("node " + std::to_string(v) + " left " +
                            std::to_string(program.remaining()) +
                            " unread byte(s) in its checkpoint blob");
    }
  }
  if (in.remaining() != 0) {
    throw CheckpointError("trailing " + std::to_string(in.remaining()) +
                          " byte(s) after checkpoint payload");
  }
  resumed_ = true;
  last_checkpoint_round_ = round_;
}

RunMetrics Network::run() {
  RWBC_REQUIRE(!ran_, "Network::run may only be called once");
  if (!resumed_ && !config_.resume_checkpoint.empty()) {
    // Label-selective resume (see CongestConfig::resume_checkpoint): peek
    // the snapshot's label with a throwaway reader; only a match restores.
    CheckpointReader peek =
        open_checkpoint(config_.resume_checkpoint, "resume checkpoint");
    if (peek.str() == config_.checkpoint_label) {
      CheckpointReader reader =
          open_checkpoint(config_.resume_checkpoint, "resume checkpoint");
      restore_checkpoint(reader);
    }
  }
  ran_ = true;
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_REQUIRE(processes_[v] != nullptr,
                 "every node needs a program before run()");
  }
  const std::size_t pool_threads =
      config_.num_threads < 0
          ? ThreadPool::hardware_threads()
          : static_cast<std::size_t>(config_.num_threads);
  if (pool_threads > 0) pool_ = std::make_unique<ThreadPool>(pool_threads);
  if (!resumed_) {
    for (std::size_t v = 0; v < n; ++v) {
      processes_[v]->on_start(*contexts_[v]);
    }
    round_ = 0;
  }
  // When resumed, round_/metrics_/mailboxes/RNG streams were installed by
  // restore_checkpoint(); the loop below continues exactly where the
  // snapshot was taken.

  while (true) {
    RWBC_REQUIRE(round_ < config_.max_rounds,
                 "simulation exceeded the configured max_rounds");
    // Snapshot point: top of the loop, before this round's crash
    // activation.  Inboxes hold last round's deliveries in canonical
    // (sender id, send order) order and outboxes are empty, so the
    // serialized bytes are identical at every thread count.  Skipped at
    // round 0 (nothing to save) and at the round we just resumed from.
    if (config_.checkpoint_interval > 0 && config_.checkpoint_sink &&
        round_ > 0 && round_ % config_.checkpoint_interval == 0 &&
        round_ != last_checkpoint_round_) {
      CheckpointWriter writer;
      save_checkpoint(writer);
      config_.checkpoint_sink(round_, seal_checkpoint(writer));
      last_checkpoint_round_ = round_;
    }
    // Crash-stop failures scheduled for this round take effect before
    // anything else: a crashed node is permanently halted, cannot be woken
    // by messages, and counts toward RunMetrics::crashed_nodes exactly
    // once.  (Messages addressed to it were already discarded at the
    // delivery point below.)
    if (injector_ != nullptr && injector_->has_crashes()) {
      metrics_.crashed_nodes += injector_->activate_crashes(round_);
    }
    // A message arriving at a halted node wakes it.
    bool any_awake = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (injector_ != nullptr &&
          injector_->node_crashed(static_cast<NodeId>(v), round_)) {
        contexts_[v]->halted_ = true;
        contexts_[v]->inbox_.clear();
        continue;
      }
      if (!contexts_[v]->inbox_.empty()) contexts_[v]->halted_ = false;
      if (!contexts_[v]->halted_) any_awake = true;
    }
    if (!any_awake) break;

    for (std::size_t v = 0; v < n; ++v) contexts_[v]->begin_round();

    // Execute on_round for every awake node — concurrently when a pool is
    // configured.  Node programs only touch their own context (per-node
    // RNG, mailboxes, tallies), so the only ordering freedom is which node
    // runs first, and nothing observable depends on it: all sends land in
    // per-context outboxes and all metering lands in per-context tallies,
    // both merged below in canonical node-id order.  A bandwidth violation
    // throws inside a worker; the pool rethrows the smallest-node-id
    // exception — exactly what the serial loop would have raised.
    awake_.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (!contexts_[v]->halted_) awake_.push_back(v);
    }
    const std::function<void(std::size_t)> run_node = [this](std::size_t i) {
      const std::size_t v = awake_[i];
      processes_[v]->on_round(*contexts_[v], contexts_[v]->inbox_);
    };
    if (pool_) {
      pool_->parallel_for(awake_.size(), run_node);
    } else {
      for (std::size_t i = 0; i < awake_.size(); ++i) run_node(i);
    }

    // Canonical merge: fold per-context tallies into the run metrics in
    // node-id order (halted nodes tallied zeros in begin_round).
    std::uint64_t round_messages = 0;
    std::uint64_t round_bits = 0;
    std::uint64_t round_peak_bits = 0;
    std::uint64_t round_peak_msgs = 0;
    std::uint64_t round_retransmissions = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const ContextImpl& ctx = *contexts_[v];
      round_messages += ctx.round_messages_;
      round_bits += ctx.round_bits_;
      metrics_.cut_messages += ctx.round_cut_messages_;
      metrics_.cut_bits += ctx.round_cut_bits_;
      round_retransmissions += ctx.round_retransmissions_;
      round_peak_bits = std::max(round_peak_bits, ctx.peak_bits());
      round_peak_msgs = std::max(round_peak_msgs, ctx.peak_msgs());
    }
    metrics_.total_messages += round_messages;
    metrics_.total_bits += round_bits;
    metrics_.retransmissions += round_retransmissions;
    metrics_.max_bits_per_edge_round =
        std::max(metrics_.max_bits_per_edge_round, round_peak_bits);
    metrics_.max_messages_per_edge_round =
        std::max(metrics_.max_messages_per_edge_round, round_peak_msgs);

    // Deliver: every outbox message becomes next round's inbox content.
    // This merge is the fault-injection point: it runs serially with
    // messages in canonical (sender id, send order) order, so the fault
    // RNG stream sees the same sequence at every thread count.  Senders
    // were already charged bandwidth at send time — a dropped message is
    // traffic spent, value lost, exactly like a real lossy link.
    std::uint64_t round_dropped = 0;
    std::uint64_t round_duplicated = 0;
    for (std::size_t v = 0; v < n; ++v) contexts_[v]->inbox_.clear();
    bool delivered_any = false;
    for (std::size_t v = 0; v < n; ++v) {
      for (Message& msg : contexts_[v]->outbox_) {
        if (injector_ != nullptr) {
          // Structural faults first (no RNG draws): dead destination or a
          // downed link.  The destination is dead iff it will not execute
          // the round this message would be read in (round_ + 1).
          if (injector_->node_crashed(msg.to, round_ + 1) ||
              injector_->link_down(msg.from, msg.to, round_)) {
            ++round_dropped;
            continue;
          }
          switch (injector_->draw_fate()) {
            case FaultInjector::Fate::kDrop:
              ++round_dropped;
              continue;
            case FaultInjector::Fate::kDuplicate:
              ++round_duplicated;
              contexts_[static_cast<std::size_t>(msg.to)]->inbox_.push_back(
                  msg);  // deliberate copy: both copies arrive this round
              break;
            case FaultInjector::Fate::kDeliver:
              break;
          }
        }
        delivered_any = true;
        contexts_[static_cast<std::size_t>(msg.to)]->inbox_.push_back(
            std::move(msg));
      }
      contexts_[v]->outbox_.clear();
    }
    metrics_.dropped_messages += round_dropped;
    metrics_.duplicated_messages += round_duplicated;
    if (config_.round_observer) {
      RoundSnapshot snapshot;
      snapshot.round = round_;
      snapshot.messages = round_messages;
      snapshot.bits = round_bits;
      snapshot.awake_nodes = awake_.size();
      snapshot.dropped_messages = round_dropped;
      snapshot.duplicated_messages = round_duplicated;
      snapshot.crashed_nodes = metrics_.crashed_nodes;
      snapshot.retransmissions = round_retransmissions;
      config_.round_observer(snapshot);
    }
    ++round_;
    metrics_.rounds = round_;

    if (!delivered_any) {
      // No traffic: the run ends as soon as everyone is halted.
      bool all_halted = true;
      for (std::size_t v = 0; v < n; ++v) {
        if (!contexts_[v]->halted_) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) break;
    }
  }
  pool_.reset();  // join workers; ~Network covers the exceptional paths
  return metrics_;
}

}  // namespace rwbc
