#include "congest/network.hpp"

#include <algorithm>
#include <string>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace rwbc {

// Per-node view handed to NodeProcess callbacks.  Owns the node's mailboxes
// and per-round bandwidth accounting; all sends funnel through here so the
// Network can meter them.
//
// Thread-safety contract (the deterministic parallel round path): while
// on_round runs — possibly concurrently across nodes — a context touches
// only its own members plus const Network state (graph, bit budget, round
// number, cut flags).  All metering accumulates into per-context tallies
// that the single-threaded driver merges in canonical node-id order after
// the round, so serial and parallel execution produce bit-identical
// metrics, snapshots, and delivery order.
class Network::ContextImpl final : public NodeContext {
 public:
  ContextImpl(Network& net, NodeId id)
      : net_(net),
        id_(id),
        rng_(net.config_.seed, static_cast<std::uint64_t>(id)),
        neighbors_(net.graph_.neighbors(id)),
        bits_this_round_(neighbors_.size(), 0),
        msgs_this_round_(neighbors_.size(), 0) {}

  NodeId id() const override { return id_; }
  NodeId node_count() const override { return net_.graph_.node_count(); }
  std::span<const NodeId> neighbors() const override { return neighbors_; }
  NodeId degree() const override {
    return static_cast<NodeId>(neighbors_.size());
  }
  std::uint64_t round() const override { return net_.round_; }
  Rng& rng() override { return rng_; }
  std::uint64_t bit_budget() const override { return net_.bit_budget_; }

  void send(NodeId neighbor, const BitWriter& payload) override {
    const auto it =
        std::lower_bound(neighbors_.begin(), neighbors_.end(), neighbor);
    RWBC_REQUIRE(it != neighbors_.end() && *it == neighbor,
                 "send target is not a neighbor");
    const auto slot = static_cast<std::size_t>(it - neighbors_.begin());
    const auto bits = static_cast<std::uint64_t>(payload.bit_count());
    bits_this_round_[slot] += bits;
    msgs_this_round_[slot] += 1;
    if (net_.config_.enforce_bandwidth) {
      RWBC_REQUIRE(bits_this_round_[slot] <= net_.bit_budget_,
                   "CONGEST bandwidth budget exceeded on edge " +
                       std::to_string(id_) + "->" + std::to_string(neighbor) +
                       " in round " + std::to_string(net_.round_));
    }
    round_messages_ += 1;
    round_bits_ += bits;
    if (net_.has_cut_ && net_.is_cut_edge(id_, neighbor)) {
      round_cut_messages_ += 1;
      round_cut_bits_ += bits;
    }
    Message msg;
    msg.from = id_;
    msg.to = neighbor;
    msg.payload = payload.bytes();
    msg.bit_count = payload.bit_count();
    outbox_.push_back(std::move(msg));
  }

  void halt() override { halted_ = true; }

  void note_retransmission() override { round_retransmissions_ += 1; }

  // --- driver-side hooks -------------------------------------------------

  void begin_round() {
    std::fill(bits_this_round_.begin(), bits_this_round_.end(), 0);
    std::fill(msgs_this_round_.begin(), msgs_this_round_.end(), 0);
    round_messages_ = 0;
    round_bits_ = 0;
    round_cut_messages_ = 0;
    round_cut_bits_ = 0;
    round_retransmissions_ = 0;
  }

  std::uint64_t peak_bits() const {
    return bits_this_round_.empty()
               ? 0
               : *std::max_element(bits_this_round_.begin(),
                                   bits_this_round_.end());
  }
  std::uint64_t peak_msgs() const {
    return msgs_this_round_.empty()
               ? 0
               : *std::max_element(msgs_this_round_.begin(),
                                   msgs_this_round_.end());
  }

  Network& net_;
  NodeId id_;
  Rng rng_;
  std::span<const NodeId> neighbors_;
  std::vector<std::uint64_t> bits_this_round_;
  std::vector<std::uint64_t> msgs_this_round_;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_bits_ = 0;
  std::uint64_t round_cut_messages_ = 0;
  std::uint64_t round_cut_bits_ = 0;
  std::uint64_t round_retransmissions_ = 0;
  std::vector<Message> inbox_;
  std::vector<Message> outbox_;
  bool halted_ = false;
};

Network::Network(const Graph& graph, CongestConfig config)
    : graph_(graph), config_(config) {
  const auto n = static_cast<std::uint64_t>(
      std::max<NodeId>(graph.node_count(), 2));
  bit_budget_ = std::max(
      config_.bit_floor,
      config_.bandwidth_log_multiplier * static_cast<std::uint64_t>(
                                              bits_for(n)));
  processes_.resize(static_cast<std::size_t>(graph.node_count()));
  contexts_.reserve(processes_.size());
  for (NodeId v = 0; v < graph.node_count(); ++v) {
    contexts_.push_back(std::make_unique<ContextImpl>(*this, v));
  }
  cut_edge_flags_.assign(graph.edge_count(), false);
  if (!config_.metered_cut.empty()) {
    register_cut(config_.metered_cut);
  }
  if (config_.faults.any()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults, graph_);
  }
}

Network::~Network() = default;

void Network::set_node(NodeId v, std::unique_ptr<NodeProcess> process) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  RWBC_REQUIRE(process != nullptr, "node program must not be null");
  processes_[static_cast<std::size_t>(v)] = std::move(process);
}

void Network::set_all_nodes(
    const std::function<std::unique_ptr<NodeProcess>(NodeId)>& factory) {
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    set_node(v, factory(v));
  }
}

void Network::register_cut(std::span<const Edge> cut_edges) {
  const auto all = graph_.edges();
  for (const Edge& raw : cut_edges) {
    Edge e{std::min(raw.u, raw.v), std::max(raw.u, raw.v)};
    const auto it = std::lower_bound(all.begin(), all.end(), e);
    RWBC_REQUIRE(it != all.end() && *it == e,
                 "cut edge is not an edge of the graph");
    cut_edge_flags_[static_cast<std::size_t>(it - all.begin())] = true;
    has_cut_ = true;
  }
}

bool Network::is_cut_edge(NodeId from, NodeId to) const {
  Edge e{std::min(from, to), std::max(from, to)};
  const auto all = graph_.edges();
  const auto it = std::lower_bound(all.begin(), all.end(), e);
  return it != all.end() && *it == e &&
         cut_edge_flags_[static_cast<std::size_t>(it - all.begin())];
}

NodeProcess& Network::node(NodeId v) {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

const NodeProcess& Network::node(NodeId v) const {
  RWBC_REQUIRE(v >= 0 && v < graph_.node_count(), "node id out of range");
  const auto& p = processes_[static_cast<std::size_t>(v)];
  RWBC_REQUIRE(p != nullptr, "node has no program installed");
  return *p;
}

RunMetrics Network::run() {
  RWBC_REQUIRE(!ran_, "Network::run may only be called once");
  ran_ = true;
  const auto n = static_cast<std::size_t>(graph_.node_count());
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_REQUIRE(processes_[v] != nullptr,
                 "every node needs a program before run()");
  }
  const std::size_t pool_threads =
      config_.num_threads < 0
          ? ThreadPool::hardware_threads()
          : static_cast<std::size_t>(config_.num_threads);
  if (pool_threads > 0) pool_ = std::make_unique<ThreadPool>(pool_threads);
  for (std::size_t v = 0; v < n; ++v) {
    processes_[v]->on_start(*contexts_[v]);
  }

  round_ = 0;
  while (true) {
    RWBC_REQUIRE(round_ < config_.max_rounds,
                 "simulation exceeded the configured max_rounds");
    // Crash-stop failures scheduled for this round take effect before
    // anything else: a crashed node is permanently halted, cannot be woken
    // by messages, and counts toward RunMetrics::crashed_nodes exactly
    // once.  (Messages addressed to it were already discarded at the
    // delivery point below.)
    if (injector_ != nullptr && injector_->has_crashes()) {
      metrics_.crashed_nodes += injector_->activate_crashes(round_);
    }
    // A message arriving at a halted node wakes it.
    bool any_awake = false;
    for (std::size_t v = 0; v < n; ++v) {
      if (injector_ != nullptr &&
          injector_->node_crashed(static_cast<NodeId>(v), round_)) {
        contexts_[v]->halted_ = true;
        contexts_[v]->inbox_.clear();
        continue;
      }
      if (!contexts_[v]->inbox_.empty()) contexts_[v]->halted_ = false;
      if (!contexts_[v]->halted_) any_awake = true;
    }
    if (!any_awake) break;

    for (std::size_t v = 0; v < n; ++v) contexts_[v]->begin_round();

    // Execute on_round for every awake node — concurrently when a pool is
    // configured.  Node programs only touch their own context (per-node
    // RNG, mailboxes, tallies), so the only ordering freedom is which node
    // runs first, and nothing observable depends on it: all sends land in
    // per-context outboxes and all metering lands in per-context tallies,
    // both merged below in canonical node-id order.  A bandwidth violation
    // throws inside a worker; the pool rethrows the smallest-node-id
    // exception — exactly what the serial loop would have raised.
    awake_.clear();
    for (std::size_t v = 0; v < n; ++v) {
      if (!contexts_[v]->halted_) awake_.push_back(v);
    }
    const std::function<void(std::size_t)> run_node = [this](std::size_t i) {
      const std::size_t v = awake_[i];
      processes_[v]->on_round(*contexts_[v], contexts_[v]->inbox_);
    };
    if (pool_) {
      pool_->parallel_for(awake_.size(), run_node);
    } else {
      for (std::size_t i = 0; i < awake_.size(); ++i) run_node(i);
    }

    // Canonical merge: fold per-context tallies into the run metrics in
    // node-id order (halted nodes tallied zeros in begin_round).
    std::uint64_t round_messages = 0;
    std::uint64_t round_bits = 0;
    std::uint64_t round_peak_bits = 0;
    std::uint64_t round_peak_msgs = 0;
    std::uint64_t round_retransmissions = 0;
    for (std::size_t v = 0; v < n; ++v) {
      const ContextImpl& ctx = *contexts_[v];
      round_messages += ctx.round_messages_;
      round_bits += ctx.round_bits_;
      metrics_.cut_messages += ctx.round_cut_messages_;
      metrics_.cut_bits += ctx.round_cut_bits_;
      round_retransmissions += ctx.round_retransmissions_;
      round_peak_bits = std::max(round_peak_bits, ctx.peak_bits());
      round_peak_msgs = std::max(round_peak_msgs, ctx.peak_msgs());
    }
    metrics_.total_messages += round_messages;
    metrics_.total_bits += round_bits;
    metrics_.retransmissions += round_retransmissions;
    metrics_.max_bits_per_edge_round =
        std::max(metrics_.max_bits_per_edge_round, round_peak_bits);
    metrics_.max_messages_per_edge_round =
        std::max(metrics_.max_messages_per_edge_round, round_peak_msgs);

    // Deliver: every outbox message becomes next round's inbox content.
    // This merge is the fault-injection point: it runs serially with
    // messages in canonical (sender id, send order) order, so the fault
    // RNG stream sees the same sequence at every thread count.  Senders
    // were already charged bandwidth at send time — a dropped message is
    // traffic spent, value lost, exactly like a real lossy link.
    std::uint64_t round_dropped = 0;
    std::uint64_t round_duplicated = 0;
    for (std::size_t v = 0; v < n; ++v) contexts_[v]->inbox_.clear();
    bool delivered_any = false;
    for (std::size_t v = 0; v < n; ++v) {
      for (Message& msg : contexts_[v]->outbox_) {
        if (injector_ != nullptr) {
          // Structural faults first (no RNG draws): dead destination or a
          // downed link.  The destination is dead iff it will not execute
          // the round this message would be read in (round_ + 1).
          if (injector_->node_crashed(msg.to, round_ + 1) ||
              injector_->link_down(msg.from, msg.to, round_)) {
            ++round_dropped;
            continue;
          }
          switch (injector_->draw_fate()) {
            case FaultInjector::Fate::kDrop:
              ++round_dropped;
              continue;
            case FaultInjector::Fate::kDuplicate:
              ++round_duplicated;
              contexts_[static_cast<std::size_t>(msg.to)]->inbox_.push_back(
                  msg);  // deliberate copy: both copies arrive this round
              break;
            case FaultInjector::Fate::kDeliver:
              break;
          }
        }
        delivered_any = true;
        contexts_[static_cast<std::size_t>(msg.to)]->inbox_.push_back(
            std::move(msg));
      }
      contexts_[v]->outbox_.clear();
    }
    metrics_.dropped_messages += round_dropped;
    metrics_.duplicated_messages += round_duplicated;
    if (config_.round_observer) {
      RoundSnapshot snapshot;
      snapshot.round = round_;
      snapshot.messages = round_messages;
      snapshot.bits = round_bits;
      snapshot.awake_nodes = awake_.size();
      snapshot.dropped_messages = round_dropped;
      snapshot.duplicated_messages = round_duplicated;
      snapshot.crashed_nodes = metrics_.crashed_nodes;
      snapshot.retransmissions = round_retransmissions;
      config_.round_observer(snapshot);
    }
    ++round_;
    metrics_.rounds = round_;

    if (!delivered_any) {
      // No traffic: the run ends as soon as everyone is halted.
      bool all_halted = true;
      for (std::size_t v = 0; v < n; ++v) {
        if (!contexts_[v]->halted_) {
          all_halted = false;
          break;
        }
      }
      if (all_halted) break;
    }
  }
  pool_.reset();  // join workers; ~Network covers the exceptional paths
  return metrics_;
}

}  // namespace rwbc
