// LU decomposition with partial pivoting.
//
// Used to invert the reduced Laplacian (D_t - A_t) in Newman's exact
// current-flow betweenness (Eq. 3).  The reduced Laplacian of a connected
// graph is symmetric positive definite, so the factorisation never breaks
// down, but partial pivoting keeps the solver general for the tests.
#pragma once

#include "linalg/dense.hpp"

namespace rwbc {

/// PA = LU factorisation of a square matrix.
class LuDecomposition {
 public:
  /// Factorises `a`. Throws rwbc::Error if the matrix is singular to
  /// machine precision.
  explicit LuDecomposition(const DenseMatrix& a);

  /// Solves A x = b. Requires b.size() == n.
  Vector solve(std::span<const double> b) const;

  /// Solves A X = B column-by-column.
  DenseMatrix solve(const DenseMatrix& b) const;

  /// A^{-1}.
  DenseMatrix inverse() const;

  /// det(A), from the product of pivots and the permutation sign.
  double determinant() const;

  std::size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;                 // packed L (unit diag) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
};

/// Convenience one-shot solve of A x = b.
Vector lu_solve(const DenseMatrix& a, std::span<const double> b);

/// Convenience one-shot inverse.
DenseMatrix lu_inverse(const DenseMatrix& a);

}  // namespace rwbc
