// Compressed-sparse-row matrix for the iterative exact solver path.
//
// The reduced Laplacian of a sparse graph has O(n + m) non-zeros, so the
// CG-based exact RWBC uses CSR SpMV instead of O(n^2) dense rows.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// A (row, col, value) entry used to assemble sparse matrices.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from triplets; duplicate (row, col) entries are summed.
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  Vector multiply(std::span<const double> x) const;

  /// y += alpha * A x (no allocation).
  void multiply_add(std::span<const double> x, double alpha,
                    std::span<double> y) const;

  /// Dense copy (tests only; O(rows*cols) memory).
  DenseMatrix to_dense() const;

  /// The diagonal entries (missing diagonals read as 0); used by the
  /// Jacobi preconditioner.
  Vector diagonal() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> offsets_;  // size rows_+1
  std::vector<std::size_t> columns_;
  std::vector<double> values_;
};

}  // namespace rwbc
