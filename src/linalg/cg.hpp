// Conjugate Gradient for symmetric positive definite systems, with an
// optional Jacobi (diagonal) preconditioner.
//
// The exact current-flow betweenness solves (D_t - A_t) x = e_s once per
// source; the reduced Laplacian is SPD on connected graphs, so CG converges
// and costs O(m) per iteration instead of the dense solver's O(n^2).
#pragma once

#include <cstddef>

#include "linalg/csr.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Options for the CG solver.
struct CgOptions {
  double tolerance = 1e-10;     ///< relative residual target ||r|| / ||b||
  std::size_t max_iterations = 0;  ///< 0 = 10 * n
  bool jacobi_preconditioner = true;
};

/// Convergence report.
struct CgResult {
  bool converged = false;
  std::size_t iterations = 0;
  double residual = 0.0;  ///< final relative residual
};

/// Solves A x = b for SPD A; x is overwritten with the solution (its
/// incoming value is the initial guess).  Throws rwbc::Error on size
/// mismatch; reports non-convergence via the result rather than throwing so
/// callers can decide (the exact-RWBC driver treats it as fatal).
CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options = {});

}  // namespace rwbc
