#include "linalg/cg.hpp"

#include <cmath>

namespace rwbc {

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            std::span<double> x, const CgOptions& options) {
  const std::size_t n = a.rows();
  RWBC_REQUIRE(a.cols() == n, "CG requires a square matrix");
  RWBC_REQUIRE(b.size() == n && x.size() == n, "CG size mismatch");

  const std::size_t max_iter =
      options.max_iterations > 0 ? options.max_iterations : 10 * n + 10;

  Vector inv_diag;
  if (options.jacobi_preconditioner) {
    inv_diag = a.diagonal();
    for (double& d : inv_diag) {
      RWBC_REQUIRE(d > 0.0, "Jacobi preconditioner needs positive diagonal");
      d = 1.0 / d;
    }
  }
  auto precondition = [&](const Vector& r, Vector& z) {
    if (options.jacobi_preconditioner) {
      for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    } else {
      z.assign(r.begin(), r.end());
    }
  };

  const double b_norm = norm2(b);
  CgResult result;
  if (b_norm == 0.0) {
    for (double& xi : x) xi = 0.0;
    result.converged = true;
    return result;
  }

  // r = b - A x
  Vector r(b.begin(), b.end());
  a.multiply_add(x, -1.0, r);
  Vector z(n), p(n), ap(n);
  precondition(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    result.residual = norm2(r) / b_norm;
    if (result.residual <= options.tolerance) {
      result.converged = true;
      result.iterations = iter;
      return result;
    }
    std::fill(ap.begin(), ap.end(), 0.0);
    a.multiply_add(p, 1.0, ap);
    const double pap = dot(p, ap);
    RWBC_REQUIRE(pap > 0.0, "CG: matrix is not positive definite");
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    precondition(r, z);
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    result.iterations = iter + 1;
  }
  result.residual = norm2(r) / b_norm;
  result.converged = result.residual <= options.tolerance;
  return result;
}

}  // namespace rwbc
