#include "linalg/resistance.hpp"

#include "centrality/current_flow_exact.hpp"
#include "common/error.hpp"
#include "graph/properties.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"

namespace rwbc {

double effective_resistance(const Graph& g, NodeId s, NodeId t) {
  RWBC_REQUIRE(s >= 0 && s < g.node_count(), "endpoint out of range");
  RWBC_REQUIRE(t >= 0 && t < g.node_count(), "endpoint out of range");
  RWBC_REQUIRE(s != t, "effective resistance needs distinct endpoints");
  require_connected(g, "effective resistance");
  // Ground at t: then R(s, t) = T_ss (the t-row/column of T is zero).
  const DenseMatrix reduced = reduced_laplacian_csr(g, t).to_dense();
  Vector rhs(reduced.rows(), 0.0);
  rhs[reduced_index(s, t)] = 1.0;
  const Vector solution = lu_solve(reduced, rhs);
  return solution[reduced_index(s, t)];
}

DenseMatrix effective_resistance_matrix(const Graph& g) {
  RWBC_REQUIRE(g.node_count() >= 2, "resistance matrix needs n >= 2");
  const DenseMatrix t = exact_potentials(g);
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix r(n, n);
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t u = s + 1; u < n; ++u) {
      const double value = t(s, s) + t(u, u) - 2.0 * t(s, u);
      r(s, u) = value;
      r(u, s) = value;
    }
  }
  return r;
}

double kirchhoff_index(const Graph& g) {
  const DenseMatrix r = effective_resistance_matrix(g);
  double total = 0.0;
  for (std::size_t s = 0; s < r.rows(); ++s) {
    for (std::size_t u = s + 1; u < r.cols(); ++u) total += r(s, u);
  }
  return total;
}

std::vector<double> current_flow_closeness(const Graph& g) {
  RWBC_REQUIRE(g.node_count() >= 2, "current-flow closeness needs n >= 2");
  const DenseMatrix r = effective_resistance_matrix(g);
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> closeness(n);
  for (std::size_t v = 0; v < n; ++v) {
    double total = 0.0;
    for (std::size_t t = 0; t < n; ++t) total += r(v, t);
    closeness[v] = static_cast<double>(n - 1) / total;
  }
  return closeness;
}

double spanning_tree_count(const Graph& g) {
  RWBC_REQUIRE(g.node_count() >= 1, "spanning trees need a non-empty graph");
  if (g.node_count() == 1) return 1.0;
  require_connected(g, "spanning tree count");
  const DenseMatrix reduced =
      reduced_laplacian_matrix(g, g.node_count() - 1);
  return LuDecomposition(reduced).determinant();
}

}  // namespace rwbc
