// Graph ↔ matrix bridges for the paper's Section IV expressions:
// adjacency A, degree D, transition M = A D^{-1}, the reduced ("target
// removed") variants A_t, D_t, M_t, and the reduced Laplacian D_t − A_t.
//
// Also provides the spectral-radius estimate of M_t that drives Theorem 1's
// walk-length bound: the surviving-walk fraction after k steps decays like
// ρ(M_t)^k, so l ≈ log ε / log ρ — the experiments compare this prediction
// against measurement.
#pragma once

#include "graph/graph.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Dense adjacency matrix A (Eq. 1).
DenseMatrix adjacency_matrix(const Graph& g);

/// Dense degree matrix D with D_ii = d(i).
DenseMatrix degree_matrix(const Graph& g);

/// Dense transition matrix M = A D^{-1} (Eq. 2): column j holds the
/// distribution over j's neighbours.  Requires minimum degree >= 1.
DenseMatrix transition_matrix(const Graph& g);

/// Dense Laplacian L = D - A.
DenseMatrix laplacian_matrix(const Graph& g);

/// Dense reduced transition matrix M_t (row & column `target` removed).
DenseMatrix reduced_transition_matrix(const Graph& g, NodeId target);

/// Dense reduced Laplacian D_t - A_t (row & column `target` removed).
DenseMatrix reduced_laplacian_matrix(const Graph& g, NodeId target);

/// Sparse reduced Laplacian (for the CG solver).  Indices are "compacted":
/// node v maps to row v if v < target, else row v-1.
CsrMatrix reduced_laplacian_csr(const Graph& g, NodeId target);

/// Maps a node id to its row in the reduced system; `target` itself is
/// invalid input.
std::size_t reduced_index(NodeId v, NodeId target);

/// Estimates the spectral radius of the reduced transition matrix M_t by
/// power iteration on M_t^T M_t's dominant direction... specifically we
/// iterate x ← M_t x / ||M_t x|| and return the converged Rayleigh-style
/// growth ratio ||M_t x|| / ||x||.  For absorbing chains this converges to
/// the subdominant-survival rate that controls Theorem 1's truncation bias.
/// Requires a connected graph with n >= 2.
double spectral_radius_reduced_transition(const Graph& g, NodeId target,
                                          std::size_t iterations = 2000,
                                          double tolerance = 1e-12);

/// The walk-length cutoff l for which the surviving fraction of absorbing
/// walks is predicted to drop below `epsilon`, from the measured spectral
/// radius: l = ceil(log eps / log rho).  Clamped to [1, cap].
std::size_t predicted_cutoff_for_epsilon(double spectral_radius,
                                         double epsilon,
                                         std::size_t cap = 1u << 22);

}  // namespace rwbc
