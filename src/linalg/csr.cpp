#include "linalg/csr.hpp"

#include <algorithm>

namespace rwbc {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const Triplet& t : triplets) {
    RWBC_REQUIRE(t.row < rows && t.col < cols, "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  offsets_.assign(rows + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i + 1;
    double sum = triplets[i].value;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    columns_.push_back(triplets[i].col);
    values_.push_back(sum);
    ++offsets_[triplets[i].row + 1];
    i = j;
  }
  for (std::size_t r = 0; r < rows; ++r) offsets_[r + 1] += offsets_[r];
}

Vector CsrMatrix::multiply(std::span<const double> x) const {
  Vector y(rows_, 0.0);
  multiply_add(x, 1.0, y);
  return y;
}

void CsrMatrix::multiply_add(std::span<const double> x, double alpha,
                             std::span<double> y) const {
  RWBC_REQUIRE(x.size() == cols_, "SpMV input size mismatch");
  RWBC_REQUIRE(y.size() == rows_, "SpMV output size mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      sum += values_[k] * x[columns_[k]];
    }
    y[r] += alpha * sum;
  }
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix d(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      d(r, columns_[k]) += values_[k];
    }
  }
  return d;
}

Vector CsrMatrix::diagonal() const {
  Vector diag(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < diag.size(); ++r) {
    for (std::size_t k = offsets_[r]; k < offsets_[r + 1]; ++k) {
      if (columns_[k] == r) diag[r] += values_[k];
    }
  }
  return diag;
}

}  // namespace rwbc
