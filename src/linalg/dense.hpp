// Dense linear algebra — the substrate for Newman's exact current-flow
// betweenness (matrix expressions of Section IV) and for numerically
// validating the spectral argument of Theorem 1 (decay of ||M_t^k||_1).
//
// Deliberately minimal: row-major storage, no expression templates; the
// exact algorithm is O(n^3) anyway and only runs on ground-truth-sized
// graphs (n <= ~500).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace rwbc {

/// Dense column vector.
using Vector = std::vector<double>;

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols zero matrix.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    RWBC_ASSERT(r < rows_ && c < cols_, "dense index out of range");
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    RWBC_ASSERT(r < rows_ && c < cols_, "dense index out of range");
    return data_[r * cols_ + c];
  }

  /// Contiguous row view.
  std::span<const double> row(std::size_t r) const {
    RWBC_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  /// Matrix transpose.
  DenseMatrix transposed() const;

  /// 1-norm: maximum absolute column sum (the norm used in Theorem 1).
  double one_norm() const;

  /// Max-abs entry (infinity norm over entries, not the operator norm).
  double max_abs() const;

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// C = A * B. Requires A.cols() == B.rows().
DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b);

/// y = A * x. Requires A.cols() == x.size().
Vector multiply(const DenseMatrix& a, std::span<const double> x);

/// C = A + B (same shape).
DenseMatrix add(const DenseMatrix& a, const DenseMatrix& b);

/// C = A - B (same shape).
DenseMatrix subtract(const DenseMatrix& a, const DenseMatrix& b);

/// C = s * A.
DenseMatrix scale(const DenseMatrix& a, double s);

/// Deletes row `index` and column `index` — the paper's M_t / A_t / D_t
/// construction ("remove the t-th row and column").  Requires square input.
DenseMatrix remove_row_col(const DenseMatrix& a, std::size_t index);

/// Inserts a zero row and zero column at `index` — rebuilding the paper's
/// matrix T from T_t ("add the t-th row and column back ... all equaling 0").
DenseMatrix insert_zero_row_col(const DenseMatrix& a, std::size_t index);

/// Euclidean inner product. Requires equal sizes.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

}  // namespace rwbc
