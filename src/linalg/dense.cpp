#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>

namespace rwbc {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t(c, r) = (*this)(r, c);
    }
  }
  return t;
}

double DenseMatrix::one_norm() const {
  double best = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) sum += std::abs((*this)(r, c));
    best = std::max(best, sum);
  }
  return best;
}

double DenseMatrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

DenseMatrix multiply(const DenseMatrix& a, const DenseMatrix& b) {
  RWBC_REQUIRE(a.cols() == b.rows(), "matmul shape mismatch");
  DenseMatrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        c(i, j) += aik * b(k, j);
      }
    }
  }
  return c;
}

Vector multiply(const DenseMatrix& a, std::span<const double> x) {
  RWBC_REQUIRE(a.cols() == x.size(), "matvec shape mismatch");
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double sum = 0.0;
    const auto row = a.row(i);
    for (std::size_t j = 0; j < a.cols(); ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
  return y;
}

DenseMatrix add(const DenseMatrix& a, const DenseMatrix& b) {
  RWBC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "matrix add shape mismatch");
  DenseMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) + b(i, j);
  }
  return c;
}

DenseMatrix subtract(const DenseMatrix& a, const DenseMatrix& b) {
  RWBC_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
               "matrix subtract shape mismatch");
  DenseMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j) - b(i, j);
  }
  return c;
}

DenseMatrix scale(const DenseMatrix& a, double s) {
  DenseMatrix c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = s * a(i, j);
  }
  return c;
}

DenseMatrix remove_row_col(const DenseMatrix& a, std::size_t index) {
  RWBC_REQUIRE(a.rows() == a.cols(), "remove_row_col requires square matrix");
  RWBC_REQUIRE(index < a.rows(), "remove_row_col index out of range");
  const std::size_t n = a.rows();
  DenseMatrix b(n - 1, n - 1);
  for (std::size_t r = 0, br = 0; r < n; ++r) {
    if (r == index) continue;
    for (std::size_t c = 0, bc = 0; c < n; ++c) {
      if (c == index) continue;
      b(br, bc) = a(r, c);
      ++bc;
    }
    ++br;
  }
  return b;
}

DenseMatrix insert_zero_row_col(const DenseMatrix& a, std::size_t index) {
  RWBC_REQUIRE(a.rows() == a.cols(), "insert_zero_row_col requires square");
  RWBC_REQUIRE(index <= a.rows(), "insert_zero_row_col index out of range");
  const std::size_t n = a.rows() + 1;
  DenseMatrix b(n, n);
  for (std::size_t r = 0, ar = 0; r < n; ++r) {
    if (r == index) continue;
    for (std::size_t c = 0, ac = 0; c < n; ++c) {
      if (c == index) continue;
      b(r, c) = a(ar, ac);
      ++ac;
    }
    ++ar;
  }
  return b;
}

double dot(std::span<const double> a, std::span<const double> b) {
  RWBC_REQUIRE(a.size() == b.size(), "dot shape mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace rwbc
