#include "linalg/laplacian.hpp"

#include <cmath>

#include "common/error.hpp"

namespace rwbc {

DenseMatrix adjacency_matrix(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix a(n, n);
  for (const Edge& e : g.edges()) {
    a(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v)) = 1.0;
    a(static_cast<std::size_t>(e.v), static_cast<std::size_t>(e.u)) = 1.0;
  }
  return a;
}

DenseMatrix degree_matrix(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix d(n, n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    d(static_cast<std::size_t>(v), static_cast<std::size_t>(v)) =
        static_cast<double>(g.degree(v));
  }
  return d;
}

DenseMatrix transition_matrix(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix m(n, n);
  for (NodeId j = 0; j < g.node_count(); ++j) {
    const NodeId deg = g.degree(j);
    RWBC_REQUIRE(deg > 0, "transition matrix needs minimum degree 1");
    const double p = 1.0 / static_cast<double>(deg);
    for (NodeId i : g.neighbors(j)) {
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) = p;
    }
  }
  return m;
}

DenseMatrix laplacian_matrix(const Graph& g) {
  return subtract(degree_matrix(g), adjacency_matrix(g));
}

DenseMatrix reduced_transition_matrix(const Graph& g, NodeId target) {
  RWBC_REQUIRE(target >= 0 && target < g.node_count(),
               "target node out of range");
  return remove_row_col(transition_matrix(g),
                        static_cast<std::size_t>(target));
}

DenseMatrix reduced_laplacian_matrix(const Graph& g, NodeId target) {
  RWBC_REQUIRE(target >= 0 && target < g.node_count(),
               "target node out of range");
  return remove_row_col(laplacian_matrix(g), static_cast<std::size_t>(target));
}

std::size_t reduced_index(NodeId v, NodeId target) {
  RWBC_REQUIRE(v != target, "target has no row in the reduced system");
  return static_cast<std::size_t>(v < target ? v : v - 1);
}

CsrMatrix reduced_laplacian_csr(const Graph& g, NodeId target) {
  RWBC_REQUIRE(target >= 0 && target < g.node_count(),
               "target node out of range");
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<Triplet> triplets;
  triplets.reserve(2 * g.edge_count() + n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (v == target) continue;
    const std::size_t row = reduced_index(v, target);
    triplets.push_back({row, row, static_cast<double>(g.degree(v))});
    for (NodeId w : g.neighbors(v)) {
      if (w == target) continue;
      triplets.push_back({row, reduced_index(w, target), -1.0});
    }
  }
  return CsrMatrix(n - 1, n - 1, std::move(triplets));
}

double spectral_radius_reduced_transition(const Graph& g, NodeId target,
                                          std::size_t iterations,
                                          double tolerance) {
  RWBC_REQUIRE(g.node_count() >= 2, "spectral radius needs n >= 2");
  const DenseMatrix m = reduced_transition_matrix(g, target);
  const std::size_t n = m.rows();
  Vector x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  double ratio = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vector y = multiply(m, x);
    const double y_norm = norm2(y);
    if (y_norm == 0.0) return 0.0;  // nilpotent chain (e.g. K_2)
    const double next_ratio = y_norm;  // since ||x|| == 1
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / y_norm;
    if (it > 0 && std::abs(next_ratio - ratio) <= tolerance) {
      return next_ratio;
    }
    ratio = next_ratio;
  }
  return ratio;
}

std::size_t predicted_cutoff_for_epsilon(double spectral_radius,
                                         double epsilon, std::size_t cap) {
  RWBC_REQUIRE(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
  RWBC_REQUIRE(spectral_radius >= 0.0 && spectral_radius < 1.0,
               "absorbing-chain spectral radius must be in [0, 1)");
  if (spectral_radius == 0.0) return 1;
  const double l = std::log(epsilon) / std::log(spectral_radius);
  if (l <= 1.0) return 1;
  if (l >= static_cast<double>(cap)) return cap;
  return static_cast<std::size_t>(std::ceil(l));
}

}  // namespace rwbc
