// Effective resistance and spanning-tree invariants.
//
// Random-walk betweenness IS current-flow betweenness — Newman's analogy
// treats the graph as a unit-resistor network, and the potentials matrix T
// of Section IV directly yields effective resistances:
//
//   R(s, t) = T_ss + T_tt - 2 T_st     (any grounding)
//
// These utilities expose that connection (used by tests to cross-validate
// the potentials pipeline against closed-form resistances) plus the
// Matrix-Tree theorem's spanning-tree count from the same reduced
// Laplacian the exact solver factorises.
#pragma once

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Effective resistance between two nodes of the unit-resistor network.
/// Requires a connected graph, n >= 2, distinct in-range endpoints.
double effective_resistance(const Graph& g, NodeId s, NodeId t);

/// All-pairs effective resistances (symmetric, zero diagonal), computed
/// from one reduced-Laplacian inverse.  O(n^3).
DenseMatrix effective_resistance_matrix(const Graph& g);

/// Kirchhoff index: sum of effective resistances over unordered pairs.
double kirchhoff_index(const Graph& g);

/// Number of spanning trees (Matrix-Tree theorem: det of the reduced
/// Laplacian).  Returned as double — the count overflows integers quickly
/// (K_n has n^(n-2) trees).  Requires a connected graph with n >= 1;
/// a single node has exactly 1 spanning tree.
double spanning_tree_count(const Graph& g);

/// Current-flow (information) closeness: C(v) = (n - 1) / sum_t R(v, t) —
/// the resistance-distance analogue of closeness centrality, and the
/// "random walk closeness" companion measure to the paper's random-walk
/// betweenness.  Requires a connected graph with n >= 2.
std::vector<double> current_flow_closeness(const Graph& g);

}  // namespace rwbc
