#include "linalg/lu.hpp"

#include <cmath>

namespace rwbc {

LuDecomposition::LuDecomposition(const DenseMatrix& a) : lu_(a) {
  RWBC_REQUIRE(a.rows() == a.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t pivot = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double cand = std::abs(lu_(r, k));
      if (cand > best) {
        best = cand;
        pivot = r;
      }
    }
    RWBC_REQUIRE(best > 1e-13, "LU: matrix is singular to machine precision");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot, c));
      }
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(k, c);
      }
    }
  }
}

Vector LuDecomposition::solve(std::span<const double> b) const {
  const std::size_t n = size();
  RWBC_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  Vector x(n);
  // Forward substitution with the permuted rhs (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double sum = x[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum / lu_(i, i);
  }
  return x;
}

DenseMatrix LuDecomposition::solve(const DenseMatrix& b) const {
  RWBC_REQUIRE(b.rows() == size(), "LU solve: rhs shape mismatch");
  DenseMatrix x(b.rows(), b.cols());
  Vector column(b.rows());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < b.rows(); ++r) column[r] = b(r, c);
    const Vector solved = solve(column);
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = solved[r];
  }
  return x;
}

DenseMatrix LuDecomposition::inverse() const {
  return solve(DenseMatrix::identity(size()));
}

double LuDecomposition::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

Vector lu_solve(const DenseMatrix& a, std::span<const double> b) {
  return LuDecomposition(a).solve(b);
}

DenseMatrix lu_inverse(const DenseMatrix& a) {
  return LuDecomposition(a).inverse();
}

}  // namespace rwbc
