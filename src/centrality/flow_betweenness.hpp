// Freeman's network-flow betweenness (Section II-A).
//
// For every pair (s, t) a maximum flow is pushed from s to t; the flow
// betweenness of node i is the flow passing through it, summed over pairs.
// Max flows are not unique — like networkx, we score against one optimal
// realisation (Edmonds-Karp's, which favours short augmenting paths) and
// document the convention.  The normalised variant divides by the total
// max-flow volume over all pairs, following Freeman et al. 1991.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Options for flow betweenness.
struct FlowBetweennessOptions {
  /// If true (default): divide each node's through-flow total by the sum of
  /// max-flow values over all pairs, giving scores in [0, 1].
  bool normalized = true;
};

/// Network-flow betweenness of every node.  O(n^2) max-flow computations —
/// intended for the small comparison graphs of experiment E9.  Requires a
/// connected graph, n >= 3.
std::vector<double> flow_betweenness(const Graph& g,
                                     const FlowBetweennessOptions& options = {});

}  // namespace rwbc
