// Centralized Monte-Carlo random-walk betweenness — the *estimator* of the
// paper's Algorithms 1+2, run sequentially without a network.
//
// This is the control arm of the experiment suite: it has exactly the
// distributed algorithm's statistical behaviour (K truncated absorbing
// walks per source, visit counts scaled by 1/(K d(v)), Eq. 5-8
// accumulation) but none of its congestion effects, so experiments E2/E3
// measure Theorems 1-3 in isolation and E7 attributes any residual
// difference to the CONGEST queueing policy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Monte-Carlo estimator parameters.
struct McOptions {
  std::size_t walks_per_source = 64;  ///< K (Theorem 3: O(log n))
  std::size_t cutoff = 0;             ///< l (Theorem 1: O(n)); 0 = 4n
  NodeId target = -1;                 ///< absorbing node; -1 = uniform random
  std::uint64_t seed = 1;
};

/// Estimator outputs plus the diagnostics the experiments plot.
struct McResult {
  std::vector<double> betweenness;
  /// Estimated potentials T_hat(v, s) = xi_v^s / (K d(v)); converges to the
  /// exact T of current_flow_exact as K, l -> infinity.
  DenseMatrix scaled_visits;
  NodeId target = -1;
  std::uint64_t total_moves = 0;     ///< total walk steps simulated
  std::uint64_t absorbed_walks = 0;  ///< walks that reached the target
  std::uint64_t truncated_walks = 0; ///< walks killed by the cutoff
};

/// Runs the estimator.  Requires a connected graph with n >= 2.
McResult current_flow_betweenness_mc(const Graph& g, const McOptions& options);

/// Measures the surviving-walk fraction after each step (Theorem 1's decay
/// curve): entry r is the fraction of `walks` absorbing random walks (from
/// uniformly random sources) still alive after r moves.  Used by E2 to
/// compare against the spectral prediction rho^r.
std::vector<double> absorption_profile(const Graph& g, NodeId target,
                                       std::size_t walks,
                                       std::size_t max_steps,
                                       std::uint64_t seed);

}  // namespace rwbc
