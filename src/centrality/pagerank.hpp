// PageRank — the related measure of Section II-B.
//
// Two centralized variants: power iteration (the reference) and the
// Monte-Carlo end-point estimator of Avrachenkov et al. that the paper
// cites ("each node holds N random walks ... estimates its pagerank as the
// fraction of walks ending at it"), whose short O(1/eps) walks are the
// paper's argument for why PageRank techniques do not transfer to RWBC.
// The distributed CONGEST version lives in rwbc/distributed_pagerank.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Power-iteration options.
struct PagerankOptions {
  double reset_probability = 0.15;  ///< the epsilon of Section II-B
  double tolerance = 1e-12;         ///< L1 change per iteration to stop
  std::size_t max_iterations = 10'000;
};

/// PageRank by power iteration; returns a probability vector (sums to 1).
/// Requires n >= 1 and minimum degree >= 1.
std::vector<double> pagerank_power(const Graph& g,
                                   const PagerankOptions& options = {});

/// Monte-Carlo end-point options.
struct PagerankMcOptions {
  double reset_probability = 0.15;
  std::size_t walks_per_node = 64;  ///< the N of Algorithm 2 in [12]
  std::uint64_t seed = 1;
};

/// Monte-Carlo end-point PageRank: each node launches walks_per_node walks
/// that stop with reset_probability per step; the estimate of node i is the
/// fraction of all walks that end at i.  Converges to pagerank_power.
std::vector<double> pagerank_monte_carlo(const Graph& g,
                                         const PagerankMcOptions& options = {});

}  // namespace rwbc
