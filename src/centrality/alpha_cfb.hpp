// Alpha-current-flow betweenness — the related measure of Section II-C
// (Avrachenkov, Litvak, Medyanikov, Sokol 2013).
//
// Random walks continue with probability alpha per step (evaporate with
// 1 - alpha), which regularises the Laplacian: potentials come from
// (D - alpha*A) x = e_s - e_t, a nonsingular system for alpha < 1, so no
// grounding node is needed.  As alpha -> 1 the measure converges to
// Newman's current-flow betweenness (tested), and small alpha tames walk
// lengths — the cost/accuracy dial the related work exploits.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// The regularised potentials matrix T_alpha = (D - alpha*A)^{-1}.
/// Requires a connected graph, n >= 2, and alpha in (0, 1).
DenseMatrix alpha_potentials(const Graph& g, double alpha);

/// Alpha-current-flow betweenness of every node, with the same pair
/// accumulation and normalisation as current_flow_betweenness so values
/// are directly comparable.
std::vector<double> alpha_current_flow_betweenness(const Graph& g,
                                                   double alpha);

}  // namespace rwbc
