#include "centrality/classic.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "graph/properties.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"

namespace rwbc {

std::vector<double> degree_centrality(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "degree centrality needs n >= 2");
  std::vector<double> c(n);
  const double denom = static_cast<double>(n - 1);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    c[static_cast<std::size_t>(v)] =
        static_cast<double>(g.degree(v)) / denom;
  }
  return c;
}

std::vector<double> closeness_centrality(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "closeness centrality needs n >= 2");
  require_connected(g, "closeness centrality");
  std::vector<double> c(n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto dist = bfs_distances(g, v);
    double total = 0.0;
    for (NodeId d : dist) total += static_cast<double>(d);
    c[static_cast<std::size_t>(v)] = static_cast<double>(n - 1) / total;
  }
  return c;
}

std::vector<double> harmonic_centrality(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "harmonic centrality needs n >= 2");
  std::vector<double> c(n, 0.0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto dist = bfs_distances(g, v);
    double total = 0.0;
    for (NodeId u = 0; u < g.node_count(); ++u) {
      const NodeId d = dist[static_cast<std::size_t>(u)];
      if (u != v && d > 0) total += 1.0 / static_cast<double>(d);
    }
    c[static_cast<std::size_t>(v)] = total / static_cast<double>(n - 1);
  }
  return c;
}

namespace {

/// One step of y = (A + I) x.  The +I shift keeps power iteration
/// convergent on bipartite graphs (their adjacency spectrum contains
/// -lambda_max, which makes the unshifted iteration oscillate) without
/// changing the Perron eigenvector.
void shifted_adjacency_step(const Graph& g, const Vector& x, Vector& y) {
  std::copy(x.begin(), x.end(), y.begin());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double xv = x[static_cast<std::size_t>(v)];
    for (NodeId w : g.neighbors(v)) {
      y[static_cast<std::size_t>(w)] += xv;
    }
  }
}

/// Dominant eigenvalue of the adjacency matrix by shifted power iteration.
double adjacency_spectral_radius(const Graph& g, std::size_t max_iterations,
                                 double tolerance) {
  const auto n = static_cast<std::size_t>(g.node_count());
  Vector x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  Vector y(n);
  double shifted = 0.0;
  for (std::size_t it = 0; it < max_iterations; ++it) {
    shifted_adjacency_step(g, x, y);
    const double norm = norm2(y);
    RWBC_REQUIRE(norm > 0.0, "eigenvector iteration collapsed (no edges?)");
    for (std::size_t i = 0; i < n; ++i) x[i] = y[i] / norm;
    if (it > 0 && std::abs(norm - shifted) <= tolerance) {
      return norm - 1.0;  // undo the +I shift
    }
    shifted = norm;
  }
  return shifted - 1.0;
}

}  // namespace

std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t max_iterations,
                                           double tolerance) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "eigenvector centrality needs n >= 2");
  RWBC_REQUIRE(g.edge_count() >= 1, "eigenvector centrality needs edges");
  require_connected(g, "eigenvector centrality");
  Vector x(n, 1.0), y(n);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    shifted_adjacency_step(g, x, y);
    const double norm = norm2(y);
    RWBC_REQUIRE(norm > 0.0, "eigenvector iteration collapsed");
    double change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double next = y[i] / norm;
      change += std::abs(next - x[i]);
      x[i] = next;
    }
    if (change <= tolerance) break;
  }
  const double peak = *std::max_element(x.begin(), x.end());
  for (double& v : x) v /= peak;
  return x;
}

std::vector<double> katz_centrality(const Graph& g, double alpha) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "Katz centrality needs n >= 2");
  RWBC_REQUIRE(g.edge_count() >= 1, "Katz centrality needs edges");
  require_connected(g, "Katz centrality");
  const double lambda = adjacency_spectral_radius(g, 1000, 1e-12);
  if (alpha == 0.0) {
    alpha = 0.85 / lambda;
  }
  RWBC_REQUIRE(alpha > 0.0 && alpha * lambda < 1.0,
               "Katz alpha must be in (0, 1/lambda_max)");
  // Solve (I - alpha A) x = 1.
  DenseMatrix system =
      subtract(DenseMatrix::identity(n), scale(adjacency_matrix(g), alpha));
  const Vector ones(n, 1.0);
  Vector x = lu_solve(system, ones);
  const double peak = *std::max_element(x.begin(), x.end());
  for (double& v : x) v /= peak;
  return x;
}

}  // namespace rwbc
