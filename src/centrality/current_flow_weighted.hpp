// Weighted (conductance) current-flow betweenness — Newman's construction
// on resistor networks with arbitrary positive conductances.
//
// Everything from Section IV generalises verbatim: A becomes the weight
// matrix W, the degree d(i) becomes the strength s(i) = sum_j w_ij, the
// walk moves to j with probability w_ij / s(i), potentials come from
// (S - W) reduced, and Eq. 6's net flow through i is
// (1/2) sum_j w_ij |V_i - V_j|.  With all weights 1 every function here
// equals its unweighted counterpart (tested).
#pragma once

#include <vector>

#include "centrality/current_flow_mc.hpp"
#include "graph/weighted.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Weighted Laplacian L = S - W (S = diag of strengths).
DenseMatrix weighted_laplacian_matrix(const WeightedGraph& wg);

/// Padded potentials matrix, grounded at `grounding` (-1 = node n-1).
/// Requires a connected topology with n >= 2.
DenseMatrix exact_potentials(const WeightedGraph& wg, NodeId grounding = -1);

/// Eq. 5-8 accumulation with conductance-weighted flows.
std::vector<double> betweenness_from_potentials(const WeightedGraph& wg,
                                                const DenseMatrix& potentials);

/// Exact weighted current-flow betweenness.
std::vector<double> current_flow_betweenness(const WeightedGraph& wg,
                                             NodeId grounding = -1);

/// Monte-Carlo weighted estimator: K truncated absorbing walks per source,
/// moves drawn with probability w_ij / s(i); scaled visits are
/// xi_v^s / (K * s(v)).  The weighted twin of current_flow_betweenness_mc.
McResult current_flow_betweenness_mc(const WeightedGraph& wg,
                                     const McOptions& options);

}  // namespace rwbc
