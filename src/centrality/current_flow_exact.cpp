#include "centrality/current_flow_exact.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "graph/properties.hpp"
#include "linalg/cg.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"

namespace rwbc {

namespace {

NodeId resolve_grounding(const Graph& g, NodeId grounding) {
  if (grounding < 0) return g.node_count() - 1;
  RWBC_REQUIRE(grounding < g.node_count(), "grounding node out of range");
  return grounding;
}

DenseMatrix potentials_dense(const Graph& g, NodeId ground) {
  const DenseMatrix reduced = reduced_laplacian_matrix(g, ground);
  const DenseMatrix inverse = lu_inverse(reduced);
  return insert_zero_row_col(inverse, static_cast<std::size_t>(ground));
}

DenseMatrix potentials_cg(const Graph& g, NodeId ground) {
  const auto n = static_cast<std::size_t>(g.node_count());
  const CsrMatrix reduced = reduced_laplacian_csr(g, ground);
  DenseMatrix t(n, n);
  Vector rhs(n - 1, 0.0);
  Vector solution(n - 1, 0.0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (s == ground) continue;
    const std::size_t col = reduced_index(s, ground);
    std::fill(rhs.begin(), rhs.end(), 0.0);
    std::fill(solution.begin(), solution.end(), 0.0);
    rhs[col] = 1.0;
    const CgResult cg = conjugate_gradient(reduced, rhs, solution);
    RWBC_REQUIRE(cg.converged,
                 "CG failed to converge on the reduced Laplacian");
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v == ground) continue;
      t(static_cast<std::size_t>(v), static_cast<std::size_t>(s)) =
          solution[reduced_index(v, ground)];
    }
  }
  return t;
}

}  // namespace

DenseMatrix exact_potentials(const Graph& g,
                             const CurrentFlowOptions& options) {
  RWBC_REQUIRE(g.node_count() >= 2, "current flow needs n >= 2");
  require_connected(g, "exact current-flow betweenness");
  const NodeId ground = resolve_grounding(g, options.grounding);
  switch (options.solver) {
    case CurrentFlowOptions::Solver::kDenseLu:
      return potentials_dense(g, ground);
    case CurrentFlowOptions::Solver::kSparseCg:
      return potentials_cg(g, ground);
  }
  throw InternalError("unknown solver");
}

std::vector<double> betweenness_from_potentials(
    const Graph& g, const DenseMatrix& potentials) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(potentials.rows() == n && potentials.cols() == n,
               "potentials matrix must be n x n");
  RWBC_REQUIRE(n >= 2, "betweenness needs n >= 2");
  std::vector<double> centrality(n, 0.0);
  const double pair_norm = 0.5 * static_cast<double>(n) *
                           static_cast<double>(n - 1);
  std::vector<double> diffs(n - 1);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto ii = static_cast<std::size_t>(i);
    double throughflow = 0.0;
    for (NodeId j : g.neighbors(i)) {
      const auto ji = static_cast<std::size_t>(j);
      // diffs over sources s != i: x_s = T_is - T_js.
      std::size_t c = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (s == ii) continue;
        diffs[c++] = potentials(ii, s) - potentials(ji, s);
      }
      std::sort(diffs.begin(), diffs.end());
      // sum over pairs s < t of |x_s - x_t| via the sorted-prefix identity.
      double pair_sum = 0.0;
      const double count = static_cast<double>(c);
      for (std::size_t k = 0; k < c; ++k) {
        pair_sum += (2.0 * static_cast<double>(k) - (count - 1.0)) * diffs[k];
      }
      throughflow += pair_sum;
    }
    // Eq. 6 contributes throughflow/2; Eq. 7 contributes 1 per endpoint pair.
    centrality[ii] =
        (0.5 * throughflow + static_cast<double>(n - 1)) / pair_norm;
  }
  return centrality;
}

std::vector<double> current_flow_betweenness(const Graph& g,
                                             const CurrentFlowOptions& options) {
  return betweenness_from_potentials(g, exact_potentials(g, options));
}

std::vector<double> current_flow_betweenness_pivots(const Graph& g,
                                                    std::size_t pairs,
                                                    std::uint64_t seed) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 2, "pivot sampling needs n >= 2");
  RWBC_REQUIRE(pairs >= 1, "need at least one sampled pair");
  require_connected(g, "pivot-sampled current-flow betweenness");

  const NodeId ground = g.node_count() - 1;
  const CsrMatrix reduced = reduced_laplacian_csr(g, ground);
  Rng rng(seed);
  std::vector<double> accumulator(n, 0.0);
  Vector rhs(n - 1), potential_s(n - 1), potential_t(n - 1);
  // Padded potentials difference V = T e_s - T e_t per node.
  Vector v(n, 0.0);
  for (std::size_t sample = 0; sample < pairs; ++sample) {
    const auto s =
        static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    NodeId t;
    do {
      t = static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
    } while (t == s);
    auto solve_column = [&](NodeId node, Vector& out) {
      std::fill(rhs.begin(), rhs.end(), 0.0);
      std::fill(out.begin(), out.end(), 0.0);
      if (node != ground) {
        rhs[reduced_index(node, ground)] = 1.0;
        const CgResult cg = conjugate_gradient(reduced, rhs, out);
        RWBC_REQUIRE(cg.converged, "CG failed on a pivot solve");
      }
    };
    solve_column(s, potential_s);
    solve_column(t, potential_t);
    for (NodeId i = 0; i < g.node_count(); ++i) {
      const auto ii = static_cast<std::size_t>(i);
      const double ps = i == ground ? 0.0 : potential_s[reduced_index(i, ground)];
      const double pt = i == ground ? 0.0 : potential_t[reduced_index(i, ground)];
      v[ii] = ps - pt;
    }
    for (NodeId i = 0; i < g.node_count(); ++i) {
      const auto ii = static_cast<std::size_t>(i);
      if (i == s || i == t) {
        accumulator[ii] += 1.0;  // Eq. 7
        continue;
      }
      double through = 0.0;
      for (NodeId j : g.neighbors(i)) {
        through += std::abs(v[ii] - v[static_cast<std::size_t>(j)]);
      }
      accumulator[ii] += 0.5 * through;
    }
  }
  // b_i = E_pair[I_i]; the uniform pair sample makes the mean unbiased.
  for (double& value : accumulator) {
    value /= static_cast<double>(pairs);
  }
  return accumulator;
}

DenseMatrix truncated_potentials(const Graph& g, NodeId target,
                                 std::size_t cutoff) {
  RWBC_REQUIRE(g.node_count() >= 2, "truncated potentials need n >= 2");
  RWBC_REQUIRE(target >= 0 && target < g.node_count(),
               "target node out of range");
  require_connected(g, "truncated potentials");
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix t(n, n);
  std::vector<double> p(n), next(n);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (s == target) continue;
    std::fill(p.begin(), p.end(), 0.0);
    p[static_cast<std::size_t>(s)] = 1.0;  // the r = 0 occupancy
    for (std::size_t v = 0; v < n; ++v) {
      t(v, static_cast<std::size_t>(s)) += p[v];
    }
    for (std::size_t r = 1; r <= cutoff; ++r) {
      // One absorbing-chain step: next = M_t p (mass entering `target` is
      // absorbed and dropped).
      std::fill(next.begin(), next.end(), 0.0);
      for (NodeId j = 0; j < g.node_count(); ++j) {
        const auto ji = static_cast<std::size_t>(j);
        if (j == target || p[ji] == 0.0) continue;
        const double share = p[ji] / static_cast<double>(g.degree(j));
        for (NodeId i : g.neighbors(j)) {
          if (i == target) continue;
          next[static_cast<std::size_t>(i)] += share;
        }
      }
      p.swap(next);
      for (std::size_t v = 0; v < n; ++v) {
        t(v, static_cast<std::size_t>(s)) += p[v];
      }
    }
  }
  // Scale occupancies into potentials: T = D^{-1} * (occupancy sums).
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double inv_degree = 1.0 / static_cast<double>(g.degree(v));
    for (std::size_t s = 0; s < n; ++s) {
      t(static_cast<std::size_t>(v), s) *= inv_degree;
    }
  }
  return t;
}

double pair_throughflow(const Graph& g, const DenseMatrix& potentials,
                        NodeId i, NodeId s, NodeId t) {
  RWBC_REQUIRE(s != t, "pair throughflow needs distinct endpoints");
  if (i == s || i == t) return 1.0;  // Eq. 7
  const auto ii = static_cast<std::size_t>(i);
  const auto si = static_cast<std::size_t>(s);
  const auto ti = static_cast<std::size_t>(t);
  double sum = 0.0;
  for (NodeId j : g.neighbors(i)) {
    const auto ji = static_cast<std::size_t>(j);
    sum += std::abs(potentials(ii, si) - potentials(ii, ti) -
                    potentials(ji, si) + potentials(ji, ti));
  }
  return 0.5 * sum;
}

}  // namespace rwbc
