// Edmonds-Karp maximum flow on unit-capacity undirected graphs — the
// substrate for Freeman's network-flow betweenness (Section II-A).
//
// Each undirected edge carries capacity 1 in each direction; the returned
// flow matrix is antisymmetric (f(u,v) = -f(v,u)).  O(V E^2); this backs a
// comparison table on small graphs, not a scalable solver.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// A max-flow answer: the value and one optimal flow realisation.
struct MaxFlowResult {
  std::int64_t value = 0;
  DenseMatrix flow;  ///< net flow f(u, v), antisymmetric
};

/// Maximum s-t flow with unit capacities.  Requires distinct, in-range
/// endpoints.  The flow value on an undirected unit-capacity graph equals
/// the number of edge-disjoint s-t paths (Menger), which tests exploit.
MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t);

}  // namespace rwbc
