#include "centrality/current_flow_mc.hpp"

#include "centrality/current_flow_exact.hpp"
#include "graph/properties.hpp"

namespace rwbc {

McResult current_flow_betweenness_mc(const Graph& g,
                                     const McOptions& options) {
  RWBC_REQUIRE(g.node_count() >= 2, "MC betweenness needs n >= 2");
  RWBC_REQUIRE(options.walks_per_source >= 1, "need at least one walk");
  require_connected(g, "Monte-Carlo current-flow betweenness");

  const auto n = static_cast<std::size_t>(g.node_count());
  Rng rng(options.seed);
  McResult result;
  result.target =
      options.target >= 0
          ? options.target
          : static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  RWBC_REQUIRE(result.target < g.node_count(), "target out of range");
  const std::size_t cutoff =
      options.cutoff > 0 ? options.cutoff : 4 * n;

  // xi(v, s): visits to v by walks from source s (the paper's xi_v^s).
  DenseMatrix visits(n, n);
  const NodeId target = result.target;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (s == target) continue;  // the target's column of T is zero
    for (std::size_t w = 0; w < options.walks_per_source; ++w) {
      NodeId pos = s;
      visits(static_cast<std::size_t>(pos), static_cast<std::size_t>(s)) +=
          1.0;  // the r = 0 occupancy (N_ss includes the start)
      bool absorbed = false;
      for (std::size_t step = 0; step < cutoff; ++step) {
        const auto nbrs = g.neighbors(pos);
        pos = nbrs[rng.next_below(nbrs.size())];
        ++result.total_moves;
        if (pos == target) {
          absorbed = true;
          break;
        }
        visits(static_cast<std::size_t>(pos), static_cast<std::size_t>(s)) +=
            1.0;
      }
      if (absorbed) {
        ++result.absorbed_walks;
      } else {
        ++result.truncated_walks;
      }
    }
  }

  // Scale: T_hat(v, s) = xi_v^s / (K d(v)).
  const double k = static_cast<double>(options.walks_per_source);
  result.scaled_visits = DenseMatrix(n, n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double scale = 1.0 / (k * static_cast<double>(g.degree(v)));
    for (std::size_t s = 0; s < n; ++s) {
      result.scaled_visits(static_cast<std::size_t>(v), s) =
          visits(static_cast<std::size_t>(v), s) * scale;
    }
  }
  result.betweenness = betweenness_from_potentials(g, result.scaled_visits);
  return result;
}

std::vector<double> absorption_profile(const Graph& g, NodeId target,
                                       std::size_t walks,
                                       std::size_t max_steps,
                                       std::uint64_t seed) {
  RWBC_REQUIRE(g.node_count() >= 2, "absorption profile needs n >= 2");
  RWBC_REQUIRE(target >= 0 && target < g.node_count(), "target out of range");
  RWBC_REQUIRE(walks >= 1, "need at least one walk");
  require_connected(g, "absorption profile");
  Rng rng(seed);
  std::vector<std::uint64_t> alive_after(max_steps + 1, 0);
  for (std::size_t w = 0; w < walks; ++w) {
    // Uniform random non-target source.
    NodeId pos;
    do {
      pos = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    } while (pos == target);
    alive_after[0] += 1;
    for (std::size_t step = 1; step <= max_steps; ++step) {
      const auto nbrs = g.neighbors(pos);
      pos = nbrs[rng.next_below(nbrs.size())];
      if (pos == target) break;
      alive_after[step] += 1;
    }
  }
  std::vector<double> fraction(max_steps + 1);
  for (std::size_t r = 0; r <= max_steps; ++r) {
    fraction[r] =
        static_cast<double>(alive_after[r]) / static_cast<double>(walks);
  }
  return fraction;
}

}  // namespace rwbc
