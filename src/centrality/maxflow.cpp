#include "centrality/maxflow.hpp"

#include <deque>
#include <vector>

#include "common/error.hpp"

namespace rwbc {

MaxFlowResult max_flow(const Graph& g, NodeId s, NodeId t) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(s >= 0 && s < g.node_count(), "source out of range");
  RWBC_REQUIRE(t >= 0 && t < g.node_count(), "sink out of range");
  RWBC_REQUIRE(s != t, "source and sink must differ");

  // Residual capacities: each undirected edge contributes capacity 1 both
  // ways.  Dense storage keeps the augmenting loop simple; the flow
  // betweenness harness only runs on small graphs.
  DenseMatrix residual(n, n);
  for (const Edge& e : g.edges()) {
    residual(static_cast<std::size_t>(e.u), static_cast<std::size_t>(e.v)) = 1.0;
    residual(static_cast<std::size_t>(e.v), static_cast<std::size_t>(e.u)) = 1.0;
  }

  MaxFlowResult result;
  result.flow = DenseMatrix(n, n);
  std::vector<NodeId> parent(n);
  while (true) {
    // BFS for a shortest augmenting path in the residual graph.
    std::fill(parent.begin(), parent.end(), static_cast<NodeId>(-1));
    parent[static_cast<std::size_t>(s)] = s;
    std::deque<NodeId> queue{s};
    while (!queue.empty() && parent[static_cast<std::size_t>(t)] < 0) {
      const NodeId u = queue.front();
      queue.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (parent[static_cast<std::size_t>(v)] < 0 &&
            residual(static_cast<std::size_t>(u),
                     static_cast<std::size_t>(v)) > 0.5) {
          parent[static_cast<std::size_t>(v)] = u;
          queue.push_back(v);
        }
      }
    }
    if (parent[static_cast<std::size_t>(t)] < 0) break;  // no path left
    // Unit capacities: every augmenting path carries exactly 1.
    for (NodeId v = t; v != s; v = parent[static_cast<std::size_t>(v)]) {
      const NodeId u = parent[static_cast<std::size_t>(v)];
      const auto ui = static_cast<std::size_t>(u);
      const auto vi = static_cast<std::size_t>(v);
      residual(ui, vi) -= 1.0;
      residual(vi, ui) += 1.0;
      result.flow(ui, vi) += 1.0;
      result.flow(vi, ui) -= 1.0;
    }
    ++result.value;
  }
  return result;
}

}  // namespace rwbc
