#include "centrality/flow_betweenness.hpp"

#include <algorithm>

#include "centrality/maxflow.hpp"
#include "common/error.hpp"
#include "graph/properties.hpp"

namespace rwbc {

std::vector<double> flow_betweenness(const Graph& g,
                                     const FlowBetweennessOptions& options) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 3, "flow betweenness needs n >= 3");
  require_connected(g, "flow betweenness");

  std::vector<double> through(n, 0.0);
  double total_flow = 0.0;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (NodeId t = s + 1; t < g.node_count(); ++t) {
      const MaxFlowResult mf = max_flow(g, s, t);
      total_flow += static_cast<double>(mf.value);
      for (NodeId i = 0; i < g.node_count(); ++i) {
        if (i == s || i == t) continue;
        // Through-flow of i = its total inflow in the realisation.
        double inflow = 0.0;
        for (NodeId j : g.neighbors(i)) {
          inflow += std::max(
              mf.flow(static_cast<std::size_t>(j), static_cast<std::size_t>(i)),
              0.0);
        }
        through[static_cast<std::size_t>(i)] += inflow;
      }
    }
  }
  if (options.normalized) {
    RWBC_REQUIRE(total_flow > 0.0, "flow betweenness: zero total flow");
    for (double& v : through) v /= total_flow;
  }
  return through;
}

}  // namespace rwbc
