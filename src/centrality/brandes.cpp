#include "centrality/brandes.hpp"

#include <deque>

#include "common/error.hpp"

namespace rwbc {

std::vector<double> brandes_betweenness(const Graph& g,
                                        const BrandesOptions& options) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> centrality(n, 0.0);
  if (n < 3) return centrality;

  std::vector<NodeId> stack_order;  // nodes in order of non-decreasing dist
  std::vector<std::vector<NodeId>> predecessors(n);
  std::vector<double> sigma(n);    // shortest-path counts
  std::vector<NodeId> dist(n);
  std::vector<double> delta(n);    // dependency accumulation

  for (NodeId s = 0; s < g.node_count(); ++s) {
    stack_order.clear();
    for (auto& preds : predecessors) preds.clear();
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(dist.begin(), dist.end(), static_cast<NodeId>(-1));
    std::fill(delta.begin(), delta.end(), 0.0);

    sigma[static_cast<std::size_t>(s)] = 1.0;
    dist[static_cast<std::size_t>(s)] = 0;
    std::deque<NodeId> queue{s};
    while (!queue.empty()) {
      const NodeId v = queue.front();
      queue.pop_front();
      stack_order.push_back(v);
      for (NodeId w : g.neighbors(v)) {
        const auto wi = static_cast<std::size_t>(w);
        const auto vi = static_cast<std::size_t>(v);
        if (dist[wi] < 0) {
          dist[wi] = dist[vi] + 1;
          queue.push_back(w);
        }
        if (dist[wi] == dist[vi] + 1) {
          sigma[wi] += sigma[vi];
          predecessors[wi].push_back(v);
        }
      }
    }
    // Dependency accumulation in reverse BFS order.
    for (auto it = stack_order.rbegin(); it != stack_order.rend(); ++it) {
      const NodeId w = *it;
      const auto wi = static_cast<std::size_t>(w);
      for (NodeId v : predecessors[wi]) {
        const auto vi = static_cast<std::size_t>(v);
        delta[vi] += sigma[vi] / sigma[wi] * (1.0 + delta[wi]);
      }
      if (w != s) centrality[wi] += delta[wi];
    }
  }

  if (options.normalized) {
    const double pairs = static_cast<double>(n - 1) *
                         static_cast<double>(n - 2);
    for (double& c : centrality) c /= pairs;
  }
  return centrality;
}

}  // namespace rwbc
