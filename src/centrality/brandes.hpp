// Brandes' algorithm for shortest-path betweenness centrality [Brandes'01]
// — the paper's contrast class (Fig. 1: node C has zero shortest-path
// betweenness yet carries substantial random-walk traffic).
//
// O(nm) on unweighted graphs via BFS + dependency accumulation.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Options for shortest-path betweenness.
struct BrandesOptions {
  /// If true, scores are divided by the number of ordered (s,t) pairs
  /// (n-1)(n-2) so they are comparable across graph sizes.  If false, raw
  /// pair counts (each unordered pair counted twice, Brandes' convention).
  bool normalized = true;
};

/// Shortest-path betweenness of every node.  Works on any graph (handles
/// disconnected inputs; pairs in different components contribute nothing).
std::vector<double> brandes_betweenness(const Graph& g,
                                        const BrandesOptions& options = {});

}  // namespace rwbc
