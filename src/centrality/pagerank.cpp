#include "centrality/pagerank.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace rwbc {

std::vector<double> pagerank_power(const Graph& g,
                                   const PagerankOptions& options) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 1, "pagerank needs a non-empty graph");
  RWBC_REQUIRE(options.reset_probability > 0.0 &&
                   options.reset_probability < 1.0,
               "reset probability must be in (0, 1)");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    RWBC_REQUIRE(g.degree(v) > 0, "pagerank needs minimum degree 1");
  }
  const double eps = options.reset_probability;
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    std::fill(next.begin(), next.end(), eps / static_cast<double>(n));
    for (NodeId v = 0; v < g.node_count(); ++v) {
      const double share = (1.0 - eps) *
                           rank[static_cast<std::size_t>(v)] /
                           static_cast<double>(g.degree(v));
      for (NodeId w : g.neighbors(v)) {
        next[static_cast<std::size_t>(w)] += share;
      }
    }
    double change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      change += std::abs(next[i] - rank[i]);
    }
    rank.swap(next);
    if (change <= options.tolerance) break;
  }
  return rank;
}

std::vector<double> pagerank_monte_carlo(const Graph& g,
                                         const PagerankMcOptions& options) {
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(n >= 1, "pagerank needs a non-empty graph");
  RWBC_REQUIRE(options.walks_per_node >= 1, "need at least one walk");
  RWBC_REQUIRE(options.reset_probability > 0.0 &&
                   options.reset_probability < 1.0,
               "reset probability must be in (0, 1)");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    RWBC_REQUIRE(g.degree(v) > 0, "pagerank needs minimum degree 1");
  }
  Rng rng(options.seed);
  std::vector<std::uint64_t> endings(n, 0);
  for (NodeId s = 0; s < g.node_count(); ++s) {
    for (std::size_t w = 0; w < options.walks_per_node; ++w) {
      NodeId pos = s;
      while (!rng.next_bool(options.reset_probability)) {
        const auto nbrs = g.neighbors(pos);
        pos = nbrs[rng.next_below(nbrs.size())];
      }
      ++endings[static_cast<std::size_t>(pos)];
    }
  }
  const double total =
      static_cast<double>(n) * static_cast<double>(options.walks_per_node);
  std::vector<double> rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank[i] = static_cast<double>(endings[i]) / total;
  }
  return rank;
}

}  // namespace rwbc
