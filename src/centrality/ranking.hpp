// Rank-agreement metrics between centrality vectors.
//
// Every accuracy experiment reports these: an approximation can have
// noticeable per-node error yet perfect ranking (what applications usually
// consume), so the suite tracks both.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rwbc {

/// Kendall's tau-b between two score vectors over the same index set.
/// Tie-corrected; returns a value in [-1, 1].  Requires size >= 2 and at
/// least one non-tied pair in each vector.
double kendall_tau(std::span<const double> a, std::span<const double> b);

/// Spearman's rho: Pearson correlation of average-tie ranks.
double spearman_rho(std::span<const double> a, std::span<const double> b);

/// Fraction of indices shared by the top-k sets of both vectors (ties broken
/// by lower index).  Requires 1 <= k <= size.
double top_k_overlap(std::span<const double> a, std::span<const double> b,
                     std::size_t k);

/// Indices sorted by descending score (ties by ascending index).
std::vector<std::size_t> rank_order(std::span<const double> scores);

}  // namespace rwbc
