// Classic centrality indices — the broader family the paper's introduction
// situates betweenness within ("various centrality indices have been
// proposed", Section I).  Degree, closeness, harmonic, eigenvector, and
// Katz round out the library so the comparison experiments (E9) can place
// random-walk betweenness on the full map.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Degree centrality: d(v) / (n - 1).  Requires n >= 2.
std::vector<double> degree_centrality(const Graph& g);

/// Closeness centrality: (n - 1) / sum of BFS distances from v.
/// Requires a connected graph with n >= 2.
std::vector<double> closeness_centrality(const Graph& g);

/// Harmonic centrality: sum over u != v of 1 / dist(v, u), normalised by
/// n - 1.  Defined on disconnected graphs too (unreachable pairs add 0).
/// Requires n >= 2.
std::vector<double> harmonic_centrality(const Graph& g);

/// Eigenvector centrality: the Perron vector of the adjacency matrix,
/// normalised to unit maximum entry.  Power iteration; requires a
/// connected graph with n >= 2 and at least one edge.
std::vector<double> eigenvector_centrality(const Graph& g,
                                           std::size_t max_iterations = 1000,
                                           double tolerance = 1e-12);

/// Katz centrality: x = (I - alpha*A)^{-1} * 1, normalised to unit maximum
/// entry.  Requires 0 < alpha < 1 / lambda_max(A); the convenience default
/// alpha = 0 picks 0.85 / lambda_max via power iteration.  Connected,
/// n >= 2.
std::vector<double> katz_centrality(const Graph& g, double alpha = 0.0);

}  // namespace rwbc
