#include "centrality/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/error.hpp"

namespace rwbc {

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  RWBC_REQUIRE(a.size() == b.size(), "kendall_tau size mismatch");
  RWBC_REQUIRE(a.size() >= 2, "kendall_tau needs at least 2 items");
  const std::size_t n = a.size();
  // O(n^2) tau-b: fine at experiment sizes (n <= few thousand).
  std::int64_t concordant = 0, discordant = 0;
  std::int64_t ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) {
        // tied in both: excluded from every term
      } else if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double n0 = concordant + discordant;
  const double denom = std::sqrt((n0 + static_cast<double>(ties_a)) *
                                 (n0 + static_cast<double>(ties_b)));
  RWBC_REQUIRE(denom > 0.0, "kendall_tau: a vector is entirely tied");
  return (static_cast<double>(concordant) - static_cast<double>(discordant)) /
         denom;
}

namespace {
std::vector<double> average_ranks(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return values[x] < values[y];
  });
  std::vector<double> rank(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0
                       + 1.0;
    for (std::size_t k = i; k <= j; ++k) rank[order[k]] = avg;
    i = j + 1;
  }
  return rank;
}
}  // namespace

double spearman_rho(std::span<const double> a, std::span<const double> b) {
  RWBC_REQUIRE(a.size() == b.size(), "spearman_rho size mismatch");
  RWBC_REQUIRE(a.size() >= 2, "spearman_rho needs at least 2 items");
  const std::vector<double> ra = average_ranks(a);
  const std::vector<double> rb = average_ranks(b);
  const std::size_t n = a.size();
  double ma = 0, mb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ma += ra[i];
    mb += rb[i];
  }
  ma /= static_cast<double>(n);
  mb /= static_cast<double>(n);
  double cov = 0, va = 0, vb = 0;
  for (std::size_t i = 0; i < n; ++i) {
    cov += (ra[i] - ma) * (rb[i] - mb);
    va += (ra[i] - ma) * (ra[i] - ma);
    vb += (rb[i] - mb) * (rb[i] - mb);
  }
  RWBC_REQUIRE(va > 0 && vb > 0, "spearman_rho: a vector is entirely tied");
  return cov / std::sqrt(va * vb);
}

std::vector<std::size_t> rank_order(std::span<const double> scores) {
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    if (scores[x] != scores[y]) return scores[x] > scores[y];
    return x < y;
  });
  return order;
}

double top_k_overlap(std::span<const double> a, std::span<const double> b,
                     std::size_t k) {
  RWBC_REQUIRE(a.size() == b.size(), "top_k_overlap size mismatch");
  RWBC_REQUIRE(k >= 1 && k <= a.size(), "top_k_overlap: k out of range");
  const auto oa = rank_order(a);
  const auto ob = rank_order(b);
  std::unordered_set<std::size_t> top_a(oa.begin(),
                                        oa.begin() + static_cast<long>(k));
  std::size_t shared = 0;
  for (std::size_t i = 0; i < k; ++i) {
    if (top_a.contains(ob[i])) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(k);
}

}  // namespace rwbc
