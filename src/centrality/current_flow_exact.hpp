// Exact random-walk (current-flow) betweenness centrality — Newman 2005,
// the matrix expressions of the paper's Section IV (Eqs. 1-8).
//
// Pipeline: ground one node g, invert the reduced Laplacian
// T_g = (D_g - A_g)^{-1}, pad the grounded row/column with zeros to get T,
// then accumulate
//
//   b_i = [ 1/2 * sum_j A_ij * sum_{s<t, s,t != i} |T_is - T_it - T_js + T_jt|
//           + (n-1) ] / (n(n-1)/2)
//
// where the (n-1) term is the paper's Eq. 7 (endpoint pairs contribute one
// unit each).  Current flows are invariant to the grounding choice (tested),
// which is exactly why the distributed algorithm may absorb at a single
// random target.
//
// The naive pair accumulation is O(m n^2); we use the sorted-prefix trick
//   sum_{s<t} |x_s - x_t| = sum_k (2k - (c-1)) * x_(k)   (x sorted, c values)
// to bring it to O(m n log n), making n = 500 ground truths routine.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"

namespace rwbc {

/// Options for the exact solver.
struct CurrentFlowOptions {
  enum class Solver {
    kDenseLu,   ///< O(n^3) LU inverse of the reduced Laplacian
    kSparseCg,  ///< n-1 conjugate-gradient solves, O(n m sqrt(kappa))
  };
  Solver solver = Solver::kDenseLu;

  /// Grounded (removed) node; -1 selects node n-1.  The result is
  /// grounding-invariant; the knob exists for tests and for mirroring the
  /// distributed algorithm's random absorbing target.
  NodeId grounding = -1;
};

/// The padded potentials matrix T (Section IV): column s holds the node
/// potentials for unit current injected at s and extracted at the grounded
/// node; the grounded row and column are zero.  Requires a connected graph
/// with n >= 2.  T is symmetric.
DenseMatrix exact_potentials(const Graph& g,
                             const CurrentFlowOptions& options = {});

/// Newman's Eq. 5-8 accumulation from a potentials (or estimated-visits)
/// matrix: shared by the exact solver, the centralized Monte-Carlo
/// estimator, and the verification path of the distributed algorithm.
/// `potentials` must be n x n.
std::vector<double> betweenness_from_potentials(const Graph& g,
                                                const DenseMatrix& potentials);

/// Exact random-walk betweenness of every node.  Requires a connected
/// graph; n >= 2.
std::vector<double> current_flow_betweenness(
    const Graph& g, const CurrentFlowOptions& options = {});

/// The per-pair throughflow I_i^{(st)} of Eq. 6 (and Eq. 7 for endpoints)
/// for one explicit (s, t) pair — used by unit tests and the lower-bound
/// experiments, which reason about a single node P and specific pairs.
double pair_throughflow(const Graph& g, const DenseMatrix& potentials,
                        NodeId i, NodeId s, NodeId t);

/// Pivot-sampled approximation (Brandes/Fleischer-style): instead of
/// accumulating all n(n-1)/2 pairs, sample `pairs` uniform source/target
/// pairs, compute each pair's exact throughflows I_i^{(st)} (Eq. 6-7) from
/// two CG solves, and average.  Unbiased for every node; error shrinks as
/// 1/sqrt(pairs).  Cost O(pairs * m sqrt(kappa)) vs the exact solver's
/// O(n^3) — the centralized scaling answer to Section I's "O(n^4) is
/// unacceptable", complementary to the paper's distributed answer.
/// Requires a connected graph, n >= 2, pairs >= 1.
std::vector<double> current_flow_betweenness_pivots(const Graph& g,
                                                    std::size_t pairs,
                                                    std::uint64_t seed);

/// Deterministic cutoff-l potentials: T_l(v, s) = (1/d(v)) *
/// sum_{r=0}^{l} [M_t^r]_{vs} — exactly the EXPECTATION of the Monte-Carlo
/// scaled visit counts with walk-length cap l.  As l -> infinity this
/// converges to exact_potentials (grounded at `target`).  Used by E2 to
/// measure Theorem 1's truncation bias with no sampling noise: the
/// difference between betweenness_from_potentials(T_l) and the exact
/// answer is the pure (1 - epsilon) truncation effect.  O(l * m) per
/// source.  Requires a connected graph, n >= 2.
DenseMatrix truncated_potentials(const Graph& g, NodeId target,
                                 std::size_t cutoff);

}  // namespace rwbc
