#include "centrality/alpha_cfb.hpp"

#include "centrality/current_flow_exact.hpp"
#include "graph/properties.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"

namespace rwbc {

DenseMatrix alpha_potentials(const Graph& g, double alpha) {
  RWBC_REQUIRE(g.node_count() >= 2, "alpha-CFB needs n >= 2");
  RWBC_REQUIRE(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
  require_connected(g, "alpha-current-flow betweenness");
  const DenseMatrix system =
      subtract(degree_matrix(g), scale(adjacency_matrix(g), alpha));
  return lu_inverse(system);
}

std::vector<double> alpha_current_flow_betweenness(const Graph& g,
                                                   double alpha) {
  return betweenness_from_potentials(g, alpha_potentials(g, alpha));
}

}  // namespace rwbc
