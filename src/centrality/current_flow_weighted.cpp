#include "centrality/current_flow_weighted.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "graph/properties.hpp"
#include "linalg/lu.hpp"

namespace rwbc {

DenseMatrix weighted_laplacian_matrix(const WeightedGraph& wg) {
  const Graph& g = wg.topology();
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix l(n, n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    l(vi, vi) = wg.strength(v);
    const auto neighbors = g.neighbors(v);
    const auto weights = wg.neighbor_weights(v);
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      l(vi, static_cast<std::size_t>(neighbors[slot])) = -weights[slot];
    }
  }
  return l;
}

DenseMatrix exact_potentials(const WeightedGraph& wg, NodeId grounding) {
  const Graph& g = wg.topology();
  RWBC_REQUIRE(g.node_count() >= 2, "current flow needs n >= 2");
  require_connected(g, "weighted current-flow betweenness");
  const NodeId ground = grounding < 0 ? g.node_count() - 1 : grounding;
  RWBC_REQUIRE(ground < g.node_count(), "grounding node out of range");
  const DenseMatrix reduced = remove_row_col(
      weighted_laplacian_matrix(wg), static_cast<std::size_t>(ground));
  return insert_zero_row_col(lu_inverse(reduced),
                             static_cast<std::size_t>(ground));
}

std::vector<double> betweenness_from_potentials(
    const WeightedGraph& wg, const DenseMatrix& potentials) {
  const Graph& g = wg.topology();
  const auto n = static_cast<std::size_t>(g.node_count());
  RWBC_REQUIRE(potentials.rows() == n && potentials.cols() == n,
               "potentials matrix must be n x n");
  RWBC_REQUIRE(n >= 2, "betweenness needs n >= 2");
  std::vector<double> centrality(n, 0.0);
  const double pair_norm =
      0.5 * static_cast<double>(n) * static_cast<double>(n - 1);
  std::vector<double> diffs(n - 1);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    const auto ii = static_cast<std::size_t>(i);
    double throughflow = 0.0;
    const auto neighbors = g.neighbors(i);
    const auto weights = wg.neighbor_weights(i);
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      const auto ji = static_cast<std::size_t>(neighbors[slot]);
      std::size_t c = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (s == ii) continue;
        diffs[c++] = potentials(ii, s) - potentials(ji, s);
      }
      std::sort(diffs.begin(), diffs.end());
      double pair_sum = 0.0;
      const double count = static_cast<double>(c);
      for (std::size_t k = 0; k < c; ++k) {
        pair_sum += (2.0 * static_cast<double>(k) - (count - 1.0)) * diffs[k];
      }
      throughflow += weights[slot] * pair_sum;  // current = conductance * dV
    }
    centrality[ii] =
        (0.5 * throughflow + static_cast<double>(n - 1)) / pair_norm;
  }
  return centrality;
}

std::vector<double> current_flow_betweenness(const WeightedGraph& wg,
                                             NodeId grounding) {
  return betweenness_from_potentials(wg, exact_potentials(wg, grounding));
}

McResult current_flow_betweenness_mc(const WeightedGraph& wg,
                                     const McOptions& options) {
  const Graph& g = wg.topology();
  RWBC_REQUIRE(g.node_count() >= 2, "MC betweenness needs n >= 2");
  RWBC_REQUIRE(options.walks_per_source >= 1, "need at least one walk");
  require_connected(g, "weighted Monte-Carlo current-flow betweenness");

  const auto n = static_cast<std::size_t>(g.node_count());
  Rng rng(options.seed);
  McResult result;
  result.target =
      options.target >= 0
          ? options.target
          : static_cast<NodeId>(rng.next_below(static_cast<std::uint64_t>(n)));
  RWBC_REQUIRE(result.target < g.node_count(), "target out of range");
  const std::size_t cutoff = options.cutoff > 0 ? options.cutoff : 4 * n;

  DenseMatrix visits(n, n);
  const NodeId target = result.target;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (s == target) continue;
    for (std::size_t w = 0; w < options.walks_per_source; ++w) {
      NodeId pos = s;
      visits(static_cast<std::size_t>(pos), static_cast<std::size_t>(s)) +=
          1.0;
      bool absorbed = false;
      for (std::size_t step = 0; step < cutoff; ++step) {
        pos = wg.sample_neighbor(pos, rng.next_double());
        ++result.total_moves;
        if (pos == target) {
          absorbed = true;
          break;
        }
        visits(static_cast<std::size_t>(pos), static_cast<std::size_t>(s)) +=
            1.0;
      }
      if (absorbed) {
        ++result.absorbed_walks;
      } else {
        ++result.truncated_walks;
      }
    }
  }

  const double k = static_cast<double>(options.walks_per_source);
  result.scaled_visits = DenseMatrix(n, n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double scale = 1.0 / (k * wg.strength(v));
    for (std::size_t s = 0; s < n; ++s) {
      result.scaled_visits(static_cast<std::size_t>(v), s) =
          visits(static_cast<std::size_t>(v), s) * scale;
    }
  }
  result.betweenness = betweenness_from_potentials(wg, result.scaled_visits);
  return result;
}

}  // namespace rwbc
