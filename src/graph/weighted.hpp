// Weighted (conductance) graphs — the natural generalisation of Newman's
// current-flow construction: edge weight w_ij is the electrical
// conductance of the resistor between i and j, random walks move to
// neighbours with probability proportional to weight, and the "degree"
// becomes the node strength sum_j w_ij.
//
// The ICDCS paper treats unweighted graphs only; this module is the
// extension surface.  The centralized solvers accept arbitrary positive
// real weights; the distributed pipeline requires positive INTEGER weights
// so strengths and counts stay exact within O(log n + log W)-bit messages
// (checked at the API boundary).
#pragma once

#include <span>
#include <vector>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// An immutable weighted view over a Graph: one positive weight per edge,
/// plus CSR-aligned per-neighbour weights, prefix sums for sampling, and
/// node strengths.
class WeightedGraph {
 public:
  WeightedGraph() = default;

  /// `edge_weights` aligns with g.edges() (canonical order); all weights
  /// must be positive and finite.
  WeightedGraph(Graph g, std::vector<double> edge_weights);

  /// Every edge gets the same weight; with weight 1 all algorithms reduce
  /// exactly to their unweighted counterparts (tested).
  static WeightedGraph uniform(Graph g, double weight = 1.0);

  const Graph& topology() const { return graph_; }
  NodeId node_count() const { return graph_.node_count(); }

  /// Weight of edge {u, v}; throws if the edge does not exist.
  double edge_weight(NodeId u, NodeId v) const;

  /// Weights aligned with topology().neighbors(v).
  std::span<const double> neighbor_weights(NodeId v) const;

  /// Node strength: sum of incident edge weights (the weighted degree).
  double strength(NodeId v) const {
    graph_.degree(v);  // validates v
    return strengths_[static_cast<std::size_t>(v)];
  }

  /// Samples a neighbour of v with probability weight/strength, from a
  /// uniform draw u01 in [0, 1).  O(log deg) via the prefix sums.
  NodeId sample_neighbor(NodeId v, double u01) const;

  /// True iff every weight is a positive integer (the distributed
  /// pipeline's requirement).
  bool has_integer_weights() const { return integer_weights_; }

  /// Largest edge weight.
  double max_weight() const { return max_weight_; }

 private:
  Graph graph_;
  std::vector<double> adjacency_weights_;  // CSR-aligned, size 2m
  std::vector<std::size_t> offsets_;       // per-node start into the above
  std::vector<std::vector<double>> prefix_; // per-node cumulative weights
  std::vector<double> strengths_;
  bool integer_weights_ = true;
  double max_weight_ = 0.0;
};

/// Random positive integer weights in [1, max_weight] on an existing
/// topology — the workload generator for the weighted experiments.
WeightedGraph randomly_weighted(Graph g, std::uint64_t max_weight, Rng& rng);

}  // namespace rwbc
