#include "graph/properties.hpp"

#include <algorithm>
#include <deque>
#include <string>

namespace rwbc {

std::vector<NodeId> bfs_distances(const Graph& g, NodeId source) {
  RWBC_REQUIRE(source >= 0 && source < g.node_count(),
               "BFS source out of range");
  std::vector<NodeId> dist(static_cast<std::size_t>(g.node_count()), -1);
  std::deque<NodeId> frontier{source};
  dist[static_cast<std::size_t>(source)] = 0;
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (NodeId v : g.neighbors(u)) {
      if (dist[static_cast<std::size_t>(v)] < 0) {
        dist[static_cast<std::size_t>(v)] =
            dist[static_cast<std::size_t>(u)] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

std::vector<NodeId> connected_components(const Graph& g) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<NodeId> label(n, -1);
  NodeId next = 0;
  std::deque<NodeId> frontier;
  for (NodeId s = 0; s < g.node_count(); ++s) {
    if (label[static_cast<std::size_t>(s)] >= 0) continue;
    label[static_cast<std::size_t>(s)] = next;
    frontier.push_back(s);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop_front();
      for (NodeId v : g.neighbors(u)) {
        if (label[static_cast<std::size_t>(v)] < 0) {
          label[static_cast<std::size_t>(v)] = next;
          frontier.push_back(v);
        }
      }
    }
    ++next;
  }
  return label;
}

bool is_connected(const Graph& g) {
  if (g.node_count() <= 1) return true;
  const auto dist = bfs_distances(g, 0);
  return std::all_of(dist.begin(), dist.end(),
                     [](NodeId d) { return d >= 0; });
}

NodeId eccentricity(const Graph& g, NodeId v) {
  const auto dist = bfs_distances(g, v);
  NodeId ecc = 0;
  for (NodeId d : dist) {
    RWBC_REQUIRE(d >= 0, "eccentricity requires a connected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

NodeId diameter(const Graph& g) {
  RWBC_REQUIRE(g.node_count() >= 1, "diameter needs a non-empty graph");
  NodeId diam = 0;
  for (NodeId v = 0; v < g.node_count(); ++v) {
    diam = std::max(diam, eccentricity(g, v));
  }
  return diam;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  if (g.node_count() == 0) return stats;
  stats.min = g.degree(0);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    stats.min = std::min(stats.min, g.degree(v));
    stats.max = std::max(stats.max, g.degree(v));
  }
  stats.mean = static_cast<double>(g.degree_sum()) /
               static_cast<double>(g.node_count());
  return stats;
}

void require_connected(const Graph& g, const char* algorithm_name) {
  RWBC_REQUIRE(is_connected(g), std::string(algorithm_name) +
                                    " requires a connected graph");
}

}  // namespace rwbc
