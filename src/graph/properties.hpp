// Structural graph queries used across the library: BFS distances,
// connectivity, diameter (the D in every bound of the paper), and degree
// statistics for the experiment reports.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// BFS distances from `source`; unreachable nodes get -1.
std::vector<NodeId> bfs_distances(const Graph& g, NodeId source);

/// Component label per node (labels are dense, 0-based, in discovery order
/// from node 0 upward).  Empty graph yields an empty vector.
std::vector<NodeId> connected_components(const Graph& g);

/// True iff the graph is connected (vacuously true for n <= 1).
bool is_connected(const Graph& g);

/// Exact diameter via all-sources BFS: O(n(n+m)).  Requires a connected
/// graph with n >= 1; returns 0 for a single node.
NodeId diameter(const Graph& g);

/// Eccentricity of one node (max BFS distance).  Requires connectivity.
NodeId eccentricity(const Graph& g, NodeId v);

/// Degree statistics for experiment reports.
struct DegreeStats {
  NodeId min = 0;
  NodeId max = 0;
  double mean = 0.0;
};
DegreeStats degree_stats(const Graph& g);

/// Throws rwbc::Error unless the graph is connected — the shared
/// precondition of every absorbing-walk algorithm in this library.
void require_connected(const Graph& g, const char* algorithm_name);

}  // namespace rwbc
