// Graph generators — the workload families of the experiment suite.
//
// The paper has no evaluation section, so these families are chosen to
// stress the quantities its theorems depend on: diameter (path/cycle/grid),
// degree skew (Barabási–Albert, star), expansion (Erdős–Rényi,
// Watts–Strogatz), and community structure (two-community "Fig. 1" graph,
// barbell).  All generators return *connected* graphs — absorbing random
// walks (and Newman's reduced Laplacian) require connectivity.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Path P_n: 0 - 1 - ... - (n-1). Requires n >= 1. Diameter n-1.
Graph make_path(NodeId n);

/// Cycle C_n. Requires n >= 3.
Graph make_cycle(NodeId n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 are leaves. Requires n >= 2.
Graph make_star(NodeId n);

/// Complete graph K_n. Requires n >= 1.
Graph make_complete(NodeId n);

/// rows x cols 2-D grid (4-neighbourhood). Requires rows, cols >= 1.
Graph make_grid(NodeId rows, NodeId cols);

/// Complete binary tree on n nodes (heap layout). Requires n >= 1.
Graph make_binary_tree(NodeId n);

/// Barbell: two K_k cliques joined by a path of `bridge` intermediate nodes
/// (bridge == 0 joins the cliques by a single edge). Requires k >= 2.
/// Nodes [0,k) form the left clique, [k, k+bridge) the path,
/// [k+bridge, 2k+bridge) the right clique.
Graph make_barbell(NodeId k, NodeId bridge);

/// Connected Erdős–Rényi G(n, p): edges sampled i.i.d. with probability p,
/// then any disconnected component is stitched to the giant one by a random
/// edge (documented deviation from pure G(n,p); keeps the family usable for
/// absorbing-walk workloads). Requires n >= 1, p in [0, 1].
Graph make_erdos_renyi(NodeId n, double p, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique on
/// `attach + 1` nodes, then each new node attaches to `attach` distinct
/// existing nodes chosen proportionally to degree. Requires
/// 1 <= attach < n. Always connected.
Graph make_barabasi_albert(NodeId n, NodeId attach, Rng& rng);

/// Watts–Strogatz small world: ring lattice where each node links to its
/// `k/2` nearest neighbours on each side, then each edge is rewired with
/// probability `beta` (rewiring that would disconnect or duplicate is
/// skipped). Requires even k, 2 <= k < n. Always connected (the underlying
/// ring backbone is preserved for one neighbour on each side).
Graph make_watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng);

/// The paper's Fig. 1 motivating topology, parameterised: two communities of
/// `group` nodes each (cliques), bridged by the chain  left* — A — B — right*,
/// plus a node C that sits on a parallel A — C — B path of length 2.
///
/// Layout: [0, group) left clique, [group, 2*group) right clique, then
/// A = 2*group, B = 2*group + 1, C = 2*group + 2.  A connects to every
/// left-clique node, B to every right-clique node.  With these ids the
/// shortest A-to-B route is the direct A—B edge, so C lies on **no**
/// shortest path (its shortest-path betweenness is 0) while random walks
/// still traverse it — exactly the paper's motivating contrast.
struct Fig1Layout {
  Graph graph;
  NodeId a = 0;
  NodeId b = 0;
  NodeId c = 0;
  NodeId group = 0;  ///< community size
};
Fig1Layout make_fig1_graph(NodeId group);

}  // namespace rwbc
