// Plain-text edge-list persistence.
//
// Format: first non-comment line is `n m`, followed by m lines `u v`
// (0-based ids).  Lines starting with '#' are comments.  This is the common
// interchange format of SNAP-style datasets, so users can feed real network
// snapshots to the examples.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace rwbc {

/// Parses a graph from a stream; throws rwbc::ParseError (with the 1-based
/// input line number) on malformed input: bad or missing header, truncated
/// edge lists, non-numeric tokens, out-of-range endpoints, self-loops,
/// duplicate edges, and trailing data are all rejected.
Graph read_edge_list(std::istream& in);

/// Loads a graph from a file; throws rwbc::Error if the file cannot be
/// opened and rwbc::ParseError (prefixed with the path) if malformed.
Graph load_edge_list(const std::string& path);

/// Writes the `n m` header and all edges in canonical order.
void write_edge_list(const Graph& g, std::ostream& out);

/// Saves to a file; throws rwbc::Error if the file cannot be written.
void save_edge_list(const Graph& g, const std::string& path);

/// Writes Graphviz DOT (`graph G { ... }`).  When `scores` is non-empty it
/// must have one entry per node; nodes are then labelled "id\nscore" and
/// shaded by normalised score, which makes centrality output directly
/// renderable with `dot -Tsvg`.
void write_dot(const Graph& g, std::ostream& out,
               std::span<const double> scores = {});

}  // namespace rwbc
