#include "graph/weighted.hpp"

#include <algorithm>
#include <cmath>

namespace rwbc {

WeightedGraph::WeightedGraph(Graph g, std::vector<double> edge_weights)
    : graph_(std::move(g)) {
  RWBC_REQUIRE(edge_weights.size() == graph_.edge_count(),
               "need exactly one weight per edge");
  for (double w : edge_weights) {
    RWBC_REQUIRE(std::isfinite(w) && w > 0.0,
                 "edge weights must be positive and finite");
    if (w != std::floor(w)) integer_weights_ = false;
    max_weight_ = std::max(max_weight_, w);
  }
  const auto n = static_cast<std::size_t>(graph_.node_count());
  // CSR-aligned weights: for each node's sorted neighbour slice, look the
  // edge weight up via the canonical edge index.
  offsets_.assign(n + 1, 0);
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    offsets_[static_cast<std::size_t>(v) + 1] =
        offsets_[static_cast<std::size_t>(v)] +
        static_cast<std::size_t>(graph_.degree(v));
  }
  adjacency_weights_.assign(graph_.degree_sum(), 0.0);
  strengths_.assign(n, 0.0);
  prefix_.resize(n);
  const auto edges = graph_.edges();
  for (NodeId v = 0; v < graph_.node_count(); ++v) {
    const auto vi = static_cast<std::size_t>(v);
    const auto neighbors = graph_.neighbors(v);
    prefix_[vi].resize(neighbors.size());
    double running = 0.0;
    for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
      const NodeId w = neighbors[slot];
      const Edge key{std::min(v, w), std::max(v, w)};
      const auto it = std::lower_bound(edges.begin(), edges.end(), key);
      RWBC_ASSERT(it != edges.end() && *it == key, "edge lookup failed");
      const double weight =
          edge_weights[static_cast<std::size_t>(it - edges.begin())];
      adjacency_weights_[offsets_[vi] + slot] = weight;
      running += weight;
      prefix_[vi][slot] = running;
    }
    strengths_[vi] = running;
  }
}

WeightedGraph WeightedGraph::uniform(Graph g, double weight) {
  const std::size_t m = g.edge_count();
  return WeightedGraph(std::move(g), std::vector<double>(m, weight));
}

double WeightedGraph::edge_weight(NodeId u, NodeId v) const {
  const auto neighbors = graph_.neighbors(u);
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
  RWBC_REQUIRE(it != neighbors.end() && *it == v, "no such edge");
  return adjacency_weights_[offsets_[static_cast<std::size_t>(u)] +
                            static_cast<std::size_t>(it - neighbors.begin())];
}

std::span<const double> WeightedGraph::neighbor_weights(NodeId v) const {
  graph_.degree(v);  // validates v
  const auto vi = static_cast<std::size_t>(v);
  return {adjacency_weights_.data() + offsets_[vi],
          offsets_[vi + 1] - offsets_[vi]};
}

NodeId WeightedGraph::sample_neighbor(NodeId v, double u01) const {
  RWBC_REQUIRE(u01 >= 0.0 && u01 < 1.0, "u01 must be in [0, 1)");
  const auto vi = static_cast<std::size_t>(v);
  const auto& cumulative = prefix_[vi];
  RWBC_REQUIRE(!cumulative.empty(), "node has no neighbours to sample");
  const double target = u01 * cumulative.back();
  const auto it =
      std::upper_bound(cumulative.begin(), cumulative.end(), target);
  const auto slot = static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative.begin(),
                               static_cast<std::ptrdiff_t>(cumulative.size()) -
                                   1));
  return graph_.neighbors(v)[slot];
}

WeightedGraph randomly_weighted(Graph g, std::uint64_t max_weight, Rng& rng) {
  RWBC_REQUIRE(max_weight >= 1, "max weight must be >= 1");
  std::vector<double> weights(g.edge_count());
  for (double& w : weights) {
    w = static_cast<double>(1 + rng.next_below(max_weight));
  }
  return WeightedGraph(std::move(g), std::move(weights));
}

}  // namespace rwbc
