// Undirected, unweighted, simple graph — the input class of the paper
// (Section III-A): nodes carry O(log n)-bit ids, edges are bidirectional
// communication links.
//
// `Graph` is immutable once built (CSR-style adjacency, cache-friendly and
// safely shareable across the simulator's nodes); construction goes through
// `GraphBuilder`, which deduplicates edges and rejects self-loops.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace rwbc {

/// Node identifier: dense ids in [0, n). 32 bits matches the paper's
/// O(log n)-bit id assumption for every feasible simulated n.
using NodeId = std::int32_t;

/// An undirected edge; canonical form has u < v.
struct Edge {
  NodeId u = 0;
  NodeId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Immutable undirected simple graph in compressed adjacency form.
class Graph {
 public:
  /// An empty graph (0 nodes); assign a built graph over it.
  Graph() = default;

  /// Number of nodes n.
  NodeId node_count() const { return node_count_; }

  /// Number of undirected edges m.
  std::size_t edge_count() const { return edges_.size(); }

  /// Degree d(v).
  NodeId degree(NodeId v) const {
    check_node(v);
    return static_cast<NodeId>(offsets_[static_cast<std::size_t>(v) + 1] -
                               offsets_[static_cast<std::size_t>(v)]);
  }

  /// Sorted neighbours of v.
  std::span<const NodeId> neighbors(NodeId v) const {
    check_node(v);
    const auto begin = offsets_[static_cast<std::size_t>(v)];
    const auto end = offsets_[static_cast<std::size_t>(v) + 1];
    return {adjacency_.data() + begin, end - begin};
  }

  /// True iff {u, v} is an edge (binary search over sorted adjacency).
  bool has_edge(NodeId u, NodeId v) const;

  /// All edges in canonical (u < v), lexicographic order.
  std::span<const Edge> edges() const { return edges_; }

  /// Maximum degree over all nodes; 0 for the empty graph.
  NodeId max_degree() const { return max_degree_; }

  /// Sum of degrees = 2m.
  std::size_t degree_sum() const { return adjacency_.size(); }

 private:
  friend class GraphBuilder;

  void check_node(NodeId v) const {
    RWBC_REQUIRE(v >= 0 && v < node_count_, "node id out of range");
  }

  NodeId node_count_ = 0;
  NodeId max_degree_ = 0;
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<NodeId> adjacency_;     // size 2m, sorted per node
  std::vector<Edge> edges_;           // size m, canonical order
};

/// Mutable edge-set accumulator that finalises into a Graph.
///
/// Duplicate edges (in either orientation) are collapsed; self-loops are
/// rejected (the paper's random walks move to a *neighbor*, and Newman's
/// formulation assumes a simple graph).
class GraphBuilder {
 public:
  /// Creates a builder for a graph on `node_count` nodes (edges optional).
  explicit GraphBuilder(NodeId node_count);

  /// Adds the undirected edge {u, v}. Idempotent. Throws on self-loop or
  /// out-of-range endpoint.
  GraphBuilder& add_edge(NodeId u, NodeId v);

  /// Adds every edge in the list.
  GraphBuilder& add_edges(std::span<const Edge> edges);

  /// Number of distinct edges added so far.
  std::size_t edge_count() const { return edges_.size(); }

  /// True iff the edge was already added.
  bool has_edge(NodeId u, NodeId v) const;

  /// Finalises into an immutable Graph. The builder may be reused afterwards
  /// (its edge set is unchanged).
  Graph build() const;

 private:
  NodeId node_count_;
  std::vector<Edge> edges_;  // kept sorted & unique, canonical orientation
};

}  // namespace rwbc
