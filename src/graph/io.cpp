#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

namespace rwbc {

namespace {
/// Reads the next non-blank, non-comment line, tracking the 1-based line
/// number so parse errors point at the offending input line.
bool next_data_line(std::istream& in, std::string& line, std::size_t& lineno) {
  while (std::getline(in, line)) {
    ++lineno;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;   // blank
    if (line[first] == '#') continue;           // comment
    return true;
  }
  return false;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) tokens.push_back(token);
  return tokens;
}

/// Strict non-negative integer parse: the whole token must be digits (so
/// "3x", "-1", "2.5", and "0x10" are all rejected, unlike `istream >>`,
/// which accepts prefixes and negatives silently).  The length bound keeps
/// the value far from the long long overflow edge.
long long parse_count(const std::string& token, const char* what,
                      std::size_t lineno) {
  const bool digits =
      !token.empty() && token.size() <= 18 &&
      std::all_of(token.begin(), token.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  if (!digits) {
    throw ParseError(std::string("edge list: ") + what +
                         " must be a non-negative integer, got '" + token +
                         "'",
                     lineno);
  }
  return std::stoll(token);
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  if (!next_data_line(in, line, lineno)) {
    throw ParseError("edge list: missing `n m` header");
  }
  const auto header = tokenize(line);
  if (header.size() != 2) {
    throw ParseError("edge list: header must be exactly `n m`, got " +
                         std::to_string(header.size()) + " token(s)",
                     lineno);
  }
  const long long n = parse_count(header[0], "node count", lineno);
  const long long m = parse_count(header[1], "edge count", lineno);
  if (n > static_cast<long long>(std::numeric_limits<NodeId>::max())) {
    throw ParseError("edge list: node count " + std::to_string(n) +
                         " exceeds the supported maximum",
                     lineno);
  }
  GraphBuilder builder(static_cast<NodeId>(n));
  for (long long i = 0; i < m; ++i) {
    if (!next_data_line(in, line, lineno)) {
      throw ParseError("edge list: truncated — header declared " +
                       std::to_string(m) + " edge(s) but only " +
                       std::to_string(i) + " present");
    }
    const auto tokens = tokenize(line);
    if (tokens.size() != 2) {
      throw ParseError("edge list: edge line must be exactly `u v`, got " +
                           std::to_string(tokens.size()) + " token(s)",
                       lineno);
    }
    const long long u = parse_count(tokens[0], "edge endpoint", lineno);
    const long long v = parse_count(tokens[1], "edge endpoint", lineno);
    if (u >= n || v >= n) {
      throw ParseError("edge list: endpoint out of range for n = " +
                           std::to_string(n) + ": `" + line + "`",
                       lineno);
    }
    if (u == v) {
      throw ParseError(
          "edge list: self-loop at node " + std::to_string(u) +
              " (walks move to a neighbor; the graph must be simple)",
          lineno);
    }
    if (builder.has_edge(static_cast<NodeId>(u), static_cast<NodeId>(v))) {
      throw ParseError("edge list: duplicate edge `" + line + "`", lineno);
    }
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  if (next_data_line(in, line, lineno)) {
    throw ParseError("edge list: trailing data after the declared " +
                         std::to_string(m) + " edge(s): `" + line + "`",
                     lineno);
  }
  return builder.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  RWBC_REQUIRE(in.good(), "cannot open graph file: " + path);
  try {
    return read_edge_list(in);
  } catch (const ParseError& e) {
    throw ParseError(path + ": " + e.what());
  }
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.node_count() << " " << g.edge_count() << "\n";
  for (const Edge& e : g.edges()) {
    out << e.u << " " << e.v << "\n";
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  RWBC_REQUIRE(out.good(), "cannot write graph file: " + path);
  write_edge_list(g, out);
  RWBC_REQUIRE(out.good(), "write failed for graph file: " + path);
}

void write_dot(const Graph& g, std::ostream& out,
               std::span<const double> scores) {
  RWBC_REQUIRE(scores.empty() ||
                   scores.size() == static_cast<std::size_t>(g.node_count()),
               "DOT export: need one score per node");
  double lo = 0.0, hi = 1.0;
  if (!scores.empty()) {
    lo = *std::min_element(scores.begin(), scores.end());
    hi = *std::max_element(scores.begin(), scores.end());
    if (hi <= lo) hi = lo + 1.0;
  }
  out << "graph G {\n  node [style=filled];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  " << v;
    if (!scores.empty()) {
      const double score = scores[static_cast<std::size_t>(v)];
      const double t = (score - lo) / (hi - lo);
      // Grey ramp: high scores dark, labels stay readable.
      const int shade = static_cast<int>(95.0 - 55.0 * t);
      out << " [label=\"" << v << "\\n";
      const auto old_precision = out.precision(3);
      out << score;
      out.precision(old_precision);
      out << "\", fillcolor=\"grey" << shade << "\"]";
    }
    out << ";\n";
  }
  for (const Edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v << ";\n";
  }
  out << "}\n";
}

}  // namespace rwbc
