#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>

namespace rwbc {

namespace {
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;   // blank
    if (line[first] == '#') continue;           // comment
    return true;
  }
  return false;
}
}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  RWBC_REQUIRE(next_data_line(in, line), "edge list: missing `n m` header");
  std::istringstream header(line);
  long long n = -1, m = -1;
  header >> n >> m;
  RWBC_REQUIRE(n >= 0 && m >= 0 && !header.fail(),
               "edge list: malformed `n m` header");
  GraphBuilder builder(static_cast<NodeId>(n));
  for (long long i = 0; i < m; ++i) {
    RWBC_REQUIRE(next_data_line(in, line),
                 "edge list: fewer edges than the header declared");
    std::istringstream row(line);
    long long u = -1, v = -1;
    row >> u >> v;
    RWBC_REQUIRE(!row.fail(), "edge list: malformed edge line");
    builder.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.build();
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  RWBC_REQUIRE(in.good(), "cannot open graph file: " + path);
  return read_edge_list(in);
}

void write_edge_list(const Graph& g, std::ostream& out) {
  out << g.node_count() << " " << g.edge_count() << "\n";
  for (const Edge& e : g.edges()) {
    out << e.u << " " << e.v << "\n";
  }
}

void save_edge_list(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  RWBC_REQUIRE(out.good(), "cannot write graph file: " + path);
  write_edge_list(g, out);
  RWBC_REQUIRE(out.good(), "write failed for graph file: " + path);
}

void write_dot(const Graph& g, std::ostream& out,
               std::span<const double> scores) {
  RWBC_REQUIRE(scores.empty() ||
                   scores.size() == static_cast<std::size_t>(g.node_count()),
               "DOT export: need one score per node");
  double lo = 0.0, hi = 1.0;
  if (!scores.empty()) {
    lo = *std::min_element(scores.begin(), scores.end());
    hi = *std::max_element(scores.begin(), scores.end());
    if (hi <= lo) hi = lo + 1.0;
  }
  out << "graph G {\n  node [style=filled];\n";
  for (NodeId v = 0; v < g.node_count(); ++v) {
    out << "  " << v;
    if (!scores.empty()) {
      const double score = scores[static_cast<std::size_t>(v)];
      const double t = (score - lo) / (hi - lo);
      // Grey ramp: high scores dark, labels stay readable.
      const int shade = static_cast<int>(95.0 - 55.0 * t);
      out << " [label=\"" << v << "\\n";
      const auto old_precision = out.precision(3);
      out << score;
      out.precision(old_precision);
      out << "\", fillcolor=\"grey" << shade << "\"]";
    }
    out << ";\n";
  }
  for (const Edge& e : g.edges()) {
    out << "  " << e.u << " -- " << e.v << ";\n";
  }
  out << "}\n";
}

}  // namespace rwbc
