#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

#include "graph/properties.hpp"

namespace rwbc {

Graph make_path(NodeId n) {
  RWBC_REQUIRE(n >= 1, "path needs n >= 1");
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return b.build();
}

Graph make_cycle(NodeId n) {
  RWBC_REQUIRE(n >= 3, "cycle needs n >= 3");
  GraphBuilder b(n);
  for (NodeId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  return b.build();
}

Graph make_star(NodeId n) {
  RWBC_REQUIRE(n >= 2, "star needs n >= 2");
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return b.build();
}

Graph make_complete(NodeId n) {
  RWBC_REQUIRE(n >= 1, "complete graph needs n >= 1");
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return b.build();
}

Graph make_grid(NodeId rows, NodeId cols) {
  RWBC_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  GraphBuilder b(rows * cols);
  auto id = [cols](NodeId r, NodeId c) { return r * cols + c; };
  for (NodeId r = 0; r < rows; ++r) {
    for (NodeId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return b.build();
}

Graph make_binary_tree(NodeId n) {
  RWBC_REQUIRE(n >= 1, "binary tree needs n >= 1");
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(v, (v - 1) / 2);
  return b.build();
}

Graph make_barbell(NodeId k, NodeId bridge) {
  RWBC_REQUIRE(k >= 2, "barbell needs clique size >= 2");
  RWBC_REQUIRE(bridge >= 0, "barbell bridge length must be non-negative");
  const NodeId n = 2 * k + bridge;
  GraphBuilder b(n);
  auto clique = [&b](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = u + 1; v < hi; ++v) b.add_edge(u, v);
    }
  };
  clique(0, k);
  clique(k + bridge, n);
  // Chain: last left-clique node -> bridge nodes -> first right-clique node.
  NodeId prev = k - 1;
  for (NodeId i = 0; i < bridge; ++i) {
    b.add_edge(prev, k + i);
    prev = k + i;
  }
  b.add_edge(prev, k + bridge);
  return b.build();
}

Graph make_erdos_renyi(NodeId n, double p, Rng& rng) {
  RWBC_REQUIRE(n >= 1, "G(n,p) needs n >= 1");
  RWBC_REQUIRE(p >= 0.0 && p <= 1.0, "edge probability must be in [0, 1]");
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (rng.next_bool(p)) b.add_edge(u, v);
    }
  }
  Graph g = b.build();
  // Stitch components: connect a random node of every non-root component to
  // a random node of the component containing node 0.
  std::vector<NodeId> component = connected_components(g);
  const NodeId root_comp = component[0];
  std::vector<std::vector<NodeId>> members(
      static_cast<std::size_t>(*std::max_element(component.begin(),
                                                 component.end())) + 1);
  for (NodeId v = 0; v < n; ++v) {
    members[static_cast<std::size_t>(component[static_cast<std::size_t>(v)])]
        .push_back(v);
  }
  bool stitched = false;
  const auto& root_members = members[static_cast<std::size_t>(root_comp)];
  for (std::size_t c = 0; c < members.size(); ++c) {
    if (static_cast<NodeId>(c) == root_comp || members[c].empty()) continue;
    const NodeId u =
        members[c][rng.next_below(members[c].size())];
    const NodeId v =
        root_members[rng.next_below(root_members.size())];
    b.add_edge(u, v);
    stitched = true;
  }
  return stitched ? b.build() : g;
}

Graph make_barabasi_albert(NodeId n, NodeId attach, Rng& rng) {
  RWBC_REQUIRE(attach >= 1, "BA needs attach >= 1");
  RWBC_REQUIRE(n > attach, "BA needs n > attach");
  GraphBuilder b(n);
  const NodeId seed = attach + 1;
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) b.add_edge(u, v);
  }
  // repeated-endpoints list: sampling uniformly from it is degree-biased.
  std::vector<NodeId> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) *
                    static_cast<std::size_t>(attach) * 2);
  for (NodeId u = 0; u < seed; ++u) {
    for (NodeId v = u + 1; v < seed; ++v) {
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  std::vector<NodeId> targets;
  for (NodeId w = seed; w < n; ++w) {
    targets.clear();
    while (static_cast<NodeId>(targets.size()) < attach) {
      const NodeId cand = endpoints[rng.next_below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), cand) == targets.end()) {
        targets.push_back(cand);
      }
    }
    for (NodeId t : targets) {
      b.add_edge(w, t);
      endpoints.push_back(w);
      endpoints.push_back(t);
    }
  }
  return b.build();
}

Graph make_watts_strogatz(NodeId n, NodeId k, double beta, Rng& rng) {
  RWBC_REQUIRE(k >= 2 && k % 2 == 0, "WS needs even k >= 2");
  RWBC_REQUIRE(n > k, "WS needs n > k");
  RWBC_REQUIRE(beta >= 0.0 && beta <= 1.0, "WS beta must be in [0, 1]");
  const NodeId half = k / 2;
  auto canon = [](NodeId u, NodeId v) {
    return Edge{std::min(u, v), std::max(u, v)};
  };
  std::set<Edge> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId d = 1; d <= half; ++d) {
      edges.insert(canon(u, (u + d) % n));
    }
  }
  // Rewire the long-range part of the lattice (distance >= 2); the
  // distance-1 ring is kept intact so the graph stays connected.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId d = 2; d <= half; ++d) {
      const NodeId v = (u + d) % n;
      if (!rng.next_bool(beta)) continue;
      if (!edges.contains(canon(u, v))) continue;  // already rewired away
      // Pick a replacement endpoint that keeps the graph simple.
      for (int attempt = 0; attempt < 64; ++attempt) {
        const NodeId w = static_cast<NodeId>(
            rng.next_below(static_cast<std::uint64_t>(n)));
        if (w == u || edges.contains(canon(u, w))) continue;
        edges.erase(canon(u, v));
        edges.insert(canon(u, w));
        break;
      }
    }
  }
  GraphBuilder b(n);
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

Fig1Layout make_fig1_graph(NodeId group) {
  RWBC_REQUIRE(group >= 2, "Fig.1 graph needs group size >= 2");
  const NodeId a = 2 * group;
  const NodeId b_node = a + 1;
  const NodeId c = a + 2;
  GraphBuilder b(2 * group + 3);
  auto clique = [&b](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u < hi; ++u) {
      for (NodeId v = u + 1; v < hi; ++v) b.add_edge(u, v);
    }
  };
  clique(0, group);
  clique(group, 2 * group);
  for (NodeId v = 0; v < group; ++v) b.add_edge(a, v);
  for (NodeId v = group; v < 2 * group; ++v) b.add_edge(b_node, v);
  b.add_edge(a, b_node);
  b.add_edge(a, c);
  b.add_edge(c, b_node);
  Fig1Layout layout;
  layout.graph = b.build();
  layout.a = a;
  layout.b = b_node;
  layout.c = c;
  layout.group = group;
  return layout;
}

}  // namespace rwbc
