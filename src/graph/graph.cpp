#include "graph/graph.hpp"

#include <algorithm>

namespace rwbc {

bool Graph::has_edge(NodeId u, NodeId v) const {
  check_node(u);
  check_node(v);
  const auto ns = neighbors(u);
  return std::binary_search(ns.begin(), ns.end(), v);
}

GraphBuilder::GraphBuilder(NodeId node_count) : node_count_(node_count) {
  RWBC_REQUIRE(node_count >= 0, "node count must be non-negative");
}

GraphBuilder& GraphBuilder::add_edge(NodeId u, NodeId v) {
  RWBC_REQUIRE(u >= 0 && u < node_count_, "edge endpoint out of range");
  RWBC_REQUIRE(v >= 0 && v < node_count_, "edge endpoint out of range");
  RWBC_REQUIRE(u != v, "self-loops are not allowed");
  Edge e{std::min(u, v), std::max(u, v)};
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), e);
  if (it == edges_.end() || *it != e) {
    edges_.insert(it, e);
  }
  return *this;
}

GraphBuilder& GraphBuilder::add_edges(std::span<const Edge> edges) {
  for (const Edge& e : edges) add_edge(e.u, e.v);
  return *this;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const {
  if (u == v) return false;
  Edge e{std::min(u, v), std::max(u, v)};
  return std::binary_search(edges_.begin(), edges_.end(), e);
}

Graph GraphBuilder::build() const {
  Graph g;
  g.node_count_ = node_count_;
  g.edges_ = edges_;
  const auto n = static_cast<std::size_t>(node_count_);
  std::vector<std::size_t> degree(n, 0);
  for (const Edge& e : edges_) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  g.offsets_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + degree[v];
    g.max_degree_ = std::max(g.max_degree_, static_cast<NodeId>(degree[v]));
  }
  g.adjacency_.assign(2 * edges_.size(), 0);
  std::vector<std::size_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : edges_) {
    g.adjacency_[cursor[static_cast<std::size_t>(e.u)]++] = e.v;
    g.adjacency_[cursor[static_cast<std::size_t>(e.v)]++] = e.u;
  }
  // Edges were inserted in canonical sorted order, so each node's neighbour
  // slice is already sorted by construction; assert it in debug terms.
  for (std::size_t v = 0; v < n; ++v) {
    RWBC_ASSERT(std::is_sorted(g.adjacency_.begin() +
                                   static_cast<std::ptrdiff_t>(g.offsets_[v]),
                               g.adjacency_.begin() +
                                   static_cast<std::ptrdiff_t>(g.offsets_[v + 1])),
                "adjacency slice must be sorted");
  }
  return g;
}

}  // namespace rwbc
