#include "rwbc/gather_exact.hpp"

#include <cmath>
#include <deque>
#include <memory>

#include "centrality/current_flow_exact.hpp"
#include "common/error.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "congest/protocols/leader_election.hpp"
#include "graph/properties.hpp"

namespace rwbc {

namespace {

constexpr std::uint64_t kScoreBits = 24;  // fixed-point scores in [0, 1]
constexpr double kScoreScale = static_cast<double>((1u << kScoreBits) - 1);

enum GatherMsg : std::uint64_t {
  kEdge = 0,         ///< (u, v): one edge report streaming to the root
  kSubtreeDone = 1,  ///< all edges of the sender's subtree delivered
  kScore = 2,        ///< (node, fixed-point value) flooding down
};

/// Node program: edge gather up the tree, exact solve at the root, score
/// flood back down.  One Network run covers all three stages.
class GatherExactNode final : public NodeProcess {
 public:
  GatherExactNode(NodeId parent, std::vector<NodeId> children)
      : parent_(parent), children_(std::move(children)) {}

  void on_start(NodeContext& ctx) override {
    id_bits_ = bits_for(static_cast<std::uint64_t>(ctx.node_count()));
    // Each undirected edge is owned (and reported) by its smaller endpoint.
    for (NodeId nb : ctx.neighbors()) {
      if (nb > ctx.id()) pending_edges_.push_back(Edge{ctx.id(), nb});
    }
    children_done_ = 0;
    scores_seen_ = 0;
    if (parent_ < 0) {
      // Root: its own edges are already "delivered".
      for (const Edge& e : pending_edges_) collected_.push_back(e);
      pending_edges_.clear();
    }
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    const auto n = static_cast<std::uint64_t>(ctx.node_count());
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      switch (static_cast<GatherMsg>(reader.read(2))) {
        case kEdge: {
          Edge e;
          e.u = static_cast<NodeId>(reader.read(id_bits_));
          e.v = static_cast<NodeId>(reader.read(id_bits_));
          if (parent_ < 0) {
            collected_.push_back(e);
          } else {
            pending_edges_.push_back(e);  // relay upward
          }
          break;
        }
        case kSubtreeDone:
          ++children_done_;
          break;
        case kScore: {
          const auto node = static_cast<NodeId>(reader.read(id_bits_));
          const std::uint64_t q = reader.read(static_cast<int>(kScoreBits));
          if (node == ctx.id()) my_score_ = static_cast<double>(q) / kScoreScale;
          score_queue_.push_back({node, q});
          ++scores_seen_;
          break;
        }
      }
    }

    if (parent_ >= 0 && !gather_done_) {
      // Stream edges upward, as many per round as the bit budget allows.
      const std::uint64_t per_edge = 2 + 2 * static_cast<std::uint64_t>(id_bits_);
      std::uint64_t bits_left = ctx.bit_budget();
      while (!pending_edges_.empty() && bits_left >= per_edge + 2) {
        const Edge e = pending_edges_.front();
        pending_edges_.pop_front();
        BitWriter w;
        w.write(kEdge, 2);
        w.write(static_cast<std::uint64_t>(e.u), id_bits_);
        w.write(static_cast<std::uint64_t>(e.v), id_bits_);
        ctx.send(parent_, w);
        bits_left -= per_edge;
      }
      if (pending_edges_.empty() && children_done_ == children_.size()) {
        BitWriter w;
        w.write(kSubtreeDone, 2);
        ctx.send(parent_, w);  // 2 bits reserved above keep this in budget
        gather_done_ = true;
      }
    }

    if (parent_ < 0 && !gather_done_ &&
        children_done_ == children_.size()) {
      gather_done_ = true;
      // Root solves exactly on the assembled topology.
      GraphBuilder builder(ctx.node_count());
      for (const Edge& e : collected_) builder.add_edge(e.u, e.v);
      const Graph assembled = builder.build();
      const std::vector<double> exact = current_flow_betweenness(assembled);
      for (NodeId v = 0; v < ctx.node_count(); ++v) {
        const double clamped =
            std::min(1.0, std::max(0.0, exact[static_cast<std::size_t>(v)]));
        const auto q = static_cast<std::uint64_t>(
            std::llround(clamped * kScoreScale));
        score_queue_.push_back({v, q});
        if (v == ctx.id()) my_score_ = static_cast<double>(q) / kScoreScale;
      }
      scores_seen_ = n;
    }

    // Score flood: forward one queued score per child per round.
    if (!score_queue_.empty()) {
      const auto [node, q] = score_queue_.front();
      score_queue_.pop_front();
      BitWriter w;
      w.write(kScore, 2);
      w.write(static_cast<std::uint64_t>(node), id_bits_);
      w.write(q, static_cast<int>(kScoreBits));
      for (NodeId child : children_) ctx.send(child, w);
      ++scores_forwarded_;
    }
    if (gather_done_ && scores_forwarded_ == n && score_queue_.empty()) {
      ctx.halt();
    }
    if (gather_done_ && children_.empty() && scores_seen_ == n) {
      ctx.halt();  // leaf: nothing to forward
    }
  }

  double score() const { return my_score_; }

 private:
  NodeId parent_;
  std::vector<NodeId> children_;
  int id_bits_ = 0;
  std::deque<Edge> pending_edges_;
  std::vector<Edge> collected_;  // root only
  std::size_t children_done_ = 0;
  bool gather_done_ = false;
  std::deque<std::pair<NodeId, std::uint64_t>> score_queue_;
  std::uint64_t scores_seen_ = 0;
  std::uint64_t scores_forwarded_ = 0;
  double my_score_ = -1.0;
};

}  // namespace

GatherExactResult gather_exact_rwbc(const Graph& g,
                                    const GatherExactOptions& options) {
  const NodeId n = g.node_count();
  RWBC_REQUIRE(n >= 2, "gather-exact needs n >= 2");
  require_connected(g, "gather-exact RWBC");

  GatherExactResult result;
  if (options.run_leader_election) {
    const LeaderElectionResult election = run_leader_election(
        g, options.congest, static_cast<std::uint64_t>(n));
    result.leader = election.leader;
    result.election_metrics = election.metrics;
    result.total += election.metrics;
  } else {
    result.leader = 0;
  }

  const BfsTreeResult bfs = run_bfs_tree(
      g, result.leader, options.congest, static_cast<std::uint64_t>(n) + 2);
  result.bfs_metrics = bfs.metrics;
  result.total += bfs.metrics;

  Network net(g, options.congest);
  net.set_all_nodes([&](NodeId v) {
    const auto idx = static_cast<std::size_t>(v);
    return std::make_unique<GatherExactNode>(bfs.tree.parent[idx],
                                             bfs.tree.children[idx]);
  });
  result.main_metrics = net.run();
  result.total += result.main_metrics;

  result.betweenness.resize(static_cast<std::size_t>(n));
  for (NodeId v = 0; v < n; ++v) {
    const auto& program = static_cast<const GatherExactNode&>(net.node(v));
    RWBC_ASSERT(program.score() >= 0.0,
                "gather-exact: node never received its score");
    result.betweenness[static_cast<std::size_t>(v)] = program.score();
  }
  return result;
}

}  // namespace rwbc
