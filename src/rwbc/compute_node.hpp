// Algorithm 2 (the computing phase), as a CONGEST node program.
//
// Pipelined count exchange: in round 0 every node tells its neighbours its
// degree; in round r+1 it sends the raw visit count xi_v^{s=r} (an integer,
// O(log n) bits since xi <= K*l).  Receivers divide by the sender's degree
// locally — sending raw integers instead of the paper's pre-divided
// rationals keeps messages exact within the bit budget (resolution 2 in
// DESIGN.md).  After n+1 rounds each node holds its neighbours' scaled
// counts and computes Eq. 6-8 locally using the same sorted-prefix pair
// accumulation as the exact solver; local computation is free in CONGEST.
//
// Endpoint pairs (i = s or i = t) contribute 1 unit each (Eq. 7); with
// counts scaled by 1/(K d(v)) the estimator is commensurate with Newman's
// probabilities, so the normalisation is the exact algorithm's
// (resolution 2: the paper's "divide by K n(n-1)/2" double-scales them).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/node.hpp"
#include "rwbc/reliable_token.hpp"

namespace rwbc {

/// Node-local configuration for the computing phase.
struct ComputeNodeConfig {
  std::vector<std::uint64_t> visits;   ///< xi_v^s from the counting phase
  std::uint64_t walks_per_source = 1;  ///< K
  std::uint64_t cutoff = 1;            ///< l (bounds the count bit width)
  /// When false the message exchange still runs (so round counts are
  /// honest) but received counts are not stored and no score is produced —
  /// the memory-light mode for large scaling experiments.
  bool compute_score = true;
  /// Counts packed per message.  1 reproduces the paper's "one count per
  /// round" (n rounds); 0 auto-fits the CONGEST bit budget, cutting the
  /// phase to ceil(n / b) rounds — same O(log n)-bits-per-round guarantee,
  /// better constant (the E7 ablation charts the trade).  Must be a global
  /// constant (every node derives the same batch size).
  std::uint64_t counts_per_message = 1;

  /// Weighted extension: this node's integer strength (sum of incident
  /// weights).  0 = unweighted, use the degree.  Exchanged in round 0 so
  /// neighbours can normalise counts by 1/(K * strength).
  std::uint64_t strength = 0;
  /// Wire width of the strength field; must be a global constant
  /// (bits_for(W * (n-1) + 1) for max weight W).  0 = id_bits (degrees).
  int strength_bits = 0;
  /// Per-neighbour edge weights for the local Eq. 6 accumulation
  /// (current = conductance * potential difference).  Empty = all 1.
  std::vector<double> neighbor_weights;

  // Robustness knobs (DESIGN.md, "Fault model and self-healing walks").
  /// The baseline positional protocol terminates on a fixed schedule even
  /// under faults (dropped batches just leave zeros behind, guarded
  /// against division by an unseen strength); the reliable mode instead
  /// exchanges self-describing frames [frame:index][payload] over a
  /// ReliableLink, so every batch survives drops/duplication and only a
  /// crashed neighbour's counts are lost.
  bool reliable_transport = false;
  ReliableLinkConfig reliable_link;
  /// Force-finish round for the reliable mode (phase-local); 0 = none.
  /// Covers the undetectable case: a neighbour that acked everything and
  /// then crashed before sending its own frames.
  std::uint64_t deadline_rounds = 0;
};

/// Node program for Algorithm 2.
class ComputeNode final : public NodeProcess {
 public:
  explicit ComputeNode(ComputeNodeConfig config);

  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;
  /// Serializes config_.visits too — the phase input lives in the config,
  /// so a resume can install ComputeNodes with placeholder (all-zero)
  /// visits and recover the real counts from the snapshot instead of
  /// re-running the counting phase.
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;

  /// After the run: this node's random-walk betweenness estimate
  /// (meaningful only when compute_score was set).
  double betweenness() const { return betweenness_; }

  /// After the run: this node's scaled potentials estimate
  /// T_hat(v, s) = xi_v^s / (K d(v)).
  const std::vector<double>& scaled_visits() const { return scaled_visits_; }

  bool finished() const { return finished_; }

 private:
  void finish(NodeContext& ctx);
  void on_round_reliable(NodeContext& ctx, std::span<const Message> inbox);
  void handle_frame(std::size_t slot, BitReader& reader);
  BitWriter encode_frame(std::uint64_t frame) const;

  /// First source index of the batch sent in round `round` (round >= 1).
  std::size_t batch_begin(std::uint64_t round) const {
    return static_cast<std::size_t>((round - 1) * batch_size_);
  }

  ComputeNodeConfig config_;
  std::uint64_t batch_size_ = 1;
  int id_bits_ = 0;
  int count_bits_ = 0;
  int strength_bits_ = 0;
  std::vector<double> scaled_visits_;
  std::vector<std::uint64_t> neighbor_strengths_;  // by neighbour slot
  /// Neighbours' scaled counts, one flat row-major table: entry
  /// [slot * stride_ + source].  Flat (rather than vector-of-vectors) so
  /// the per-batch stores and the finish() row scans are contiguous.
  std::vector<double> neighbor_scaled_;
  std::size_t stride_ = 0;  ///< row width = n
  double betweenness_ = 0.0;
  bool finished_ = false;

  // Reliable-transport state (unused in the baseline positional mode).
  std::unique_ptr<ReliableLink> link_;
  int frame_bits_ = 0;
  std::uint64_t total_frames_ = 0;  ///< 1 strength frame + ceil(n/batch)
  std::vector<std::uint64_t> next_frame_;       ///< per slot, next to queue
  std::vector<std::uint64_t> frames_received_;  ///< per slot
  std::vector<std::uint64_t> neighbor_raw_;  ///< flat [slot * stride_ + s]
};

}  // namespace rwbc
