#include "rwbc/sarma_walk.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "congest/checkpoint.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "graph/properties.hpp"

namespace rwbc {

namespace {

enum SarmaMsg : std::uint64_t {
  kCoupon = 0,       // (owner, serial, remaining): short walk in flight
  kSweepRequest = 1, // phase-1 termination detection, down the tree
  kSweepReport = 2,  // rested-coupon subtree count, up the tree
  kPhase2Start = 3,  // broadcast: all coupons rested, stitching may begin
  kStitchUp = 4,     // (owner, serial, rem): coupon lookup toward the root
  kStitchFind = 5,   // (owner, serial, rem): lookup broadcast down
  kLongWalk = 6,     // (rem): a direct single step of the long walk
  kDoneUp = 7,       // walk finished, notify the root
  kDone = 8,         // broadcast: halt
};
constexpr int kTypeBits = 4;

struct Coupon {
  NodeId owner = 0;
  std::uint64_t serial = 0;
  std::uint64_t remaining = 0;
};

struct SarmaNodeConfig {
  NodeId walk_source = 0;
  std::uint64_t length = 1;
  std::uint64_t lambda = 1;
  std::uint64_t eta = 1;
  std::uint64_t coupons_per_edge = 3;
  NodeId tree_parent = -1;
  std::vector<NodeId> tree_children;
};

class SarmaWalkNode final : public NodeProcess {
 public:
  explicit SarmaWalkNode(SarmaNodeConfig config)
      : config_(std::move(config)) {}

  void on_start(NodeContext& ctx) override {
    const auto n = static_cast<std::uint64_t>(ctx.node_count());
    id_bits_ = bits_for(n);
    serial_bits_ = bits_for(config_.eta + 1);
    lambda_bits_ = bits_for(config_.lambda + 1);
    length_bits_ = bits_for(config_.length + 1);
    rest_count_bits_ = bits_for(n * config_.eta + 1);
    is_root_ = config_.tree_parent < 0;
    expected_rested_ = n * config_.eta;
    per_neighbor_.assign(static_cast<std::size_t>(ctx.degree()), {});
    for (std::uint64_t k = 0; k < config_.eta; ++k) {
      held_coupons_.push_back(Coupon{ctx.id(), k, config_.lambda});
    }
    if (ctx.id() == config_.walk_source) {
      am_holder_ = true;
      walk_remaining_ = config_.length;
    }
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    process_inbox(ctx, inbox);
    if (done_pending_) {
      relay_done(ctx);
      return;
    }
    if (finished_) {
      ctx.halt();
      return;
    }
    if (phase_ == 1) {
      forward_coupons(ctx);
      run_sweep_logic(ctx);
    } else if (am_holder_ && !handed_off_) {
      act_as_holder(ctx);
    }
  }

  bool is_destination() const { return is_destination_; }
  std::uint64_t stitches() const { return stitches_; }
  std::uint64_t direct_steps() const { return direct_steps_; }
  bool finished() const { return finished_; }

  void save_state(CheckpointWriter& out) const override {
    out.i64(phase_);
    auto write_coupons = [&out](const std::vector<Coupon>& coupons) {
      out.u64(coupons.size());
      for (const Coupon& coupon : coupons) {
        out.u32(static_cast<std::uint32_t>(coupon.owner));
        out.u64(coupon.serial);
        out.u64(coupon.remaining);
      }
    };
    write_coupons(held_coupons_);
    write_coupons(rested_coupons_);
    out.u64(rested_here_);
    out.boolean(sweep_in_progress_);
    out.boolean(sweep_request_pending_);
    out.u64(sweep_reports_pending_);
    out.u64(sweep_accumulator_);
    out.boolean(am_holder_);
    out.boolean(handed_off_);
    out.u64(walk_remaining_);
    out.u64(next_serial_);
    out.u64(stitches_);
    out.u64(direct_steps_);
    out.boolean(is_destination_);
    out.boolean(done_pending_);
    out.boolean(finished_);
  }

  void load_state(CheckpointReader& in) override {
    phase_ = static_cast<int>(in.i64());
    auto read_coupons = [&in](std::vector<Coupon>& coupons) {
      coupons.clear();
      const std::uint64_t count = in.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        Coupon coupon;
        coupon.owner = static_cast<NodeId>(in.u32());
        coupon.serial = in.u64();
        coupon.remaining = in.u64();
        coupons.push_back(coupon);
      }
    };
    read_coupons(held_coupons_);
    read_coupons(rested_coupons_);
    rested_here_ = in.u64();
    sweep_in_progress_ = in.boolean();
    sweep_request_pending_ = in.boolean();
    sweep_reports_pending_ = static_cast<std::size_t>(in.u64());
    sweep_accumulator_ = in.u64();
    am_holder_ = in.boolean();
    handed_off_ = in.boolean();
    walk_remaining_ = in.u64();
    next_serial_ = in.u64();
    stitches_ = in.u64();
    direct_steps_ = in.u64();
    is_destination_ = in.boolean();
    done_pending_ = in.boolean();
    finished_ = in.boolean();
  }

 private:
  void process_inbox(NodeContext& ctx, std::span<const Message> inbox) {
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      switch (static_cast<SarmaMsg>(reader.read(kTypeBits))) {
        case kCoupon: {
          // Coalesced batch: [gamma(count)] then fixed-width records in
          // emission order, so the arrival sequence (and hence the
          // held/rested lineage) matches the legacy one-message-per-coupon
          // wire exactly — only message counts and bits differ.
          const std::uint64_t count = read_gamma(reader);
          for (std::uint64_t i = 0; i < count; ++i) {
            Coupon coupon;
            coupon.owner = static_cast<NodeId>(reader.read(id_bits_));
            coupon.serial = reader.read(serial_bits_);
            coupon.remaining = reader.read(lambda_bits_);
            if (coupon.remaining == 0) {
              rested_coupons_.push_back(coupon);
              ++rested_here_;
            } else {
              held_coupons_.push_back(coupon);
            }
          }
          break;
        }
        case kSweepRequest:
          sweep_request_pending_ = true;
          break;
        case kSweepReport:
          RWBC_ASSERT(sweep_reports_pending_ > 0, "unexpected sweep report");
          sweep_accumulator_ += reader.read(rest_count_bits_);
          --sweep_reports_pending_;
          break;
        case kPhase2Start:
          enter_phase2(ctx);
          break;
        case kStitchUp: {
          const auto owner = static_cast<NodeId>(reader.read(id_bits_));
          const std::uint64_t serial = reader.read(serial_bits_);
          const std::uint64_t rem = reader.read(length_bits_);
          handle_stitch_lookup(ctx, owner, serial, rem, /*from_root=*/false);
          break;
        }
        case kStitchFind: {
          const auto owner = static_cast<NodeId>(reader.read(id_bits_));
          const std::uint64_t serial = reader.read(serial_bits_);
          const std::uint64_t rem = reader.read(length_bits_);
          handle_stitch_find(ctx, owner, serial, rem);
          break;
        }
        case kLongWalk:
          am_holder_ = true;
          handed_off_ = false;
          walk_remaining_ = reader.read(length_bits_);
          break;
        case kDoneUp:
          if (is_root_) {
            done_pending_ = true;
          } else {
            BitWriter up;
            up.write(kDoneUp, kTypeBits);
            ctx.send(config_.tree_parent, up);
          }
          break;
        case kDone:
          done_pending_ = true;
          break;
      }
    }
  }

  void relay_done(NodeContext& ctx) {
    BitWriter done;
    done.write(kDone, kTypeBits);
    for (NodeId child : config_.tree_children) ctx.send(child, done);
    done_pending_ = false;
    finished_ = true;
    ctx.halt();
  }

  void enter_phase2(NodeContext& ctx) {
    phase_ = 2;
    for (NodeId child : config_.tree_children) {
      BitWriter start;
      start.write(kPhase2Start, kTypeBits);
      ctx.send(child, start);
    }
  }

  // Coupon lookup reached the root (or was initiated there): check locally,
  // else broadcast the find downward.
  void handle_stitch_lookup(NodeContext& ctx, NodeId owner,
                            std::uint64_t serial, std::uint64_t rem,
                            bool from_root) {
    if (!is_root_ && !from_root) {
      BitWriter up;
      up.write(kStitchUp, kTypeBits);
      up.write(static_cast<std::uint64_t>(owner), id_bits_);
      up.write(serial, serial_bits_);
      up.write(rem, length_bits_);
      ctx.send(config_.tree_parent, up);
      return;
    }
    if (!try_claim_coupon(owner, serial, rem)) {
      BitWriter find;
      find.write(kStitchFind, kTypeBits);
      find.write(static_cast<std::uint64_t>(owner), id_bits_);
      find.write(serial, serial_bits_);
      find.write(rem, length_bits_);
      for (NodeId child : config_.tree_children) ctx.send(child, find);
    }
  }

  void handle_stitch_find(NodeContext& ctx, NodeId owner,
                          std::uint64_t serial, std::uint64_t rem) {
    if (try_claim_coupon(owner, serial, rem)) return;
    BitWriter find;
    find.write(kStitchFind, kTypeBits);
    find.write(static_cast<std::uint64_t>(owner), id_bits_);
    find.write(serial, serial_bits_);
    find.write(rem, length_bits_);
    for (NodeId child : config_.tree_children) ctx.send(child, find);
  }

  // If this node holds the rested coupon (owner, serial), consume it and
  // become the walk holder.  Returns true on a match.
  bool try_claim_coupon(NodeId owner, std::uint64_t serial,
                        std::uint64_t rem) {
    const auto it = std::find_if(
        rested_coupons_.begin(), rested_coupons_.end(),
        [&](const Coupon& c) {
          return c.owner == owner && c.serial == serial;
        });
    if (it == rested_coupons_.end()) return false;
    rested_coupons_.erase(it);
    am_holder_ = true;
    handed_off_ = false;
    walk_remaining_ = rem;
    ++stitches_;
    return true;
  }

  void act_as_holder(NodeContext& ctx) {
    if (walk_remaining_ == 0) {
      is_destination_ = true;
      am_holder_ = false;
      if (is_root_) {
        done_pending_ = true;
        relay_done(ctx);
      } else {
        BitWriter up;
        up.write(kDoneUp, kTypeBits);
        ctx.send(config_.tree_parent, up);
      }
      return;
    }
    if (walk_remaining_ >= config_.lambda && next_serial_ < config_.eta) {
      const std::uint64_t serial = next_serial_++;
      const std::uint64_t rem = walk_remaining_ - config_.lambda;
      am_holder_ = false;
      // A coupon may have rested on its own owner; check locally before
      // spending O(D) rounds on the tree lookup.
      if (try_claim_coupon(ctx.id(), serial, rem)) return;
      handle_stitch_lookup(ctx, ctx.id(), serial, rem, /*from_root=*/is_root_);
      return;
    }
    // Out of coupons, or the tail is shorter than lambda: step directly.
    const auto neighbors = ctx.neighbors();
    const NodeId next = neighbors[ctx.rng().next_below(neighbors.size())];
    BitWriter step;
    step.write(kLongWalk, kTypeBits);
    step.write(walk_remaining_ - 1, length_bits_);
    ctx.send(next, step);
    ++direct_steps_;
    am_holder_ = false;
    handed_off_ = true;
  }

  void forward_coupons(NodeContext& ctx) {
    if (held_coupons_.empty()) return;
    const auto degree = static_cast<std::size_t>(ctx.degree());
    for (auto& bucket : per_neighbor_) bucket.clear();
    for (std::size_t c = 0; c < held_coupons_.size(); ++c) {
      per_neighbor_[ctx.rng().next_below(degree)].push_back(c);
    }
    // Self-limit the per-edge coupon count to the bit budget, leaving slack
    // for one control message (sweep traffic shares tree edges).  All the
    // slot's winners ride ONE payload [kCoupon][gamma(count)][records], so
    // the cap is the largest batch whose encoding fits the leftover budget.
    const std::uint64_t record_bits = static_cast<std::uint64_t>(
        id_bits_ + serial_bits_ + lambda_bits_);
    const std::uint64_t control_slack =
        static_cast<std::uint64_t>(kTypeBits + rest_count_bits_);
    const std::uint64_t coupon_budget =
        ctx.bit_budget() - std::min(ctx.bit_budget() - 1, control_slack);
    auto gamma_bits = [](std::uint64_t value) {
      int k = 0;
      while ((value >> k) > 1) ++k;
      return static_cast<std::uint64_t>(2 * k + 1);
    };
    std::uint64_t budget_cap = 1;
    while (budget_cap < config_.coupons_per_edge &&
           static_cast<std::uint64_t>(kTypeBits) + gamma_bits(budget_cap + 1) +
                   (budget_cap + 1) * record_bits <=
               coupon_budget) {
      ++budget_cap;
    }
    const auto cap = static_cast<std::size_t>(budget_cap);
    std::vector<Coupon> kept;
    std::vector<Coupon> batch;
    const auto neighbors = ctx.neighbors();
    for (std::size_t slot = 0; slot < degree; ++slot) {
      auto& bucket = per_neighbor_[slot];
      const std::size_t winners = std::min(bucket.size(), cap);
      batch.clear();
      for (std::size_t i = 0; i < winners; ++i) {
        const std::size_t j = i + ctx.rng().next_below(bucket.size() - i);
        std::swap(bucket[i], bucket[j]);
        Coupon coupon = held_coupons_[bucket[i]];
        coupon.remaining -= 1;
        batch.push_back(coupon);
      }
      if (!batch.empty()) {
        BitWriter w;
        w.write(kCoupon, kTypeBits);
        write_gamma(w, batch.size());
        for (const Coupon& coupon : batch) {
          w.write(static_cast<std::uint64_t>(coupon.owner), id_bits_);
          w.write(coupon.serial, serial_bits_);
          w.write(coupon.remaining, lambda_bits_);
        }
        ctx.send(neighbors[slot], w);
      }
      for (std::size_t i = winners; i < bucket.size(); ++i) {
        kept.push_back(held_coupons_[bucket[i]]);
      }
    }
    held_coupons_.swap(kept);
  }

  void run_sweep_logic(NodeContext& ctx) {
    if (is_root_) {
      if (!sweep_in_progress_) {
        sweep_in_progress_ = true;
        sweep_accumulator_ = 0;
        sweep_reports_pending_ = config_.tree_children.size();
        for (NodeId child : config_.tree_children) {
          BitWriter req;
          req.write(kSweepRequest, kTypeBits);
          ctx.send(child, req);
        }
      }
      if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
        const std::uint64_t total = sweep_accumulator_ + rested_here_;
        RWBC_ASSERT(total <= expected_rested_, "coupon over-count");
        if (total == expected_rested_) {
          enter_phase2(ctx);
        } else {
          sweep_in_progress_ = false;
        }
      }
      return;
    }
    if (sweep_request_pending_ && !sweep_in_progress_) {
      sweep_request_pending_ = false;
      sweep_in_progress_ = true;
      sweep_accumulator_ = 0;
      sweep_reports_pending_ = config_.tree_children.size();
      for (NodeId child : config_.tree_children) {
        BitWriter req;
        req.write(kSweepRequest, kTypeBits);
        ctx.send(child, req);
      }
    }
    if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
      BitWriter report;
      report.write(kSweepReport, kTypeBits);
      report.write(sweep_accumulator_ + rested_here_, rest_count_bits_);
      ctx.send(config_.tree_parent, report);
      sweep_in_progress_ = false;
    }
  }

  SarmaNodeConfig config_;
  int id_bits_ = 0, serial_bits_ = 0, lambda_bits_ = 0, length_bits_ = 0;
  int rest_count_bits_ = 0;
  bool is_root_ = false;
  int phase_ = 1;

  std::vector<Coupon> held_coupons_;
  std::vector<Coupon> rested_coupons_;
  std::uint64_t rested_here_ = 0;
  std::uint64_t expected_rested_ = 0;
  std::vector<std::vector<std::size_t>> per_neighbor_;

  bool sweep_in_progress_ = false;
  bool sweep_request_pending_ = false;
  std::size_t sweep_reports_pending_ = 0;
  std::uint64_t sweep_accumulator_ = 0;

  bool am_holder_ = false;
  bool handed_off_ = false;
  std::uint64_t walk_remaining_ = 0;
  std::uint64_t next_serial_ = 0;
  std::uint64_t stitches_ = 0;
  std::uint64_t direct_steps_ = 0;
  bool is_destination_ = false;
  bool done_pending_ = false;
  bool finished_ = false;
};

/// Naive baseline node: holds the token, steps once per round.
class DirectWalkNode final : public NodeProcess {
 public:
  DirectWalkNode(NodeId source, std::uint64_t length)
      : source_(source), length_(length) {}

  void on_start(NodeContext& ctx) override {
    length_bits_ = bits_for(length_ + 1);
    if (ctx.id() == source_) {
      holding_ = true;
      remaining_ = length_;
    }
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      remaining_ = reader.read(length_bits_);
      holding_ = true;
    }
    if (holding_) {
      if (remaining_ == 0) {
        is_destination_ = true;
      } else {
        const auto neighbors = ctx.neighbors();
        const NodeId next =
            neighbors[ctx.rng().next_below(neighbors.size())];
        BitWriter step;
        step.write(remaining_ - 1, length_bits_);
        ctx.send(next, step);
      }
      holding_ = false;
    }
    ctx.halt();  // woken again if the token returns
  }

  bool is_destination() const { return is_destination_; }

  void save_state(CheckpointWriter& out) const override {
    out.boolean(holding_);
    out.u64(remaining_);
    out.boolean(is_destination_);
  }

  void load_state(CheckpointReader& in) override {
    holding_ = in.boolean();
    remaining_ = in.u64();
    is_destination_ = in.boolean();
  }

 private:
  NodeId source_;
  std::uint64_t length_;
  int length_bits_ = 0;
  bool holding_ = false;
  std::uint64_t remaining_ = 0;
  bool is_destination_ = false;
};

}  // namespace

SarmaWalkResult sarma_distributed_walk(const Graph& g, NodeId source,
                                       const SarmaWalkOptions& options) {
  RWBC_REQUIRE(g.node_count() >= 2, "stitched walk needs n >= 2");
  RWBC_REQUIRE(source >= 0 && source < g.node_count(), "source out of range");
  RWBC_REQUIRE(options.length >= 1, "walk length must be >= 1");
  require_connected(g, "stitched distributed walk");

  SarmaWalkResult result;
  // The BFS setup phase uses tree nodes that do not checkpoint; strip any
  // checkpoint configuration so only the walk phase snapshots/resumes.
  CongestConfig setup_congest = options.congest;
  setup_congest.checkpoint_interval = 0;
  setup_congest.checkpoint_sink = nullptr;
  setup_congest.resume_checkpoint.clear();
  const BfsTreeResult bfs = run_bfs_tree(
      g, 0, setup_congest, static_cast<std::uint64_t>(g.node_count()) + 2);
  result.bfs_metrics = bfs.metrics;
  RunMetrics total_metrics = bfs.metrics;

  // D <= 2 * height of any BFS tree; lambda = sqrt(l * D) optimises
  // lambda (phase 1) against (l / lambda) * O(D) stitches (phase 2).
  const double diameter_bound =
      std::max(1.0, 2.0 * static_cast<double>(bfs.tree.height));
  std::uint64_t lambda =
      options.short_walk_length > 0
          ? options.short_walk_length
          : static_cast<std::uint64_t>(std::ceil(std::sqrt(
                static_cast<double>(options.length) * diameter_bound)));
  lambda = std::max<std::uint64_t>(1, std::min<std::uint64_t>(
                                          lambda, options.length));
  // Coupon budget: only ~l/lambda coupons are consumed IN TOTAL, landing on
  // nodes roughly by stationary weight d(v)/2m, so the per-node need is
  // (l/lambda) * d_max/(2m) — tiny.  We provision 4x that plus slack; the
  // direct-step fallback keeps the walk correct if a node still runs dry.
  std::uint64_t eta = options.coupons_per_node;
  if (eta == 0) {
    const double stitches_total = static_cast<double>(
        (options.length + lambda - 1) / lambda);
    const double per_node_need =
        stitches_total * static_cast<double>(g.max_degree()) /
        (2.0 * static_cast<double>(g.edge_count()));
    eta = std::max<std::uint64_t>(
        2, static_cast<std::uint64_t>(std::ceil(4.0 * per_node_need)) + 1);
  }

  CongestConfig walk_congest = options.congest;
  walk_congest.checkpoint_label = "sarma-walk";
  Network net(g, walk_congest);
  net.set_all_nodes([&](NodeId v) {
    SarmaNodeConfig config;
    config.walk_source = source;
    config.length = options.length;
    config.lambda = lambda;
    config.eta = eta;
    config.coupons_per_edge = options.coupons_per_edge_per_round;
    config.tree_parent = bfs.tree.parent[static_cast<std::size_t>(v)];
    config.tree_children = bfs.tree.children[static_cast<std::size_t>(v)];
    return std::make_unique<SarmaWalkNode>(std::move(config));
  });
  result.walk_metrics = net.run();
  total_metrics += result.walk_metrics;

  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const SarmaWalkNode&>(net.node(v));
    RWBC_ASSERT(node.finished(), "stitched walk did not finish everywhere");
    result.stitches += node.stitches();
    result.direct_steps += node.direct_steps();
    if (node.is_destination()) {
      RWBC_ASSERT(result.destination < 0, "two destinations reported");
      result.destination = v;
    }
  }
  RWBC_ASSERT(result.destination >= 0, "no destination reported");
  result.report = make_run_report("sarma-walk", {}, total_metrics,
                                  options.congest.seed);
  return result;
}

DirectWalkResult direct_distributed_walk(const Graph& g, NodeId source,
                                         std::size_t length,
                                         const CongestConfig& config) {
  RWBC_REQUIRE(g.node_count() >= 1, "walk needs a non-empty graph");
  RWBC_REQUIRE(source >= 0 && source < g.node_count(), "source out of range");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    RWBC_REQUIRE(g.degree(v) > 0, "walk needs minimum degree 1");
  }
  CongestConfig walk_congest = config;
  walk_congest.checkpoint_label = "direct-walk";
  Network net(g, walk_congest);
  net.set_all_nodes([&](NodeId) {
    return std::make_unique<DirectWalkNode>(source, length);
  });
  DirectWalkResult result;
  result.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const DirectWalkNode&>(net.node(v));
    if (node.is_destination()) {
      RWBC_ASSERT(result.destination < 0, "two destinations reported");
      result.destination = v;
    }
  }
  RWBC_ASSERT(result.destination >= 0, "no destination reported");
  return result;
}

}  // namespace rwbc
