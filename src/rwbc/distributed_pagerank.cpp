#include "rwbc/distributed_pagerank.hpp"

#include <memory>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

namespace {

/// Node program: holds anonymous walk tokens; each round every held walk
/// stops with probability eps (scoring an "ending" here) or moves to a
/// uniform random neighbour; per-neighbour token counts travel as one
/// integer message.
class PagerankNode final : public NodeProcess {
 public:
  PagerankNode(double reset_probability, std::uint64_t walks_per_node)
      : reset_probability_(reset_probability), walks_(walks_per_node) {}

  void on_start(NodeContext& ctx) override {
    // Count width: total walks in the system bounds any edge count.
    count_bits_ = bits_for(static_cast<std::uint64_t>(ctx.node_count()) *
                               walks_ + 1);
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      walks_ += reader.read(count_bits_);
    }
    if (walks_ == 0) {
      ctx.halt();  // woken automatically if tokens arrive later
      return;
    }
    const auto degree = static_cast<std::size_t>(ctx.degree());
    std::vector<std::uint64_t> outgoing(degree, 0);
    std::uint64_t moving = 0;
    for (std::uint64_t w = 0; w < walks_; ++w) {
      if (ctx.rng().next_bool(reset_probability_)) {
        ++endings_;
      } else {
        ++outgoing[ctx.rng().next_below(degree)];
        ++moving;
      }
    }
    walks_ = 0;
    const auto neighbors = ctx.neighbors();
    for (std::size_t slot = 0; slot < degree; ++slot) {
      if (outgoing[slot] == 0) continue;
      BitWriter w;
      w.write(outgoing[slot], count_bits_);
      ctx.send(neighbors[slot], w);
    }
    if (moving == 0) ctx.halt();
  }

  std::uint64_t endings() const { return endings_; }

  void save_state(CheckpointWriter& out) const override {
    out.u64(walks_);
    out.u64(endings_);
  }

  void load_state(CheckpointReader& in) override {
    walks_ = in.u64();
    endings_ = in.u64();
  }

 private:
  double reset_probability_;
  std::uint64_t walks_;
  int count_bits_ = 0;
  std::uint64_t endings_ = 0;
};

}  // namespace

DistributedPagerankResult distributed_pagerank(
    const Graph& g, const DistributedPagerankOptions& options) {
  RWBC_REQUIRE(g.node_count() >= 1, "pagerank needs a non-empty graph");
  RWBC_REQUIRE(options.reset_probability > 0.0 &&
                   options.reset_probability < 1.0,
               "reset probability must be in (0, 1)");
  RWBC_REQUIRE(options.walks_per_node >= 1, "need at least one walk");
  for (NodeId v = 0; v < g.node_count(); ++v) {
    RWBC_REQUIRE(g.degree(v) > 0, "pagerank needs minimum degree 1");
  }

  CongestConfig congest = options.congest;
  congest.checkpoint_label = "pagerank";
  Network net(g, congest);
  net.set_all_nodes([&](NodeId) {
    return std::make_unique<PagerankNode>(options.reset_probability,
                                          options.walks_per_node);
  });
  DistributedPagerankResult result;
  const RunMetrics metrics = net.run();
  const double total = static_cast<double>(g.node_count()) *
                       static_cast<double>(options.walks_per_node);
  std::vector<double> scores(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& program = static_cast<const PagerankNode&>(net.node(v));
    scores[static_cast<std::size_t>(v)] =
        static_cast<double>(program.endings()) / total;
  }
  result.report = make_run_report("pagerank", std::move(scores), metrics,
                                  options.congest.seed);
  return result;
}

}  // namespace rwbc
