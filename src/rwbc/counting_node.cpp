#include "rwbc/counting_node.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

CountingNode::CountingNode(CountingNodeConfig config)
    : config_(std::move(config)),
      wire_(2, config_.cutoff, config_.walks_per_source) {
  RWBC_REQUIRE(config_.cutoff >= 1, "counting phase needs cutoff >= 1");
  RWBC_REQUIRE(config_.walks_per_source >= 1,
               "counting phase needs at least one walk per source");
  RWBC_REQUIRE(config_.walks_per_edge_per_round >= 1,
               "need at least one walk slot per edge per round");
}

void CountingNode::on_start(NodeContext& ctx) {
  const NodeId n = ctx.node_count();
  RWBC_REQUIRE(n >= 2, "counting phase needs n >= 2");
  RWBC_REQUIRE(config_.target >= 0 && config_.target < n,
               "counting phase target out of range");
  wire_ = CountingWire(n, config_.cutoff, config_.walks_per_source);
  visits_.assign(config_.track_visits ? static_cast<std::size_t>(n) : 0, 0);
  is_root_ = config_.tree_parent < 0;
  expected_total_deaths_ =
      static_cast<std::uint64_t>(n - 1) * config_.walks_per_source;
  batch_wire_ =
      WalkBatchWire(n, config_.cutoff, config_.walks_per_edge_per_round);
  // Cap coalesced batches so the worst-case encoding always fits the
  // per-edge budget (minus the reliable DATA frame header when the link is
  // on).  A control frame — at widest, a sweep report — can share the edge
  // with a walk batch in the same round, so its bits are reserved too.
  // 1 at the paper's wpepr = 1, so winner selection is unchanged.
  std::uint64_t inner_budget = ctx.bit_budget();
  std::uint64_t reserved =
      static_cast<std::uint64_t>(wire_.type_bits + wire_.count_bits);
  if (config_.reliable_transport) {
    const auto header =
        static_cast<std::uint64_t>(1 + config_.reliable_link.seq_bits);
    reserved += 2 * header;  // one header for the batch, one for the control
  }
  inner_budget = inner_budget > reserved ? inner_budget - reserved : 0;
  batch_cap_ =
      std::max<std::uint64_t>(1, batch_wire_.max_batch_for_budget(inner_budget));
  const auto degree = static_cast<std::size_t>(ctx.degree());
  bucket_count_.assign(degree, 0);
  bucket_off_.assign(degree + 1, 0);
  bucket_cursor_.assign(degree, 0);
  if (config_.reliable_transport) {
    link_ = std::make_unique<ReliableLink>(config_.reliable_link, degree);
  }
  if (!config_.neighbor_weights.empty()) {
    RWBC_REQUIRE(config_.neighbor_weights.size() ==
                     static_cast<std::size_t>(ctx.degree()),
                 "need one weight per neighbour");
    cumulative_weights_.resize(config_.neighbor_weights.size());
    double running = 0.0;
    for (std::size_t slot = 0; slot < config_.neighbor_weights.size();
         ++slot) {
      RWBC_REQUIRE(config_.neighbor_weights[slot] > 0.0,
                   "edge weights must be positive");
      running += config_.neighbor_weights[slot];
      cumulative_weights_[slot] = running;
    }
  }

  if (ctx.id() != config_.target) {
    // K walks born here; their r = 0 occupancy counts as a visit (Sec. IV:
    // N_ss includes the start).
    pool_.reserve(config_.walks_per_source);
    for (std::uint64_t k = 0; k < config_.walks_per_source; ++k) {
      pool_.push(ctx.id(), config_.cutoff, -1);
    }
    if (config_.track_visits) {
      visits_[static_cast<std::size_t>(ctx.id())] += config_.walks_per_source;
    }
  }
}

void CountingNode::save_state(CheckpointWriter& out) const {
  // Dynamic state only; wire_, is_root_, expected_total_deaths_,
  // cumulative_weights_, and the link allocation are rebuilt by on_start
  // (load_state then overwrites the link's transport state).
  out.u64(visits_.size());
  for (std::uint64_t count : visits_) out.u64(count);
  // Same byte layout as the seed's array-of-structs pool: (source,
  // remaining, committed slot) per walk, pool order.
  out.u64(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    out.u32(static_cast<std::uint32_t>(pool_.source(i)));
    out.u64(pool_.remaining(i));
    out.i64(pool_.committed(i));
  }
  out.u64(died_);
  out.boolean(sweep_in_progress_);
  out.boolean(sweep_request_pending_);
  out.u64(sweep_reports_pending_);
  out.u64(sweep_accumulator_);
  out.boolean(done_pending_);
  out.boolean(finished_);
  out.boolean(link_ != nullptr);
  if (link_) link_->save_state(out);
}

void CountingNode::load_state(CheckpointReader& in) {
  const std::uint64_t visit_count = in.u64();
  if (visit_count != visits_.size()) {
    throw CheckpointError("counting node visit table size mismatch");
  }
  for (std::size_t s = 0; s < visits_.size(); ++s) visits_[s] = in.u64();
  pool_.clear();
  const std::uint64_t held = in.u64();
  for (std::uint64_t i = 0; i < held; ++i) {
    const auto source = static_cast<NodeId>(in.u32());
    const std::uint64_t remaining = in.u64();
    const auto committed = static_cast<std::int32_t>(in.i64());
    pool_.push(source, remaining, committed);
  }
  died_ = in.u64();
  sweep_in_progress_ = in.boolean();
  sweep_request_pending_ = in.boolean();
  sweep_reports_pending_ = static_cast<std::size_t>(in.u64());
  sweep_accumulator_ = in.u64();
  done_pending_ = in.boolean();
  finished_ = in.boolean();
  const bool has_link = in.boolean();
  if (has_link != (link_ != nullptr)) {
    throw CheckpointError(
        "counting node reliable-transport mismatch with snapshot");
  }
  if (link_) link_->load_state(in);
}

void CountingNode::record_kill() { ++died_; }

std::size_t CountingNode::slot_of(NodeContext& ctx, NodeId v) const {
  const auto neighbors = ctx.neighbors();
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
  RWBC_ASSERT(it != neighbors.end() && *it == v,
              "message arrived from a non-neighbour");
  return static_cast<std::size_t>(it - neighbors.begin());
}

void CountingNode::send_control(NodeContext& ctx, NodeId to,
                                const BitWriter& payload) {
  // Control traffic (sweeps, DONE) is urgent: it bypasses the window so a
  // congested link cannot stall termination detection.
  if (link_) {
    link_->send(slot_of(ctx, to), payload, /*urgent=*/true);
  } else {
    ctx.send(to, payload);
  }
}

void CountingNode::handle_payload(NodeContext& ctx, BitReader& reader) {
  const auto type = static_cast<CountingMsg>(reader.read(wire_.type_bits));
  switch (type) {
    case CountingMsg::kWalk: {
      decoded_.clear();
      if (config_.coalesce_walks) {
        batch_wire_.decode(reader, decoded_);
      } else {
        WalkToken walk;
        walk.source = static_cast<NodeId>(reader.read(wire_.id_bits));
        walk.remaining = reader.read(wire_.length_bits);
        decoded_.push_back(walk);
      }
      for (const WalkToken& walk : decoded_) {
        if (ctx.id() == config_.target) {
          record_kill();  // absorbed; the target's counts stay zero
        } else {
          if (config_.track_visits) {
            ++visits_[static_cast<std::size_t>(walk.source)];
          }
          if (walk.remaining == 0) {
            record_kill();  // expired on arrival
          } else {
            pool_.push(walk.source, walk.remaining, -1);
          }
        }
      }
      break;
    }
    case CountingMsg::kSweepRequest:
      sweep_request_pending_ = true;
      break;
    case CountingMsg::kSweepReport:
      if (sweep_reports_pending_ == 0) {
        // A duplicated report from an earlier sweep; only possible under
        // fault injection (dup_prob) without the reliable layer's dedup.
        RWBC_ASSERT(config_.fault_tolerant, "unexpected sweep report");
        break;
      }
      sweep_accumulator_ += reader.read(wire_.count_bits);
      --sweep_reports_pending_;
      break;
    case CountingMsg::kDone:
      done_pending_ = true;
      break;
  }
}

void CountingNode::process_inbox(NodeContext& ctx,
                                 std::span<const Message> inbox) {
  if (link_) {
    std::vector<ReliableDelivery> deliveries;
    for (const Message& msg : inbox) {
      link_->on_message(slot_of(ctx, msg.from), msg, deliveries);
    }
    for (const ReliableDelivery& delivery : deliveries) {
      BitReader reader(delivery.bytes, delivery.bit_count);
      handle_payload(ctx, reader);
    }
    return;
  }
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    handle_payload(ctx, reader);
  }
}

void CountingNode::absorb_give_ups() {
  // Frames the link gave up on (neighbour suspected crashed).  Walk tokens
  // come back into the held pool with their move refunded and no committed
  // slot, so the next forward re-routes them around the dead link; control
  // frames are abandoned — the deadline backstop covers a broken tree.
  for (ReliableGiveUp& give_up : link_->take_give_ups()) {
    BitReader reader(give_up.bytes, give_up.bit_count);
    const auto type = static_cast<CountingMsg>(reader.read(wire_.type_bits));
    if (type != CountingMsg::kWalk) continue;
    decoded_.clear();
    if (config_.coalesce_walks) {
      batch_wire_.decode(reader, decoded_);
    } else {
      WalkToken walk;
      walk.source = static_cast<NodeId>(reader.read(wire_.id_bits));
      walk.remaining = reader.read(wire_.length_bits);
      decoded_.push_back(walk);
    }
    for (const WalkToken& walk : decoded_) {
      pool_.push(walk.source, walk.remaining + 1, -1);  // move never happened
    }
  }
}

std::size_t CountingNode::draw_neighbor_slot(NodeContext& ctx) {
  if (cumulative_weights_.empty()) {
    return ctx.rng().next_below(static_cast<std::size_t>(ctx.degree()));
  }
  // Weighted move: P(slot) = w_slot / strength.
  const double target_mass =
      ctx.rng().next_double() * cumulative_weights_.back();
  const auto it = std::upper_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), target_mass);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_weights_.begin()),
      cumulative_weights_.size() - 1);
}

void CountingNode::forward_walks(NodeContext& ctx) {
  if (pool_.empty()) return;
  const auto degree = static_cast<std::size_t>(ctx.degree());
  if (link_) {
    // Self-healing re-route: a suspected-dead neighbour takes no further
    // walks.  Walks committed to it redraw; with every neighbour dead the
    // walks cannot move again and die in place (so the death count the
    // root waits for still converges).
    std::size_t live = 0;
    for (std::size_t slot = 0; slot < degree; ++slot) {
      if (!link_->slot_dead(slot)) ++live;
    }
    if (live == 0) {
      for (std::size_t w = 0; w < pool_.size(); ++w) record_kill();
      pool_.clear();
      return;
    }
    for (std::size_t w = 0; w < pool_.size(); ++w) {
      const std::int32_t slot = pool_.committed(w);
      if (slot >= 0 && link_->slot_dead(static_cast<std::size_t>(slot))) {
        pool_.set_committed(w, -1);
      }
    }
  }
  // Commit-and-queue: draw a destination once; losers keep theirs so the
  // realized transitions match the drawn distribution under contention.
  // The commit draws run in pool order — exactly the seed's held-walk
  // order — and a counting sort (count / prefix / stable scatter) groups
  // pool indices per slot with the same (slot, pool-order) layout the
  // seed's per-neighbour vectors produced, without per-slot heap churn.
  std::fill(bucket_count_.begin(), bucket_count_.end(), 0);
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    if (pool_.committed(w) < 0) {
      std::size_t slot = draw_neighbor_slot(ctx);
      while (link_ && link_->slot_dead(slot)) slot = draw_neighbor_slot(ctx);
      pool_.set_committed(w, static_cast<std::int32_t>(slot));
    }
    ++bucket_count_[static_cast<std::size_t>(pool_.committed(w))];
  }
  bucket_off_[0] = 0;
  for (std::size_t slot = 0; slot < degree; ++slot) {
    bucket_off_[slot + 1] = bucket_off_[slot] + bucket_count_[slot];
    bucket_cursor_[slot] = bucket_off_[slot];
  }
  bucket_idx_.resize(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    const auto slot = static_cast<std::size_t>(pool_.committed(w));
    bucket_idx_[bucket_cursor_[slot]++] = static_cast<std::uint32_t>(w);
  }

  next_pool_.clear();
  const auto neighbors = ctx.neighbors();
  const bool per_round = config_.length_policy == LengthPolicy::kPerRound;
  for (std::size_t slot = 0; slot < degree; ++slot) {
    const std::size_t len = bucket_count_[slot];
    if (len == 0) continue;
    std::uint32_t* bucket = bucket_idx_.data() + bucket_off_[slot];
    // The reliable layer's window throttles walk traffic too: a slot with
    // unacked frames in flight admits fewer (or no) new walks this round;
    // losers simply stay queued with their commitment, like lottery losers.
    // Coalesced, the whole batch rides ONE frame, so any free window slot
    // admits it (batch_cap_ keeps it inside the bit budget); at wpepr = 1
    // both formulas reduce to min(len, 1, capacity).
    std::size_t winners;
    if (config_.coalesce_walks) {
      const std::size_t capacity = link_ ? link_->data_capacity(slot) : 1;
      winners =
          capacity == 0
              ? 0
              : std::min({len,
                          static_cast<std::size_t>(
                              config_.walks_per_edge_per_round),
                          static_cast<std::size_t>(batch_cap_)});
    } else {
      const std::size_t capacity = link_ ? link_->data_capacity(slot) : len;
      winners = std::min({len,
                          static_cast<std::size_t>(
                              config_.walks_per_edge_per_round),
                          capacity});
    }
    // Partial Fisher-Yates: the first `winners` entries become a uniform
    // random subset (paper line 6: "just send a random walk to v randomly").
    // Same draws as the seed: j = i + next_below(len - i) per slot.
    batch_.clear();
    for (std::size_t i = 0; i < winners; ++i) {
      const std::size_t j = i + ctx.rng().next_below(len - i);
      std::swap(bucket[i], bucket[j]);
      const std::uint32_t idx = bucket[i];
      RWBC_ASSERT(pool_.remaining(idx) >= 1, "held walk must have moves left");
      // The move consumes one step.
      batch_.push_back(WalkToken{pool_.source(idx), pool_.remaining(idx) - 1});
    }
    if (!batch_.empty()) {
      if (config_.coalesce_walks) {
        if (config_.batch_histogram != nullptr &&
            !config_.batch_histogram->empty()) {
          std::vector<std::uint64_t>& h = *config_.batch_histogram;
          ++h[std::min(batch_.size() - 1, h.size() - 1)];
        }
        scratch_.clear();
        batch_wire_.encode(scratch_, batch_);
        if (link_) {
          link_->send(slot, scratch_);
        } else {
          ctx.send_to_slot(static_cast<NodeId>(slot), scratch_);
        }
      } else {
        for (const WalkToken& walk : batch_) {
          if (link_) {
            link_->send(slot, wire_.encode_walk(walk));
          } else {
            ctx.send(neighbors[slot], wire_.encode_walk(walk));
          }
        }
      }
    }
    for (std::size_t i = winners; i < len; ++i) {
      const std::uint32_t idx = bucket[i];
      if (per_round) {
        // A queued round still burns length; walks hitting zero die in
        // place (no move, so no visit is scored).
        const std::uint64_t rem = pool_.remaining(idx) - 1;
        if (rem == 0) {
          record_kill();
        } else {
          next_pool_.push(pool_.source(idx), rem, pool_.committed(idx));
        }
      } else {
        next_pool_.push(pool_.source(idx), pool_.remaining(idx),
                        pool_.committed(idx));
      }
    }
  }
  pool_.swap(next_pool_);
}

void CountingNode::run_sweep_logic(NodeContext& ctx) {
  if (is_root_) {
    if (!sweep_in_progress_) {
      sweep_in_progress_ = true;
      sweep_accumulator_ = 0;
      sweep_reports_pending_ = config_.tree_children.size();
      for (NodeId child : config_.tree_children) {
        send_control(ctx, child, wire_.encode_sweep_request());
      }
    }
    if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
      const std::uint64_t total = sweep_accumulator_ + died_;
      // Duplicated walk/report messages (baseline under dup_prob) can push
      // the total past the true walk count; fault-tolerant mode treats the
      // overshoot as "everything died" and finishes.
      RWBC_ASSERT(config_.fault_tolerant || total <= expected_total_deaths_,
                  "death count exceeded the number of walks");
      if (total >= expected_total_deaths_) {
        for (NodeId child : config_.tree_children) {
          send_control(ctx, child, wire_.encode_done());
        }
        finished_ = true;
      } else {
        sweep_in_progress_ = false;  // next round starts a fresh sweep
      }
    }
    return;
  }
  // Internal node / leaf: answer sweeps from above.
  if (sweep_request_pending_ && !sweep_in_progress_) {
    sweep_request_pending_ = false;
    sweep_in_progress_ = true;
    sweep_accumulator_ = 0;
    sweep_reports_pending_ = config_.tree_children.size();
    for (NodeId child : config_.tree_children) {
      send_control(ctx, child, wire_.encode_sweep_request());
    }
  }
  if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
    send_control(ctx, config_.tree_parent,
                 wire_.encode_sweep_report(sweep_accumulator_ + died_));
    sweep_in_progress_ = false;
  }
}

void CountingNode::on_round(NodeContext& ctx, std::span<const Message> inbox) {
  process_inbox(ctx, inbox);
  if (!finished_ && config_.deadline_rounds > 0 &&
      ctx.round() >= config_.deadline_rounds) {
    // Termination backstop: every node force-finishes at the same round,
    // abandoning surviving walks and outstanding retransmissions.
    pool_.clear();
    done_pending_ = false;
    if (link_) link_->shutdown();
    finished_ = true;
  }
  if (done_pending_ && !finished_) {
    if (config_.fault_tolerant) {
      // Faults can make the root's death count converge before every walk
      // is truly dead (duplication overshoot); abandon the stragglers.
      pool_.clear();
    } else {
      RWBC_ASSERT(pool_.empty(),
                  "DONE broadcast arrived while walks are still alive");
    }
    for (NodeId child : config_.tree_children) {
      send_control(ctx, child, wire_.encode_done());
    }
    finished_ = true;
  }
  if (!finished_) {
    if (link_) absorb_give_ups();
    forward_walks(ctx);
    run_sweep_logic(ctx);  // the root may decide DONE and set finished_
  }
  if (link_) {
    // One flush per round: batched acks, timed-out retransmissions, queued
    // frames.  A finished node keeps flushing until its in-flight frames
    // are acked (halting earlier would strand an unacked DONE forever);
    // peers' retransmissions wake it if an ack of ours is lost.
    link_->flush(ctx);
    if (finished_ && link_->idle()) ctx.halt();
  } else if (finished_) {
    ctx.halt();
  } else if (!is_root_ && pool_.empty() && !sweep_request_pending_ &&
             !done_pending_ && config_.deadline_rounds == 0 &&
             !config_.fault_tolerant &&
             (!sweep_in_progress_ || sweep_reports_pending_ > 0)) {
    // Idle sleep: no walks held and no sweep action possible — nothing this
    // node can do until a message (walk, sweep report, sweep request, DONE)
    // arrives, and delivery wakes a halted node.  A node mid-sweep that is
    // strictly waiting on child reports sleeps too: the state only advances
    // when a report lands, and the final report triggers the upward report
    // in the same round it is processed (run_sweep_logic runs after
    // process_inbox).  Excluded whenever a round-count trigger (deadline) or
    // a fault schedule could need the node to act unprompted.  Skips work
    // without changing it: an idle round draws no randomness and sends
    // nothing, so sleeping through it leaves every message, draw, and visit
    // count identical — only the awake-node telemetry shrinks.
    ctx.halt();
  }
}

}  // namespace rwbc
