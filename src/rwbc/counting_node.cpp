#include "rwbc/counting_node.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

CountingNode::CountingNode(CountingNodeConfig config)
    : config_(std::move(config)),
      wire_(2, config_.cutoff, config_.walks_per_source) {
  RWBC_REQUIRE(config_.cutoff >= 1, "counting phase needs cutoff >= 1");
  RWBC_REQUIRE(config_.walks_per_source >= 1,
               "counting phase needs at least one walk per source");
  RWBC_REQUIRE(config_.walks_per_edge_per_round >= 1,
               "need at least one walk slot per edge per round");
  // kPerRound decrements the remaining budget of QUEUED walks with no
  // message on the wire, so a guardian's mirrored (source, remaining) pairs
  // would silently drift from the ward's pool.
  RWBC_REQUIRE(!config_.guardian ||
                   config_.length_policy == LengthPolicy::kPerMove,
               "guardian handoff requires the per-move length policy");
}

void CountingNode::on_start(NodeContext& ctx) {
  const NodeId n = ctx.node_count();
  RWBC_REQUIRE(n >= 2, "counting phase needs n >= 2");
  RWBC_REQUIRE(config_.target >= 0 && config_.target < n,
               "counting phase target out of range");
  // Guardian frames need two extra message kinds, so the type tag widens to
  // 3 bits; without the guardian the legacy 2-bit tag keeps every wire byte
  // identical to earlier revisions.
  const int type_bits = config_.guardian ? 3 : 2;
  wire_ = CountingWire(n, config_.cutoff, config_.walks_per_source, type_bits);
  visits_.assign(config_.track_visits ? static_cast<std::size_t>(n) : 0, 0);
  is_root_ = config_.tree_parent < 0;
  // Dynamic tree links start at the configured BFS tree; only guardian
  // failover ever rewires them.
  sweep_parent_ = config_.tree_parent;
  children_ = config_.tree_children;
  expected_total_deaths_ =
      static_cast<std::uint64_t>(n - 1) * config_.walks_per_source;
  batch_wire_ =
      WalkBatchWire(n, config_.cutoff, config_.walks_per_edge_per_round);
  batch_wire_.type_bits = type_bits;
  // Cap coalesced batches so the worst-case encoding always fits the
  // per-edge budget (minus the reliable DATA frame header when the link is
  // on).  A control frame — at widest, a sweep report — can share the edge
  // with a walk batch in the same round, so its bits are reserved too.
  // 1 at the paper's wpepr = 1, so winner selection is unchanged.
  std::uint64_t inner_budget = ctx.bit_budget();
  std::uint64_t reserved =
      static_cast<std::uint64_t>(wire_.type_bits + wire_.count_bits);
  if (config_.reliable_transport) {
    const auto header =
        static_cast<std::uint64_t>(1 + config_.reliable_link.seq_bits);
    reserved += 2 * header;  // one header for the batch, one for the control
  }
  inner_budget = inner_budget > reserved ? inner_budget - reserved : 0;
  batch_cap_ =
      std::max<std::uint64_t>(1, batch_wire_.max_batch_for_budget(inner_budget));
  const auto degree = static_cast<std::size_t>(ctx.degree());
  bucket_count_.assign(degree, 0);
  bucket_off_.assign(degree + 1, 0);
  bucket_cursor_.assign(degree, 0);
  if (config_.reliable_transport) {
    link_ = std::make_unique<ReliableLink>(config_.reliable_link, degree);
  }
  if (config_.guardian) {
    RWBC_REQUIRE(config_.neighbor_depths.size() == degree,
                 "guardian handoff needs one BFS depth per neighbour");
    replica_wire_ =
        ReplicaDeltaWire(n, config_.cutoff, config_.walks_per_source);
    anchor_ = config_.guardian_id;
    replica_epoch_ = 0;
    snapshot_pending_ = false;
    replica_queue_.clear();
    last_replica_round_ = 0;
    last_replicated_died_ = 0;
    wards_.clear();
    // A replica frame can share an edge-round with a worst-case walk batch
    // and a control frame; whatever budget remains bounds the ops per
    // frame.  max_ops_for_budget never returns 0 — a backlogged ward always
    // drains (the pipeline widens guardian budgets by a constant factor so
    // the floor is rarely binding).
    std::uint64_t used =
        static_cast<std::uint64_t>(batch_wire_.max_bits(batch_cap_)) +
        static_cast<std::uint64_t>(wire_.type_bits + wire_.count_bits);
    if (config_.reliable_transport) {
      used += 3 * static_cast<std::uint64_t>(1 + config_.reliable_link.seq_bits);
    }
    const std::uint64_t budget = ctx.bit_budget();
    replica_ops_cap_ =
        replica_wire_.max_ops_for_budget(budget > used ? budget - used : 0);
    // One custody FIFO per neighbour slot (remove-on-transmit; only the
    // reliable link can park a committed frame without transmitting it).
    pending_custody_.assign(link_ ? degree : 0, {});
  }
  if (!config_.neighbor_weights.empty()) {
    RWBC_REQUIRE(config_.neighbor_weights.size() ==
                     static_cast<std::size_t>(ctx.degree()),
                 "need one weight per neighbour");
    cumulative_weights_.resize(config_.neighbor_weights.size());
    double running = 0.0;
    for (std::size_t slot = 0; slot < config_.neighbor_weights.size();
         ++slot) {
      RWBC_REQUIRE(config_.neighbor_weights[slot] > 0.0,
                   "edge weights must be positive");
      running += config_.neighbor_weights[slot];
      cumulative_weights_[slot] = running;
    }
  }

  if (ctx.id() != config_.target) {
    // K walks born here; their r = 0 occupancy counts as a visit (Sec. IV:
    // N_ss includes the start).
    pool_.reserve(config_.walks_per_source);
    for (std::uint64_t k = 0; k < config_.walks_per_source; ++k) {
      pool_.push(ctx.id(), config_.cutoff, -1);
      queue_replica_op(true, ctx.id(), config_.cutoff);
    }
    if (config_.track_visits) {
      visits_[static_cast<std::size_t>(ctx.id())] += config_.walks_per_source;
    }
  }
}

void CountingNode::save_state(CheckpointWriter& out) const {
  // Dynamic state only; wire_, is_root_, expected_total_deaths_,
  // cumulative_weights_, and the link allocation are rebuilt by on_start
  // (load_state then overwrites the link's transport state).
  out.u64(visits_.size());
  for (std::uint64_t count : visits_) out.u64(count);
  // Same byte layout as the seed's array-of-structs pool: (source,
  // remaining, committed slot) per walk, pool order.
  out.u64(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    out.u32(static_cast<std::uint32_t>(pool_.source(i)));
    out.u64(pool_.remaining(i));
    out.i64(pool_.committed(i));
  }
  out.u64(died_);
  out.boolean(sweep_in_progress_);
  out.boolean(sweep_request_pending_);
  out.u64(sweep_reports_pending_);
  out.u64(sweep_accumulator_);
  out.boolean(done_pending_);
  out.boolean(finished_);
  out.boolean(link_ != nullptr);
  if (link_) link_->save_state(out);
  // Guardian handoff state (checkpoint v2).  Non-guardian runs record only
  // the flag; sweep_parent_/children_ are static there and rebuilt by
  // on_start.
  out.boolean(config_.guardian);
  if (config_.guardian) {
    out.i64(anchor_);
    out.i64(sweep_parent_);
    out.u64(children_.size());
    for (NodeId child : children_) out.u32(static_cast<std::uint32_t>(child));
    out.u64(replica_epoch_);
    out.boolean(snapshot_pending_);
    out.u64(last_replica_round_);
    out.u64(last_replicated_died_);
    out.u64(replica_queue_.size());
    for (const ReplicaOp& op : replica_queue_) {
      out.boolean(op.add);
      out.u32(static_cast<std::uint32_t>(op.source));
      out.u64(op.remaining);
    }
    out.u64(wards_.size());
    for (const auto& [ward, ledger] : wards_) {
      out.u32(static_cast<std::uint32_t>(ward));
      out.u64(ledger.epoch);
      out.boolean(ledger.seen_snapshot);
      out.u64(ledger.deaths);
      out.u64(ledger.last_heard);
      out.u64(ledger.probe_round);
      out.boolean(ledger.adopted);
      out.u64(ledger.walks.size());
      for (const auto& [key, count] : ledger.walks) {
        out.u32(static_cast<std::uint32_t>(key.first));
        out.u64(key.second);
        out.u64(count);
      }
      out.u64(ledger.owed_removes.size());
      for (const auto& [key, count] : ledger.owed_removes) {
        out.u32(static_cast<std::uint32_t>(key.first));
        out.u64(key.second);
        out.u64(count);
      }
    }
    out.u64(pending_custody_.size());
    for (const auto& fifo : pending_custody_) {
      out.u64(fifo.size());
      for (const std::vector<WalkToken>& frame : fifo) {
        out.u64(frame.size());
        for (const WalkToken& walk : frame) {
          out.u32(static_cast<std::uint32_t>(walk.source));
          out.u64(walk.remaining);
        }
      }
    }
  }
}

void CountingNode::load_state(CheckpointReader& in) {
  const std::uint64_t visit_count = in.u64();
  if (visit_count != visits_.size()) {
    throw CheckpointError("counting node visit table size mismatch");
  }
  for (std::size_t s = 0; s < visits_.size(); ++s) visits_[s] = in.u64();
  pool_.clear();
  const std::uint64_t held = in.u64();
  for (std::uint64_t i = 0; i < held; ++i) {
    const auto source = static_cast<NodeId>(in.u32());
    const std::uint64_t remaining = in.u64();
    const auto committed = static_cast<std::int32_t>(in.i64());
    pool_.push(source, remaining, committed);
  }
  died_ = in.u64();
  sweep_in_progress_ = in.boolean();
  sweep_request_pending_ = in.boolean();
  sweep_reports_pending_ = static_cast<std::size_t>(in.u64());
  sweep_accumulator_ = in.u64();
  done_pending_ = in.boolean();
  finished_ = in.boolean();
  const bool has_link = in.boolean();
  if (has_link != (link_ != nullptr)) {
    throw CheckpointError(
        "counting node reliable-transport mismatch with snapshot");
  }
  if (link_) link_->load_state(in);
  const bool has_guardian = in.boolean();
  if (has_guardian != config_.guardian) {
    throw CheckpointError(
        "counting node guardian-mode mismatch with snapshot");
  }
  if (config_.guardian) {
    anchor_ = static_cast<NodeId>(in.i64());
    sweep_parent_ = static_cast<NodeId>(in.i64());
    children_.clear();
    const std::uint64_t child_count = in.u64();
    for (std::uint64_t i = 0; i < child_count; ++i) {
      children_.push_back(static_cast<NodeId>(in.u32()));
    }
    replica_epoch_ = in.u64();
    snapshot_pending_ = in.boolean();
    last_replica_round_ = in.u64();
    last_replicated_died_ = in.u64();
    replica_queue_.clear();
    const std::uint64_t op_count = in.u64();
    for (std::uint64_t i = 0; i < op_count; ++i) {
      ReplicaOp op;
      op.add = in.boolean();
      op.source = static_cast<NodeId>(in.u32());
      op.remaining = in.u64();
      replica_queue_.push_back(op);
    }
    wards_.clear();
    const std::uint64_t ward_count = in.u64();
    for (std::uint64_t i = 0; i < ward_count; ++i) {
      const auto ward = static_cast<NodeId>(in.u32());
      WardLedger ledger;
      ledger.epoch = in.u64();
      ledger.seen_snapshot = in.boolean();
      ledger.deaths = in.u64();
      ledger.last_heard = in.u64();
      ledger.probe_round = in.u64();
      ledger.adopted = in.boolean();
      const std::uint64_t walk_count = in.u64();
      for (std::uint64_t w = 0; w < walk_count; ++w) {
        const auto source = static_cast<NodeId>(in.u32());
        const std::uint64_t remaining = in.u64();
        ledger.walks[{source, remaining}] = in.u64();
      }
      const std::uint64_t owed_count = in.u64();
      for (std::uint64_t w = 0; w < owed_count; ++w) {
        const auto source = static_cast<NodeId>(in.u32());
        const std::uint64_t remaining = in.u64();
        ledger.owed_removes[{source, remaining}] = in.u64();
      }
      wards_[ward] = std::move(ledger);
    }
    const std::uint64_t custody_slots = in.u64();
    if (custody_slots != pending_custody_.size()) {
      throw CheckpointError(
          "counting node custody queue slot count mismatch");
    }
    for (auto& fifo : pending_custody_) {
      fifo.clear();
      const std::uint64_t frames = in.u64();
      for (std::uint64_t f = 0; f < frames; ++f) {
        std::vector<WalkToken> frame;
        const std::uint64_t walk_count = in.u64();
        frame.reserve(walk_count);
        for (std::uint64_t w = 0; w < walk_count; ++w) {
          const auto source = static_cast<NodeId>(in.u32());
          const std::uint64_t remaining = in.u64();
          frame.push_back(WalkToken{source, remaining});
        }
        fifo.push_back(std::move(frame));
      }
    }
  }
}

void CountingNode::record_kill() { ++died_; }

std::size_t CountingNode::slot_of(NodeContext& ctx, NodeId v) const {
  const auto neighbors = ctx.neighbors();
  const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), v);
  RWBC_ASSERT(it != neighbors.end() && *it == v,
              "message arrived from a non-neighbour");
  return static_cast<std::size_t>(it - neighbors.begin());
}

void CountingNode::send_control(NodeContext& ctx, NodeId to,
                                const BitWriter& payload) {
  // Control traffic (sweeps, DONE) is urgent: it bypasses the window so a
  // congested link cannot stall termination detection.
  if (link_) {
    link_->send(slot_of(ctx, to), payload, /*urgent=*/true);
  } else {
    ctx.send(to, payload);
  }
}

void CountingNode::handle_payload(NodeContext& ctx, NodeId from,
                                  BitReader& reader) {
  const std::uint64_t raw_type = reader.read(wire_.type_bits);
  RWBC_REQUIRE(raw_type <= static_cast<std::uint64_t>(CountingMsg::kPing),
               "unknown counting message type");
  const auto type = static_cast<CountingMsg>(raw_type);
  switch (type) {
    case CountingMsg::kWalk: {
      decoded_.clear();
      if (config_.coalesce_walks) {
        batch_wire_.decode(reader, decoded_);
      } else {
        WalkToken walk;
        walk.source = static_cast<NodeId>(reader.read(wire_.id_bits));
        walk.remaining = reader.read(wire_.length_bits);
        decoded_.push_back(walk);
      }
      for (const WalkToken& walk : decoded_) {
        if (ctx.id() == config_.target) {
          record_kill();  // absorbed; the target's counts stay zero
        } else {
          if (config_.track_visits) {
            ++visits_[static_cast<std::size_t>(walk.source)];
          }
          if (walk.remaining == 0) {
            record_kill();  // expired on arrival
          } else {
            pool_.push(walk.source, walk.remaining, -1);
            queue_replica_op(true, walk.source, walk.remaining);
          }
        }
      }
      break;
    }
    case CountingMsg::kSweepRequest:
      sweep_request_pending_ = true;
      break;
    case CountingMsg::kSweepReport:
      if (sweep_reports_pending_ == 0) {
        // A duplicated report from an earlier sweep; only possible under
        // fault injection (dup_prob) without the reliable layer's dedup.
        RWBC_ASSERT(config_.fault_tolerant, "unexpected sweep report");
        break;
      }
      sweep_accumulator_ += reader.read(wire_.count_bits);
      --sweep_reports_pending_;
      break;
    case CountingMsg::kDone:
      done_pending_ = true;
      break;
    case CountingMsg::kReplicaDelta:
      RWBC_REQUIRE(config_.guardian, "replica frame without guardian mode");
      handle_replica(ctx, from, replica_wire_.decode(reader));
      break;
    case CountingMsg::kReparent:
      // A neighbour whose sweep parent died chose us: its future sweep
      // reports (and replica frames) flow here.  Arrival order is
      // deterministic, so the child list stays bit-identical across runs.
      RWBC_REQUIRE(config_.guardian, "reparent frame without guardian mode");
      if (std::find(children_.begin(), children_.end(), from) ==
          children_.end()) {
        children_.push_back(from);
      }
      break;
    case CountingMsg::kPing:
      // Guardian liveness probe.  The reliable layer's ack (sent for every
      // delivered frame) is the actual answer; the payload carries nothing.
      RWBC_REQUIRE(config_.guardian, "ping frame without guardian mode");
      break;
  }
}

void CountingNode::process_inbox(NodeContext& ctx,
                                 std::span<const Message> inbox) {
  if (config_.guardian && config_.fault_tolerant && !wards_.empty()) {
    // Any raw traffic (acks, retransmissions, walks) proves a ward alive:
    // silence-based adoption must never fire on a ward that is merely quiet
    // on the replica channel while active on the link.
    for (const Message& msg : inbox) {
      const auto it = wards_.find(msg.from);
      if (it != wards_.end()) it->second.last_heard = ctx.round();
    }
  }
  if (link_) {
    std::vector<ReliableDelivery> deliveries;
    for (const Message& msg : inbox) {
      link_->on_message(slot_of(ctx, msg.from), msg, deliveries);
    }
    const auto neighbors = ctx.neighbors();
    for (const ReliableDelivery& delivery : deliveries) {
      BitReader reader(delivery.bytes, delivery.bit_count);
      handle_payload(ctx, neighbors[delivery.slot], reader);
    }
    return;
  }
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    handle_payload(ctx, msg.from, reader);
  }
}

void CountingNode::absorb_give_ups() {
  // Frames the link gave up on (neighbour suspected crashed).  Walk tokens
  // come back into the held pool with their move refunded and no committed
  // slot, so the next forward re-routes them around the dead link; control
  // frames are abandoned — the deadline backstop covers a broken tree.
  for (ReliableGiveUp& give_up : link_->take_give_ups()) {
    BitReader reader(give_up.bytes, give_up.bit_count);
    const auto type = static_cast<CountingMsg>(reader.read(wire_.type_bits));
    if (type != CountingMsg::kWalk) continue;
    decoded_.clear();
    if (config_.coalesce_walks) {
      batch_wire_.decode(reader, decoded_);
    } else {
      WalkToken walk;
      walk.source = static_cast<NodeId>(reader.read(wire_.id_bits));
      walk.remaining = reader.read(wire_.length_bits);
      decoded_.push_back(walk);
    }
    if (!give_up.sent && config_.guardian && !pending_custody_.empty()) {
      // Never transmitted: the frame came back with its custody record
      // still pending, so no remove op was ever mirrored — drop the record
      // and skip the re-add below.  (Sent frames transmit in queue order,
      // so unsent give-ups surface in FIFO order too.)
      std::vector<std::vector<WalkToken>>& fifo =
          pending_custody_[give_up.slot];
      RWBC_ASSERT(!fifo.empty(), "unsent give-up without a custody record");
      fifo.erase(fifo.begin());
    }
    for (const WalkToken& walk : decoded_) {
      pool_.push(walk.source, walk.remaining + 1, -1);  // move never happened
      // A transmitted frame's remove op mirrored (source, remaining + 1)
      // leaving; the refund re-adds it, so the guardian's ledger nets back
      // to held.  An unsent frame was never removed — re-adding would
      // double-mirror the walk.
      if (give_up.sent) {
        queue_replica_op(true, walk.source, walk.remaining + 1);
      }
    }
  }
}

std::size_t CountingNode::draw_neighbor_slot(NodeContext& ctx) {
  if (cumulative_weights_.empty()) {
    return ctx.rng().next_below(static_cast<std::size_t>(ctx.degree()));
  }
  // Weighted move: P(slot) = w_slot / strength.
  const double target_mass =
      ctx.rng().next_double() * cumulative_weights_.back();
  const auto it = std::upper_bound(cumulative_weights_.begin(),
                                   cumulative_weights_.end(), target_mass);
  return std::min<std::size_t>(
      static_cast<std::size_t>(it - cumulative_weights_.begin()),
      cumulative_weights_.size() - 1);
}

void CountingNode::forward_walks(NodeContext& ctx) {
  if (pool_.empty()) return;
  const auto degree = static_cast<std::size_t>(ctx.degree());
  if (link_) {
    // Self-healing re-route: a suspected-dead neighbour takes no further
    // walks.  Walks committed to it redraw; with every neighbour dead the
    // walks cannot move again and die in place (so the death count the
    // root waits for still converges).
    std::size_t live = 0;
    for (std::size_t slot = 0; slot < degree; ++slot) {
      if (!link_->slot_dead(slot)) ++live;
    }
    if (live == 0) {
      for (std::size_t w = 0; w < pool_.size(); ++w) {
        queue_replica_op(false, pool_.source(w), pool_.remaining(w));
        record_kill();
      }
      pool_.clear();
      return;
    }
    for (std::size_t w = 0; w < pool_.size(); ++w) {
      const std::int32_t slot = pool_.committed(w);
      if (slot >= 0 && link_->slot_dead(static_cast<std::size_t>(slot))) {
        pool_.set_committed(w, -1);
      }
    }
  }
  // Commit-and-queue: draw a destination once; losers keep theirs so the
  // realized transitions match the drawn distribution under contention.
  // The commit draws run in pool order — exactly the seed's held-walk
  // order — and a counting sort (count / prefix / stable scatter) groups
  // pool indices per slot with the same (slot, pool-order) layout the
  // seed's per-neighbour vectors produced, without per-slot heap churn.
  std::fill(bucket_count_.begin(), bucket_count_.end(), 0);
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    if (pool_.committed(w) < 0) {
      std::size_t slot = draw_neighbor_slot(ctx);
      while (link_ && link_->slot_dead(slot)) slot = draw_neighbor_slot(ctx);
      pool_.set_committed(w, static_cast<std::int32_t>(slot));
    }
    ++bucket_count_[static_cast<std::size_t>(pool_.committed(w))];
  }
  bucket_off_[0] = 0;
  for (std::size_t slot = 0; slot < degree; ++slot) {
    bucket_off_[slot + 1] = bucket_off_[slot] + bucket_count_[slot];
    bucket_cursor_[slot] = bucket_off_[slot];
  }
  bucket_idx_.resize(pool_.size());
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    const auto slot = static_cast<std::size_t>(pool_.committed(w));
    bucket_idx_[bucket_cursor_[slot]++] = static_cast<std::uint32_t>(w);
  }

  next_pool_.clear();
  const auto neighbors = ctx.neighbors();
  const bool per_round = config_.length_policy == LengthPolicy::kPerRound;
  for (std::size_t slot = 0; slot < degree; ++slot) {
    const std::size_t len = bucket_count_[slot];
    if (len == 0) continue;
    std::uint32_t* bucket = bucket_idx_.data() + bucket_off_[slot];
    // The reliable layer's window throttles walk traffic too: a slot with
    // unacked frames in flight admits fewer (or no) new walks this round;
    // losers simply stay queued with their commitment, like lottery losers.
    // Coalesced, the whole batch rides ONE frame, so any free window slot
    // admits it (batch_cap_ keeps it inside the bit budget); at wpepr = 1
    // both formulas reduce to min(len, 1, capacity).
    std::size_t winners;
    if (config_.coalesce_walks) {
      const std::size_t capacity = link_ ? link_->data_capacity(slot) : 1;
      winners =
          capacity == 0
              ? 0
              : std::min({len,
                          static_cast<std::size_t>(
                              config_.walks_per_edge_per_round),
                          static_cast<std::size_t>(batch_cap_)});
    } else {
      const std::size_t capacity = link_ ? link_->data_capacity(slot) : len;
      winners = std::min({len,
                          static_cast<std::size_t>(
                              config_.walks_per_edge_per_round),
                          capacity});
    }
    // Partial Fisher-Yates: the first `winners` entries become a uniform
    // random subset (paper line 6: "just send a random walk to v randomly").
    // Same draws as the seed: j = i + next_below(len - i) per slot.
    batch_.clear();
    custody_.clear();
    for (std::size_t i = 0; i < winners; ++i) {
      const std::size_t j = i + ctx.rng().next_below(len - i);
      std::swap(bucket[i], bucket[j]);
      const std::uint32_t idx = bucket[i];
      RWBC_ASSERT(pool_.remaining(idx) >= 1, "held walk must have moves left");
      // The move consumes one step.
      batch_.push_back(WalkToken{pool_.source(idx), pool_.remaining(idx) - 1});
      if (link_ && config_.guardian) {
        // Remove-on-transmit: the reliable link may park this frame behind
        // a full window, and a parked walk is still in our custody — the
        // remove op is mirrored by settle_custody only when the frame
        // actually goes on the wire.  (Caught the hard way: a ward that
        // crashed with a queued frame had already un-mirrored its walks,
        // so the guardian had nothing to adopt and the run lost them.)
        custody_.push_back(WalkToken{pool_.source(idx), pool_.remaining(idx)});
      } else {
        // Remove-on-send: a raw send IS the transmission, custody transfers
        // now.  A delivered walk is the receiver's to mirror — no walk is
        // ever double-mirrored.
        queue_replica_op(false, pool_.source(idx), pool_.remaining(idx));
      }
    }
    if (!batch_.empty()) {
      if (config_.coalesce_walks) {
        if (config_.batch_histogram != nullptr &&
            !config_.batch_histogram->empty()) {
          std::vector<std::uint64_t>& h = *config_.batch_histogram;
          ++h[std::min(batch_.size() - 1, h.size() - 1)];
        }
        scratch_.clear();
        batch_wire_.encode(scratch_, batch_);
        if (link_) {
          link_->send(slot, scratch_);
          if (config_.guardian) {
            pending_custody_[slot].push_back(std::move(custody_));
          }
        } else {
          ctx.send_to_slot(static_cast<NodeId>(slot), scratch_);
        }
      } else {
        for (std::size_t i = 0; i < batch_.size(); ++i) {
          if (link_) {
            link_->send(slot, wire_.encode_walk(batch_[i]));
            if (config_.guardian) {
              pending_custody_[slot].push_back({custody_[i]});
            }
          } else {
            ctx.send(neighbors[slot], wire_.encode_walk(batch_[i]));
          }
        }
      }
    }
    for (std::size_t i = winners; i < len; ++i) {
      const std::uint32_t idx = bucket[i];
      if (per_round) {
        // A queued round still burns length; walks hitting zero die in
        // place (no move, so no visit is scored).
        const std::uint64_t rem = pool_.remaining(idx) - 1;
        if (rem == 0) {
          record_kill();
        } else {
          next_pool_.push(pool_.source(idx), rem, pool_.committed(idx));
        }
      } else {
        next_pool_.push(pool_.source(idx), pool_.remaining(idx),
                        pool_.committed(idx));
      }
    }
  }
  pool_.swap(next_pool_);
}

void CountingNode::run_sweep_logic(NodeContext& ctx) {
  if (is_root_) {
    if (!sweep_in_progress_) {
      sweep_in_progress_ = true;
      sweep_accumulator_ = 0;
      sweep_reports_pending_ = children_.size();
      for (NodeId child : children_) {
        send_control(ctx, child, wire_.encode_sweep_request());
      }
    }
    if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
      const std::uint64_t total = sweep_accumulator_ + died_;
      // Duplicated walk/report messages (baseline under dup_prob) can push
      // the total past the true walk count; fault-tolerant mode treats the
      // overshoot as "everything died" and finishes.
      RWBC_ASSERT(config_.fault_tolerant || total <= expected_total_deaths_,
                  "death count exceeded the number of walks");
      if (total >= expected_total_deaths_) {
        for (NodeId child : children_) {
          send_control(ctx, child, wire_.encode_done());
        }
        finish_guardian(ctx);
        finished_ = true;
      } else {
        sweep_in_progress_ = false;  // next round starts a fresh sweep
      }
    }
    return;
  }
  // Internal node / leaf: answer sweeps from above.
  if (sweep_request_pending_ && !sweep_in_progress_) {
    sweep_request_pending_ = false;
    sweep_in_progress_ = true;
    sweep_accumulator_ = 0;
    sweep_reports_pending_ = children_.size();
    for (NodeId child : children_) {
      send_control(ctx, child, wire_.encode_sweep_request());
    }
  }
  if (sweep_in_progress_ && sweep_reports_pending_ == 0) {
    // An orphaned node (guardian failover found no eligible parent) has
    // nowhere to report; the deadline backstop ends the phase and the
    // RunReport accounts the unobserved deaths.
    if (sweep_parent_ >= 0) {
      send_control(ctx, sweep_parent_,
                   wire_.encode_sweep_report(sweep_accumulator_ + died_));
    }
    sweep_in_progress_ = false;
  }
}

void CountingNode::on_round(NodeContext& ctx, std::span<const Message> inbox) {
  process_inbox(ctx, inbox);
  if (!finished_ && config_.deadline_rounds > 0 &&
      ctx.round() >= config_.deadline_rounds) {
    // Termination backstop: every node force-finishes at the same round,
    // abandoning surviving walks and outstanding retransmissions.
    // Accounting (each walk tallied at most once, DESIGN.md §10): pool
    // walks and walks inside never-transmitted link frames are provably
    // still in our custody; a sent-but-unacked frame may already be held
    // (and tallied) by the peer, so its walks fall to the RunReport's
    // residual `lost` bucket instead of risking a double count.
    std::uint64_t abandoned = pool_.size();
    pool_.clear();
    done_pending_ = false;
    if (link_) {
      for (const ReliableGiveUp& frame : link_->take_give_ups()) {
        if (!frame.sent) abandoned += count_walks_in_frame(frame);
      }
      for (const ReliableGiveUp& frame : link_->drain_outgoing()) {
        if (!frame.sent) abandoned += count_walks_in_frame(frame);
      }
    }
    replica_queue_.clear();
    for (auto& fifo : pending_custody_) fifo.clear();
    if (abandoned > 0) ctx.note_abandoned_walks(abandoned);
    finished_ = true;
  }
  if (done_pending_ && !finished_) {
    if (config_.fault_tolerant) {
      // Faults can make the root's death count converge before every walk
      // is truly dead (duplication overshoot); abandon the stragglers —
      // metered, so the RunReport separates chosen drops from silent loss.
      if (!pool_.empty()) {
        ctx.note_abandoned_walks(pool_.size());
        pool_.clear();
      }
    } else {
      RWBC_ASSERT(pool_.empty(),
                  "DONE broadcast arrived while walks are still alive");
    }
    for (NodeId child : children_) {
      send_control(ctx, child, wire_.encode_done());
    }
    finish_guardian(ctx);
    finished_ = true;
  }
  if (!finished_) {
    if (link_) absorb_give_ups();
    if (config_.guardian) guardian_maintenance(ctx);
    forward_walks(ctx);
    settle_custody(ctx);  // removes ride this round's replica frame
    run_sweep_logic(ctx);  // the root may decide DONE and set finished_
    if (config_.guardian && !finished_) maybe_send_replica(ctx);
  }
  if (link_) {
    // One flush per round: batched acks, timed-out retransmissions, queued
    // frames.  A finished node keeps flushing until its in-flight frames
    // are acked (halting earlier would strand an unacked DONE forever);
    // peers' retransmissions wake it if an ack of ours is lost.
    link_->flush(ctx);
    if (finished_ && link_->idle()) ctx.halt();
  } else if (finished_) {
    ctx.halt();
  } else if (!is_root_ && pool_.empty() && !sweep_request_pending_ &&
             !done_pending_ && config_.deadline_rounds == 0 &&
             !config_.fault_tolerant && !replica_dirty() &&
             (!sweep_in_progress_ || sweep_reports_pending_ > 0)) {
    // Idle sleep: no walks held and no sweep action possible — nothing this
    // node can do until a message (walk, sweep report, sweep request, DONE)
    // arrives, and delivery wakes a halted node.  A node mid-sweep that is
    // strictly waiting on child reports sleeps too: the state only advances
    // when a report lands, and the final report triggers the upward report
    // in the same round it is processed (run_sweep_logic runs after
    // process_inbox).  Excluded whenever a round-count trigger (deadline) or
    // a fault schedule could need the node to act unprompted.  Skips work
    // without changing it: an idle round draws no randomness and sends
    // nothing, so sleeping through it leaves every message, draw, and visit
    // count identical — only the awake-node telemetry shrinks.
    ctx.halt();
  }
}

void CountingNode::settle_custody(NodeContext& ctx) {
  if (!link_ || !config_.guardian) return;
  const auto degree = static_cast<std::size_t>(ctx.degree());
  for (std::size_t slot = 0; slot < degree; ++slot) {
    std::vector<std::vector<WalkToken>>& fifo = pending_custody_[slot];
    if (fifo.empty()) continue;
    // The link admits queued frames in order, so the frames this round's
    // flush will transmit are exactly the first `sends` FIFO entries.
    const std::size_t sends = link_->planned_data_sends(slot, ctx.round());
    RWBC_ASSERT(sends <= fifo.size(),
                "link will transmit a data frame with no custody record");
    if (sends == 0) continue;
    for (std::size_t i = 0; i < sends; ++i) {
      for (const WalkToken& walk : fifo[i]) {
        queue_replica_op(false, walk.source, walk.remaining);
      }
    }
    fifo.erase(fifo.begin(),
               fifo.begin() + static_cast<std::ptrdiff_t>(sends));
  }
}

void CountingNode::queue_replica_op(bool add, NodeId source,
                                    std::uint64_t remaining) {
  // Orphaned wards (anchor_ < 0) mirror nowhere; their custody transitions
  // are unobservable and surface as RunReport loss if they crash.
  if (!config_.guardian || anchor_ < 0) return;
  replica_queue_.push_back(ReplicaOp{add, source, remaining});
}

bool CountingNode::replica_dirty() const {
  return config_.guardian && anchor_ >= 0 &&
         (!replica_queue_.empty() || died_ != last_replicated_died_ ||
          snapshot_pending_);
}

void CountingNode::maybe_send_replica(NodeContext& ctx) {
  if (anchor_ < 0) return;
  const std::uint64_t round = ctx.round();
  // Heartbeats keep a CLEAN ward audible so its guardian can tell idle from
  // dead; they only matter when adoption can fire (fault_tolerant), and
  // skipping them otherwise preserves fault-free idle-sleep telemetry.
  const bool heartbeat_due =
      config_.fault_tolerant &&
      round - last_replica_round_ >= config_.guardian_heartbeat;
  if (replica_queue_.empty() && died_ == last_replicated_died_ &&
      !snapshot_pending_ && !heartbeat_due) {
    return;
  }
  ReplicaDelta delta;
  delta.epoch = replica_epoch_;
  delta.snapshot = snapshot_pending_;
  delta.deaths = died_;
  const std::size_t take = std::min<std::size_t>(
      replica_queue_.size(), static_cast<std::size_t>(replica_ops_cap_));
  for (std::size_t i = 0; i < take; ++i) {
    const ReplicaOp& op = replica_queue_[i];
    (op.add ? delta.adds : delta.removes)
        .push_back(WalkToken{op.source, op.remaining});
  }
  scratch_.clear();
  replica_wire_.encode(scratch_, delta);
  // Urgent: replica frames ride outside the data window so walk admission
  // (and therefore every RNG draw) is identical with the guardian off.
  if (link_) {
    link_->send(slot_of(ctx, anchor_), scratch_, /*urgent=*/true);
  } else {
    ctx.send(anchor_, scratch_);
  }
  ctx.note_replica_frame(static_cast<std::uint64_t>(scratch_.bit_count()));
  replica_queue_.erase(replica_queue_.begin(),
                       replica_queue_.begin() +
                           static_cast<std::ptrdiff_t>(take));
  snapshot_pending_ = false;
  last_replica_round_ = round;
  last_replicated_died_ = died_;
}

void CountingNode::finish_guardian(NodeContext& ctx) {
  if (!config_.guardian || anchor_ < 0) return;
  // Farewell frame: the guardian retires this ward's ledger, so clean
  // termination is never mistaken for a crash (a DONE broadcast can take
  // longer than guardian_silence to reach the bottom of a deep tree).
  ReplicaDelta delta;
  delta.epoch = replica_epoch_;
  delta.final_frame = true;
  delta.deaths = died_;
  scratch_.clear();
  replica_wire_.encode(scratch_, delta);
  if (link_) {
    link_->send(slot_of(ctx, anchor_), scratch_, /*urgent=*/true);
  } else {
    ctx.send(anchor_, scratch_);
  }
  ctx.note_replica_frame(static_cast<std::uint64_t>(scratch_.bit_count()));
  replica_queue_.clear();
  snapshot_pending_ = false;
  last_replicated_died_ = died_;
}

void CountingNode::handle_replica(NodeContext& ctx, NodeId from,
                                  ReplicaDelta&& delta) {
  WardLedger& ledger = wards_[from];
  ledger.last_heard = ctx.round();
  if (ledger.adopted) return;
  if (delta.final_frame) {
    // Clean termination: from here on the ward's silence is expected, and
    // its deaths were already counted through the sweeps.
    ledger.adopted = true;
    ledger.walks.clear();
    ledger.owed_removes.clear();
    ledger.deaths = 0;
    return;
  }
  constexpr std::uint64_t kMask =
      (1ULL << ReplicaDeltaWire::kEpochBits) - 1ULL;
  if (delta.snapshot) {
    if (ledger.seen_snapshot && delta.epoch == (ledger.epoch & kMask)) {
      return;  // duplicated snapshot (dup fault without the link's dedup)
    }
    ledger.epoch = delta.epoch;
    ledger.seen_snapshot = true;
    ledger.walks.clear();
    ledger.owed_removes.clear();
  } else {
    // Epoch 0 needs no snapshot: a fresh ledger and a fresh ward are both
    // empty, so deltas replay exactly.  Any other epoch must be baselined
    // by its snapshot first; unbaselined deltas are dropped (degrading
    // adoption to explicit loss accounting, never to corruption).
    const bool baselined = ledger.seen_snapshot || ledger.epoch == 0;
    if (!baselined || delta.epoch != (ledger.epoch & kMask)) return;
  }
  ledger.deaths = std::max(ledger.deaths, delta.deaths);  // absolute, monotone
  for (const WalkToken& token : delta.adds) {
    const auto key = std::make_pair(token.source, token.remaining);
    const auto owed = ledger.owed_removes.find(key);
    if (owed != ledger.owed_removes.end()) {
      if (--owed->second == 0) ledger.owed_removes.erase(owed);
    } else {
      ++ledger.walks[key];
    }
  }
  for (const WalkToken& token : delta.removes) {
    const auto key = std::make_pair(token.source, token.remaining);
    const auto held = ledger.walks.find(key);
    if (held != ledger.walks.end()) {
      if (--held->second == 0) ledger.walks.erase(held);
    } else {
      // Remove before its matching add (op lists are split per frame):
      // buffer it so the multiset stays exact once the add lands.
      ++ledger.owed_removes[key];
    }
  }
}

void CountingNode::guardian_maintenance(NodeContext& ctx) {
  // Ward side: our guardian's link died — fail over to a live neighbour
  // strictly closer to the root, or go orphaned.
  if (link_ && anchor_ >= 0 && link_->slot_dead(slot_of(ctx, anchor_))) {
    re_anchor(ctx);
  }
  // Guardian side: adopt wards whose crash is confirmed.  Ascending ward
  // id — wards_ is an ordered map — keeps adoption order deterministic.
  //
  // With the reliable link, silence alone is NOT proof: drop streaks or a
  // link outage can mute a live ward past guardian_silence, and adopting a
  // live ward double-counts its deaths.  So silence only triggers a tiny
  // kPing probe through the link; a live ward's ack refreshes last_heard
  // (raw-traffic loop in process_inbox), while a dead ward lets the probe
  // exhaust its retransmits and the slot's death — the transport's own
  // failure detector, ~36 rounds of unbroken loss — confirms adoption.
  // Without the link there is no detector, so silence-only adoption stays
  // (and message-loss faults become dup-like: counts may overshoot).
  if (!config_.fault_tolerant) return;
  const std::uint64_t round = ctx.round();
  for (auto& [ward, ledger] : wards_) {
    if (ledger.adopted) continue;
    const bool silent = round >= ledger.last_heard &&
                        round - ledger.last_heard >= config_.guardian_silence;
    if (link_) {
      if (link_->slot_dead(slot_of(ctx, ward))) {
        adopt_ward(ctx, ward, ledger);
      } else if (silent && (ledger.probe_round == 0 ||
                            round - ledger.probe_round >=
                                config_.guardian_silence)) {
        link_->send(slot_of(ctx, ward), wire_.encode_ping(), /*urgent=*/true);
        ledger.probe_round = round;
      }
    } else if (silent) {
      adopt_ward(ctx, ward, ledger);
    }
  }
}

void CountingNode::adopt_ward(NodeContext& ctx, NodeId ward,
                              WardLedger& ledger) {
  ledger.adopted = true;
  // The ward's deaths become ours (they were attributed to exactly one
  // node, which no longer answers sweeps), and its mirrored walks enter our
  // pool in custody: no visit is scored — the walk is logically still at
  // the crash site, replayed from (source, remaining) — and each one is
  // re-mirrored to our own guardian (chain replication survives cascades).
  died_ += ledger.deaths;
  std::uint64_t adopted_count = 0;
  for (const auto& [key, count] : ledger.walks) {
    for (std::uint64_t i = 0; i < count; ++i) {
      pool_.push(key.first, key.second, -1);
      queue_replica_op(true, key.first, key.second);
    }
    adopted_count += count;
  }
  ledger.walks.clear();
  ledger.owed_removes.clear();
  if (adopted_count > 0) ctx.note_adopted_walks(adopted_count);
  // The dead ward can no longer answer sweeps: drop it from the child list
  // and release a sweep blocked on its report.  The released sweep
  // undercounts transiently; the next one re-counts from scratch and now
  // includes the adopted deaths.
  const auto it = std::find(children_.begin(), children_.end(), ward);
  if (it != children_.end()) {
    children_.erase(it);
    if (sweep_in_progress_ && sweep_reports_pending_ > 0) {
      --sweep_reports_pending_;
    }
  }
}

void CountingNode::re_anchor(NodeContext& ctx) {
  const auto neighbors = ctx.neighbors();
  NodeId best = -1;
  std::uint64_t best_depth = 0;
  for (std::size_t slot = 0; slot < neighbors.size(); ++slot) {
    if (link_->slot_dead(slot)) continue;
    const std::uint64_t depth = config_.neighbor_depths[slot];
    const NodeId candidate = neighbors[slot];
    // Non-root wards only accept neighbours lexicographically closer to the
    // root on (depth, id): every reparent strictly decreases that key, so
    // the rewired report DAG stays acyclic.  The root has no cycle to make
    // (nothing reports above it) and just picks its best live neighbour.
    if (!is_root_ &&
        (depth > config_.my_depth ||
         (depth == config_.my_depth && candidate >= ctx.id()))) {
      continue;
    }
    if (best < 0 || depth < best_depth ||
        (depth == best_depth && candidate < best)) {
      best = candidate;
      best_depth = depth;
    }
  }
  anchor_ = best;
  if (!is_root_) sweep_parent_ = best;
  replica_queue_.clear();
  if (best < 0) {
    // Orphaned: no eligible live neighbour.  Walks keep moving but are no
    // longer mirrored; if this node also crashes they surface as RunReport
    // loss, and the deadline backstop ends the phase.
    snapshot_pending_ = false;
    return;
  }
  // Re-introduce ourselves: bump the epoch, snapshot the full pool so the
  // new guardian re-baselines, and (non-root) route future sweep reports
  // through the new parent.
  ++replica_epoch_;
  snapshot_pending_ = true;
  for (std::size_t w = 0; w < pool_.size(); ++w) {
    replica_queue_.push_back(
        ReplicaOp{true, pool_.source(w), pool_.remaining(w)});
  }
  if (!is_root_) send_control(ctx, best, wire_.encode_reparent());
}

std::uint64_t CountingNode::count_walks_in_frame(const ReliableGiveUp& frame) {
  BitReader reader(frame.bytes, frame.bit_count);
  if (static_cast<CountingMsg>(reader.read(wire_.type_bits)) !=
      CountingMsg::kWalk) {
    return 0;
  }
  if (!config_.coalesce_walks) return 1;  // legacy wire: one token per frame
  decoded_.clear();
  batch_wire_.decode(reader, decoded_);
  return decoded_.size();
}

}  // namespace rwbc
