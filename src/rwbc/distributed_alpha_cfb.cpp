#include "rwbc/distributed_alpha_cfb.hpp"

#include <cmath>
#include <memory>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"
#include "graph/properties.hpp"
#include "rwbc/compute_node.hpp"
#include "rwbc/params.hpp"
#include "rwbc/walk_token.hpp"

namespace rwbc {

namespace {

/// Counting-phase node for evaporating walks.  Shares the wire format and
/// commit-and-queue congestion handling with CountingNode; differs in the
/// kill rule (coin flip instead of absorption), in having no target, and
/// in terminating implicitly (idle nodes halt) rather than via sweeps —
/// evaporating walks die on their own schedule, no tree needed.
class AlphaCountingNode final : public NodeProcess {
 public:
  struct Config {
    double alpha = 0.8;
    std::uint64_t walks_per_source = 1;
    std::uint64_t max_steps = 1;
    std::uint64_t walks_per_edge_per_round = 1;
  };

  explicit AlphaCountingNode(Config config)
      : config_(std::move(config)),
        wire_(2, config_.max_steps, config_.walks_per_source) {}

  void on_start(NodeContext& ctx) override {
    const NodeId n = ctx.node_count();
    wire_ = CountingWire(n, config_.max_steps, config_.walks_per_source);
    visits_.assign(static_cast<std::size_t>(n), 0);
    per_neighbor_.assign(static_cast<std::size_t>(ctx.degree()), {});
    for (std::uint64_t k = 0; k < config_.walks_per_source; ++k) {
      held_walks_.push_back(
          HeldWalk{WalkToken{ctx.id(), config_.max_steps}, -1});
    }
    visits_[static_cast<std::size_t>(ctx.id())] += config_.walks_per_source;
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    process_inbox(ctx, inbox);
    evaporate_and_forward(ctx);
    // Implicit termination, as in distributed PageRank: an idle node halts
    // and is re-woken by walk arrivals; the run ends when every walk has
    // evaporated and nothing is in flight.  (A real deployment would add
    // one O(D) barrier sweep before starting Algorithm 2; we charge the
    // equivalent cost in the computing phase's own network instead.)
    if (held_walks_.empty()) ctx.halt();
  }

  const std::vector<std::uint64_t>& visits() const { return visits_; }
  std::uint64_t capped_walks() const { return capped_; }

  void save_state(CheckpointWriter& out) const override {
    out.u64(visits_.size());
    for (std::uint64_t count : visits_) out.u64(count);
    out.u64(held_walks_.size());
    for (const HeldWalk& held : held_walks_) {
      out.u32(static_cast<std::uint32_t>(held.token.source));
      out.u64(held.token.remaining);
      out.i64(held.committed_slot);
    }
    out.u64(died_);
    out.u64(capped_);
  }

  void load_state(CheckpointReader& in) override {
    if (in.u64() != visits_.size()) {
      throw CheckpointError("alpha-CFB node visit table size mismatch");
    }
    for (auto& count : visits_) count = in.u64();
    held_walks_.clear();
    const std::uint64_t held = in.u64();
    for (std::uint64_t i = 0; i < held; ++i) {
      HeldWalk walk;
      walk.token.source = static_cast<NodeId>(in.u32());
      walk.token.remaining = in.u64();
      walk.committed_slot = static_cast<int>(in.i64());
      held_walks_.push_back(walk);
    }
    died_ = in.u64();
    capped_ = in.u64();
  }

 private:
  struct HeldWalk {
    WalkToken token;
    int committed_slot = -1;
  };

  void process_inbox(NodeContext&, std::span<const Message> inbox) {
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      switch (static_cast<CountingMsg>(reader.read(wire_.type_bits))) {
        case CountingMsg::kWalk: {
          WalkToken walk;
          walk.source = static_cast<NodeId>(reader.read(wire_.id_bits));
          walk.remaining = reader.read(wire_.length_bits);
          ++visits_[static_cast<std::size_t>(walk.source)];
          if (walk.remaining == 0) {
            ++capped_;  // hit the w.h.p. length cap
            ++died_;
          } else {
            held_walks_.push_back(HeldWalk{walk, -1});
          }
          break;
        }
        case CountingMsg::kSweepRequest:
        case CountingMsg::kSweepReport:
        case CountingMsg::kDone:
        case CountingMsg::kReplicaDelta:
        case CountingMsg::kReparent:
        case CountingMsg::kPing:
          // Guardian kinds included: alpha-CFB never runs guardian mode,
          // so any of these on the wire is equally a protocol error.
          throw InternalError("unexpected control message");
      }
    }
  }

  void evaporate_and_forward(NodeContext& ctx) {
    if (held_walks_.empty()) return;
    // Evaporation: each held walk survives this step with probability
    // alpha.  Dying in place scores no visit (the visit for "being here"
    // was already counted on arrival/birth).
    std::vector<HeldWalk> survivors;
    survivors.reserve(held_walks_.size());
    for (HeldWalk& held : held_walks_) {
      if (held.committed_slot < 0 && !ctx.rng().next_bool(config_.alpha)) {
        ++died_;
      } else {
        survivors.push_back(held);
      }
    }
    held_walks_.swap(survivors);
    if (held_walks_.empty()) return;

    const auto degree = static_cast<std::size_t>(ctx.degree());
    for (auto& bucket : per_neighbor_) bucket.clear();
    for (std::size_t w = 0; w < held_walks_.size(); ++w) {
      if (held_walks_[w].committed_slot < 0) {
        held_walks_[w].committed_slot =
            static_cast<int>(ctx.rng().next_below(degree));
      }
      per_neighbor_[static_cast<std::size_t>(held_walks_[w].committed_slot)]
          .push_back(w);
    }
    std::vector<HeldWalk> kept;
    const auto neighbors = ctx.neighbors();
    for (std::size_t slot = 0; slot < degree; ++slot) {
      auto& bucket = per_neighbor_[slot];
      const std::size_t winners = std::min<std::size_t>(
          bucket.size(), config_.walks_per_edge_per_round);
      for (std::size_t i = 0; i < winners; ++i) {
        const std::size_t j = i + ctx.rng().next_below(bucket.size() - i);
        std::swap(bucket[i], bucket[j]);
        WalkToken walk = held_walks_[bucket[i]].token;
        walk.remaining -= 1;
        ctx.send(neighbors[slot], wire_.encode_walk(walk));
      }
      for (std::size_t i = winners; i < bucket.size(); ++i) {
        kept.push_back(held_walks_[bucket[i]]);
      }
    }
    held_walks_.swap(kept);
  }

  Config config_;
  CountingWire wire_;
  std::vector<std::uint64_t> visits_;
  std::vector<HeldWalk> held_walks_;
  std::vector<std::vector<std::size_t>> per_neighbor_;
  std::uint64_t died_ = 0;
  std::uint64_t capped_ = 0;
};

}  // namespace

DistributedAlphaCfbResult distributed_alpha_cfb(
    const Graph& g, const DistributedAlphaCfbOptions& options) {
  const NodeId n = g.node_count();
  RWBC_REQUIRE(n >= 2, "distributed alpha-CFB needs n >= 2");
  RWBC_REQUIRE(options.alpha > 0.0 && options.alpha < 1.0,
               "alpha must be in (0, 1)");
  require_connected(g, "distributed alpha-CFB");

  DistributedAlphaCfbResult result;
  result.walks_per_source =
      options.walks_per_source > 0
          ? options.walks_per_source
          : default_walks_per_source(n, options.walks_multiplier);
  if (options.max_steps > 0) {
    result.max_steps = options.max_steps;
  } else {
    const double total_walks = static_cast<double>(n) *
                               static_cast<double>(result.walks_per_source);
    result.max_steps = static_cast<std::size_t>(
        std::ceil((std::log(total_walks) + 16.0) / -std::log(options.alpha)));
  }

  CongestConfig counting_congest = options.congest;
  counting_congest.checkpoint_label = "alpha-counting";
  Network net(g, counting_congest);
  net.set_all_nodes([&](NodeId) {
    AlphaCountingNode::Config config;
    config.alpha = options.alpha;
    config.walks_per_source = result.walks_per_source;
    config.max_steps = result.max_steps;
    config.walks_per_edge_per_round = options.walks_per_edge_per_round;
    return std::make_unique<AlphaCountingNode>(std::move(config));
  });
  result.counting_metrics = net.run();
  RunMetrics total_metrics = result.counting_metrics;

  CongestConfig computing_congest = options.congest;
  computing_congest.checkpoint_label = "alpha-computing";
  Network compute_net(g, computing_congest);
  compute_net.set_all_nodes([&](NodeId v) {
    const auto& counter = static_cast<const AlphaCountingNode&>(net.node(v));
    ComputeNodeConfig config;
    config.visits = counter.visits();
    config.walks_per_source = result.walks_per_source;
    config.cutoff = result.max_steps;
    config.compute_score = options.compute_scores;
    return std::make_unique<ComputeNode>(std::move(config));
  });
  result.computing_metrics = compute_net.run();
  total_metrics += result.computing_metrics;

  for (NodeId v = 0; v < n; ++v) {
    result.capped_walks +=
        static_cast<const AlphaCountingNode&>(net.node(v)).capped_walks();
  }
  std::vector<double> scores;
  if (options.compute_scores) {
    const auto nn = static_cast<std::size_t>(n);
    scores.resize(nn);
    result.scaled_visits = DenseMatrix(nn, nn);
    for (NodeId v = 0; v < n; ++v) {
      const auto& compute =
          static_cast<const ComputeNode&>(compute_net.node(v));
      scores[static_cast<std::size_t>(v)] = compute.betweenness();
      for (std::size_t s = 0; s < nn; ++s) {
        result.scaled_visits(static_cast<std::size_t>(v), s) =
            compute.scaled_visits()[s];
      }
    }
  }
  result.report = make_run_report("alpha-cfb", std::move(scores),
                                  total_metrics, options.congest.seed);
  return result;
}

}  // namespace rwbc
