// Distributed single random walks — the Section II-D related work
// (Das Sarma, Nanongkai, Pandurangan, Tetali, PODC 2010).
//
// Problem: perform ONE random walk of length l from a source and output the
// destination.  The naive token walk takes exactly l rounds; the stitching
// technique beats it:
//
//   Phase 1   every node launches eta anonymousish "coupon" walks of length
//             lambda, each remembering (owner, serial); a coupon rests at
//             its endpoint.  ~lambda rounds (plus congestion), all in
//             parallel.
//   Phase 2   the long walk jumps lambda steps at a time: the current
//             holder x consumes its next unused coupon (x, k) — found via
//             one up-broadcast/down-broadcast over a BFS tree, O(D) rounds
//             — and the coupon's resting node becomes the new holder.
//             A rested coupon endpoint is distributed exactly as a
//             lambda-step walk from x, so each stitch is a faithful
//             lambda-step jump.  l/lambda stitches -> O(lD/lambda) rounds.
//
// With lambda = sqrt(l D) the total is O(sqrt(l D)) rounds, the bound the
// paper cites.  When a node exhausts its coupons (or < lambda steps
// remain) the walk steps directly, so correctness never depends on eta.
//
// The paper explains why this machinery does NOT transfer to betweenness
// (its walks are unbounded and every node must count visits, not just
// learn the endpoint); we build it so that argument is measurable (E11).
#pragma once

#include <cstdint>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "rwbc/report.hpp"

namespace rwbc {

/// Options for the stitched walk.
struct SarmaWalkOptions {
  std::size_t length = 1;             ///< l: total steps (required)
  std::size_t short_walk_length = 0;  ///< lambda; 0 = ceil(sqrt(l * D))
  std::size_t coupons_per_node = 0;   ///< eta; 0 = 2 * ceil(l / lambda) + 4
  /// Coupon tokens an edge may carry per direction per round in Phase 1.
  std::size_t coupons_per_edge_per_round = 3;
  /// congest.num_threads parallelises every phase's rounds
  /// deterministically (bit-identical to serial).  congest.faults applies
  /// to every phase; the coupon/stitch protocols are not fault-tolerant, so
  /// a lossy plan can stall Phase 2's token hand-off (bounded by
  /// congest.max_rounds) — fault ablations belong to the RWBC pipeline.
  CongestConfig congest;
};

/// Outputs of a stitched-walk run.
struct SarmaWalkResult {
  /// The unified report (algorithm "sarma-walk"): report.metrics sums the
  /// BFS and walk phases; report.scores is empty — this pipeline outputs a
  /// walk destination, not per-node scores.
  RunReport report;

  NodeId destination = -1;
  std::size_t stitches = 0;      ///< lambda-step jumps taken
  std::size_t direct_steps = 0;  ///< single-step moves taken
  RunMetrics bfs_metrics;
  RunMetrics walk_metrics;
};

/// Runs the stitched walk.  Requires a connected graph with n >= 2 and an
/// in-range source.  Deterministic per congest.seed.
SarmaWalkResult sarma_distributed_walk(const Graph& g, NodeId source,
                                       const SarmaWalkOptions& options);

/// The naive baseline: one token stepping once per round; exactly `length`
/// rounds of walking.
struct DirectWalkResult {
  NodeId destination = -1;
  RunMetrics metrics;
};
DirectWalkResult direct_distributed_walk(const Graph& g, NodeId source,
                                         std::size_t length,
                                         const CongestConfig& config);

}  // namespace rwbc
