// The trivial distributed-exact baseline the paper repeatedly dismisses
// (Sections I, V, IX): stream the whole edge list to one node over a BFS
// tree, compute exact RWBC there, and flood the answers back down.
//
// Rounds: Theta(m + D) for the gather (edge reports pipelined up the tree,
// batched to the per-round bit budget) plus Theta(n + D) for the score
// flood — the O(m) cost that experiment E4 measures the O(n log n)
// algorithm against.
//
// Scores travel as 24-bit fixed-point values in [0, 1] (node throughflow of
// a unit current never exceeds 1); the 2^-24 quantisation is far below
// every other error source and is part of this baseline's contract.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Options for the gather-exact baseline.
struct GatherExactOptions {
  bool run_leader_election = true;  ///< include P0's n rounds
  CongestConfig congest;
};

/// Outputs of the baseline run.
struct GatherExactResult {
  std::vector<double> betweenness;  ///< exact values (fixed-point quantised)
  NodeId leader = -1;
  RunMetrics total;            ///< all phases summed
  RunMetrics election_metrics; ///< P0
  RunMetrics bfs_metrics;      ///< tree construction
  RunMetrics main_metrics;     ///< gather + compute + score flood
};

/// Runs the baseline.  Requires a connected graph with n >= 2.
GatherExactResult gather_exact_rwbc(const Graph& g,
                                    const GatherExactOptions& options = {});

}  // namespace rwbc
