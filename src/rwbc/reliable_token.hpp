// A per-node ack/timeout/retransmission wrapper for CONGEST messages — the
// transport half of the self-healing walk protocols.
//
// The paper's walk tokens are the SOLE carrier of Algorithm 1's state: a
// single lost token silently biases every downstream betweenness estimate
// (see DESIGN.md, "Fault model and self-healing walks").  ReliableLink
// restores exactly-once delivery over the lossy simulator of
// congest/faults.hpp with the classic sliding-window recipe:
//
//   - every DATA frame carries a per-neighbour sequence number;
//   - the receiver acks each frame (acks batch into one frame per
//     neighbour per round) and de-duplicates via a seq window, so
//     retransmissions and dup_prob faults deliver at most once;
//   - the sender retransmits unacked frames after ack_timeout rounds, up
//     to max_retries times, then GIVES the frame back to the caller and
//     marks the neighbour suspected-dead (crash-stop links never ack) —
//     the caller re-routes walk tokens around the dead neighbour, which is
//     the "self-healing" in the protocol's name.
//
// Wire format (all on top of the caller's inner payload, so the CONGEST
// budget meters the true overhead):
//   DATA: [0:1][seq:seq_bits][inner payload...]
//   ACK:  [1:1][count:4][seq:seq_bits]*count        (never retransmitted)
//
// Bit budget: with window W unacked frames per neighbour, one round can
// carry at most W data frames (new + retransmitted combined — retransmits
// occupy window slots) plus one ack frame per direction: a constant-factor
// bandwidth overhead, still O(log n) bits per edge per round.  Pipelines
// that enable the layer widen their budget by a constant
// (DistributedRwbcOptions::reliable_bandwidth_factor) to keep strict-mode
// enforcement meaningful.
//
// Determinism: the link draws no randomness at all — every decision is a
// function of round numbers and (deterministically faulted) arrivals — so
// the serial-vs-parallel bit-identity of the simulator is preserved.
//
// Payload opacity: the inner payload is opaque to the link — a frame is one
// send()-sized unit regardless of content.  Coalesced walk batches
// (rwbc/walk_token.hpp, WalkBatchWire) therefore ride the window, ack,
// dedup, and give-up machinery unchanged: a batch is lost, retransmitted,
// deduplicated, or given up AS A UNIT, and CountingNode::absorb_give_ups
// decodes the whole batch to refund every token it carried.  At the
// paper's walks_per_edge_per_round = 1 a batch frame is byte-identical to
// a legacy single-token frame, so the reliable wire is unchanged too.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitcodec.hpp"
#include "congest/node.hpp"

namespace rwbc {

/// Tuning knobs for a ReliableLink.
struct ReliableLinkConfig {
  int seq_bits = 8;  ///< per-neighbour sequence space (window must be <<)
  /// Rounds without an ack before a frame is retransmitted.  Must exceed
  /// the 2-round send->ack round trip.
  std::uint64_t ack_timeout = 4;
  /// Retransmissions per frame before giving up and declaring the
  /// neighbour dead (ack_timeout * max_retries rounds of silence).
  std::uint64_t max_retries = 8;
  /// Max unacked DATA frames per neighbour (window-throttled callers query
  /// data_capacity() before committing a walk to the link).
  std::size_t window = 2;
};

/// An outgoing payload the link gave up on (neighbour suspected dead).
/// The inner payload is returned verbatim so the caller can re-route it.
struct ReliableGiveUp {
  std::size_t slot = 0;  ///< neighbour slot the frame was addressed to
  std::vector<std::uint8_t> bytes;
  int bit_count = 0;
  /// True if the frame was transmitted at least once.  Deadline accounting
  /// uses this to split custody: a never-sent frame's walks are provably
  /// still ours (abandoned); a sent-but-unacked frame may already be held
  /// by the peer, so its walks are left to the residual `lost` bucket
  /// rather than risking a double count.
  bool sent = false;
};

/// An inner payload delivered exactly once to the caller.
struct ReliableDelivery {
  std::size_t slot = 0;  ///< neighbour slot the frame arrived from
  std::vector<std::uint8_t> bytes;
  int bit_count = 0;
};

/// The sliding-window transport for one node; `slot` indexes the node's
/// sorted neighbour list.  Per round, call on_message() for each inbox
/// message, then flush() exactly once after queuing sends.
class ReliableLink {
 public:
  ReliableLink(ReliableLinkConfig config, std::size_t degree);

  /// Free window slots for new DATA frames toward `slot` (0 if dead).
  std::size_t data_capacity(std::size_t slot) const;

  /// Exactly how many queued-but-never-transmitted regular (non-urgent)
  /// frames toward `slot` the next flush() at `round` will put on the wire
  /// — 0 when the slot is dead or this flush will declare it dead.  A pure
  /// pre-computation of flush()'s admission rule, so custody protocols can
  /// act on the transmission (e.g. mirror a guardian remove op) in the SAME
  /// round's control traffic instead of a round late: a frame parked behind
  /// a full window has provably not left the node, and its walks must stay
  /// mirrored as held until it actually does.
  std::size_t planned_data_sends(std::size_t slot, std::uint64_t round) const;

  /// Queues an inner payload for `slot`; sent at the next flush().
  /// Regular frames respect the window (callers should check
  /// data_capacity first; overflow is still queued, just deferred).
  /// Urgent frames (control traffic: sweeps, DONE) bypass the window.
  /// Payloads for a dead slot become immediate give-ups.
  void send(std::size_t slot, const BitWriter& inner, bool urgent = false);

  /// Parses one wrapped inbox message: acks update the in-flight table,
  /// DATA frames are deduplicated and appended to `deliveries` at most
  /// once, and an ack for them is scheduled for the next flush().
  void on_message(std::size_t slot, const Message& msg,
                  std::vector<ReliableDelivery>& deliveries);

  /// Sends this round's traffic through `ctx`: pending acks, timed-out
  /// retransmissions (metered via ctx.note_retransmission()), and queued
  /// new frames up to the window.  Frames out of retries become give-ups
  /// and mark their slot dead.
  void flush(NodeContext& ctx);

  /// Drains the give-ups accumulated since the last call.
  std::vector<ReliableGiveUp> take_give_ups();

  /// True once `slot` exhausted a frame's retries (suspected crash-stop).
  bool slot_dead(std::size_t slot) const { return dead_[slot]; }

  /// True when nothing is outstanding: no queued or unacked DATA frames.
  /// (Pending acks don't count; a node may halt with acks owed — the
  /// peer's retransmission will wake it and re-trigger the ack.)
  bool idle() const;

  /// Abandons all outgoing state (queued + in-flight, no give-ups
  /// recorded) while keeping receive/ack state, so a node that terminates
  /// via deadline still acks stragglers instead of forcing peers through
  /// their full retry budgets.
  void shutdown();

  /// Like shutdown(), but RETURNS the abandoned frames (all slots, as
  /// give-up-style records) without marking any slot dead — the deadline
  /// accounting path decodes them so every walk parked in a window is
  /// tallied as abandoned exactly once (never also refunded: the frames
  /// leave the link here and take_give_ups() cannot see them again).
  std::vector<ReliableGiveUp> drain_outgoing();

  /// Checkpoints all transport state: per-slot windows (queued + in-flight
  /// frames with their retry clocks), receive floors/bitmaps, pending
  /// acks, dead flags, and undrained give-ups.  The config itself is
  /// static and recreated by the owning node program.
  void save_state(CheckpointWriter& out) const;
  void load_state(CheckpointReader& in);

 private:
  struct Frame {
    std::uint64_t seq = 0;  ///< absolute (wire seq = seq mod 2^seq_bits)
    std::vector<std::uint8_t> bytes;  ///< inner payload
    int bit_count = 0;
    std::uint64_t last_sent_round = 0;
    std::uint64_t retries = 0;
    bool sent = false;  ///< queued frames become in-flight on first send
    bool urgent = false;
  };

  struct SlotState {
    std::vector<Frame> outgoing;  ///< queued + in-flight, seq order
    std::uint64_t next_seq = 0;
    // Receive side: all seqs < recv_floor received; bitmap covers
    // [recv_floor, recv_floor + 64).
    std::uint64_t recv_floor = 0;
    std::uint64_t recv_bitmap = 0;
    std::vector<std::uint64_t> pending_acks;  ///< wire seqs to ack
  };

  void wrap_and_send(NodeContext& ctx, std::size_t slot, Frame& frame);
  void give_up_slot(std::size_t slot);

  ReliableLinkConfig config_;
  std::uint64_t seq_mask_ = 0;
  std::vector<SlotState> slots_;
  std::vector<bool> dead_;
  std::vector<ReliableGiveUp> give_ups_;
};

}  // namespace rwbc
