// Algorithm 1 (the counting phase), as a CONGEST node program.
//
// Every node starts K truncated absorbing random walks; walks move one hop
// per round to a random neighbour (uniform, or weight-proportional in the
// weighted extension), are absorbed at the target node, expire after l
// moves, and increment the visit counter xi_v^s of every node v they
// arrive at.  The paper's per-edge rule (line 6: "if more than one random
// walk needs to be sent to v, just send one of them at random") is
// implemented as commit-and-queue: a walk draws its destination once and
// lottery losers KEEP that destination for the next round's lottery.
// Commitment matters: if losers redrew instead, edges with more contention
// (heavy edges in the weighted case) would be under-traversed, biasing the
// realized transition distribution; with commitment every drawn move
// eventually executes, so the trajectory is exactly a random-walk
// trajectory and only its timing shifts.  A queued walk has made no move,
// so it earns no visit and spends no length.
//
// Termination ("while some random walk does not terminate", line 4) is
// detected with death-count convergecast sweeps on a BFS tree built in an
// earlier phase: each node counts the walks *it* killed (absorbed or
// expired); kills are monotone and attributed to exactly one node, so a
// sweep total of (n-1)*K is correct regardless of snapshot skew.  The root
// then broadcasts DONE and everyone halts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "congest/node.hpp"
#include "rwbc/reliable_token.hpp"
#include "rwbc/walk_token.hpp"

namespace rwbc {

/// How a walk's length budget is spent (DESIGN.md resolution 1).
enum class LengthPolicy {
  /// Paper-faithful: length counts MOVES; a queued walk spends nothing, so
  /// counts match the absorbing-chain occupancies exactly, at the price of
  /// needing termination detection (total rounds O(Kn + l), Lemma 2).
  kPerMove,
  /// Ablation: length counts ROUNDS; a queued walk burns budget, so the
  /// phase provably ends by round l with no detection needed — but
  /// congestion then truncates walks early and biases counts low on
  /// hub-heavy graphs (measured in E7).
  kPerRound,
};

/// Static, node-local configuration for the counting phase (established by
/// the setup phases: target/parameter broadcast and BFS-tree construction).
struct CountingNodeConfig {
  NodeId target = 0;                    ///< absorbing node t*
  std::uint64_t walks_per_source = 1;   ///< K
  std::uint64_t cutoff = 1;             ///< l
  NodeId tree_parent = -1;              ///< BFS-tree parent (-1 at the root)
  std::vector<NodeId> tree_children;    ///< BFS-tree children
  std::uint64_t walks_per_edge_per_round = 1;  ///< paper: 1
  LengthPolicy length_policy = LengthPolicy::kPerMove;
  /// Coalesced hot path (default): all walk tokens crossing one directed
  /// edge in a round ride a single packed payload (WalkBatchWire).  At the
  /// paper's walks_per_edge_per_round = 1 the batch header is zero bits
  /// wide, so every message is byte-identical to the legacy per-token wire
  /// — goldens, metrics, and checkpoints are unchanged (differential suite:
  /// tests/coalesce_test.cpp).  False = the legacy one-message-per-token
  /// path, kept as the differential baseline.  Both endpoints of an edge
  /// must agree on this flag.
  bool coalesce_walks = true;
  /// Weighted extension: per-neighbour edge weights aligned with the
  /// node's sorted neighbour list (local knowledge — a node knows its
  /// incident conductances).  Empty = unweighted uniform moves.
  std::vector<double> neighbor_weights;
  /// Telemetry (EXPERIMENTS.md E18): when non-null, bucket i counts the
  /// coalesced batches of exactly i+1 tokens this node sent (the last
  /// bucket absorbs anything larger).  Written without synchronisation —
  /// point all nodes at one vector in serial runs (num_threads = 0) only.
  std::vector<std::uint64_t>* batch_histogram = nullptr;

  // Robustness knobs (DESIGN.md, "Fault model and self-healing walks").
  /// Relaxes the exact-count invariant asserts that message faults break:
  /// duplicate sweep reports are ignored, a death total past (n-1)*K ends
  /// the phase instead of aborting, and a DONE that arrives while walks are
  /// still held abandons them.  Off = faults in the phase are a bug.
  bool fault_tolerant = false;
  /// Force-finish round (phase-local); 0 = none.  The termination backstop
  /// for fault schedules that break exact death counting (crashed nodes
  /// take their kill records with them): every node independently finishes
  /// when ctx.round() reaches the deadline, abandoning surviving walks.
  std::uint64_t deadline_rounds = 0;
  /// Wraps every message (walks, sweeps, DONE) in a ReliableLink so pure
  /// message-loss/duplication schedules still count exactly: walks are
  /// deduplicated, lost tokens retransmit, and a neighbour that exhausts
  /// its retries is treated as crashed — its walks re-route elsewhere.
  bool reliable_transport = false;
  ReliableLinkConfig reliable_link;
  /// Crash-lossless counting (DESIGN.md §10): every node mirrors its held
  /// walk multiset to a deterministic guardian (the BFS-tree parent; the
  /// root uses its canonical first child) via compact replica-delta frames.
  /// When a neighbour is declared crashed — its reliable-link slot died, or
  /// it fell silent for guardian_silence rounds — the guardian adopts the
  /// mirrored walks and death count and the protocol continues without
  /// loss, provided the survivors stay connected.  Requires kPerMove (a
  /// queued walk's remaining budget must only change on messages the
  /// guardian can observe).  Fault-free guardian runs keep walk dynamics
  /// and scores byte-identical to guardian-off runs: replica frames are
  /// urgent (outside the data window) and adoption is fault_tolerant-gated.
  bool guardian = false;
  NodeId guardian_id = -1;      ///< this node's guardian (-1 = orphan)
  std::uint64_t my_depth = 0;   ///< BFS-tree depth of this node
  /// BFS-tree depth of each neighbour, aligned with the sorted neighbour
  /// list; used to pick a replacement guardian strictly closer to the root
  /// (lexicographically smaller (depth, id)) when the current one dies.
  std::vector<std::uint64_t> neighbor_depths;
  /// Max rounds between replica frames while unreplicated state exists is
  /// implicit (a dirty ward sends every round); the heartbeat keeps a
  /// CLEAN ward audible so guardians can tell "idle" from "dead".  Only
  /// active under fault_tolerant (fault-free runs may idle-sleep).
  std::uint64_t guardian_heartbeat = 2;
  /// Rounds of total silence from a ward before its guardian adopts its
  /// mirrored walks.  Must exceed guardian_heartbeat plus worst-case
  /// retransmission delay to avoid false adoptions of live wards.
  std::uint64_t guardian_silence = 12;
  /// When false, the per-source visit table (O(n) words on every node) is
  /// neither allocated nor updated.  Walk dynamics, RNG draws, and every
  /// message stay identical — only the tally that the computing phase would
  /// read is skipped.  For counting-phase-only scaling runs (E17) whose
  /// outputs are round/bit metrics, not scores.
  bool track_visits = true;
};

/// Node program for Algorithm 1.
class CountingNode final : public NodeProcess {
 public:
  explicit CountingNode(CountingNodeConfig config);

  void on_start(NodeContext& ctx) override;
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override;
  void save_state(CheckpointWriter& out) const override;
  void load_state(CheckpointReader& in) override;

  /// After the run: visit counts xi_v^s indexed by source s.
  const std::vector<std::uint64_t>& visits() const { return visits_; }

  /// After the run: walks this node terminated (absorbed or expired).
  std::uint64_t died_here() const { return died_; }

  /// True if this node adopted the given ward, i.e. the ward's mirrored
  /// deaths are already folded into died_here().
  bool adopted_ward(NodeId ward) const {
    auto it = wards_.find(ward);
    return it != wards_.end() && it->second.adopted;
  }

  /// The mirrored absolute death count this node holds for an un-adopted
  /// ward (0 if it guards no such ward).  The post-run census uses this to
  /// credit deaths recorded at a node that crashed too late in the phase
  /// for adoption to fire (DESIGN.md §10): `deaths` mirrors the ward's
  /// monotone died_ counter, so it is a sound lower bound on what the ward
  /// would have testified.
  std::uint64_t mirrored_ward_deaths(NodeId ward) const {
    auto it = wards_.find(ward);
    return (it != wards_.end() && !it->second.adopted) ? it->second.deaths
                                                       : 0;
  }

  /// True once the DONE broadcast reached this node.
  bool finished() const { return finished_; }

 private:
  /// One queued mirror operation toward the guardian: add = a walk entered
  /// this node's custody (birth, arrival, give-up refund), !add = it left
  /// (sent onward, or died in a mass-kill).  FIFO order is preserved into
  /// frames so the guardian's ledger replays custody transitions exactly.
  struct ReplicaOp {
    bool add = true;
    NodeId source = 0;
    std::uint64_t remaining = 0;
  };

  /// Guardian-side mirror of one ward's walk custody, keyed by the ward's
  /// node id.  walks counts tokens by (source, remaining); owed_removes
  /// buffers removes that arrived before their matching add (op order
  /// within a frame is canonicalised, so this keeps the multiset exact).
  struct WardLedger {
    std::uint64_t epoch = 0;
    bool seen_snapshot = false;
    std::uint64_t deaths = 0;  ///< absolute died_ of the ward (monotone max)
    std::map<std::pair<NodeId, std::uint64_t>, std::uint64_t> walks;
    std::map<std::pair<NodeId, std::uint64_t>, std::uint64_t> owed_removes;
    std::uint64_t last_heard = 0;  ///< round of the last raw message seen
    std::uint64_t probe_round = 0;  ///< round the last liveness ping was sent
    bool adopted = false;  ///< further frames from this ward are ignored
  };

  void process_inbox(NodeContext& ctx, std::span<const Message> inbox);
  void handle_payload(NodeContext& ctx, NodeId from, BitReader& reader);
  void handle_replica(NodeContext& ctx, NodeId from, ReplicaDelta&& delta);
  void absorb_give_ups();
  void forward_walks(NodeContext& ctx);
  void run_sweep_logic(NodeContext& ctx);
  void record_kill();
  void send_control(NodeContext& ctx, NodeId to, const BitWriter& payload);
  std::size_t slot_of(NodeContext& ctx, NodeId v) const;

  // Guardian handoff (DESIGN.md §10).
  void queue_replica_op(bool add, NodeId source, std::uint64_t remaining);
  /// Remove-on-transmit: mirrors the remove ops for exactly the walk frames
  /// the upcoming flush() will put on the wire (ReliableLink::
  /// planned_data_sends).  A frame parked behind a full window has not left
  /// the node — if the node crashes, its walks must still be in the
  /// guardian's ledger or they are silently lost.  Runs between
  /// forward_walks and maybe_send_replica so the removes ride the SAME
  /// round's replica frame as the transmission they describe.
  void settle_custody(NodeContext& ctx);
  void maybe_send_replica(NodeContext& ctx);
  void finish_guardian(NodeContext& ctx);  ///< farewell frame on DONE-finish
  void guardian_maintenance(NodeContext& ctx);
  void adopt_ward(NodeContext& ctx, NodeId ward, WardLedger& ledger);
  void re_anchor(NodeContext& ctx);
  /// Unreplicated state exists: the node must not idle-sleep or the mirror
  /// would go stale while walks sit queued at a sleeping node.
  bool replica_dirty() const;
  /// Walks inside a link frame (0 for control/replica payloads) — deadline
  /// accounting for in-flight custody.
  std::uint64_t count_walks_in_frame(const ReliableGiveUp& frame);

  CountingNodeConfig config_;
  CountingWire wire_;
  WalkBatchWire batch_wire_;
  std::unique_ptr<ReliableLink> link_;  ///< null unless reliable_transport
  std::vector<std::uint64_t> visits_;
  /// Walks held at this node, struct-of-arrays; committed(i) is the drawn
  /// next-hop slot (-1 = none yet).  Pool order is the legacy held_walks_
  /// order, so the commit-draw sequence is unchanged.
  WalkTokenPool pool_;
  WalkTokenPool next_pool_;  ///< survivors, double-buffered via swap
  std::uint64_t died_ = 0;

  // Termination-detection state.
  bool is_root_ = false;
  std::uint64_t expected_total_deaths_ = 0;
  bool sweep_in_progress_ = false;
  bool sweep_request_pending_ = false;  ///< received request, not yet relayed
  std::size_t sweep_reports_pending_ = 0;
  std::uint64_t sweep_accumulator_ = 0;
  bool done_pending_ = false;  ///< DONE received/decided, relay next chance
  bool finished_ = false;

  // Scratch reused across rounds: a counting sort of pool indices by
  // committed slot (count / prefix / stable scatter) replaces the seed's
  // vector-of-vectors bucketing — same (slot, arrival-order) grouping, no
  // per-slot heap churn.
  std::vector<std::uint32_t> bucket_count_;   // per slot
  std::vector<std::uint32_t> bucket_off_;     // per slot + 1, prefix sums
  std::vector<std::uint32_t> bucket_cursor_;  // scatter cursors
  std::vector<std::uint32_t> bucket_idx_;     // pool indices, slot-major
  std::vector<WalkToken> batch_;              // per-slot outgoing batch
  std::vector<WalkToken> custody_;            // pre-decrement mirror of batch_
  std::vector<WalkToken> decoded_;            // per-message decode scratch
  BitWriter scratch_;                         // outgoing payload scratch
  /// min(wpepr, largest batch whose worst-case encoding fits the per-edge
  /// bit budget, minus the reliable-link frame header when one is used).
  /// 1 at the paper's wpepr = 1, so winner selection is unchanged there.
  std::uint64_t batch_cap_ = 1;
  // Weighted sampling: cumulative neighbour weights (empty = uniform).
  std::vector<double> cumulative_weights_;

  // Dynamic tree links: initialised from the config every on_start and used
  // by sweeps/DONE in ALL modes; only guardian failover mutates them (an
  // adopting guardian drops the dead child, a re-anchoring ward reports to
  // its new guardian, which learns of the child via kReparent).
  NodeId sweep_parent_ = -1;
  std::vector<NodeId> children_;

  // Guardian handoff state (all inert unless config_.guardian).
  ReplicaDeltaWire replica_wire_;
  NodeId anchor_ = -1;  ///< current guardian (-1 = orphaned, walks at risk)
  std::uint64_t replica_epoch_ = 0;
  bool snapshot_pending_ = false;  ///< next frame re-baselines the ledger
  std::vector<ReplicaOp> replica_queue_;
  std::uint64_t last_replica_round_ = 0;
  std::uint64_t last_replicated_died_ = 0;
  /// Ops per frame that fit the per-edge budget next to a worst-case walk
  /// batch and control frame (>= 1 always; backlog spills to later rounds).
  std::uint64_t replica_ops_cap_ = 1;
  /// Wards this node guards, ascending id — deterministic adoption order.
  std::map<NodeId, WardLedger> wards_;
  /// Per-slot FIFO of the walks inside each queued-but-never-transmitted
  /// link frame (pre-decrement (source, remaining), one entry per frame,
  /// queue order).  Control/replica frames are urgent and never queue, so
  /// this aligns one-to-one with the link's unsent regular frames: entries
  /// pop when settle_custody sees the frame transmit (mirroring the remove
  /// op then) or when a slot death returns the frame as a sent=false
  /// give-up (no remove ever mirrored, so the refund must not re-add).
  std::vector<std::vector<std::vector<WalkToken>>> pending_custody_;

  std::size_t draw_neighbor_slot(NodeContext& ctx);
};

}  // namespace rwbc
