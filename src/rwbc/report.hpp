// The unified run report shared by every distributed pipeline.
//
// Each `Distributed*Result` historically invented its own field names for
// the same quantities (scores lived in `betweenness` or `pagerank`; metrics
// in `total` or `metrics`; round/bit totals required reaching into
// RunMetrics).  Tooling that compares pipelines — the CLI's tabular output,
// the benchmark harness, the experiment scripts — had to special-case all
// five.  RunReport is the common denominator: every result struct embeds
// one, filled by its runner, with the same meaning everywhere.  The legacy
// per-struct fields remain for one deprecation cycle (they mirror the
// report; see the README migration notes) and will be removed after it.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "congest/metrics.hpp"

namespace rwbc {

/// Walk conservation accounting for pipelines with a counting phase
/// (DESIGN.md §10).  Every walk born ends in exactly one bucket: died
/// (killed at a surviving node, including deaths a guardian adopted from a
/// crashed ward), abandoned (explicitly dropped with a metric — deadline
/// backstop, DONE stragglers), or lost (the residual: state that crashed
/// nodes took with them, or in-flight frames nobody could attest).  A
/// negative `lost` means duplication faults overcounted deaths.
struct WalkAccounting {
  bool enabled = false;  ///< filled only by counting-phase pipelines
  std::uint64_t expected = 0;   ///< (n - 1) * K walks born
  std::uint64_t died = 0;       ///< deaths recorded at surviving nodes
  std::uint64_t adopted = 0;    ///< walks guardians adopted from crashed wards
  std::uint64_t abandoned = 0;  ///< walks explicitly dropped (metered)
  std::int64_t lost = 0;        ///< expected - died - abandoned

  /// The crash-lossless guarantee held: every walk was either counted or
  /// an explicit, metered drop — nothing vanished silently.
  bool conserved() const { return lost == 0; }
  /// Stronger: the run terminated with every walk counted (no drops).
  bool exact() const { return lost == 0 && abandoned == 0; }
};

/// Common outputs of one distributed pipeline run.
struct RunReport {
  /// Which pipeline produced this report ("rwbc", "spbc", "alpha-cfb",
  /// "pagerank", "sarma-walk").
  std::string algorithm;

  /// Per-node scores — the pipeline's primary output (betweenness,
  /// PageRank mass, ...).  Empty when the run was configured not to
  /// compute scores, or when the pipeline has no per-node score (the
  /// Sarma walk reports a destination instead).
  std::vector<double> scores;

  /// All phases summed (counters add, per-edge-round peaks take max).
  RunMetrics metrics;

  /// Convenience mirrors of metrics.rounds / metrics.total_bits, so report
  /// consumers never reach into RunMetrics for the two headline numbers.
  std::uint64_t rounds = 0;
  std::uint64_t bits = 0;

  /// The congest.seed the run used (per-node streams are Rng(seed, v)).
  std::uint64_t seed = 0;

  /// Pipeline-local round of the snapshot this run resumed from, or -1
  /// for a fresh (uninterrupted) run.  Phases completed before the
  /// snapshot re-ran deterministically or were skipped; either way the
  /// outputs are bit-identical to the uninterrupted run.
  std::int64_t resumed_from_round = -1;

  /// Walk conservation ledger (enabled only for counting-phase pipelines).
  WalkAccounting walks;
};

/// Assembles a report from a finished run.  `scores` is moved in;
/// `resumed_from_round` defaults to the fresh-run sentinel.
inline RunReport make_run_report(std::string algorithm,
                                 std::vector<double> scores,
                                 const RunMetrics& metrics,
                                 std::uint64_t seed,
                                 std::int64_t resumed_from_round = -1) {
  RunReport report;
  report.algorithm = std::move(algorithm);
  report.scores = std::move(scores);
  report.metrics = metrics;
  report.rounds = metrics.rounds;
  report.bits = metrics.total_bits;
  report.seed = seed;
  report.resumed_from_round = resumed_from_round;
  return report;
}

}  // namespace rwbc
