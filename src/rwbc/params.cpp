#include "rwbc/params.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rwbc {

std::size_t default_cutoff(NodeId n, double multiplier) {
  RWBC_REQUIRE(n >= 1, "cutoff needs n >= 1");
  RWBC_REQUIRE(multiplier > 0.0, "cutoff multiplier must be positive");
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::ceil(multiplier * static_cast<double>(n))));
}

std::size_t default_walks_per_source(NodeId n, double multiplier) {
  RWBC_REQUIRE(n >= 1, "walk count needs n >= 1");
  RWBC_REQUIRE(multiplier > 0.0, "walk multiplier must be positive");
  const double log_n = std::log2(std::max(2.0, static_cast<double>(n)));
  return std::max<std::size_t>(
      1, static_cast<std::size_t>(std::ceil(multiplier * log_n)));
}

RwbcParams default_params(NodeId n, double cutoff_multiplier,
                          double walks_multiplier) {
  return RwbcParams{default_cutoff(n, cutoff_multiplier),
                    default_walks_per_source(n, walks_multiplier)};
}

}  // namespace rwbc
