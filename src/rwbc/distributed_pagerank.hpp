// Distributed Monte-Carlo PageRank under CONGEST — Das Sarma et al. (the
// paper's Section II-B), implemented as the round-count yardstick for
// experiment E4: PageRank walks die after O(1/eps) expected steps, so the
// protocol finishes in O(log n / eps) rounds w.h.p., and the measured gap
// to Algorithm 1's O(n log n) is the paper's "RWBC is strictly harder than
// PageRank" argument made concrete.
//
// Congestion never bites: walk tokens are anonymous (no source, no length),
// so all walks crossing an edge in a round compress into one integer count
// — O(log n) bits regardless of how many walks travel.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "rwbc/report.hpp"

namespace rwbc {

/// Options for distributed PageRank.
struct DistributedPagerankOptions {
  double reset_probability = 0.15;  ///< per-step stop probability epsilon
  std::size_t walks_per_node = 64;  ///< walks each node launches
  /// congest.num_threads parallelises the walk rounds deterministically
  /// (bit-identical to serial).  congest.faults injects deterministic
  /// message/node faults into every round; this protocol has no reliability
  /// layer, so dropped walkers silently bias the stationary estimate
  /// (the self-healing machinery lives in the RWBC pipeline only).
  CongestConfig congest;
};

/// Outputs of a distributed PageRank run.
struct DistributedPagerankResult {
  /// The unified report (algorithm "pagerank"): report.scores holds the
  /// end-point estimates (sum to 1), report.metrics the run totals.
  RunReport report;
};

/// Runs the protocol.  Requires n >= 1 and minimum degree >= 1.
DistributedPagerankResult distributed_pagerank(
    const Graph& g, const DistributedPagerankOptions& options = {});

}  // namespace rwbc
