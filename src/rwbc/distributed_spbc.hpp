// Distributed shortest-path betweenness — the paper's own prior work
// ([5]: Hua, Fan, Ai, Qian, Li, Shi, Jin, ICDCS 2016), which Section I
// presents as the O(n)-round companion result ("we have proposed an O(n)
// time distributed approximation algorithm to compute the shortest path
// betweenness with approximation ratio (1 +/- 1/n^c)").
//
// This implementation follows the same two-phase structure as Brandes'
// centralized algorithm, distributed as a dataflow computation:
//
//   Phase A  all-sources BFS with path counts: every node maintains
//            (dist_s, sigma_s) per source and re-broadcasts on improvement
//            (asynchronous Bellman-Ford-style; converges to exact BFS
//            distances and path counts).  All n sources run concurrently;
//            per-edge traffic is capped and queued, and quiescence ends
//            the phase (idle nodes halt, arrivals wake them).
//   Phase B  dependency accumulation: delta_s(v) = sum over successors w
//            (sigma_v / sigma_w)(1 + delta_s(w)) flows from BFS leaves
//            toward each source — a pure data dependency, so pipelining
//            across sources needs no timing discipline at all.
//
// sigma_st can be exponential in n, so exact counts cannot cross an
// O(log n)-bit edge: like [5], sigma and delta travel as bounded-precision
// floats (22-bit mantissa), giving the (1 +/- eps) multiplicative error
// the companion paper proves — here eps = 2^-22 per hop, measured against
// exact Brandes in the tests.
//
// Rounds: O(n + D) message waves per phase under the per-edge cap — the
// linear-time claim of [5], reproduced by E13.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "rwbc/report.hpp"

namespace rwbc {

/// Options for distributed SPBC.
struct DistributedSpbcOptions {
  /// Update messages an edge may carry per direction per round (each is
  /// ~2 log n + 30 bits; the default budget fits 1-2).
  std::size_t updates_per_edge_per_round = 2;
  /// If true, scores are divided by (n-1)(n-2) (Brandes' normalisation).
  bool normalized = true;
  /// congest.num_threads parallelises both phases' rounds
  /// deterministically (bit-identical to serial).  congest.faults applies
  /// to both phases; the BFS/accumulation waves are not fault-tolerant, so
  /// a lossy plan can deadlock the dependency-counting accumulation
  /// (bounded by congest.max_rounds) — fault ablations belong to the RWBC
  /// pipeline.
  CongestConfig congest;
};

/// Outputs of a distributed SPBC run.
struct DistributedSpbcResult {
  /// The unified report (algorithm "spbc"): report.scores holds the
  /// per-node SPBC scores, report.metrics sums both phases.
  RunReport report;

  RunMetrics forward_metrics;   ///< Phase A: BFS + path counting
  RunMetrics backward_metrics;  ///< Phase B: dependency accumulation
};

/// Runs the pipeline.  Requires a connected graph with n >= 2.
DistributedSpbcResult distributed_spbc(
    const Graph& g, const DistributedSpbcOptions& options = {});

}  // namespace rwbc
