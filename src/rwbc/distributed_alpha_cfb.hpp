// Distributed alpha-current-flow betweenness — the paper's Section II-C
// remark made concrete: "since the definition of alpha-current-flow
// betweenness is in the spirit of PageRank, we can use the techniques in
// [Das Sarma et al.] to distributively compute it in O(log n / (1-alpha))
// time."
//
// The estimator mirrors Algorithm 1 with the absorbing target replaced by
// per-step evaporation: every node starts K walks; before each move a walk
// survives with probability alpha (else it dies in place); visits are
// counted exactly as in the counting phase.  Then
//
//   E[xi_v^s] / (K s(v))  =  [sum_r alpha^r D^{-1} M^r]_{vs}  =  T_alpha(v,s)
//
// with T_alpha = (D - alpha A)^{-1} — the exact regularised potentials of
// centrality/alpha_cfb — so Algorithm 2 runs verbatim on the counts.
// Walk lengths are geometric with mean 1/(1-alpha): the counting phase
// finishes in O(log(nK) / (1-alpha)) rounds w.h.p., the O(log n) regime
// the paper contrasts with RWBC's Omega(n)-type cost (E12 measures the
// gap).  A hard cap at the w.h.p. length bound keeps every count within
// its declared O(log n) bit width; walks hitting the cap die (tested to be
// statistically invisible).
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/graph.hpp"
#include "linalg/dense.hpp"
#include "rwbc/report.hpp"

namespace rwbc {

/// Options for distributed alpha-CFB.
struct DistributedAlphaCfbOptions {
  double alpha = 0.8;                ///< per-step survival, in (0, 1)
  std::size_t walks_per_source = 0;  ///< K; 0 = 4 * ceil(log2 n)
  double walks_multiplier = 4.0;
  /// Hard cap on walk length; 0 = ceil((log(nK) + 16) / -log(alpha)).
  std::size_t max_steps = 0;
  std::size_t walks_per_edge_per_round = 1;
  bool compute_scores = true;
  /// congest.num_threads parallelises counting + computing rounds
  /// deterministically (bit-identical to serial).  congest.faults applies
  /// to both phases; alpha-CFB's implicit termination (walks die by the
  /// alpha-coin, no death-count convergecast) makes it naturally robust to
  /// drops — lost walks shrink the sample, they cannot hang the run.
  CongestConfig congest;
};

/// Outputs of a distributed alpha-CFB run.
struct DistributedAlphaCfbResult {
  /// The unified report (algorithm "alpha-cfb"): report.scores holds the
  /// alpha-CFB estimates per node, report.metrics sums both phases.
  RunReport report;

  DenseMatrix scaled_visits;        ///< estimates T_alpha(v, s)
  std::size_t walks_per_source = 0;
  std::size_t max_steps = 0;
  std::uint64_t capped_walks = 0;  ///< walks killed by the hard cap
  RunMetrics counting_metrics;
  RunMetrics computing_metrics;
};

/// Runs the pipeline.  Requires a connected graph with n >= 2 and
/// alpha in (0, 1).
DistributedAlphaCfbResult distributed_alpha_cfb(
    const Graph& g, const DistributedAlphaCfbOptions& options = {});

}  // namespace rwbc
