#include "rwbc/pipeline.hpp"

#include <csignal>
#include <cstdlib>
#include <memory>

#include "common/error.hpp"

namespace rwbc {

namespace {

double parse_probability(const char* flag, const char* text) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0' || !(value >= 0.0 && value <= 1.0)) {
    throw Error(std::string(flag) + " expects a probability in [0,1], got '" +
                text + "'");
  }
  return value;
}

CrashEvent parse_crash(const char* text) {
  const std::string spec(text);
  const std::size_t at = spec.find('@');
  char* end = nullptr;
  CrashEvent crash;
  if (at != std::string::npos) {
    crash.node = static_cast<NodeId>(std::strtol(spec.c_str(), &end, 10));
    const bool node_ok = end == spec.c_str() + at && crash.node >= 0;
    crash.round = std::strtoull(spec.c_str() + at + 1, &end, 10);
    if (node_ok && *end == '\0' && at + 1 < spec.size()) return crash;
  }
  throw Error(std::string("--crash expects NODE@ROUND, got '") + text + "'");
}

/// Applies the spec's shared fields to a pipeline's CongestConfig — the one
/// overlay point, so every algorithm interprets --threads/--drop-prob/...
/// identically.
void overlay_congest(const PipelineSpec& spec, CongestConfig& congest) {
  congest.seed = spec.seed;
  congest.num_threads = spec.threads;
  congest.faults = spec.faults;
  if (spec.bit_floor > 0) congest.bit_floor = spec.bit_floor;
  if (spec.kill_at_round > 0) {
    // Crash drill: count rounds across every phase (observers see
    // phase-local numbers; the shared counter makes the kill point global)
    // and die with no chance to flush or unwind — exactly what a power
    // loss or OOM kill would do.
    auto rounds_seen = std::make_shared<std::uint64_t>(0);
    const std::uint64_t kill_at = spec.kill_at_round;
    auto inner = spec.round_observer;
    congest.round_observer = [rounds_seen, kill_at,
                              inner](const RoundSnapshot& snapshot) {
      if (inner) inner(snapshot);
      if (++*rounds_seen == kill_at) std::raise(SIGKILL);
    };
  } else if (spec.round_observer) {
    congest.round_observer = spec.round_observer;
  }
}

DistributedRwbcOptions rwbc_options(const PipelineSpec& spec) {
  DistributedRwbcOptions options = spec.rwbc;
  overlay_congest(spec, options.congest);
  options.reliable_transport =
      options.reliable_transport || spec.reliable_transport;
  options.checkpoint.dir = spec.checkpoint_dir;
  options.checkpoint.interval = spec.checkpoint_every;
  options.checkpoint.resume = spec.resume;
  return options;
}

/// The non-rwbc pipelines have no reliable transport or checkpointing;
/// reject rather than silently ignore a spec that asks for them.
void require_rwbc_only_knobs_unset(const PipelineSpec& spec) {
  RWBC_REQUIRE(!spec.reliable_transport,
               "--reliable is only supported by the rwbc pipeline");
  RWBC_REQUIRE(spec.checkpoint_dir.empty() && spec.checkpoint_every == 0 &&
                   !spec.resume,
               "checkpointing is only supported by the rwbc pipeline");
}

}  // namespace

RunReport run_pipeline(const Graph& g, const PipelineSpec& spec) {
  validate_pipeline_spec(spec);
  if (spec.algorithm == "rwbc") {
    DistributedRwbcResult result = distributed_rwbc(g, rwbc_options(spec));
    RunReport report = result.report;
    if (spec.rwbc_result != nullptr) *spec.rwbc_result = std::move(result);
    return report;
  }
  require_rwbc_only_knobs_unset(spec);
  if (spec.algorithm == "spbc") {
    DistributedSpbcOptions options = spec.spbc;
    overlay_congest(spec, options.congest);
    DistributedSpbcResult result = distributed_spbc(g, options);
    RunReport report = result.report;
    if (spec.spbc_result != nullptr) *spec.spbc_result = std::move(result);
    return report;
  }
  if (spec.algorithm == "alpha-cfb") {
    DistributedAlphaCfbOptions options = spec.alpha_cfb;
    overlay_congest(spec, options.congest);
    DistributedAlphaCfbResult result = distributed_alpha_cfb(g, options);
    RunReport report = result.report;
    if (spec.alpha_cfb_result != nullptr) {
      *spec.alpha_cfb_result = std::move(result);
    }
    return report;
  }
  if (spec.algorithm == "pagerank") {
    DistributedPagerankOptions options = spec.pagerank;
    overlay_congest(spec, options.congest);
    DistributedPagerankResult result = distributed_pagerank(g, options);
    RunReport report = result.report;
    if (spec.pagerank_result != nullptr) {
      *spec.pagerank_result = std::move(result);
    }
    return report;
  }
  if (spec.algorithm == "sarma-walk") {
    SarmaWalkOptions options = spec.sarma;
    overlay_congest(spec, options.congest);
    SarmaWalkResult result =
        sarma_distributed_walk(g, spec.walk_source, options);
    RunReport report = result.report;
    if (spec.sarma_result != nullptr) *spec.sarma_result = std::move(result);
    return report;
  }
  throw Error("unknown pipeline algorithm: " + spec.algorithm);
}

RunReport run_pipeline(const WeightedGraph& wg, const PipelineSpec& spec) {
  validate_pipeline_spec(spec);
  RWBC_REQUIRE(spec.algorithm == "rwbc",
               "weighted graphs are only supported by the rwbc pipeline");
  DistributedRwbcResult result = distributed_rwbc(wg, rwbc_options(spec));
  RunReport report = result.report;
  if (spec.rwbc_result != nullptr) *spec.rwbc_result = std::move(result);
  return report;
}

void strip_pipeline_flags(std::vector<char*>& args, PipelineSpec& spec) {
  std::size_t i = 1;
  while (i < args.size()) {
    const std::string flag(args[i]);
    const bool takes_value = flag == "--threads" || flag == "--drop-prob" ||
                             flag == "--dup-prob" || flag == "--crash" ||
                             flag == "--fault-seed" ||
                             flag == "--checkpoint-dir" ||
                             flag == "--checkpoint-every" ||
                             flag == "--kill-at-round" ||
                             flag == "--walks-per-edge";
    if (takes_value && i + 1 >= args.size()) {
      throw Error(flag + " requires a value");
    }
    if (flag == "--threads") {
      spec.threads = std::atoi(args[i + 1]);
    } else if (flag == "--drop-prob") {
      spec.faults.drop_prob = parse_probability("--drop-prob", args[i + 1]);
    } else if (flag == "--dup-prob") {
      spec.faults.dup_prob = parse_probability("--dup-prob", args[i + 1]);
    } else if (flag == "--crash") {
      spec.faults.crashes.push_back(parse_crash(args[i + 1]));
    } else if (flag == "--fault-seed") {
      spec.faults.seed = std::strtoull(args[i + 1], nullptr, 10);
    } else if (flag == "--checkpoint-dir") {
      spec.checkpoint_dir = args[i + 1];
    } else if (flag == "--checkpoint-every") {
      spec.checkpoint_every = std::strtoull(args[i + 1], nullptr, 10);
    } else if (flag == "--kill-at-round") {
      spec.kill_at_round = std::strtoull(args[i + 1], nullptr, 10);
    } else if (flag == "--walks-per-edge") {
      const std::uint64_t wpepr = std::strtoull(args[i + 1], nullptr, 10);
      if (wpepr < 1) throw Error("--walks-per-edge must be >= 1");
      spec.rwbc.walks_per_edge_per_round = static_cast<std::size_t>(wpepr);
    } else if (flag == "--no-coalesce") {
      spec.rwbc.coalesce_walks = false;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else if (flag == "--guardian") {
      spec.rwbc.guardian_handoff = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else if (flag == "--no-guardian") {
      spec.rwbc.guardian_handoff = false;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else if (flag == "--reliable") {
      spec.reliable_transport = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else if (flag == "--resume") {
      spec.resume = true;
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    } else {
      ++i;  // not a shared flag: leave it for the caller
      continue;
    }
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
  }
}

void validate_pipeline_spec(const PipelineSpec& spec) {
  if (spec.resume && spec.checkpoint_dir.empty()) {
    throw Error("--resume requires --checkpoint-dir");
  }
  if (spec.checkpoint_every > 0 && spec.checkpoint_dir.empty()) {
    throw Error("--checkpoint-every requires --checkpoint-dir");
  }
}

int pipeline_threads_from_env() {
  const char* value = std::getenv("RWBC_THREADS");
  return value == nullptr ? 0 : std::atoi(value);
}

}  // namespace rwbc
