#include "rwbc/reliable_token.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

namespace {

// Max sequence numbers one ACK frame can carry (4-bit count field).
constexpr std::size_t kMaxAcksPerFrame = 15;

// Re-packs `bits` bits of an LSB-first byte buffer into the writer.
void append_bits(BitWriter& writer, const std::vector<std::uint8_t>& bytes,
                 int bits) {
  int written = 0;
  for (std::size_t i = 0; written < bits; ++i) {
    const int chunk = std::min(8, bits - written);
    const std::uint64_t value = bytes[i] & ((1u << chunk) - 1u);
    writer.write(value, chunk);
    written += chunk;
  }
}

}  // namespace

ReliableLink::ReliableLink(ReliableLinkConfig config, std::size_t degree)
    : config_(config) {
  RWBC_REQUIRE(config_.seq_bits >= 2 && config_.seq_bits <= 32,
               "ReliableLink seq_bits out of range");
  RWBC_REQUIRE(config_.ack_timeout >= 2,
               "ReliableLink ack_timeout must cover the 2-round round trip");
  RWBC_REQUIRE(config_.window >= 1, "ReliableLink window must be >= 1");
  // The receive window (half the sequence space) must dominate everything
  // that can be legitimately in flight, else dedup misclassifies.
  RWBC_REQUIRE((1ULL << (config_.seq_bits - 1)) > 2 * config_.window,
               "ReliableLink sequence space too small for the window");
  seq_mask_ = (config_.seq_bits == 64)
                  ? ~0ULL
                  : ((1ULL << config_.seq_bits) - 1ULL);
  slots_.resize(degree);
  dead_.assign(degree, false);
}

std::size_t ReliableLink::data_capacity(std::size_t slot) const {
  if (dead_[slot]) return 0;
  // Urgent frames (control sweeps, replica deltas) bypass the window at
  // flush time, so they don't occupy admission slots either — walk traffic
  // is throttled identically whether or not control/replica frames happen
  // to be in flight on the same edge.
  std::size_t outstanding = 0;
  for (const Frame& frame : slots_[slot].outgoing) {
    if (!frame.urgent) ++outstanding;
  }
  return outstanding >= config_.window ? 0 : config_.window - outstanding;
}

std::size_t ReliableLink::planned_data_sends(std::size_t slot,
                                             std::uint64_t round) const {
  // Must mirror flush() exactly: step 2 may kill the slot (admitting
  // nothing), otherwise step 3 walks the queue in order and admits frames
  // while the in-flight count stays under the window.  Urgent frames
  // (queued this round, always transmitted) bypass the window check but
  // still increment in-flight — they can block regular frames queued after
  // them, so they must be simulated here even though only regular frames
  // count toward the returned total.
  if (dead_[slot]) return 0;
  const SlotState& state = slots_[slot];
  std::size_t in_flight = 0;
  for (const Frame& frame : state.outgoing) {
    if (!frame.sent) continue;
    if (round - frame.last_sent_round >= config_.ack_timeout &&
        frame.retries >= config_.max_retries) {
      return 0;  // flush() will give_up_slot() before admitting anything
    }
    ++in_flight;
  }
  std::size_t sends = 0;
  for (const Frame& frame : state.outgoing) {
    if (frame.sent) continue;
    if (!frame.urgent && in_flight >= config_.window) continue;
    if (!frame.urgent) ++sends;
    ++in_flight;
  }
  return sends;
}

void ReliableLink::send(std::size_t slot, const BitWriter& inner,
                        bool urgent) {
  if (dead_[slot]) {
    ReliableGiveUp give_up;
    give_up.slot = slot;
    give_up.bytes = inner.bytes();
    give_up.bit_count = inner.bit_count();
    give_ups_.push_back(std::move(give_up));
    return;
  }
  SlotState& state = slots_[slot];
  Frame frame;
  frame.seq = state.next_seq++;
  frame.bytes = inner.bytes();
  frame.bit_count = inner.bit_count();
  frame.urgent = urgent;
  state.outgoing.push_back(std::move(frame));
}

void ReliableLink::on_message(std::size_t slot, const Message& msg,
                              std::vector<ReliableDelivery>& deliveries) {
  BitReader reader = msg.reader();
  const std::uint64_t kind = reader.read(1);
  SlotState& state = slots_[slot];
  if (kind == 1) {  // ACK frame: retire matching in-flight DATA frames.
    const auto count = static_cast<std::size_t>(reader.read(4));
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint64_t wire_seq = reader.read(config_.seq_bits);
      auto& outgoing = state.outgoing;
      for (auto it = outgoing.begin(); it != outgoing.end(); ++it) {
        if (it->sent && (it->seq & seq_mask_) == wire_seq) {
          outgoing.erase(it);
          break;
        }
      }
    }
    return;
  }
  // DATA frame.  Always re-ack (the previous ack may have been dropped).
  const std::uint64_t wire_seq = reader.read(config_.seq_bits);
  state.pending_acks.push_back(wire_seq);
  // De-duplicate: map the wire seq to an absolute offset from recv_floor.
  // Deltas in the upper half of the sequence space are frames from the
  // past (already acked and consumed); deltas within the 64-bit bitmap are
  // trackable; anything beyond is impossible with a sane window but is
  // treated as a duplicate rather than corrupting the bitmap.
  const std::uint64_t delta =
      (wire_seq - (state.recv_floor & seq_mask_)) & seq_mask_;
  const std::uint64_t half = 1ULL << (config_.seq_bits - 1);
  if (delta >= half || delta >= 64) return;
  const std::uint64_t bit = 1ULL << delta;
  if (state.recv_bitmap & bit) return;  // duplicate (retransmit or dup fault)
  state.recv_bitmap |= bit;
  while (state.recv_bitmap & 1ULL) {
    state.recv_bitmap >>= 1;
    ++state.recv_floor;
  }
  ReliableDelivery delivery;
  delivery.slot = slot;
  delivery.bit_count = reader.remaining();
  delivery.bytes.reserve((static_cast<std::size_t>(delivery.bit_count) + 7) / 8);
  for (int left = delivery.bit_count; left > 0; left -= 8) {
    const int chunk = std::min(8, left);
    delivery.bytes.push_back(static_cast<std::uint8_t>(reader.read(chunk)));
  }
  deliveries.push_back(std::move(delivery));
}

void ReliableLink::flush(NodeContext& ctx) {
  const std::uint64_t round = ctx.round();
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    SlotState& state = slots_[slot];
    const NodeId neighbor = ctx.neighbors()[static_cast<std::size_t>(slot)];
    // 1. One batched ACK frame per neighbour per round.
    if (!state.pending_acks.empty()) {
      const std::size_t count =
          std::min(state.pending_acks.size(), kMaxAcksPerFrame);
      BitWriter ack;
      ack.write(1, 1);
      ack.write(count, 4);
      for (std::size_t i = 0; i < count; ++i) {
        ack.write(state.pending_acks[i], config_.seq_bits);
      }
      state.pending_acks.erase(state.pending_acks.begin(),
                               state.pending_acks.begin() +
                                   static_cast<std::ptrdiff_t>(count));
      ctx.send(neighbor, ack);
    }
    if (dead_[slot]) continue;
    // 2. Timed-out retransmissions; exhausting retries kills the slot.
    bool gave_up = false;
    for (Frame& frame : state.outgoing) {
      if (!frame.sent) continue;
      if (round - frame.last_sent_round < config_.ack_timeout) continue;
      if (frame.retries >= config_.max_retries) {
        give_up_slot(slot);
        gave_up = true;
        break;
      }
      ++frame.retries;
      ctx.note_retransmission();
      wrap_and_send(ctx, slot, frame);
      frame.last_sent_round = round;
    }
    if (gave_up) continue;
    // 3. Admit queued frames: urgent frames always go; regular frames only
    // while the in-flight count is under the window.
    std::size_t in_flight = 0;
    for (const Frame& frame : state.outgoing) {
      if (frame.sent) ++in_flight;
    }
    for (Frame& frame : state.outgoing) {
      if (frame.sent) continue;
      if (!frame.urgent && in_flight >= config_.window) continue;
      frame.sent = true;
      frame.last_sent_round = round;
      wrap_and_send(ctx, slot, frame);
      ++in_flight;
    }
  }
}

std::vector<ReliableGiveUp> ReliableLink::take_give_ups() {
  return std::exchange(give_ups_, {});
}

bool ReliableLink::idle() const {
  for (const SlotState& state : slots_) {
    if (!state.outgoing.empty()) return false;
  }
  return true;
}

void ReliableLink::shutdown() {
  for (SlotState& state : slots_) {
    state.outgoing.clear();
  }
}

std::vector<ReliableGiveUp> ReliableLink::drain_outgoing() {
  std::vector<ReliableGiveUp> drained;
  for (std::size_t slot = 0; slot < slots_.size(); ++slot) {
    for (Frame& frame : slots_[slot].outgoing) {
      ReliableGiveUp record;
      record.slot = slot;
      record.bytes = std::move(frame.bytes);
      record.bit_count = frame.bit_count;
      record.sent = frame.sent;
      drained.push_back(std::move(record));
    }
    slots_[slot].outgoing.clear();
  }
  return drained;
}

void ReliableLink::save_state(CheckpointWriter& out) const {
  out.u64(slots_.size());
  for (const SlotState& state : slots_) {
    out.u64(state.outgoing.size());
    for (const Frame& frame : state.outgoing) {
      out.u64(frame.seq);
      out.blob(frame.bytes);
      out.i64(frame.bit_count);
      out.u64(frame.last_sent_round);
      out.u64(frame.retries);
      out.boolean(frame.sent);
      out.boolean(frame.urgent);
    }
    out.u64(state.next_seq);
    out.u64(state.recv_floor);
    out.u64(state.recv_bitmap);
    out.u64(state.pending_acks.size());
    for (std::uint64_t seq : state.pending_acks) out.u64(seq);
  }
  for (bool dead : dead_) out.boolean(dead);
  out.u64(give_ups_.size());
  for (const ReliableGiveUp& give_up : give_ups_) {
    out.u64(give_up.slot);
    out.blob(give_up.bytes);
    out.i64(give_up.bit_count);
    out.boolean(give_up.sent);
  }
}

void ReliableLink::load_state(CheckpointReader& in) {
  const std::uint64_t slot_count = in.u64();
  if (slot_count != slots_.size()) {
    throw CheckpointError("reliable link slot count mismatch");
  }
  for (SlotState& state : slots_) {
    state.outgoing.clear();
    const std::uint64_t frames = in.u64();
    for (std::uint64_t i = 0; i < frames; ++i) {
      Frame frame;
      frame.seq = in.u64();
      frame.bytes = in.blob();
      frame.bit_count = static_cast<int>(in.i64());
      frame.last_sent_round = in.u64();
      frame.retries = in.u64();
      frame.sent = in.boolean();
      frame.urgent = in.boolean();
      state.outgoing.push_back(std::move(frame));
    }
    state.next_seq = in.u64();
    state.recv_floor = in.u64();
    state.recv_bitmap = in.u64();
    state.pending_acks.clear();
    const std::uint64_t acks = in.u64();
    for (std::uint64_t i = 0; i < acks; ++i) {
      state.pending_acks.push_back(in.u64());
    }
  }
  for (std::size_t slot = 0; slot < dead_.size(); ++slot) {
    dead_[slot] = in.boolean();
  }
  give_ups_.clear();
  const std::uint64_t give_ups = in.u64();
  for (std::uint64_t i = 0; i < give_ups; ++i) {
    ReliableGiveUp give_up;
    give_up.slot = static_cast<std::size_t>(in.u64());
    give_up.bytes = in.blob();
    give_up.bit_count = static_cast<int>(in.i64());
    give_up.sent = in.boolean();
    give_ups_.push_back(std::move(give_up));
  }
}

void ReliableLink::wrap_and_send(NodeContext& ctx, std::size_t slot,
                                 Frame& frame) {
  BitWriter data;
  data.write(0, 1);
  data.write(frame.seq & seq_mask_, config_.seq_bits);
  append_bits(data, frame.bytes, frame.bit_count);
  ctx.send(ctx.neighbors()[slot], data);
}

void ReliableLink::give_up_slot(std::size_t slot) {
  dead_[slot] = true;
  SlotState& state = slots_[slot];
  for (Frame& frame : state.outgoing) {
    ReliableGiveUp give_up;
    give_up.slot = slot;
    give_up.bytes = std::move(frame.bytes);
    give_up.bit_count = frame.bit_count;
    give_up.sent = frame.sent;
    give_ups_.push_back(std::move(give_up));
  }
  state.outgoing.clear();
}

}  // namespace rwbc
