// Parameter selection for the distributed RWBC algorithm.
//
// Theorem 1: truncating walks at l = O(n) steps leaves at most an epsilon
// fraction of walk mass unaccounted (multiplicative (1 - epsilon) bias).
// Theorem 3: K = O(log n) walks per source concentrate every visit count
// w.h.p.  The theorems fix the orders; the constants are the knobs below,
// and experiments E2/E3 chart the accuracy each choice buys.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace rwbc {

/// The (l, K) pair used by a run.
struct RwbcParams {
  std::size_t cutoff = 0;           ///< l: walk-length cap (Theorem 1)
  std::size_t walks_per_source = 0; ///< K: walks per node (Theorem 3)
};

/// Theorem 1's l = O(n): ceil(multiplier * n), at least 1.
std::size_t default_cutoff(NodeId n, double multiplier = 2.0);

/// Theorem 3's K = O(log n): ceil(multiplier * log2 n), at least 1.
std::size_t default_walks_per_source(NodeId n, double multiplier = 4.0);

/// Both defaults together.
RwbcParams default_params(NodeId n, double cutoff_multiplier = 2.0,
                          double walks_multiplier = 4.0);

}  // namespace rwbc
