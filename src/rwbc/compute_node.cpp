#include "rwbc/compute_node.hpp"

#include <algorithm>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "congest/checkpoint.hpp"

namespace rwbc {

ComputeNode::ComputeNode(ComputeNodeConfig config)
    : config_(std::move(config)) {
  RWBC_REQUIRE(config_.walks_per_source >= 1, "compute phase needs K >= 1");
}

void ComputeNode::on_start(NodeContext& ctx) {
  const auto n = static_cast<std::size_t>(ctx.node_count());
  RWBC_REQUIRE(config_.visits.size() == n,
               "compute phase needs one visit count per source");
  RWBC_REQUIRE(config_.neighbor_weights.empty() ||
                   config_.neighbor_weights.size() ==
                       static_cast<std::size_t>(ctx.degree()),
               "need one weight per neighbour");
  id_bits_ = bits_for(static_cast<std::uint64_t>(ctx.node_count()));
  // A single walk contributes at most l + 1 occupancies to one node, so
  // xi_v^s <= K * (l + 1): O(log n) bits as Theorem 4 requires.
  count_bits_ = bits_for(config_.walks_per_source * (config_.cutoff + 1) + 1);
  if (config_.counts_per_message == 0) {
    // Auto-fit: as many counts as the per-edge budget holds per round.
    std::uint64_t payload_budget = ctx.bit_budget();
    if (config_.reliable_transport) {
      // The wrapper adds [kind+seq+frame] per DATA frame and up to `window`
      // DATA frames plus one ack frame can share an edge in one round; keep
      // the worst round under the (pipeline-widened) budget.
      const auto window =
          static_cast<std::uint64_t>(config_.reliable_link.window);
      const auto seq_bits =
          static_cast<std::uint64_t>(config_.reliable_link.seq_bits);
      const std::uint64_t frame_header =
          1 + seq_bits + static_cast<std::uint64_t>(id_bits_) + 1;
      const std::uint64_t ack_reserve = 1 + 4 + window * seq_bits;
      const std::uint64_t per_frame =
          payload_budget > ack_reserve
              ? (payload_budget - ack_reserve) / std::max<std::uint64_t>(window, 1)
              : 0;
      payload_budget = per_frame > frame_header ? per_frame - frame_header : 0;
    }
    batch_size_ = std::max<std::uint64_t>(
        1, payload_budget / static_cast<std::uint64_t>(count_bits_));
  } else {
    batch_size_ = config_.counts_per_message;
  }
  strength_bits_ = config_.strength_bits > 0 ? config_.strength_bits
                                             : id_bits_;
  const std::uint64_t own_strength =
      config_.strength > 0 ? config_.strength
                           : static_cast<std::uint64_t>(ctx.degree());
  config_.strength = own_strength;
  const double own_scale =
      1.0 / (static_cast<double>(config_.walks_per_source) *
             static_cast<double>(own_strength));
  scaled_visits_.resize(n);
  for (std::size_t s = 0; s < n; ++s) {
    scaled_visits_[s] = static_cast<double>(config_.visits[s]) * own_scale;
  }
  neighbor_strengths_.assign(static_cast<std::size_t>(ctx.degree()), 0);
  stride_ = n;
  if (config_.compute_score) {
    neighbor_scaled_.assign(static_cast<std::size_t>(ctx.degree()) * n, 0.0);
  }
  if (config_.reliable_transport) {
    const auto degree = static_cast<std::size_t>(ctx.degree());
    link_ = std::make_unique<ReliableLink>(config_.reliable_link, degree);
    const std::uint64_t batches =
        (static_cast<std::uint64_t>(n) + batch_size_ - 1) / batch_size_;
    total_frames_ = 1 + batches;  // frame 0 = strength, frame f = batch f-1
    frame_bits_ = bits_for(total_frames_ + 1);
    next_frame_.assign(degree, 0);
    frames_received_.assign(degree, 0);
    if (config_.compute_score) {
      neighbor_raw_.assign(degree * n, 0);
    }
  }
}

namespace {

void write_u64_vector(CheckpointWriter& out,
                      const std::vector<std::uint64_t>& values) {
  out.u64(values.size());
  for (std::uint64_t value : values) out.u64(value);
}

void read_u64_vector(CheckpointReader& in, std::vector<std::uint64_t>& values,
                     const char* what) {
  if (in.u64() != values.size()) {
    throw CheckpointError(std::string("compute node ") + what +
                          " size mismatch");
  }
  for (auto& value : values) value = in.u64();
}

void write_f64_vector(CheckpointWriter& out, const std::vector<double>& values) {
  out.u64(values.size());
  for (double value : values) out.f64(value);
}

void read_f64_vector(CheckpointReader& in, std::vector<double>& values,
                     const char* what) {
  if (in.u64() != values.size()) {
    throw CheckpointError(std::string("compute node ") + what +
                          " size mismatch");
  }
  for (auto& value : values) value = in.f64();
}

}  // namespace

void ComputeNode::save_state(CheckpointWriter& out) const {
  write_u64_vector(out, config_.visits);
  write_f64_vector(out, scaled_visits_);
  write_u64_vector(out, neighbor_strengths_);
  write_f64_vector(out, neighbor_scaled_);  // one flat row-major table
  out.f64(betweenness_);
  out.boolean(finished_);
  out.boolean(link_ != nullptr);
  if (link_) {
    write_u64_vector(out, next_frame_);
    write_u64_vector(out, frames_received_);
    write_u64_vector(out, neighbor_raw_);
    link_->save_state(out);
  }
}

void ComputeNode::load_state(CheckpointReader& in) {
  read_u64_vector(in, config_.visits, "visit table");
  read_f64_vector(in, scaled_visits_, "scaled visits");
  read_u64_vector(in, neighbor_strengths_, "neighbor strengths");
  read_f64_vector(in, neighbor_scaled_, "neighbor_scaled table");
  betweenness_ = in.f64();
  finished_ = in.boolean();
  const bool has_link = in.boolean();
  if (has_link != (link_ != nullptr)) {
    throw CheckpointError(
        "compute node reliable-transport mismatch with snapshot");
  }
  if (link_) {
    read_u64_vector(in, next_frame_, "next_frame");
    read_u64_vector(in, frames_received_, "frames_received");
    read_u64_vector(in, neighbor_raw_, "neighbor_raw table");
    link_->load_state(in);
  }
}

void ComputeNode::on_round(NodeContext& ctx, std::span<const Message> inbox) {
  if (link_) {
    on_round_reliable(ctx, inbox);
    return;
  }
  const auto n = static_cast<std::uint64_t>(ctx.node_count());
  const auto neighbors = ctx.neighbors();
  auto slot_of = [&](NodeId from) {
    const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), from);
    RWBC_ASSERT(it != neighbors.end() && *it == from,
                "message from a non-neighbor");
    return static_cast<std::size_t>(it - neighbors.begin());
  };

  const std::uint64_t round = ctx.round();
  const auto nn = static_cast<std::size_t>(n);
  for (const Message& msg : inbox) {
    auto reader = msg.reader();
    const std::size_t slot = slot_of(msg.from);
    if (round == 1) {
      neighbor_strengths_[slot] = reader.read(strength_bits_);
    } else {
      // Batch sent in round round-1: sources [batch_begin, batch_end).
      const std::size_t begin = batch_begin(round - 1);
      const std::size_t end =
          std::min(nn, begin + static_cast<std::size_t>(batch_size_));
      for (std::size_t source = begin; source < end; ++source) {
        const std::uint64_t raw = reader.read(count_bits_);
        // A strength of 0 means round 1's message was lost to fault
        // injection; leave the scaled count at 0 rather than divide by it.
        if (config_.compute_score && neighbor_strengths_[slot] > 0) {
          neighbor_scaled_[slot * stride_ + source] =
              static_cast<double>(raw) /
              (static_cast<double>(config_.walks_per_source) *
               static_cast<double>(neighbor_strengths_[slot]));
        }
      }
    }
  }

  if (round == 0) {
    BitWriter strength_msg;
    strength_msg.write(config_.strength, strength_bits_);
    for (NodeId nb : neighbors) ctx.send(nb, strength_msg);
  } else if (batch_begin(round) < nn) {
    const std::size_t begin = batch_begin(round);
    const std::size_t end =
        std::min(nn, begin + static_cast<std::size_t>(batch_size_));
    BitWriter count_msg;
    for (std::size_t source = begin; source < end; ++source) {
      count_msg.write(config_.visits[source], count_bits_);
    }
    for (NodeId nb : neighbors) ctx.send(nb, count_msg);
  } else {
    // The last batch arrived this round; finish locally.
    finish(ctx);
    ctx.halt();
  }
}

void ComputeNode::on_round_reliable(NodeContext& ctx,
                                    std::span<const Message> inbox) {
  const auto degree = static_cast<std::size_t>(ctx.degree());
  const auto neighbors = ctx.neighbors();
  auto slot_of = [&](NodeId from) {
    const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), from);
    RWBC_ASSERT(it != neighbors.end() && *it == from,
                "message from a non-neighbor");
    return static_cast<std::size_t>(it - neighbors.begin());
  };

  std::vector<ReliableDelivery> deliveries;
  for (const Message& msg : inbox) {
    link_->on_message(slot_of(msg.from), msg, deliveries);
  }
  for (const ReliableDelivery& delivery : deliveries) {
    BitReader reader(delivery.bytes, delivery.bit_count);
    handle_frame(delivery.slot, reader);
  }
  // A give-up marks its slot dead; the frames themselves are deliberately
  // abandoned (a crashed neighbour has no use for our counts).
  link_->take_give_ups();

  if (!finished_) {
    // Stream frames through each live slot's window.
    for (std::size_t slot = 0; slot < degree; ++slot) {
      while (!link_->slot_dead(slot) && next_frame_[slot] < total_frames_ &&
             link_->data_capacity(slot) > 0) {
        link_->send(slot, encode_frame(next_frame_[slot]));
        ++next_frame_[slot];
      }
    }
    // Done when every live slot has swapped all frames both ways (idle()
    // covers acks on our side); a dead slot's counts are lost by design.
    bool complete = link_->idle();
    for (std::size_t slot = 0; slot < degree && complete; ++slot) {
      if (link_->slot_dead(slot)) continue;
      complete = next_frame_[slot] == total_frames_ &&
                 frames_received_[slot] == total_frames_;
    }
    const bool deadline_hit = config_.deadline_rounds > 0 &&
                              ctx.round() >= config_.deadline_rounds;
    if (complete || deadline_hit) {
      if (deadline_hit) link_->shutdown();
      if (config_.compute_score) {
        // Scale the raw counts now that every strength that will ever
        // arrive has arrived (an unseen strength leaves zeros behind).
        const std::size_t n = config_.visits.size();
        for (std::size_t slot = 0; slot < degree; ++slot) {
          if (neighbor_strengths_[slot] == 0) continue;
          const double denom =
              static_cast<double>(config_.walks_per_source) *
              static_cast<double>(neighbor_strengths_[slot]);
          for (std::size_t source = 0; source < n; ++source) {
            neighbor_scaled_[slot * stride_ + source] =
                static_cast<double>(neighbor_raw_[slot * stride_ + source]) /
                denom;
          }
        }
      }
      finish(ctx);
    }
  }
  link_->flush(ctx);
  if (finished_ && link_->idle()) ctx.halt();
}

void ComputeNode::handle_frame(std::size_t slot, BitReader& reader) {
  const std::uint64_t frame = reader.read(frame_bits_);
  if (frame == 0) {
    neighbor_strengths_[slot] = reader.read(strength_bits_);
  } else {
    const std::size_t begin =
        static_cast<std::size_t>((frame - 1) * batch_size_);
    const std::size_t end = std::min(
        config_.visits.size(), begin + static_cast<std::size_t>(batch_size_));
    for (std::size_t source = begin; source < end; ++source) {
      const std::uint64_t raw = reader.read(count_bits_);
      if (config_.compute_score) neighbor_raw_[slot * stride_ + source] = raw;
    }
  }
  ++frames_received_[slot];
}

BitWriter ComputeNode::encode_frame(std::uint64_t frame) const {
  BitWriter writer;
  writer.write(frame, frame_bits_);
  if (frame == 0) {
    writer.write(config_.strength, strength_bits_);
  } else {
    const std::size_t begin =
        static_cast<std::size_t>((frame - 1) * batch_size_);
    const std::size_t end = std::min(
        config_.visits.size(), begin + static_cast<std::size_t>(batch_size_));
    for (std::size_t source = begin; source < end; ++source) {
      writer.write(config_.visits[source], count_bits_);
    }
  }
  return writer;
}

void ComputeNode::finish(NodeContext& ctx) {
  if (config_.compute_score) {
    const auto n = static_cast<std::size_t>(ctx.node_count());
    const auto own = static_cast<std::size_t>(ctx.id());
    std::vector<double> diffs(n - 1);
    double throughflow = 0.0;
    for (std::size_t slot = 0;
         slot < static_cast<std::size_t>(ctx.degree()); ++slot) {
      const double* row = neighbor_scaled_.data() + slot * stride_;
      std::size_t c = 0;
      for (std::size_t s = 0; s < n; ++s) {
        if (s == own) continue;
        diffs[c++] = scaled_visits_[s] - row[s];
      }
      std::sort(diffs.begin(), diffs.end());
      double pair_sum = 0.0;
      const double count = static_cast<double>(c);
      for (std::size_t k = 0; k < c; ++k) {
        pair_sum += (2.0 * static_cast<double>(k) - (count - 1.0)) * diffs[k];
      }
      const double weight = config_.neighbor_weights.empty()
                                ? 1.0
                                : config_.neighbor_weights[slot];
      throughflow += weight * pair_sum;
    }
    const double nn = static_cast<double>(ctx.node_count());
    betweenness_ =
        (0.5 * throughflow + (nn - 1.0)) / (0.5 * nn * (nn - 1.0));
  }
  finished_ = true;
}

}  // namespace rwbc
