#include "rwbc/distributed_spbc.hpp"

#include <algorithm>
#include <deque>
#include <memory>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "congest/checkpoint.hpp"
#include "graph/properties.hpp"

namespace rwbc {

namespace {

constexpr int kMantissaBits = 22;  // the (1 +/- eps) precision of [5]
constexpr int kExponentBits = 8;
constexpr int kFloatBits = kMantissaBits + kExponentBits;

void check_size(std::uint64_t stored, std::size_t expected, const char* what) {
  if (stored != expected) {
    throw CheckpointError(std::string("spbc node ") + what + " size mismatch");
  }
}

/// Phase A: all-sources BFS with path counts, as a self-stabilising
/// dataflow — (dist, sigma) updates re-broadcast on improvement until the
/// network quiesces at the exact BFS values.
class SpbcForwardNode final : public NodeProcess {
 public:
  explicit SpbcForwardNode(std::size_t updates_per_edge)
      : updates_per_edge_(updates_per_edge) {}

  void on_start(NodeContext& ctx) override {
    const auto n = static_cast<std::size_t>(ctx.node_count());
    const auto degree = static_cast<std::size_t>(ctx.degree());
    id_bits_ = bits_for(static_cast<std::uint64_t>(ctx.node_count()));
    // Self-limit the per-edge update count to the bit budget.
    const auto message_bits =
        static_cast<std::uint64_t>(2 * id_bits_ + kFloatBits);
    updates_per_edge_ = std::max<std::size_t>(
        1, std::min<std::uint64_t>(updates_per_edge_,
                                   ctx.bit_budget() / message_bits));
    dist_.assign(n, -1);
    sigma_.assign(n, 0.0);
    neighbor_dist_.assign(degree, std::vector<NodeId>(n, -1));
    neighbor_sigma_.assign(degree, std::vector<double>(n, 0.0));
    dirty_.assign(degree, std::vector<bool>(n, false));
    pending_.resize(degree);
    // This node is the source of its own BFS.
    const auto self = static_cast<std::size_t>(ctx.id());
    dist_[self] = 0;
    sigma_[self] = 1.0;
    mark_dirty(ctx.id(), degree);
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    const auto neighbors = ctx.neighbors();
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      const auto source = static_cast<std::size_t>(reader.read(id_bits_));
      const auto d = static_cast<NodeId>(reader.read(id_bits_));
      const double sigma =
          decode_approx_float(reader.read(kFloatBits), kMantissaBits,
                              kExponentBits);
      const std::size_t slot = slot_of(neighbors, msg.from);
      neighbor_dist_[slot][source] = d;
      neighbor_sigma_[slot][source] = sigma;
      recompute(ctx, source);
    }
    // Drain pending updates under the per-edge cap.
    bool any_pending = false;
    for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
      std::size_t sent = 0;
      while (!pending_[slot].empty() && sent < updates_per_edge_) {
        const std::size_t source = pending_[slot].front();
        pending_[slot].pop_front();
        dirty_[slot][source] = false;
        BitWriter w;
        w.write(source, id_bits_);
        w.write(static_cast<std::uint64_t>(dist_[source]), id_bits_);
        w.write(encode_approx_float(sigma_[source], kMantissaBits,
                                    kExponentBits),
                kFloatBits);
        ctx.send(neighbors[slot], w);
        ++sent;
      }
      any_pending = any_pending || !pending_[slot].empty();
    }
    if (!any_pending) ctx.halt();  // woken again by arrivals
  }

  const std::vector<NodeId>& dist() const { return dist_; }
  const std::vector<double>& sigma() const { return sigma_; }
  const std::vector<std::vector<NodeId>>& neighbor_dist() const {
    return neighbor_dist_;
  }
  const std::vector<std::vector<double>>& neighbor_sigma() const {
    return neighbor_sigma_;
  }

  void save_state(CheckpointWriter& out) const override {
    out.u64(dist_.size());
    for (NodeId d : dist_) out.i64(d);
    for (double s : sigma_) out.f64(s);
    out.u64(neighbor_dist_.size());
    for (std::size_t slot = 0; slot < neighbor_dist_.size(); ++slot) {
      for (NodeId d : neighbor_dist_[slot]) out.i64(d);
      for (double s : neighbor_sigma_[slot]) out.f64(s);
      for (bool dirty : dirty_[slot]) out.boolean(dirty);
      out.u64(pending_[slot].size());
      for (std::size_t source : pending_[slot]) out.u64(source);
    }
  }

  void load_state(CheckpointReader& in) override {
    check_size(in.u64(), dist_.size(), "dist");
    for (auto& d : dist_) d = static_cast<NodeId>(in.i64());
    for (auto& s : sigma_) s = in.f64();
    check_size(in.u64(), neighbor_dist_.size(), "neighbor table");
    for (std::size_t slot = 0; slot < neighbor_dist_.size(); ++slot) {
      for (auto& d : neighbor_dist_[slot]) d = static_cast<NodeId>(in.i64());
      for (auto& s : neighbor_sigma_[slot]) s = in.f64();
      for (std::size_t i = 0; i < dirty_[slot].size(); ++i) {
        dirty_[slot][i] = in.boolean();
      }
      pending_[slot].clear();
      const std::uint64_t queued = in.u64();
      for (std::uint64_t i = 0; i < queued; ++i) {
        pending_[slot].push_back(static_cast<std::size_t>(in.u64()));
      }
    }
  }

 private:
  static std::size_t slot_of(std::span<const NodeId> neighbors, NodeId from) {
    const auto it = std::lower_bound(neighbors.begin(), neighbors.end(), from);
    RWBC_ASSERT(it != neighbors.end() && *it == from, "unknown sender");
    return static_cast<std::size_t>(it - neighbors.begin());
  }

  void mark_dirty(NodeId source, std::size_t degree) {
    for (std::size_t slot = 0; slot < degree; ++slot) {
      if (!dirty_[slot][static_cast<std::size_t>(source)]) {
        dirty_[slot][static_cast<std::size_t>(source)] = true;
        pending_[slot].push_back(static_cast<std::size_t>(source));
      }
    }
  }

  void recompute(NodeContext& ctx, std::size_t source) {
    if (static_cast<NodeId>(source) == ctx.id()) return;  // fixed (0, 1)
    NodeId best = -1;
    for (const auto& per_slot : neighbor_dist_) {
      const NodeId d = per_slot[source];
      if (d >= 0 && (best < 0 || d < best)) best = d;
    }
    if (best < 0) return;
    const NodeId new_dist = best + 1;
    double new_sigma = 0.0;
    for (std::size_t slot = 0; slot < neighbor_dist_.size(); ++slot) {
      if (neighbor_dist_[slot][source] == best) {
        new_sigma += neighbor_sigma_[slot][source];
      }
    }
    if (new_dist != dist_[source] || new_sigma != sigma_[source]) {
      dist_[source] = new_dist;
      sigma_[source] = new_sigma;
      mark_dirty(static_cast<NodeId>(source), neighbor_dist_.size());
    }
  }

  std::size_t updates_per_edge_;
  int id_bits_ = 0;
  std::vector<NodeId> dist_;
  std::vector<double> sigma_;
  std::vector<std::vector<NodeId>> neighbor_dist_;
  std::vector<std::vector<double>> neighbor_sigma_;
  std::vector<std::vector<bool>> dirty_;
  std::vector<std::deque<std::size_t>> pending_;
};

/// Phase B: dependency accumulation — a pure dataflow from BFS leaves
/// toward each source, pipelined across all sources with queueing.
class SpbcBackwardNode final : public NodeProcess {
 public:
  struct Config {
    std::vector<NodeId> dist;                        // per source
    std::vector<double> sigma;                       // per source
    std::vector<std::vector<NodeId>> neighbor_dist;  // [slot][source]
    std::vector<std::vector<double>> neighbor_sigma;
    std::size_t updates_per_edge = 2;
  };

  explicit SpbcBackwardNode(Config config) : config_(std::move(config)) {}

  void on_start(NodeContext& ctx) override {
    const auto n = static_cast<std::size_t>(ctx.node_count());
    const auto degree = static_cast<std::size_t>(ctx.degree());
    id_bits_ = bits_for(static_cast<std::uint64_t>(ctx.node_count()));
    const auto message_bits =
        static_cast<std::uint64_t>(id_bits_ + kFloatBits);
    config_.updates_per_edge = std::max<std::size_t>(
        1, std::min<std::uint64_t>(config_.updates_per_edge,
                                   ctx.bit_budget() / message_bits));
    delta_.assign(n, 0.0);
    waiting_.assign(n, 0);
    pending_.resize(degree);
    // Count successors per source; sources with none are ready at once.
    for (std::size_t s = 0; s < n; ++s) {
      if (config_.dist[s] < 0) continue;  // unreachable (connected: none)
      std::size_t successors = 0;
      for (std::size_t slot = 0; slot < degree; ++slot) {
        if (config_.neighbor_dist[slot][s] == config_.dist[s] + 1) {
          ++successors;
        }
      }
      waiting_[s] = successors;
      if (successors == 0) emit(ctx, s);
    }
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    const auto neighbors = ctx.neighbors();
    for (const Message& msg : inbox) {
      auto reader = msg.reader();
      const auto source = static_cast<std::size_t>(reader.read(id_bits_));
      const double contribution = decode_approx_float(
          reader.read(kFloatBits), kMantissaBits, kExponentBits);
      delta_[source] += contribution;
      RWBC_ASSERT(waiting_[source] > 0, "unexpected dependency message");
      if (--waiting_[source] == 0) emit(ctx, source);
    }
    bool any_pending = false;
    for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
      std::size_t sent = 0;
      while (!pending_[slot].empty() && sent < config_.updates_per_edge) {
        const auto [source, value] = pending_[slot].front();
        pending_[slot].pop_front();
        BitWriter w;
        w.write(source, id_bits_);
        w.write(encode_approx_float(value, kMantissaBits, kExponentBits),
                kFloatBits);
        ctx.send(neighbors[slot], w);
        ++sent;
      }
      any_pending = any_pending || !pending_[slot].empty();
    }
    if (!any_pending) ctx.halt();
  }

  const std::vector<double>& delta() const { return delta_; }

  /// Serializes the config arrays too: the backward phase's inputs come
  /// from the forward phase, so a resume-from-file can install nodes with
  /// correctly-shaped placeholder configs and recover the real values here
  /// instead of re-running the forward phase.
  void save_state(CheckpointWriter& out) const override {
    out.u64(config_.dist.size());
    for (NodeId d : config_.dist) out.i64(d);
    for (double s : config_.sigma) out.f64(s);
    out.u64(config_.neighbor_dist.size());
    for (std::size_t slot = 0; slot < config_.neighbor_dist.size(); ++slot) {
      for (NodeId d : config_.neighbor_dist[slot]) out.i64(d);
      for (double s : config_.neighbor_sigma[slot]) out.f64(s);
    }
    for (double d : delta_) out.f64(d);
    for (std::size_t w : waiting_) out.u64(w);
    for (const auto& queue : pending_) {
      out.u64(queue.size());
      for (const auto& [source, value] : queue) {
        out.u64(source);
        out.f64(value);
      }
    }
  }

  void load_state(CheckpointReader& in) override {
    check_size(in.u64(), config_.dist.size(), "config dist");
    for (auto& d : config_.dist) d = static_cast<NodeId>(in.i64());
    for (auto& s : config_.sigma) s = in.f64();
    check_size(in.u64(), config_.neighbor_dist.size(), "config neighbors");
    for (std::size_t slot = 0; slot < config_.neighbor_dist.size(); ++slot) {
      for (auto& d : config_.neighbor_dist[slot]) {
        d = static_cast<NodeId>(in.i64());
      }
      for (auto& s : config_.neighbor_sigma[slot]) s = in.f64();
    }
    for (auto& d : delta_) d = in.f64();
    for (auto& w : waiting_) w = static_cast<std::size_t>(in.u64());
    for (auto& queue : pending_) {
      queue.clear();
      const std::uint64_t queued = in.u64();
      for (std::uint64_t i = 0; i < queued; ++i) {
        const auto source = static_cast<std::size_t>(in.u64());
        const double value = in.f64();
        queue.push_back({source, value});
      }
    }
  }

 private:
  /// All successor contributions for `source` have arrived: forward
  /// sigma_pred / sigma_v * (1 + delta_v) to every predecessor.
  void emit(NodeContext& ctx, std::size_t source) {
    if (static_cast<NodeId>(source) == ctx.id()) return;  // the source stops
    const double share = (1.0 + delta_[source]) / config_.sigma[source];
    for (std::size_t slot = 0; slot < pending_.size(); ++slot) {
      if (config_.neighbor_dist[slot][source] == config_.dist[source] - 1) {
        pending_[slot].push_back(
            {source, config_.neighbor_sigma[slot][source] * share});
      }
    }
  }

  Config config_;
  int id_bits_ = 0;
  std::vector<double> delta_;
  std::vector<std::size_t> waiting_;
  std::vector<std::deque<std::pair<std::size_t, double>>> pending_;
};

}  // namespace

DistributedSpbcResult distributed_spbc(const Graph& g,
                                       const DistributedSpbcOptions& options) {
  const NodeId n = g.node_count();
  RWBC_REQUIRE(n >= 2, "distributed SPBC needs n >= 2");
  RWBC_REQUIRE(options.updates_per_edge_per_round >= 1,
               "need at least one update slot per edge");
  require_connected(g, "distributed SPBC");

  DistributedSpbcResult result;
  RunMetrics total_metrics;  // both phases summed; lands in report.metrics
  CongestConfig forward_congest = options.congest;
  forward_congest.checkpoint_label = "spbc-forward";
  Network forward(g, forward_congest);
  RWBC_REQUIRE(
      forward.bit_budget() >=
          static_cast<std::uint64_t>(
              2 * bits_for(static_cast<std::uint64_t>(n)) + kFloatBits),
      "SPBC updates carry 2 log n + 30 bits; raise congest.bit_floor for "
      "very small graphs");
  forward.set_all_nodes([&](NodeId) {
    return std::make_unique<SpbcForwardNode>(
        options.updates_per_edge_per_round);
  });
  result.forward_metrics = forward.run();
  total_metrics += result.forward_metrics;

  CongestConfig backward_congest = options.congest;
  backward_congest.checkpoint_label = "spbc-backward";
  Network backward(g, backward_congest);
  backward.set_all_nodes([&](NodeId v) {
    const auto& node = static_cast<const SpbcForwardNode&>(forward.node(v));
    SpbcBackwardNode::Config config;
    config.dist = node.dist();
    config.sigma = node.sigma();
    config.neighbor_dist = node.neighbor_dist();
    config.neighbor_sigma = node.neighbor_sigma();
    config.updates_per_edge = options.updates_per_edge_per_round;
    return std::make_unique<SpbcBackwardNode>(std::move(config));
  });
  result.backward_metrics = backward.run();
  total_metrics += result.backward_metrics;

  std::vector<double> scores(static_cast<std::size_t>(n), 0.0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& node = static_cast<const SpbcBackwardNode&>(backward.node(v));
    double total = 0.0;
    for (std::size_t s = 0; s < static_cast<std::size_t>(n); ++s) {
      if (s != static_cast<std::size_t>(v)) total += node.delta()[s];
    }
    scores[static_cast<std::size_t>(v)] =
        options.normalized
            ? total / (static_cast<double>(n - 1) * static_cast<double>(n - 2))
            : total;
  }
  result.report = make_run_report("spbc", std::move(scores), total_metrics,
                                  options.congest.seed);
  return result;
}

}  // namespace rwbc
