#include "rwbc/distributed_rwbc.hpp"

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "congest/checkpoint.hpp"
#include "congest/supervisor.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "congest/protocols/broadcast.hpp"
#include "congest/protocols/convergecast.hpp"
#include "congest/protocols/leader_election.hpp"
#include "graph/properties.hpp"
#include "rwbc/compute_node.hpp"
#include "rwbc/counting_node.hpp"

namespace rwbc {

namespace {

/// Shared pipeline; `wg` is null for the unweighted paper algorithm.
DistributedRwbcResult run_pipeline(const Graph& g, const WeightedGraph* wg,
                                   const DistributedRwbcOptions& options) {
  const NodeId n = g.node_count();
  RWBC_REQUIRE(n >= 2, "distributed RWBC needs n >= 2");
  require_connected(g, "distributed RWBC");

  DistributedRwbcResult result;
  RunMetrics total;  // all phases summed; lands in result.report.metrics
  std::vector<double> scores;  // per-node betweenness; moves into the report
  result.params.cutoff = options.cutoff > 0
                             ? options.cutoff
                             : default_cutoff(n, options.cutoff_multiplier);
  result.params.walks_per_source =
      options.walks_per_source > 0
          ? options.walks_per_source
          : default_walks_per_source(n, options.walks_multiplier);

  // Fault policy: the plan targets the data phases P3/P4; the setup phases
  // run fault-free (see DistributedRwbcOptions::congest).  Checkpointing
  // likewise covers only P3/P4 — setup-phase nodes do not checkpoint and
  // their phases are recomputed on resume.
  const bool faulty = options.congest.faults.any();
  CongestConfig setup_congest = options.congest;
  setup_congest.faults = FaultPlan{};
  setup_congest.checkpoint_interval = 0;
  setup_congest.checkpoint_sink = nullptr;
  setup_congest.resume_checkpoint.clear();

  // Checkpoint/resume plumbing (see DistributedRwbcOptions::Checkpointing).
  const bool snapshotting =
      !options.checkpoint.dir.empty() && options.checkpoint.interval > 0;
  std::unique_ptr<RunSupervisor> supervisor;
  if (!options.checkpoint.dir.empty()) {
    supervisor = std::make_unique<RunSupervisor>(options.checkpoint.dir,
                                                 options.checkpoint.keep);
  }
  int resume_phase = 0;  // 0 = fresh run, 3 = P3 snapshot, 4 = P4 snapshot
  std::int64_t resumed_from_round = -1;  // pipeline-local snapshot round
  std::optional<CheckpointReader> resume_reader;
  NodeId resume_leader = -1;
  NodeId resume_target = -1;
  std::uint64_t resume_walks = 0;
  std::uint64_t resume_cutoff = 0;
  RunMetrics resume_counting_metrics;
  std::uint64_t resume_died_survivors = 0;
  if (options.checkpoint.resume) {
    RWBC_REQUIRE(supervisor != nullptr,
                 "checkpoint.resume requires checkpoint.dir");
    std::optional<LoadedSnapshot> snapshot = supervisor->load_latest();
    if (!snapshot) {
      throw CheckpointError("no usable checkpoint in " +
                            options.checkpoint.dir);
    }
    resume_reader.emplace(
        open_checkpoint(snapshot->sealed, snapshot->path.string()));
    // Pipeline prologue: phase id, setup results, parameters, and (for a
    // P4 snapshot) the completed counting phase's metrics.
    const std::uint8_t phase = resume_reader->u8();
    if (phase != 3 && phase != 4) {
      throw CheckpointError("checkpoint names unknown pipeline phase " +
                            std::to_string(phase));
    }
    resume_phase = phase;
    resumed_from_round = static_cast<std::int64_t>(snapshot->round);
    resume_leader = static_cast<NodeId>(resume_reader->u32());
    resume_target = static_cast<NodeId>(resume_reader->u32());
    resume_walks = resume_reader->u64();
    resume_cutoff = resume_reader->u64();
    if (resume_phase == 4) {
      resume_counting_metrics = load_metrics(*resume_reader);
      resume_died_survivors = resume_reader->u64();
    }
  }

  // P0: leader election (the node that will draw the absorbing target).
  if (options.run_leader_election) {
    const LeaderElectionResult election = run_leader_election(
        g, setup_congest, static_cast<std::uint64_t>(n));
    result.leader = election.leader;
    result.election_metrics = election.metrics;
    total += election.metrics;
  } else {
    result.leader = 0;  // dense ids: min-id election would elect node 0
  }

  // P1: BFS spanning tree rooted at the leader.
  const BfsTreeResult bfs = run_bfs_tree(
      g, result.leader, setup_congest, static_cast<std::uint64_t>(n) + 2);
  result.bfs_metrics = bfs.metrics;
  total += bfs.metrics;
  const SpanningTree& tree = bfs.tree;

  // P2a: convergecast the tree height (paces nothing here directly, but
  // proves the root can learn it; also validates the tree end-to-end).
  {
    std::vector<std::uint64_t> depths(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      depths[static_cast<std::size_t>(v)] =
          static_cast<std::uint64_t>(tree.depth[static_cast<std::size_t>(v)]);
    }
    const ConvergecastResult height = run_convergecast(
        g, tree, depths, AggregateOp::kMax,
        bits_for(static_cast<std::uint64_t>(n)), setup_congest);
    RWBC_ASSERT(height.aggregate == static_cast<std::uint64_t>(tree.height),
                "distributed height disagrees with the assembled tree");
    result.dissemination_metrics += height.metrics;
  }

  // P2b: the leader draws the absorbing target (Alg. 1 line 2) and
  // broadcasts it.  The leader's own RNG keeps the draw node-local.
  {
    Rng leader_rng(options.congest.seed ^ 0x7a7a5eedULL, 0);
    NodeId target =
        options.forced_target >= 0
            ? options.forced_target
            : static_cast<NodeId>(
                  leader_rng.next_below(static_cast<std::uint64_t>(n)));
    RWBC_REQUIRE(target < n, "forced target out of range");
    const int id_bits = bits_for(static_cast<std::uint64_t>(n));
    const BroadcastResult bc =
        run_broadcast(g, tree, static_cast<std::uint64_t>(target), id_bits,
                      setup_congest);
    result.target = static_cast<NodeId>(bc.value);
    result.dissemination_metrics += bc.metrics;
  }
  total += result.dissemination_metrics;

  // A snapshot written by a run with a different graph, seed, or parameter
  // set would desynchronise silently; the recomputed setup exposes it.
  if (resume_phase != 0 &&
      (resume_leader != result.leader || resume_target != result.target ||
       resume_walks !=
           static_cast<std::uint64_t>(result.params.walks_per_source) ||
       resume_cutoff != static_cast<std::uint64_t>(result.params.cutoff))) {
    throw CheckpointError(
        "checkpoint disagrees with this run's recomputed setup "
        "(different graph, seed, or parameters?)");
  }

  // P3/P4 run on the possibly-faulty config; the reliable wrapper widens
  // the bit budget by its constant factor so strict enforcement still
  // meters a meaningful bound (see reliable_token.hpp, "Bit budget").
  CongestConfig data_congest = options.congest;
  if (options.reliable_transport) {
    RWBC_REQUIRE(options.reliable_bandwidth_factor >= 1,
                 "reliable_bandwidth_factor must be >= 1");
    data_congest.bandwidth_log_multiplier *=
        options.reliable_bandwidth_factor;
    data_congest.bit_floor *= options.reliable_bandwidth_factor;
  }
  // Termination backstop when faults can break exact death counting: a
  // generous multiple of the fault-free round bounds (Lemma 2: O(Kn + l)
  // for P3; n + 2 for P4), so it never fires on a healthy run.
  const std::uint64_t counting_deadline =
      faulty ? (options.fault_deadline_rounds > 0
                    ? options.fault_deadline_rounds
                    : 10 * (result.params.walks_per_source *
                                static_cast<std::uint64_t>(n) +
                            result.params.cutoff) +
                          100)
             : 0;
  const std::uint64_t computing_deadline =
      faulty ? (options.fault_deadline_rounds > 0
                    ? options.fault_deadline_rounds
                    : 20 * static_cast<std::uint64_t>(n) + 200)
             : 0;

  // The prologue written ahead of every P3/P4 snapshot; the resume path
  // above consumes it to rebuild the right phase before the network's own
  // restore runs.
  const auto write_prologue = [&result](std::uint8_t phase,
                                        CheckpointWriter& out) {
    out.u8(phase);
    out.u32(static_cast<std::uint32_t>(result.leader));
    out.u32(static_cast<std::uint32_t>(result.target));
    out.u64(static_cast<std::uint64_t>(result.params.walks_per_source));
    out.u64(static_cast<std::uint64_t>(result.params.cutoff));
  };

  // P3: Algorithm 1 — the counting phase.  Skipped entirely when resuming
  // from a P4 snapshot: its outputs (the visit counts) ride inside the
  // snapshot's ComputeNode state, and its metrics inside the prologue.
  // died_survivors feeds the RunReport's walk-conservation ledger: deaths
  // recorded at nodes that did NOT crash during P3 (a guardian's adopted
  // deaths count here; a crashed node's own counter is lost knowledge).
  std::uint64_t died_survivors = 0;
  {
    std::optional<Network> counting_net;
    if (resume_phase == 4) {
      result.counting_metrics = resume_counting_metrics;
      died_survivors = resume_died_survivors;
    } else {
      CongestConfig counting_congest = data_congest;
      counting_congest.checkpoint_label = "rwbc-counting";
      if (options.guardian_handoff) {
        // The replica channel shares the counting phase's edges; widen only
        // THIS phase's budget (P4 carries no walks, and widening it would
        // change its auto-fit packing and score summation order).
        RWBC_REQUIRE(options.guardian_bandwidth_factor >= 1,
                     "guardian_bandwidth_factor must be >= 1");
        counting_congest.bandwidth_log_multiplier *=
            options.guardian_bandwidth_factor;
        counting_congest.bit_floor *= options.guardian_bandwidth_factor;
      }
      if (snapshotting) {
        counting_congest.checkpoint_interval = options.checkpoint.interval;
        counting_congest.checkpoint_prologue = [&](CheckpointWriter& out) {
          write_prologue(3, out);
        };
        counting_congest.checkpoint_sink =
            [&](std::uint64_t round, const std::vector<std::uint8_t>& sealed) {
              supervisor->write_snapshot(round, sealed);
            };
      }
      counting_net.emplace(g, counting_congest);
      counting_net->set_all_nodes([&](NodeId v) {
        CountingNodeConfig config;
        config.target = result.target;
        config.walks_per_source = result.params.walks_per_source;
        config.cutoff = result.params.cutoff;
        config.tree_parent = tree.parent[static_cast<std::size_t>(v)];
        config.tree_children = tree.children[static_cast<std::size_t>(v)];
        config.walks_per_edge_per_round = options.walks_per_edge_per_round;
        config.length_policy = options.length_policy;
        config.coalesce_walks = options.coalesce_walks;
        config.fault_tolerant = faulty;
        config.deadline_rounds = counting_deadline;
        config.reliable_transport = options.reliable_transport;
        config.reliable_link = options.reliable_link;
        if (options.guardian_handoff) {
          config.guardian = true;
          const auto vi = static_cast<std::size_t>(v);
          config.my_depth = static_cast<std::uint64_t>(tree.depth[vi]);
          // Guardian assignment: the BFS-tree parent; the root mirrors to
          // its first (smallest-id) child.  Deterministic, degree-local,
          // and the mutual root <-> first-child pair is harmless: each
          // side's ledger covers the other independently.
          config.guardian_id = config.tree_parent >= 0
                                   ? config.tree_parent
                                   : (tree.children[vi].empty()
                                          ? NodeId{-1}
                                          : tree.children[vi].front());
          const auto neighbor_ids = g.neighbors(v);
          config.neighbor_depths.reserve(neighbor_ids.size());
          for (NodeId u : neighbor_ids) {
            config.neighbor_depths.push_back(static_cast<std::uint64_t>(
                tree.depth[static_cast<std::size_t>(u)]));
          }
          config.guardian_heartbeat = options.guardian_heartbeat;
          config.guardian_silence = options.guardian_silence;
        }
        if (wg != nullptr) {
          const auto weights = wg->neighbor_weights(v);
          config.neighbor_weights.assign(weights.begin(), weights.end());
        }
        return std::make_unique<CountingNode>(std::move(config));
      });
      if (resume_phase == 3) {
        counting_net->restore_checkpoint(*resume_reader);
      }
      result.counting_metrics = counting_net->run();
      // Sum deaths over nodes that survived P3.  crash_round <= r means the
      // node does not execute round r, so it crashed during the phase iff
      // its earliest crash round is below the executed round count.
      std::vector<std::uint64_t> crash_round(
          static_cast<std::size_t>(n),
          std::numeric_limits<std::uint64_t>::max());
      for (const CrashEvent& crash : options.congest.faults.crashes) {
        auto& scheduled = crash_round[static_cast<std::size_t>(crash.node)];
        scheduled = std::min(scheduled, crash.round);
      }
      const auto survived_p3 = [&](NodeId v) {
        return crash_round[static_cast<std::size_t>(v)] >=
               result.counting_metrics.rounds;
      };
      for (NodeId v = 0; v < n; ++v) {
        if (!survived_p3(v)) continue;
        died_survivors +=
            static_cast<const CountingNode&>(counting_net->node(v))
                .died_here();
      }
      // A node that crashed during P3 cannot testify, but its guardian's
      // mirrored ledger can.  If a survivor adopted the ward, its deaths
      // are already inside that survivor's died_here(); otherwise (the
      // crash landed too late in the phase for adoption to fire — e.g.
      // after the root had absorbed the ward's final sweep report and the
      // DONE wave was already in flight) credit the largest death count
      // any surviving guardian mirrors for it.  `deaths` is the ward's
      // absolute died_ (monotone), so max over ledgers is a sound lower
      // bound and re-anchoring duplicates cannot double-count.
      for (NodeId v = 0; v < n; ++v) {
        if (survived_p3(v)) continue;
        const auto& crashed =
            static_cast<const CountingNode&>(counting_net->node(v));
        if (crashed.finished()) {
          // The DONE wave reached the node before it crashed: every walk
          // was already dead phase-wide, so its frozen counters are final
          // testimony (and its guardian retired the ledger on farewell).
          died_survivors += crashed.died_here();
          continue;
        }
        bool adopted = false;
        std::uint64_t mirrored = 0;
        for (NodeId holder = 0; holder < n; ++holder) {
          if (!survived_p3(holder)) continue;
          const auto& guardian =
              static_cast<const CountingNode&>(counting_net->node(holder));
          if (guardian.adopted_ward(v)) {
            adopted = true;
            break;
          }
          mirrored = std::max(mirrored, guardian.mirrored_ward_deaths(v));
        }
        if (!adopted) died_survivors += mirrored;
      }
    }
    total += result.counting_metrics;

    // P4: Algorithm 2 — the computing phase, fed with P3's counts.
    CongestConfig computing_congest = data_congest;
    computing_congest.checkpoint_label = "rwbc-computing";
    if (snapshotting) {
      // Offset P4 snapshot names by P3's length so they sort after every
      // P3 snapshot (load_latest picks the lexicographically newest).
      const std::uint64_t round_offset = result.counting_metrics.rounds;
      computing_congest.checkpoint_interval = options.checkpoint.interval;
      computing_congest.checkpoint_prologue = [&](CheckpointWriter& out) {
        write_prologue(4, out);
        save_metrics(out, result.counting_metrics);
        out.u64(died_survivors);  // feeds WalkAccounting on resume-from-P4
      };
      computing_congest.checkpoint_sink =
          [&, round_offset](std::uint64_t round,
                            const std::vector<std::uint8_t>& sealed) {
            supervisor->write_snapshot(round_offset + round, sealed);
          };
    }
    Network compute_net(g, computing_congest);
    compute_net.set_all_nodes([&](NodeId v) {
      ComputeNodeConfig config;
      if (resume_phase == 4) {
        // Placeholder counts with the right shape; ComputeNode::load_state
        // restores the real ones (config.visits is serialized state).
        config.visits.assign(static_cast<std::size_t>(n), 0);
      } else {
        const auto& counter =
            static_cast<const CountingNode&>(counting_net->node(v));
        // A crashed node never sees the DONE broadcast; its partial counts
        // still feed P4 (it may crash again there — rounds are phase-local).
        RWBC_ASSERT(faulty || counter.finished(),
                    "counting phase did not finish");
        config.visits = counter.visits();
      }
      config.walks_per_source = result.params.walks_per_source;
      config.cutoff = result.params.cutoff;
      config.compute_score = options.compute_scores;
      config.counts_per_message = options.counts_per_message;
      config.reliable_transport = options.reliable_transport;
      config.reliable_link = options.reliable_link;
      config.deadline_rounds = computing_deadline;
      if (wg != nullptr) {
        config.strength = static_cast<std::uint64_t>(wg->strength(v));
        config.strength_bits = bits_for(
            static_cast<std::uint64_t>(wg->max_weight()) *
                static_cast<std::uint64_t>(n - 1) +
            1);
        const auto weights = wg->neighbor_weights(v);
        config.neighbor_weights.assign(weights.begin(), weights.end());
      }
      return std::make_unique<ComputeNode>(std::move(config));
    });
    if (resume_phase == 4) {
      compute_net.restore_checkpoint(*resume_reader);
    }
    result.computing_metrics = compute_net.run();
    total += result.computing_metrics;

    if (options.compute_scores) {
      const auto nn = static_cast<std::size_t>(n);
      scores.resize(nn);
      result.scaled_visits = DenseMatrix(nn, nn);
      for (NodeId v = 0; v < n; ++v) {
        const auto& compute =
            static_cast<const ComputeNode&>(compute_net.node(v));
        RWBC_ASSERT(faulty || compute.finished(),
                    "computing phase did not finish");
        scores[static_cast<std::size_t>(v)] = compute.betweenness();
        for (std::size_t s = 0; s < nn; ++s) {
          result.scaled_visits(static_cast<std::size_t>(v), s) =
              compute.scaled_visits()[s];
        }
      }
    }
  }
  result.report = make_run_report("rwbc", std::move(scores), total,
                                  options.congest.seed, resumed_from_round);
  // Walk conservation ledger (DESIGN.md §10): every walk born is counted
  // dead at a survivor, explicitly abandoned (metered), or lost.  lost == 0
  // under crash-only plans with guardian + reliable transport and connected
  // survivors; negative lost = duplication overcount.
  WalkAccounting& walks = result.report.walks;
  walks.enabled = true;
  walks.expected = static_cast<std::uint64_t>(n - 1) *
                   static_cast<std::uint64_t>(result.params.walks_per_source);
  walks.died = died_survivors;
  walks.adopted = result.counting_metrics.adopted_walks;
  walks.abandoned = result.counting_metrics.abandoned_walks;
  walks.lost = static_cast<std::int64_t>(walks.expected) -
               static_cast<std::int64_t>(walks.died) -
               static_cast<std::int64_t>(walks.abandoned);
  return result;
}

}  // namespace

DistributedRwbcResult distributed_rwbc(const Graph& g,
                                       const DistributedRwbcOptions& options) {
  return run_pipeline(g, nullptr, options);
}

DistributedRwbcResult distributed_rwbc(const WeightedGraph& wg,
                                       const DistributedRwbcOptions& options) {
  RWBC_REQUIRE(wg.has_integer_weights(),
               "the distributed pipeline needs positive integer weights "
               "(strengths must travel exactly in O(log n + log W) bits)");
  return run_pipeline(wg.topology(), &wg, options);
}

}  // namespace rwbc
