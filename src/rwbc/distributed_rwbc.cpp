#include "rwbc/distributed_rwbc.hpp"

#include <memory>

#include "common/error.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "congest/protocols/broadcast.hpp"
#include "congest/protocols/convergecast.hpp"
#include "congest/protocols/leader_election.hpp"
#include "graph/properties.hpp"
#include "rwbc/compute_node.hpp"
#include "rwbc/counting_node.hpp"

namespace rwbc {

namespace {

/// Shared pipeline; `wg` is null for the unweighted paper algorithm.
DistributedRwbcResult run_pipeline(const Graph& g, const WeightedGraph* wg,
                                   const DistributedRwbcOptions& options) {
  const NodeId n = g.node_count();
  RWBC_REQUIRE(n >= 2, "distributed RWBC needs n >= 2");
  require_connected(g, "distributed RWBC");

  DistributedRwbcResult result;
  result.params.cutoff = options.cutoff > 0
                             ? options.cutoff
                             : default_cutoff(n, options.cutoff_multiplier);
  result.params.walks_per_source =
      options.walks_per_source > 0
          ? options.walks_per_source
          : default_walks_per_source(n, options.walks_multiplier);

  // P0: leader election (the node that will draw the absorbing target).
  if (options.run_leader_election) {
    const LeaderElectionResult election = run_leader_election(
        g, options.congest, static_cast<std::uint64_t>(n));
    result.leader = election.leader;
    result.election_metrics = election.metrics;
    result.total += election.metrics;
  } else {
    result.leader = 0;  // dense ids: min-id election would elect node 0
  }

  // P1: BFS spanning tree rooted at the leader.
  const BfsTreeResult bfs = run_bfs_tree(
      g, result.leader, options.congest, static_cast<std::uint64_t>(n) + 2);
  result.bfs_metrics = bfs.metrics;
  result.total += bfs.metrics;
  const SpanningTree& tree = bfs.tree;

  // P2a: convergecast the tree height (paces nothing here directly, but
  // proves the root can learn it; also validates the tree end-to-end).
  {
    std::vector<std::uint64_t> depths(static_cast<std::size_t>(n));
    for (NodeId v = 0; v < n; ++v) {
      depths[static_cast<std::size_t>(v)] =
          static_cast<std::uint64_t>(tree.depth[static_cast<std::size_t>(v)]);
    }
    const ConvergecastResult height = run_convergecast(
        g, tree, depths, AggregateOp::kMax,
        bits_for(static_cast<std::uint64_t>(n)), options.congest);
    RWBC_ASSERT(height.aggregate == static_cast<std::uint64_t>(tree.height),
                "distributed height disagrees with the assembled tree");
    result.dissemination_metrics += height.metrics;
  }

  // P2b: the leader draws the absorbing target (Alg. 1 line 2) and
  // broadcasts it.  The leader's own RNG keeps the draw node-local.
  {
    Rng leader_rng(options.congest.seed ^ 0x7a7a5eedULL, 0);
    NodeId target =
        options.forced_target >= 0
            ? options.forced_target
            : static_cast<NodeId>(
                  leader_rng.next_below(static_cast<std::uint64_t>(n)));
    RWBC_REQUIRE(target < n, "forced target out of range");
    const int id_bits = bits_for(static_cast<std::uint64_t>(n));
    const BroadcastResult bc =
        run_broadcast(g, tree, static_cast<std::uint64_t>(target), id_bits,
                      options.congest);
    result.target = static_cast<NodeId>(bc.value);
    result.dissemination_metrics += bc.metrics;
  }
  result.total += result.dissemination_metrics;

  // P3: Algorithm 1 — the counting phase.
  {
    Network net(g, options.congest);
    net.set_all_nodes([&](NodeId v) {
      CountingNodeConfig config;
      config.target = result.target;
      config.walks_per_source = result.params.walks_per_source;
      config.cutoff = result.params.cutoff;
      config.tree_parent = tree.parent[static_cast<std::size_t>(v)];
      config.tree_children = tree.children[static_cast<std::size_t>(v)];
      config.walks_per_edge_per_round = options.walks_per_edge_per_round;
      config.length_policy = options.length_policy;
      if (wg != nullptr) {
        const auto weights = wg->neighbor_weights(v);
        config.neighbor_weights.assign(weights.begin(), weights.end());
      }
      return std::make_unique<CountingNode>(std::move(config));
    });
    result.counting_metrics = net.run();
    result.total += result.counting_metrics;

    // P4: Algorithm 2 — the computing phase, fed with P3's counts.
    Network compute_net(g, options.congest);
    compute_net.set_all_nodes([&](NodeId v) {
      const auto& counter = static_cast<const CountingNode&>(net.node(v));
      RWBC_ASSERT(counter.finished(), "counting phase did not finish");
      ComputeNodeConfig config;
      config.visits = counter.visits();
      config.walks_per_source = result.params.walks_per_source;
      config.cutoff = result.params.cutoff;
      config.compute_score = options.compute_scores;
      config.counts_per_message = options.counts_per_message;
      if (wg != nullptr) {
        config.strength = static_cast<std::uint64_t>(wg->strength(v));
        config.strength_bits = bits_for(
            static_cast<std::uint64_t>(wg->max_weight()) *
                static_cast<std::uint64_t>(n - 1) +
            1);
        const auto weights = wg->neighbor_weights(v);
        config.neighbor_weights.assign(weights.begin(), weights.end());
      }
      return std::make_unique<ComputeNode>(std::move(config));
    });
    result.computing_metrics = compute_net.run();
    result.total += result.computing_metrics;

    if (options.compute_scores) {
      const auto nn = static_cast<std::size_t>(n);
      result.betweenness.resize(nn);
      result.scaled_visits = DenseMatrix(nn, nn);
      for (NodeId v = 0; v < n; ++v) {
        const auto& compute =
            static_cast<const ComputeNode&>(compute_net.node(v));
        RWBC_ASSERT(compute.finished(), "computing phase did not finish");
        result.betweenness[static_cast<std::size_t>(v)] =
            compute.betweenness();
        for (std::size_t s = 0; s < nn; ++s) {
          result.scaled_visits(static_cast<std::size_t>(v), s) =
              compute.scaled_visits()[s];
        }
      }
    }
  }
  return result;
}

}  // namespace

DistributedRwbcResult distributed_rwbc(const Graph& g,
                                       const DistributedRwbcOptions& options) {
  return run_pipeline(g, nullptr, options);
}

DistributedRwbcResult distributed_rwbc(const WeightedGraph& wg,
                                       const DistributedRwbcOptions& options) {
  RWBC_REQUIRE(wg.has_integer_weights(),
               "the distributed pipeline needs positive integer weights "
               "(strengths must travel exactly in O(log n + log W) bits)");
  return run_pipeline(wg.topology(), &wg, options);
}

}  // namespace rwbc
