// The unified pipeline entry point.
//
// Five distributed pipelines (RWBC, SPBC, alpha-CFB, PageRank, the Sarma
// stitched walk) share one simulator and one set of operational knobs —
// threads, fault plans, the reliable transport, checkpoint/restore — but
// each historically exposed its own options struct, and every front end
// (the CLI, the benchmark harness, the shell drills) re-parsed and
// re-validated the shared flags itself.  PipelineSpec + run_pipeline
// collapse that: one spec selects the algorithm and carries the shared
// knobs exactly once; strip_pipeline_flags / validate_pipeline_spec are THE
// parser and validator for the shared command-line surface (--threads,
// --drop-prob, --dup-prob, --crash, --fault-seed, --reliable,
// --checkpoint-dir, --checkpoint-every, --resume, --kill-at-round) — the
// CLI, the benches, and cli_test.sh all go through them.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"
#include "rwbc/report.hpp"
#include "rwbc/sarma_walk.hpp"

namespace rwbc {

/// One pipeline run: which algorithm, its per-algorithm options, and the
/// shared operational knobs.  The shared fields are the single source of
/// truth — run_pipeline overlays them onto the selected options struct's
/// CongestConfig, overwriting whatever the sub-struct carried, so a spec
/// can never run with a seed or fault plan that disagrees with its own
/// shared fields.
struct PipelineSpec {
  /// "rwbc" | "spbc" | "alpha-cfb" | "pagerank" | "sarma-walk".
  std::string algorithm = "rwbc";

  // Per-algorithm options.  Only the struct matching `algorithm` is read;
  // set expert knobs (walks_per_source, length_policy, alpha, ...) here.
  // The rwbc coalescing/guardian knobs are parseable too (rwbc only):
  // [--walks-per-edge N] -> rwbc.walks_per_edge_per_round,
  // [--no-coalesce]      -> rwbc.coalesce_walks = false (legacy wire),
  // [--guardian]         -> rwbc.guardian_handoff = true (crash-lossless
  //                         counting via walk mirroring, DESIGN.md §10),
  // [--no-guardian]      -> rwbc.guardian_handoff = false.
  // The congest sub-configs inside these are overlaid by the shared fields
  // below before the run.
  DistributedRwbcOptions rwbc;
  DistributedSpbcOptions spbc;
  DistributedAlphaCfbOptions alpha_cfb;
  DistributedPagerankOptions pagerank;
  SarmaWalkOptions sarma;
  /// Sarma walk only: the walk's source node.
  NodeId walk_source = 0;

  // --- shared operational knobs (the CLI flag surface) ------------------
  /// Simulator threads (0 = serial, N = pool, -1 = hardware); wall-clock
  /// only, never output.  [--threads]
  int threads = 0;
  /// Global simulator seed (per-node streams are Rng(seed, v)).
  std::uint64_t seed = 1;
  /// Per-edge bit-budget floor; 0 keeps the selected options struct's
  /// value.  (The CLI uses 128 for rwbc runs so big K fits, 64 for spbc.)
  std::uint64_t bit_floor = 0;
  /// Deterministic fault schedule for the data phases.  [--drop-prob,
  /// --dup-prob, --crash, --fault-seed]
  FaultPlan faults;
  /// Self-healing ack/retransmit transport (rwbc only).  [--reliable]
  bool reliable_transport = false;
  /// Checkpoint/restore (rwbc only).  [--checkpoint-dir,
  /// --checkpoint-every, --resume]
  std::string checkpoint_dir;
  std::uint64_t checkpoint_every = 0;
  bool resume = false;
  /// Crash drill: SIGKILL the process after this many cumulative simulator
  /// rounds (0 = never).  Counted across all phases via a round observer
  /// installed by run_pipeline.  [--kill-at-round]
  std::uint64_t kill_at_round = 0;
  /// Optional per-round observer, invoked in addition to the kill drill.
  std::function<void(const RoundSnapshot&)> round_observer;

  // --- optional full-result receivers -----------------------------------
  // The RunReport carries the common fields; pipeline-specific outputs
  // (the rwbc target and (K, l), the Sarma destination, ...) are exposed
  // by setting the receiver matching `algorithm`, filled after the run.
  DistributedRwbcResult* rwbc_result = nullptr;
  DistributedSpbcResult* spbc_result = nullptr;
  DistributedAlphaCfbResult* alpha_cfb_result = nullptr;
  DistributedPagerankResult* pagerank_result = nullptr;
  SarmaWalkResult* sarma_result = nullptr;
};

/// Dispatches to the selected pipeline and returns its unified report.
/// Throws rwbc::Error on an unknown algorithm or a spec that fails
/// validate_pipeline_spec.
RunReport run_pipeline(const Graph& g, const PipelineSpec& spec);

/// Weighted overload — only algorithm "rwbc" supports weighted graphs
/// (throws rwbc::Error otherwise).
RunReport run_pipeline(const WeightedGraph& wg, const PipelineSpec& spec);

/// THE parser for the shared flag surface: scans `args` (an argv vector,
/// program name at index 0), consumes every shared flag it recognises
/// (erasing flag + value), and fills the spec's shared fields.  Unknown
/// arguments are left in place for the caller (subcommands, positionals,
/// tool-specific flags).  Throws rwbc::Error on a missing or malformed
/// value, with single-line messages suitable for `error: ...` output.
void strip_pipeline_flags(std::vector<char*>& args, PipelineSpec& spec);

/// THE cross-flag validator: --resume and --checkpoint-every both require
/// --checkpoint-dir.  Throws rwbc::Error; called by run_pipeline too, so
/// programmatic specs get the same checks as parsed ones.
void validate_pipeline_spec(const PipelineSpec& spec);

/// Simulator threads from the RWBC_THREADS environment variable (0 =
/// serial, N = pool of N, -1 = hardware); the benchmark harness's
/// equivalent of --threads, kept here so the env convention lives with the
/// flag it mirrors.
int pipeline_threads_from_env();

}  // namespace rwbc
