// Wire format of Algorithm 1's messages.
//
// A walk token is (source id, remaining moves): ceil(log2 n) +
// ceil(log2(l + 1)) bits = O(log n), since l = O(n).  Control messages for
// the termination-detection sweeps ride the same edges, so every payload
// starts with a 2-bit type tag; the per-edge bit budget (8 * ceil(log2 n)
// by default) accommodates one walk plus one control message per round,
// which is all the algorithm ever sends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Message kinds of the counting phase.  The guardian-handoff kinds (4, 5)
/// need a 3-bit type tag; a run without guardian replication keeps the
/// legacy 2-bit tag, so its wire bytes are unchanged.
enum class CountingMsg : std::uint64_t {
  kWalk = 0,          ///< a walk token: (source, remaining)
  kSweepRequest = 1,  ///< root -> leaves: report your subtree's death count
  kSweepReport = 2,   ///< leaves -> root: aggregated death count
  kDone = 3,          ///< root -> leaves: all walks dead, halt
  kReplicaDelta = 4,  ///< ward -> guardian: held-walk ledger delta
  kReparent = 5,      ///< orphaned child -> new parent: adopt my sweep reports
  kPing = 6,          ///< guardian -> silent ward: probe liveness via the link
};

/// A random walk in flight or held by a node.
struct WalkToken {
  NodeId source = 0;
  std::uint64_t remaining = 0;  ///< moves left before truncation
};

/// Struct-of-arrays pool of walks held at a node.  The counting phase's
/// inner loop touches one field of every held walk per pass (draw committed
/// slots, bucket by slot, decrement lengths), so parallel arrays keep each
/// pass a dense sequential scan instead of striding over 24-byte structs.
/// Indices into the pool are stable within a round; the pool is rebuilt
/// (double-buffered via swap) when survivors are carried to the next round.
class WalkTokenPool {
 public:
  std::size_t size() const { return source_.size(); }
  bool empty() const { return source_.empty(); }

  void clear() {
    source_.clear();
    remaining_.clear();
    committed_.clear();
  }

  void reserve(std::size_t capacity) {
    source_.reserve(capacity);
    remaining_.reserve(capacity);
    committed_.reserve(capacity);
  }

  /// Appends a walk; `committed` is its drawn next-hop slot (-1 = none).
  void push(NodeId source, std::uint64_t remaining,
            std::int32_t committed = -1) {
    source_.push_back(source);
    remaining_.push_back(remaining);
    committed_.push_back(committed);
  }

  NodeId source(std::size_t i) const { return source_[i]; }
  std::uint64_t remaining(std::size_t i) const { return remaining_[i]; }
  std::int32_t committed(std::size_t i) const { return committed_[i]; }
  void set_committed(std::size_t i, std::int32_t slot) {
    committed_[i] = slot;
  }

  void swap(WalkTokenPool& other) {
    source_.swap(other.source_);
    remaining_.swap(other.remaining_);
    committed_.swap(other.committed_);
  }

 private:
  std::vector<NodeId> source_;
  std::vector<std::uint64_t> remaining_;
  std::vector<std::int32_t> committed_;
};

/// Field widths for a network of n nodes and cutoff l.
struct CountingWire {
  int type_bits = 2;
  int id_bits = 0;
  int length_bits = 0;
  int count_bits = 0;  ///< for sweep reports: bits of (n-1)*K + 1

  CountingWire(NodeId n, std::uint64_t cutoff, std::uint64_t walks_per_source,
               int type_bits_in = 2)
      : type_bits(type_bits_in),
        id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff + 1)),
        count_bits(bits_for(static_cast<std::uint64_t>(n) * walks_per_source +
                            1)) {}

  /// Encodes a walk token.
  BitWriter encode_walk(const WalkToken& walk) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
    w.write(static_cast<std::uint64_t>(walk.source), id_bits);
    w.write(walk.remaining, length_bits);
    return w;
  }

  /// Encodes a sweep request (type tag only).
  BitWriter encode_sweep_request() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepRequest), type_bits);
    return w;
  }

  /// Encodes a sweep report carrying a subtree death count.  Duplication
  /// faults without the reliable layer's dedup can push a subtree's total
  /// past the fault-free bound the field was sized for; the report
  /// saturates at field capacity — still >= the root's expected total, so
  /// DONE detection fires, and the overshoot itself is surfaced by the
  /// RunReport's negative `lost` residual.
  BitWriter encode_sweep_report(std::uint64_t died) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepReport), type_bits);
    const std::uint64_t cap =
        count_bits >= 64 ? ~0ULL : (1ULL << count_bits) - 1ULL;
    w.write(std::min(died, cap), count_bits);
    return w;
  }

  /// Encodes the final done broadcast.
  BitWriter encode_done() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kDone), type_bits);
    return w;
  }

  /// Encodes a reparent announcement (type tag only; guardian mode, so
  /// type_bits is 3).  The receiver adds the sender to its sweep children.
  BitWriter encode_reparent() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kReparent), type_bits);
    return w;
  }

  /// Encodes a liveness probe (type tag only; guardian mode, so type_bits
  /// is 3).  A guardian sends this to a silent ward through the reliable
  /// link: a live ward acks it (refreshing last_heard), while a dead ward
  /// lets the retransmit counter exhaust and the slot's death confirms the
  /// crash.  The payload itself is ignored on receipt.
  BitWriter encode_ping() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kPing), type_bits);
    return w;
  }
};

/// Coalesced walk batches: every token crossing one directed edge in a
/// round rides a single packed payload instead of one message per token
/// (the Das Sarma et al. distributed-walk speed-up, PAPERS.md).
///
/// Layout after the kWalk type tag:
///
///   [count-1 : bits_for(wpepr)]            batch size; 0 BITS when the
///                                          paper's wpepr = 1, so a
///                                          1-token batch is byte-identical
///                                          to the legacy per-token wire
///   count == 1:  [source : id][remaining : len]         (fixed width)
///   count >= 2:  [mode : 1] then, over tokens sorted by
///                (source, remaining):
///     mode 0:  [source_0 : id] [gamma(delta_i + 1)]*    delta-coded ids
///              then every [remaining : len] fixed width
///     mode 1:  ([source : id][remaining : len])*        all fixed width
///
/// The encoder sorts canonically and picks whichever mode is smaller, so
/// the payload bytes are a pure function of the token multiset — shuffling
/// the sender's pool order never changes the wire bytes (property-tested in
/// tests/coalesce_test.cpp).  The decoder validates count, ids, and lengths
/// and throws rwbc::Error on truncated or corrupt payloads.
struct WalkBatchWire {
  int type_bits = 2;
  int id_bits = 0;
  int length_bits = 0;
  int batch_bits = 0;  ///< width of the count-1 field: bits_for(wpepr)
  std::uint64_t wpepr = 1;
  std::uint64_t node_count = 0;
  std::uint64_t cutoff = 0;

  WalkBatchWire() = default;
  WalkBatchWire(NodeId n, std::uint64_t cutoff_value,
                std::uint64_t walks_per_edge)
      : id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff_value + 1)),
        batch_bits(bits_for(walks_per_edge)),
        wpepr(walks_per_edge),
        node_count(static_cast<std::uint64_t>(n)),
        cutoff(cutoff_value) {}

  /// Bits of a gamma code for `value` (>= 1).
  static int gamma_bits(std::uint64_t value) {
    int k = 0;
    while ((value >> k) > 1) ++k;
    return 2 * k + 1;
  }

  /// Worst-case encoded size of a `count`-token batch (mode 1).
  int max_bits(std::uint64_t count) const {
    return type_bits + batch_bits + (count >= 2 ? 1 : 0) +
           static_cast<int>(count) * (id_bits + length_bits);
  }

  /// Largest batch count (capped at wpepr) whose worst-case encoding fits
  /// in `budget` bits; 0 if not even a single token fits.
  std::uint64_t max_batch_for_budget(std::uint64_t budget) const {
    std::uint64_t count = 0;
    while (count < wpepr &&
           static_cast<std::uint64_t>(max_bits(count + 1)) <= budget) {
      ++count;
    }
    return count;
  }

  /// Encodes `batch` (sorted in place when count >= 2) into `w`, type tag
  /// included.  Requires 1 <= batch.size() <= wpepr.
  void encode(BitWriter& w, std::vector<WalkToken>& batch) const {
    RWBC_REQUIRE(!batch.empty() && batch.size() <= wpepr,
                 "walk batch size out of range");
    if (batch.size() == 1) {
      // Hot path (the paper's wpepr = 1): every field in one write.  The
      // bit stream is LSB-first, so concatenating fields into one word is
      // identical to writing them separately (kWalk == 0, count-1 == 0).
      const int total = type_bits + batch_bits + id_bits + length_bits;
      if (total <= 64) {
        const int shift = type_bits + batch_bits;
        w.write((static_cast<std::uint64_t>(batch[0].source) << shift) |
                    (batch[0].remaining << (shift + id_bits)),
                total);
      } else {
        w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
        w.write(0, batch_bits);
        w.write(static_cast<std::uint64_t>(batch[0].source), id_bits);
        w.write(batch[0].remaining, length_bits);
      }
      return;
    }
    w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
    w.write(static_cast<std::uint64_t>(batch.size()) - 1, batch_bits);
    std::sort(batch.begin(), batch.end(),
              [](const WalkToken& a, const WalkToken& b) {
                return a.source != b.source ? a.source < b.source
                                            : a.remaining < b.remaining;
              });
    int delta_bits = id_bits;
    for (std::size_t i = 1; i < batch.size(); ++i) {
      delta_bits += gamma_bits(
          static_cast<std::uint64_t>(batch[i].source - batch[i - 1].source) +
          1);
    }
    const int fixed_bits = static_cast<int>(batch.size()) * id_bits;
    const bool delta_mode = delta_bits <= fixed_bits;
    w.write(delta_mode ? 0 : 1, 1);
    if (delta_mode) {
      w.write(static_cast<std::uint64_t>(batch[0].source), id_bits);
      for (std::size_t i = 1; i < batch.size(); ++i) {
        write_gamma(w, static_cast<std::uint64_t>(batch[i].source -
                                                  batch[i - 1].source) +
                           1);
      }
    } else {
      for (const WalkToken& t : batch) {
        w.write(static_cast<std::uint64_t>(t.source), id_bits);
      }
    }
    for (const WalkToken& t : batch) w.write(t.remaining, length_bits);
  }

  /// Decodes a batch (type tag already consumed) into `out` (appended).
  /// Throws rwbc::Error on truncation or any out-of-range field.
  void decode(BitReader& r, std::vector<WalkToken>& out) const {
    if (batch_bits == 0 && id_bits + length_bits <= 64) {
      // wpepr = 1: the count field is zero bits wide, so every batch is a
      // single token — read both fields in one call.
      const std::uint64_t word = r.read(id_bits + length_bits);
      WalkToken t;
      t.source = static_cast<NodeId>(word & ((1ULL << id_bits) - 1));
      t.remaining = word >> id_bits;
      RWBC_REQUIRE(static_cast<std::uint64_t>(t.source) < node_count,
                   "walk batch source out of range");
      RWBC_REQUIRE(t.remaining <= cutoff, "walk batch length out of range");
      out.push_back(t);
      return;
    }
    const std::uint64_t count = r.read(batch_bits) + 1;
    RWBC_REQUIRE(count <= wpepr, "walk batch count exceeds wpepr");
    const std::size_t base = out.size();
    if (count == 1) {
      WalkToken t;
      t.source = static_cast<NodeId>(r.read(id_bits));
      RWBC_REQUIRE(static_cast<std::uint64_t>(t.source) < node_count,
                   "walk batch source out of range");
      t.remaining = r.read(length_bits);
      RWBC_REQUIRE(t.remaining <= cutoff, "walk batch length out of range");
      out.push_back(t);
      return;
    }
    const std::uint64_t mode = r.read(1);
    out.resize(base + static_cast<std::size_t>(count));
    if (mode == 0) {
      std::uint64_t source = r.read(id_bits);
      RWBC_REQUIRE(source < node_count, "walk batch source out of range");
      out[base].source = static_cast<NodeId>(source);
      for (std::size_t i = 1; i < count; ++i) {
        const std::uint64_t delta = read_gamma(r) - 1;
        // Bound the delta before adding so a corrupt payload cannot wrap
        // the accumulator back into range.
        RWBC_REQUIRE(delta < node_count, "walk batch source out of range");
        source += delta;
        RWBC_REQUIRE(source < node_count, "walk batch source out of range");
        out[base + i].source = static_cast<NodeId>(source);
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t source = r.read(id_bits);
        RWBC_REQUIRE(source < node_count, "walk batch source out of range");
        out[base + i].source = static_cast<NodeId>(source);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i].remaining = r.read(length_bits);
      RWBC_REQUIRE(out[base + i].remaining <= cutoff,
                   "walk batch length out of range");
    }
  }
};

/// Decoded content of a kReplicaDelta frame (guardian handoff, DESIGN.md
/// §10): an incremental update to the ward's held-walk ledger at its
/// guardian.
struct ReplicaDelta {
  std::uint64_t epoch = 0;  ///< bumped when the ward re-anchors
  bool snapshot = false;    ///< reset the ledger before applying this frame
  bool final_frame = false; ///< ward finished cleanly: retire its ledger
  std::uint64_t deaths = 0; ///< ward's ABSOLUTE death count (monotone)
  std::vector<WalkToken> adds;
  std::vector<WalkToken> removes;
};

/// Wire format of replica-delta frames.
///
/// Layout: [kReplicaDelta : 3][epoch : 8][snapshot : 1][final : 1]
///         [deaths : count_bits][gamma(n_adds + 1)]
///         ([source : id][remaining : len])* sorted by (source, remaining)
///         [gamma(n_removes + 1)]
///         ([source : id][remaining : len])* sorted by (source, remaining)
///
/// Tokens use fixed widths (not delta coding) so the encoded size of a
/// k-op frame is an exact closed form — the ward packs ops against the
/// per-edge bit budget without trial encodes.  Both token lists are sorted
/// canonically, so the bytes are a pure function of the op multisets.  The
/// decoder validates every field and throws rwbc::Error on corruption.
struct ReplicaDeltaWire {
  static constexpr int kEpochBits = 8;

  int type_bits = 3;
  int id_bits = 0;
  int length_bits = 0;
  int count_bits = 0;  ///< deaths field: bits of n * K + 1
  std::uint64_t node_count = 0;
  std::uint64_t cutoff = 0;
  std::uint64_t max_tokens = 0;  ///< n * K: bound on ops per frame

  ReplicaDeltaWire() = default;
  ReplicaDeltaWire(NodeId n, std::uint64_t cutoff_value,
                   std::uint64_t walks_per_source)
      : id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff_value + 1)),
        count_bits(bits_for(static_cast<std::uint64_t>(n) * walks_per_source +
                            1)),
        node_count(static_cast<std::uint64_t>(n)),
        cutoff(cutoff_value),
        max_tokens(static_cast<std::uint64_t>(n) * walks_per_source) {}

  /// Fixed per-frame overhead in bits (everything but the token payloads
  /// and the two gamma-coded counts).
  int header_bits() const {
    return type_bits + kEpochBits + 2 + count_bits;
  }

  /// Exact encoded size of a frame carrying `n_adds` + `n_removes` tokens.
  int frame_bits(std::uint64_t n_adds, std::uint64_t n_removes) const {
    return header_bits() + WalkBatchWire::gamma_bits(n_adds + 1) +
           WalkBatchWire::gamma_bits(n_removes + 1) +
           static_cast<int>(n_adds + n_removes) * (id_bits + length_bits);
  }

  /// Largest total op count whose frame fits in `budget` bits (>= 1 so a
  /// backlogged ward always makes progress; the pipeline widens the budget
  /// for guardian runs).
  std::uint64_t max_ops_for_budget(std::uint64_t budget) const {
    std::uint64_t ops = 1;
    while (ops < max_tokens &&
           static_cast<std::uint64_t>(frame_bits(ops + 1, 0)) <= budget) {
      ++ops;
    }
    return ops;
  }

  /// Encodes `delta` (token lists sorted in place) into `w`.
  void encode(BitWriter& w, ReplicaDelta& delta) const {
    const auto canonical = [](const WalkToken& a, const WalkToken& b) {
      return a.source != b.source ? a.source < b.source
                                  : a.remaining < b.remaining;
    };
    std::sort(delta.adds.begin(), delta.adds.end(), canonical);
    std::sort(delta.removes.begin(), delta.removes.end(), canonical);
    w.write(static_cast<std::uint64_t>(CountingMsg::kReplicaDelta), type_bits);
    w.write(delta.epoch & ((1ULL << kEpochBits) - 1), kEpochBits);
    w.write(delta.snapshot ? 1 : 0, 1);
    w.write(delta.final_frame ? 1 : 0, 1);
    // Duplication faults (dup_prob without the reliable layer's dedup) can
    // push a ward's true death count past the fault-free bound n * K; the
    // mirror saturates rather than emitting a frame the strict decoder
    // would reject.  That regime is lossy by contract — the RunReport's
    // negative `lost` residual is where the overcount is surfaced.
    w.write(std::min(delta.deaths, max_tokens), count_bits);
    write_gamma(w, static_cast<std::uint64_t>(delta.adds.size()) + 1);
    for (const WalkToken& t : delta.adds) {
      w.write(static_cast<std::uint64_t>(t.source), id_bits);
      w.write(t.remaining, length_bits);
    }
    write_gamma(w, static_cast<std::uint64_t>(delta.removes.size()) + 1);
    for (const WalkToken& t : delta.removes) {
      w.write(static_cast<std::uint64_t>(t.source), id_bits);
      w.write(t.remaining, length_bits);
    }
  }

  /// Decodes a frame (type tag already consumed).  Throws rwbc::Error on
  /// truncation or any out-of-range field.
  ReplicaDelta decode(BitReader& r) const {
    ReplicaDelta delta;
    delta.epoch = r.read(kEpochBits);
    delta.snapshot = r.read(1) != 0;
    delta.final_frame = r.read(1) != 0;
    delta.deaths = r.read(count_bits);
    RWBC_REQUIRE(delta.deaths <= max_tokens,
                 "replica delta death count out of range");
    const auto read_tokens = [&](std::vector<WalkToken>& out) {
      const std::uint64_t count = read_gamma(r) - 1;
      RWBC_REQUIRE(count <= max_tokens, "replica delta op count out of range");
      out.resize(static_cast<std::size_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t source = r.read(id_bits);
        RWBC_REQUIRE(source < node_count,
                     "replica delta source out of range");
        out[i].source = static_cast<NodeId>(source);
        out[i].remaining = r.read(length_bits);
        RWBC_REQUIRE(out[i].remaining <= cutoff,
                     "replica delta length out of range");
      }
    };
    read_tokens(delta.adds);
    read_tokens(delta.removes);
    return delta;
  }
};

}  // namespace rwbc
