// Wire format of Algorithm 1's messages.
//
// A walk token is (source id, remaining moves): ceil(log2 n) +
// ceil(log2(l + 1)) bits = O(log n), since l = O(n).  Control messages for
// the termination-detection sweeps ride the same edges, so every payload
// starts with a 2-bit type tag; the per-edge bit budget (8 * ceil(log2 n)
// by default) accommodates one walk plus one control message per round,
// which is all the algorithm ever sends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Message kinds of the counting phase.
enum class CountingMsg : std::uint64_t {
  kWalk = 0,          ///< a walk token: (source, remaining)
  kSweepRequest = 1,  ///< root -> leaves: report your subtree's death count
  kSweepReport = 2,   ///< leaves -> root: aggregated death count
  kDone = 3,          ///< root -> leaves: all walks dead, halt
};

/// A random walk in flight or held by a node.
struct WalkToken {
  NodeId source = 0;
  std::uint64_t remaining = 0;  ///< moves left before truncation
};

/// Struct-of-arrays pool of walks held at a node.  The counting phase's
/// inner loop touches one field of every held walk per pass (draw committed
/// slots, bucket by slot, decrement lengths), so parallel arrays keep each
/// pass a dense sequential scan instead of striding over 24-byte structs.
/// Indices into the pool are stable within a round; the pool is rebuilt
/// (double-buffered via swap) when survivors are carried to the next round.
class WalkTokenPool {
 public:
  std::size_t size() const { return source_.size(); }
  bool empty() const { return source_.empty(); }

  void clear() {
    source_.clear();
    remaining_.clear();
    committed_.clear();
  }

  void reserve(std::size_t capacity) {
    source_.reserve(capacity);
    remaining_.reserve(capacity);
    committed_.reserve(capacity);
  }

  /// Appends a walk; `committed` is its drawn next-hop slot (-1 = none).
  void push(NodeId source, std::uint64_t remaining,
            std::int32_t committed = -1) {
    source_.push_back(source);
    remaining_.push_back(remaining);
    committed_.push_back(committed);
  }

  NodeId source(std::size_t i) const { return source_[i]; }
  std::uint64_t remaining(std::size_t i) const { return remaining_[i]; }
  std::int32_t committed(std::size_t i) const { return committed_[i]; }
  void set_committed(std::size_t i, std::int32_t slot) {
    committed_[i] = slot;
  }

  void swap(WalkTokenPool& other) {
    source_.swap(other.source_);
    remaining_.swap(other.remaining_);
    committed_.swap(other.committed_);
  }

 private:
  std::vector<NodeId> source_;
  std::vector<std::uint64_t> remaining_;
  std::vector<std::int32_t> committed_;
};

/// Field widths for a network of n nodes and cutoff l.
struct CountingWire {
  int type_bits = 2;
  int id_bits = 0;
  int length_bits = 0;
  int count_bits = 0;  ///< for sweep reports: bits of (n-1)*K + 1

  CountingWire(NodeId n, std::uint64_t cutoff, std::uint64_t walks_per_source)
      : id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff + 1)),
        count_bits(bits_for(static_cast<std::uint64_t>(n) * walks_per_source +
                            1)) {}

  /// Encodes a walk token.
  BitWriter encode_walk(const WalkToken& walk) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
    w.write(static_cast<std::uint64_t>(walk.source), id_bits);
    w.write(walk.remaining, length_bits);
    return w;
  }

  /// Encodes a sweep request (type tag only).
  BitWriter encode_sweep_request() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepRequest), type_bits);
    return w;
  }

  /// Encodes a sweep report carrying a subtree death count.
  BitWriter encode_sweep_report(std::uint64_t died) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepReport), type_bits);
    w.write(died, count_bits);
    return w;
  }

  /// Encodes the final done broadcast.
  BitWriter encode_done() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kDone), type_bits);
    return w;
  }
};

/// Coalesced walk batches: every token crossing one directed edge in a
/// round rides a single packed payload instead of one message per token
/// (the Das Sarma et al. distributed-walk speed-up, PAPERS.md).
///
/// Layout after the kWalk type tag:
///
///   [count-1 : bits_for(wpepr)]            batch size; 0 BITS when the
///                                          paper's wpepr = 1, so a
///                                          1-token batch is byte-identical
///                                          to the legacy per-token wire
///   count == 1:  [source : id][remaining : len]         (fixed width)
///   count >= 2:  [mode : 1] then, over tokens sorted by
///                (source, remaining):
///     mode 0:  [source_0 : id] [gamma(delta_i + 1)]*    delta-coded ids
///              then every [remaining : len] fixed width
///     mode 1:  ([source : id][remaining : len])*        all fixed width
///
/// The encoder sorts canonically and picks whichever mode is smaller, so
/// the payload bytes are a pure function of the token multiset — shuffling
/// the sender's pool order never changes the wire bytes (property-tested in
/// tests/coalesce_test.cpp).  The decoder validates count, ids, and lengths
/// and throws rwbc::Error on truncated or corrupt payloads.
struct WalkBatchWire {
  int type_bits = 2;
  int id_bits = 0;
  int length_bits = 0;
  int batch_bits = 0;  ///< width of the count-1 field: bits_for(wpepr)
  std::uint64_t wpepr = 1;
  std::uint64_t node_count = 0;
  std::uint64_t cutoff = 0;

  WalkBatchWire() = default;
  WalkBatchWire(NodeId n, std::uint64_t cutoff_value,
                std::uint64_t walks_per_edge)
      : id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff_value + 1)),
        batch_bits(bits_for(walks_per_edge)),
        wpepr(walks_per_edge),
        node_count(static_cast<std::uint64_t>(n)),
        cutoff(cutoff_value) {}

  /// Bits of a gamma code for `value` (>= 1).
  static int gamma_bits(std::uint64_t value) {
    int k = 0;
    while ((value >> k) > 1) ++k;
    return 2 * k + 1;
  }

  /// Worst-case encoded size of a `count`-token batch (mode 1).
  int max_bits(std::uint64_t count) const {
    return type_bits + batch_bits + (count >= 2 ? 1 : 0) +
           static_cast<int>(count) * (id_bits + length_bits);
  }

  /// Largest batch count (capped at wpepr) whose worst-case encoding fits
  /// in `budget` bits; 0 if not even a single token fits.
  std::uint64_t max_batch_for_budget(std::uint64_t budget) const {
    std::uint64_t count = 0;
    while (count < wpepr &&
           static_cast<std::uint64_t>(max_bits(count + 1)) <= budget) {
      ++count;
    }
    return count;
  }

  /// Encodes `batch` (sorted in place when count >= 2) into `w`, type tag
  /// included.  Requires 1 <= batch.size() <= wpepr.
  void encode(BitWriter& w, std::vector<WalkToken>& batch) const {
    RWBC_REQUIRE(!batch.empty() && batch.size() <= wpepr,
                 "walk batch size out of range");
    if (batch.size() == 1) {
      // Hot path (the paper's wpepr = 1): every field in one write.  The
      // bit stream is LSB-first, so concatenating fields into one word is
      // identical to writing them separately (kWalk == 0, count-1 == 0).
      const int total = type_bits + batch_bits + id_bits + length_bits;
      if (total <= 64) {
        const int shift = type_bits + batch_bits;
        w.write((static_cast<std::uint64_t>(batch[0].source) << shift) |
                    (batch[0].remaining << (shift + id_bits)),
                total);
      } else {
        w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
        w.write(0, batch_bits);
        w.write(static_cast<std::uint64_t>(batch[0].source), id_bits);
        w.write(batch[0].remaining, length_bits);
      }
      return;
    }
    w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
    w.write(static_cast<std::uint64_t>(batch.size()) - 1, batch_bits);
    std::sort(batch.begin(), batch.end(),
              [](const WalkToken& a, const WalkToken& b) {
                return a.source != b.source ? a.source < b.source
                                            : a.remaining < b.remaining;
              });
    int delta_bits = id_bits;
    for (std::size_t i = 1; i < batch.size(); ++i) {
      delta_bits += gamma_bits(
          static_cast<std::uint64_t>(batch[i].source - batch[i - 1].source) +
          1);
    }
    const int fixed_bits = static_cast<int>(batch.size()) * id_bits;
    const bool delta_mode = delta_bits <= fixed_bits;
    w.write(delta_mode ? 0 : 1, 1);
    if (delta_mode) {
      w.write(static_cast<std::uint64_t>(batch[0].source), id_bits);
      for (std::size_t i = 1; i < batch.size(); ++i) {
        write_gamma(w, static_cast<std::uint64_t>(batch[i].source -
                                                  batch[i - 1].source) +
                           1);
      }
    } else {
      for (const WalkToken& t : batch) {
        w.write(static_cast<std::uint64_t>(t.source), id_bits);
      }
    }
    for (const WalkToken& t : batch) w.write(t.remaining, length_bits);
  }

  /// Decodes a batch (type tag already consumed) into `out` (appended).
  /// Throws rwbc::Error on truncation or any out-of-range field.
  void decode(BitReader& r, std::vector<WalkToken>& out) const {
    if (batch_bits == 0 && id_bits + length_bits <= 64) {
      // wpepr = 1: the count field is zero bits wide, so every batch is a
      // single token — read both fields in one call.
      const std::uint64_t word = r.read(id_bits + length_bits);
      WalkToken t;
      t.source = static_cast<NodeId>(word & ((1ULL << id_bits) - 1));
      t.remaining = word >> id_bits;
      RWBC_REQUIRE(static_cast<std::uint64_t>(t.source) < node_count,
                   "walk batch source out of range");
      RWBC_REQUIRE(t.remaining <= cutoff, "walk batch length out of range");
      out.push_back(t);
      return;
    }
    const std::uint64_t count = r.read(batch_bits) + 1;
    RWBC_REQUIRE(count <= wpepr, "walk batch count exceeds wpepr");
    const std::size_t base = out.size();
    if (count == 1) {
      WalkToken t;
      t.source = static_cast<NodeId>(r.read(id_bits));
      RWBC_REQUIRE(static_cast<std::uint64_t>(t.source) < node_count,
                   "walk batch source out of range");
      t.remaining = r.read(length_bits);
      RWBC_REQUIRE(t.remaining <= cutoff, "walk batch length out of range");
      out.push_back(t);
      return;
    }
    const std::uint64_t mode = r.read(1);
    out.resize(base + static_cast<std::size_t>(count));
    if (mode == 0) {
      std::uint64_t source = r.read(id_bits);
      RWBC_REQUIRE(source < node_count, "walk batch source out of range");
      out[base].source = static_cast<NodeId>(source);
      for (std::size_t i = 1; i < count; ++i) {
        const std::uint64_t delta = read_gamma(r) - 1;
        // Bound the delta before adding so a corrupt payload cannot wrap
        // the accumulator back into range.
        RWBC_REQUIRE(delta < node_count, "walk batch source out of range");
        source += delta;
        RWBC_REQUIRE(source < node_count, "walk batch source out of range");
        out[base + i].source = static_cast<NodeId>(source);
      }
    } else {
      for (std::size_t i = 0; i < count; ++i) {
        const std::uint64_t source = r.read(id_bits);
        RWBC_REQUIRE(source < node_count, "walk batch source out of range");
        out[base + i].source = static_cast<NodeId>(source);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      out[base + i].remaining = r.read(length_bits);
      RWBC_REQUIRE(out[base + i].remaining <= cutoff,
                   "walk batch length out of range");
    }
  }
};

}  // namespace rwbc
