// Wire format of Algorithm 1's messages.
//
// A walk token is (source id, remaining moves): ceil(log2 n) +
// ceil(log2(l + 1)) bits = O(log n), since l = O(n).  Control messages for
// the termination-detection sweeps ride the same edges, so every payload
// starts with a 2-bit type tag; the per-edge bit budget (8 * ceil(log2 n)
// by default) accommodates one walk plus one control message per round,
// which is all the algorithm ever sends.
#pragma once

#include <cstdint>

#include "common/bitcodec.hpp"
#include "graph/graph.hpp"

namespace rwbc {

/// Message kinds of the counting phase.
enum class CountingMsg : std::uint64_t {
  kWalk = 0,          ///< a walk token: (source, remaining)
  kSweepRequest = 1,  ///< root -> leaves: report your subtree's death count
  kSweepReport = 2,   ///< leaves -> root: aggregated death count
  kDone = 3,          ///< root -> leaves: all walks dead, halt
};

/// A random walk in flight or held by a node.
struct WalkToken {
  NodeId source = 0;
  std::uint64_t remaining = 0;  ///< moves left before truncation
};

/// Field widths for a network of n nodes and cutoff l.
struct CountingWire {
  int type_bits = 2;
  int id_bits = 0;
  int length_bits = 0;
  int count_bits = 0;  ///< for sweep reports: bits of (n-1)*K + 1

  CountingWire(NodeId n, std::uint64_t cutoff, std::uint64_t walks_per_source)
      : id_bits(bits_for(static_cast<std::uint64_t>(n))),
        length_bits(bits_for(cutoff + 1)),
        count_bits(bits_for(static_cast<std::uint64_t>(n) * walks_per_source +
                            1)) {}

  /// Encodes a walk token.
  BitWriter encode_walk(const WalkToken& walk) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kWalk), type_bits);
    w.write(static_cast<std::uint64_t>(walk.source), id_bits);
    w.write(walk.remaining, length_bits);
    return w;
  }

  /// Encodes a sweep request (type tag only).
  BitWriter encode_sweep_request() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepRequest), type_bits);
    return w;
  }

  /// Encodes a sweep report carrying a subtree death count.
  BitWriter encode_sweep_report(std::uint64_t died) const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kSweepReport), type_bits);
    w.write(died, count_bits);
    return w;
  }

  /// Encodes the final done broadcast.
  BitWriter encode_done() const {
    BitWriter w;
    w.write(static_cast<std::uint64_t>(CountingMsg::kDone), type_bits);
    return w;
  }
};

}  // namespace rwbc
