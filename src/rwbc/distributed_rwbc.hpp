// The end-to-end distributed RWBC pipeline — the paper's headline
// contribution, assembled from CONGEST phases whose rounds are all metered:
//
//   P0  leader election             (flooding min id,     <= n rounds)
//   P1  BFS tree from the leader    (layered flood,       <= n + 2 rounds)
//   P2  height convergecast + (height, target, seed) broadcast
//   P3  Algorithm 1: counting       (O(K n + l) = O(n log n) rounds)
//   P4  Algorithm 2: computing      (n + 2 rounds)
//
// P0-P2 realise "randomly choose a target node t" (Alg. 1 line 2) and give
// Algorithm 1 the spanning tree its termination detection runs on; they add
// O(n) rounds, absorbed by the O(n log n) total.  Every phase runs on its
// own Network instance over the same graph; metrics are summed.
#pragma once

#include <cstdint>
#include <vector>

#include "congest/network.hpp"
#include "graph/weighted.hpp"
#include "linalg/dense.hpp"
#include "rwbc/counting_node.hpp"
#include "rwbc/params.hpp"
#include "rwbc/report.hpp"

namespace rwbc {

/// Options for a distributed RWBC run.
struct DistributedRwbcOptions {
  /// K: walks per source.  0 = Theorem 3 default (walks_multiplier*log2 n).
  std::size_t walks_per_source = 0;
  /// l: walk-length cutoff.  0 = Theorem 1 default (cutoff_multiplier * n).
  std::size_t cutoff = 0;
  double walks_multiplier = 4.0;
  double cutoff_multiplier = 2.0;

  /// Test hook: fix the absorbing target instead of the leader drawing one.
  NodeId forced_target = -1;

  /// Skip P0 (the leader is then node 0, which min-id election elects
  /// anyway under the simulator's dense ids); saves n rounds in scaling
  /// sweeps that only study Algorithm 1's growth.
  bool run_leader_election = true;

  /// When false, Algorithm 2's messages still flow (honest round counts)
  /// but no scores are computed or stored (memory-light scaling runs).
  bool compute_scores = true;

  /// Walk tokens an edge may carry per direction per round (paper: 1).
  std::size_t walks_per_edge_per_round = 1;

  /// Whether walk length is spent per move (paper-faithful) or per round
  /// (the E7 ablation; see rwbc/counting_node.hpp).
  LengthPolicy length_policy = LengthPolicy::kPerMove;

  /// Coalesced walk hot path (see CountingNodeConfig::coalesce_walks).
  /// Default on; false selects the legacy one-message-per-token path used
  /// as the differential baseline in tests/coalesce_test.cpp.
  bool coalesce_walks = true;

  /// Visit counts packed per Algorithm-2 message: 1 = the paper's one
  /// count per round; 0 = auto-fit the bit budget (fewer rounds, same
  /// O(log n) bits per edge per round).
  std::uint64_t counts_per_message = 1;

  /// Simulator settings (seed, bandwidth budget, enforcement, and
  /// congest.num_threads — the deterministic parallel round scheduler,
  /// applied to every phase P0-P4; results are bit-identical across
  /// thread counts).
  ///
  /// congest.faults configures deterministic fault injection.  The plan is
  /// applied to the DATA phases P3 (counting) and P4 (computing) only; the
  /// setup phases P0-P2 run fault-free (the paper's algorithms start from
  /// an established spanning tree — faulting the scaffolding would study
  /// the setup protocols, not Algorithms 1 and 2).  Fault rounds are
  /// phase-local, so e.g. a crash at round 50 fires in both P3 and P4.
  /// When a plan is active the counting/compute programs run in
  /// fault-tolerant mode (relaxed exact-count invariants plus a
  /// deadline-round termination backstop, see fault_deadline_rounds).
  CongestConfig congest;

  /// Self-healing transport for P3/P4: wraps walk tokens and count frames
  /// in the ack/retransmission layer of rwbc/reliable_token.hpp, so pure
  /// message-loss/duplication schedules cost retransmission rounds instead
  /// of estimator bias.  Off = the unreliable baseline (the E15 ablation).
  bool reliable_transport = false;
  /// Transport tuning when reliable_transport is on.
  ReliableLinkConfig reliable_link;
  /// The reliable wrapper's constant-factor bandwidth overhead (headers,
  /// acks, retransmissions sharing a round with new frames).  P3/P4 widen
  /// their per-edge budget by this factor so strict-mode enforcement still
  /// meters a meaningful O(log n) bound.
  std::uint64_t reliable_bandwidth_factor = 4;
  /// Termination backstop for faulty runs (phase-local round at which every
  /// node force-finishes).  0 = derive one from (n, K, l) automatically
  /// when a fault plan is active; ignored on fault-free runs, where exact
  /// termination detection needs no backstop.
  std::uint64_t fault_deadline_rounds = 0;

  /// Crash-lossless counting (DESIGN.md §10): every node mirrors its held
  /// walks to its BFS-tree parent (the root to its first child) via compact
  /// replica-delta frames; when a neighbour is declared crashed, the
  /// guardian adopts the mirrored walks and deaths and the phase continues
  /// without loss while survivors stay connected.  The RunReport's
  /// WalkAccounting makes the guarantee auditable either way.  Combine with
  /// reliable_transport for crash detection via dead link slots; without it
  /// adoption falls back to silence timeouts.  Fault-free runs with the
  /// guardian on produce bit-identical scores to guardian-off runs at
  /// walks_per_edge_per_round = 1.
  bool guardian_handoff = false;
  /// Rounds between replica frames from a clean ward (fault-tolerant runs
  /// only) so guardians can tell idle from dead.
  std::uint64_t guardian_heartbeat = 2;
  /// Rounds of ward silence before its guardian adopts.  Must exceed
  /// guardian_heartbeat plus the transport's worst-case retransmission
  /// delay, or live-but-lossy wards get falsely adopted (an overcount the
  /// accounting surfaces as negative loss).
  std::uint64_t guardian_silence = 12;
  /// Counting-phase budget widening for the replica channel (the computing
  /// phase carries no walks and is left untouched, so its auto-fit message
  /// packing — and hence score summation order — is unchanged).
  std::uint64_t guardian_bandwidth_factor = 4;

  /// Durable checkpoint/restore for the long data phases (P3 counting, P4
  /// computing).  Setup phases P0-P2 are cheap and deterministic, so a
  /// resumed run simply recomputes them and validates the snapshot against
  /// the recomputed leader/target/parameters.  Snapshots are rotated by a
  /// RunSupervisor in `dir`; a resumed run is bit-identical to the
  /// uninterrupted one at every congest.num_threads setting.  See
  /// DESIGN.md section 7 for the format and determinism contract.
  struct Checkpointing {
    /// Snapshot directory (created if missing).  Empty = no checkpointing.
    std::string dir;
    /// Phase-local rounds between snapshots.  0 writes no snapshots (a
    /// non-empty dir with interval 0 still permits resume-only runs).
    std::uint64_t interval = 0;
    /// Rotation bound: snapshots kept on disk (>= 1, oldest pruned).
    std::size_t keep = 3;
    /// Resume from the newest usable snapshot in `dir` (corrupt or
    /// truncated candidates are skipped, falling back to the previous
    /// good one).  Throws rwbc::CheckpointError if no usable snapshot
    /// exists or the snapshot disagrees with this run's recomputed setup
    /// (different graph, seed, or parameters).
    bool resume = false;
  };
  Checkpointing checkpoint;
};

/// Outputs of a distributed RWBC run.
struct DistributedRwbcResult {
  /// The unified report (algorithm "rwbc"): report.scores holds the
  /// per-node betweenness estimates (empty when compute_scores is false),
  /// report.metrics sums all phases, and report.resumed_from_round records
  /// the snapshot round on a resumed run.
  RunReport report;

  /// The estimated potentials T_hat(v, s) (empty when compute_scores off).
  DenseMatrix scaled_visits;
  NodeId leader = -1;
  NodeId target = -1;
  RwbcParams params;  ///< the (l, K) actually used

  RunMetrics election_metrics;
  RunMetrics bfs_metrics;
  RunMetrics dissemination_metrics;
  RunMetrics counting_metrics;
  RunMetrics computing_metrics;
};

/// Runs the full pipeline.  Requires a connected graph with n >= 2.
DistributedRwbcResult distributed_rwbc(const Graph& g,
                                       const DistributedRwbcOptions& options = {});

/// Weighted extension: same pipeline on a conductance network.  Walks move
/// with probability w_ij / s(i), counts are normalised by strengths, and
/// Eq. 6 weighs flows by conductance.  Requires positive INTEGER weights
/// (so strengths travel exactly in O(log n + log W) bits) and a connected
/// topology with n >= 2.  `result.scaled_visits` then estimates the
/// weighted potentials (S - W)^{-1} padded at the target.
DistributedRwbcResult distributed_rwbc(const WeightedGraph& wg,
                                       const DistributedRwbcOptions& options = {});

}  // namespace rwbc
