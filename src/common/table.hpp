// Console table formatting for the benchmark harness.
//
// Every experiment binary prints the series/tables it regenerates in a
// fixed-width layout so runs are directly diffable across machines.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace rwbc {

/// A fixed-column console table. Columns are sized to their widest cell.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; pads or truncates to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters.
  static std::string fmt(double value, int precision = 4);
  static std::string fmt(std::int64_t value);
  static std::string fmt(std::uint64_t value);
  static std::string fmt(int value);

  /// Renders the table (header, separator, rows) to the stream.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rwbc
