// Small statistics helpers shared by the experiment harness and tests:
// summary statistics over samples and least-squares fits used to check
// complexity claims (e.g. fitting measured rounds against n·log n).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace rwbc {

/// Summary statistics of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double min = 0.0;
  double max = 0.0;
};

/// Computes summary statistics; returns a zeroed Summary for empty input.
Summary summarize(std::span<const double> values);

/// Result of an ordinary least-squares straight-line fit y = slope*x + icept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Least-squares fit of y against x. Requires xs.size() == ys.size() >= 2.
LinearFit fit_line(std::span<const double> xs, std::span<const double> ys);

/// Fits y = c * x^e by a log-log linear fit and returns the exponent e along
/// with the fit quality.  Used by the scaling experiments: for the paper's
/// O(n log n) round bound we expect the fitted exponent of rounds vs n to be
/// just above 1.  Requires all inputs positive and at least 2 points.
struct PowerFit {
  double exponent = 0.0;
  double coefficient = 0.0;
  double r_squared = 0.0;
};
PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

/// Maximum relative error max_i |approx_i - exact_i| / max(|exact_i|, floor).
/// The floor guards against division by near-zero exact values (betweenness
/// of leaf nodes can be tiny); values whose exact magnitude is below the
/// floor are compared absolutely against the floor.
double max_relative_error(std::span<const double> exact,
                          std::span<const double> approx,
                          double floor = 1e-12);

/// Mean relative error with the same floor semantics.
double mean_relative_error(std::span<const double> exact,
                           std::span<const double> approx,
                           double floor = 1e-12);

}  // namespace rwbc
