#include "common/bitcodec.hpp"

#include <cmath>

namespace rwbc {

int bits_for(std::uint64_t bound) {
  RWBC_REQUIRE(bound >= 1, "bits_for requires bound >= 1");
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < bound) {
    capacity <<= 1;
    ++bits;
    if (bits == 64) break;
  }
  return bits;
}

std::uint64_t encode_approx_float(double value, int mantissa_bits,
                                  int exponent_bits) {
  RWBC_REQUIRE(value >= 0.0, "encode_approx_float needs non-negative input");
  RWBC_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
               "mantissa width out of range");
  RWBC_REQUIRE(exponent_bits >= 2 && exponent_bits <= 11,
               "exponent width out of range");
  if (value == 0.0) return 0;
  int exponent = 0;
  double fraction = std::frexp(value, &exponent);  // fraction in [0.5, 1)
  // mantissa in [2^(mb-1), 2^mb): the top bit is explicit so 0 is free to
  // mean exact zero.
  auto mantissa = static_cast<std::uint64_t>(
      std::ldexp(fraction, mantissa_bits));
  if (mantissa >= (1ULL << mantissa_bits)) {
    mantissa >>= 1;
    ++exponent;
  }
  const int bias = 1 << (exponent_bits - 1);
  int stored_exponent = exponent + bias;
  const int max_exponent = (1 << exponent_bits) - 1;
  if (stored_exponent < 0) return 0;  // underflow to zero
  if (stored_exponent > max_exponent) {
    stored_exponent = max_exponent;   // clamp overflow
    mantissa = (1ULL << mantissa_bits) - 1;
  }
  return (static_cast<std::uint64_t>(stored_exponent) << mantissa_bits) |
         mantissa;
}

double decode_approx_float(std::uint64_t encoded, int mantissa_bits,
                           int exponent_bits) {
  RWBC_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
               "mantissa width out of range");
  RWBC_REQUIRE(exponent_bits >= 2 && exponent_bits <= 11,
               "exponent width out of range");
  if (encoded == 0) return 0.0;
  const std::uint64_t mantissa = encoded & ((1ULL << mantissa_bits) - 1);
  const auto stored_exponent =
      static_cast<int>(encoded >> mantissa_bits);
  const int bias = 1 << (exponent_bits - 1);
  return std::ldexp(static_cast<double>(mantissa),
                    stored_exponent - bias - mantissa_bits);
}

void BitWriter::write(std::uint64_t value, int width) {
  RWBC_REQUIRE(width >= 0 && width <= 64, "bit width out of range");
  RWBC_REQUIRE(width == 64 || value < (1ULL << width),
               "value does not fit in declared bit width");
  if (width == 0) return;
  const int end_bit = bit_count_ + width;
  bytes_.resize(static_cast<std::size_t>((end_bit + 7) >> 3), 0);
  auto byte_index = static_cast<std::size_t>(bit_count_ >> 3);
  const int offset = bit_count_ & 7;
  int written = 0;
  if (offset != 0) {
    // Fill the partial tail byte first (it already holds earlier bits).
    bytes_[byte_index] |= static_cast<std::uint8_t>(value << offset);
    written = 8 - offset;
    ++byte_index;
  }
  while (written < width) {
    bytes_[byte_index++] = static_cast<std::uint8_t>(value >> written);
    written += 8;
  }
  bit_count_ = end_bit;
}

std::uint64_t BitReader::read(int width) {
  RWBC_REQUIRE(width >= 0 && width <= 64, "bit width out of range");
  RWBC_REQUIRE(cursor_ + width <= bit_count_, "bit payload exhausted");
  if (width == 0) return 0;
  auto byte_index = static_cast<std::size_t>(cursor_ >> 3);
  const int offset = cursor_ & 7;
  std::uint64_t value = bytes_[byte_index] >> offset;
  int have = 8 - offset;
  while (have < width) {
    value |= static_cast<std::uint64_t>(bytes_[++byte_index]) << have;
    have += 8;
  }
  if (width < 64) value &= (1ULL << width) - 1;
  cursor_ += width;
  return value;
}

void write_gamma(BitWriter& w, std::uint64_t value) {
  RWBC_REQUIRE(value >= 1, "gamma codes positive values only");
  int k = 0;
  while ((value >> k) > 1) ++k;  // k = floor(log2 value)
  // k zero bits then a one, LSB-first: the single set bit of 1 << k.
  w.write(1ULL << k, k + 1);
  if (k > 0) w.write(value & ((1ULL << k) - 1), k);
}

std::uint64_t read_gamma(BitReader& r) {
  int k = 0;
  while (r.read(1) == 0) {
    ++k;
    RWBC_REQUIRE(k < 64, "malformed gamma prefix");
  }
  if (k == 0) return 1;
  return (1ULL << k) | r.read(k);
}

}  // namespace rwbc
