#include "common/bitcodec.hpp"

#include <cmath>

namespace rwbc {

int bits_for(std::uint64_t bound) {
  RWBC_REQUIRE(bound >= 1, "bits_for requires bound >= 1");
  int bits = 0;
  std::uint64_t capacity = 1;
  while (capacity < bound) {
    capacity <<= 1;
    ++bits;
    if (bits == 64) break;
  }
  return bits;
}

std::uint64_t encode_approx_float(double value, int mantissa_bits,
                                  int exponent_bits) {
  RWBC_REQUIRE(value >= 0.0, "encode_approx_float needs non-negative input");
  RWBC_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
               "mantissa width out of range");
  RWBC_REQUIRE(exponent_bits >= 2 && exponent_bits <= 11,
               "exponent width out of range");
  if (value == 0.0) return 0;
  int exponent = 0;
  double fraction = std::frexp(value, &exponent);  // fraction in [0.5, 1)
  // mantissa in [2^(mb-1), 2^mb): the top bit is explicit so 0 is free to
  // mean exact zero.
  auto mantissa = static_cast<std::uint64_t>(
      std::ldexp(fraction, mantissa_bits));
  if (mantissa >= (1ULL << mantissa_bits)) {
    mantissa >>= 1;
    ++exponent;
  }
  const int bias = 1 << (exponent_bits - 1);
  int stored_exponent = exponent + bias;
  const int max_exponent = (1 << exponent_bits) - 1;
  if (stored_exponent < 0) return 0;  // underflow to zero
  if (stored_exponent > max_exponent) {
    stored_exponent = max_exponent;   // clamp overflow
    mantissa = (1ULL << mantissa_bits) - 1;
  }
  return (static_cast<std::uint64_t>(stored_exponent) << mantissa_bits) |
         mantissa;
}

double decode_approx_float(std::uint64_t encoded, int mantissa_bits,
                           int exponent_bits) {
  RWBC_REQUIRE(mantissa_bits >= 1 && mantissa_bits <= 52,
               "mantissa width out of range");
  RWBC_REQUIRE(exponent_bits >= 2 && exponent_bits <= 11,
               "exponent width out of range");
  if (encoded == 0) return 0.0;
  const std::uint64_t mantissa = encoded & ((1ULL << mantissa_bits) - 1);
  const auto stored_exponent =
      static_cast<int>(encoded >> mantissa_bits);
  const int bias = 1 << (exponent_bits - 1);
  return std::ldexp(static_cast<double>(mantissa),
                    stored_exponent - bias - mantissa_bits);
}

void BitWriter::write(std::uint64_t value, int width) {
  RWBC_REQUIRE(width >= 0 && width <= 64, "bit width out of range");
  RWBC_REQUIRE(width == 64 || value < (1ULL << width),
               "value does not fit in declared bit width");
  for (int i = 0; i < width; ++i) {
    const int bit_index = bit_count_ + i;
    const auto byte_index = static_cast<std::size_t>(bit_index >> 3);
    if (byte_index >= bytes_.size()) bytes_.push_back(0);
    if ((value >> i) & 1ULL) {
      bytes_[byte_index] =
          static_cast<std::uint8_t>(bytes_[byte_index] | (1u << (bit_index & 7)));
    }
  }
  bit_count_ += width;
}

std::uint64_t BitReader::read(int width) {
  RWBC_REQUIRE(width >= 0 && width <= 64, "bit width out of range");
  RWBC_REQUIRE(cursor_ + width <= bit_count_, "bit payload exhausted");
  std::uint64_t value = 0;
  for (int i = 0; i < width; ++i) {
    const int bit_index = cursor_ + i;
    const auto byte_index = static_cast<std::size_t>(bit_index >> 3);
    if ((bytes_[byte_index] >> (bit_index & 7)) & 1u) {
      value |= (1ULL << i);
    }
  }
  cursor_ += width;
  return value;
}

}  // namespace rwbc
