#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rwbc {

ThreadPool::ThreadPool(std::size_t num_threads) : thread_count_(num_threads) {
  RWBC_REQUIRE(num_threads >= 1, "ThreadPool needs at least one thread");
  workers_.reserve(num_threads - 1);
  for (std::size_t w = 1; w < num_threads; ++w) {
    workers_.emplace_back([this, w] { worker_main(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_threads() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::worker_main(std::size_t chunk) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
    if (stop_) return;
    seen = generation_;
    lock.unlock();
    run_chunk(chunk);
    lock.lock();
    if (--pending_workers_ == 0) done_cv_.notify_one();
  }
}

void ThreadPool::run_chunk(std::size_t chunk) {
  // Static partition: pure arithmetic in (count, size()), so the index ->
  // thread mapping never depends on timing.
  const std::size_t begin = chunk * count_ / thread_count_;
  const std::size_t end = (chunk + 1) * count_ / thread_count_;
  if (range_body_ != nullptr) {
    if (begin >= end) return;
    try {
      (*range_body_)(begin, end);
    } catch (...) {
      record_failure(begin);
    }
    return;
  }
  for (std::size_t i = begin; i < end; ++i) {
    try {
      (*body_)(i);
    } catch (...) {
      record_failure(i);
      return;  // serial semantics within the chunk: nothing after a throw
    }
  }
}

void ThreadPool::record_failure(std::size_t index) {
  // Keep the smallest failing index: chunks cover ascending disjoint
  // ranges and each chunk stops at its first failure, so the minimum over
  // chunks is exactly the index a serial loop would have thrown at.
  std::lock_guard<std::mutex> lock(mutex_);
  if (failure_ == nullptr || index < failed_index_) {
    failed_index_ = index;
    failure_ = std::current_exception();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (thread_count_ == 1) {  // inline fast path: no synchronisation at all
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = count;
    body_ = &body;
    range_body_ = nullptr;
    failure_ = nullptr;
    failed_index_ = count;
    pending_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is chunk 0
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
    body_ = nullptr;
    failure = failure_;
    failure_ = nullptr;
  }
  if (failure) std::rethrow_exception(failure);
}

void ThreadPool::parallel_for_ranges(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (count == 0) return;
  if (thread_count_ == 1) {  // inline fast path: no synchronisation at all
    body(0, count);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    count_ = count;
    body_ = nullptr;
    range_body_ = &body;
    failure_ = nullptr;
    failed_index_ = count;
    pending_workers_ = workers_.size();
    ++generation_;
  }
  start_cv_.notify_all();
  run_chunk(0);  // the caller is chunk 0
  std::exception_ptr failure;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_workers_ == 0; });
    range_body_ = nullptr;
    failure = failure_;
    failure_ = nullptr;
  }
  if (failure) std::rethrow_exception(failure);
}

}  // namespace rwbc
