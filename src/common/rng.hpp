// Deterministic random number generation.
//
// Every node in the CONGEST simulator owns its own generator derived from a
// global seed and its node id, so simulations are reproducible regardless of
// scheduling order and each node's randomness is independent (the paper's
// model lets each node flip private coins).
//
// The core generator is xoshiro256**, seeded through SplitMix64 — fast,
// high-quality, and trivially splittable, which std::mt19937 is not.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace rwbc {

/// SplitMix64 step; used for seeding and cheap hashing of (seed, stream) pairs.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** pseudo-random generator.
///
/// Satisfies std::uniform_random_bit_generator, so it can be plugged into
/// <random> distributions, but the convenience members below avoid
/// distribution-object overhead in the simulator's hot loop.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds from a single 64-bit value via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xdeadbeefcafef00dULL) { reseed(seed); }

  /// Derives an independent stream for (seed, stream); used to give each
  /// simulated node its own generator: `Rng(global_seed, node_id)`.
  Rng(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t mix = seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1));
    reseed(splitmix64(mix));
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire's multiply-shift with rejection).
  std::uint64_t next_below(std::uint64_t bound) {
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// The raw 256-bit generator state, for checkpointing.  Restoring via
  /// set_state() resumes the stream exactly where state() captured it.
  std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& state) {
    for (std::size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  void reseed(std::uint64_t seed) {
    for (auto& word : s_) word = splitmix64(seed);
  }

  std::uint64_t s_[4]{};
};

}  // namespace rwbc
