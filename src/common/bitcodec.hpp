// Bit-level message encoding.
//
// The CONGEST model charges algorithms per *bit* transferred on an edge per
// round.  To keep that accounting honest, simulator messages are not C++
// structs shipped by pointer: each message type serialises itself through
// BitWriter/BitReader, and the network meters the exact encoded size.
//
// Field widths are chosen relative to n (node ids take ceil(log2 n) bits,
// walk lengths take ceil(log2(l+1)) bits, ...), so a message provably fits
// in O(log n) bits and the experiment suite can verify Theorem 4 by
// measurement rather than by assumption.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace rwbc {

/// Number of bits needed to represent values in [0, bound), i.e.
/// ceil(log2(bound)); bits_for(1) == 0 (a single possible value needs no
/// bits), bits_for(2) == 1.  Requires bound >= 1.
int bits_for(std::uint64_t bound);

/// Append-only bit buffer. Values are written little-endian bit order.
class BitWriter {
 public:
  /// Writes the low `width` bits of `value`. Requires 0 <= width <= 64 and
  /// value < 2^width.
  void write(std::uint64_t value, int width);

  /// Total bits written so far.
  int bit_count() const { return bit_count_; }

  /// The packed payload (last byte zero-padded).
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  /// Resets to empty while keeping the byte buffer's capacity, so a
  /// per-node scratch writer encodes thousands of messages per round
  /// without reallocating.
  void clear() {
    bytes_.clear();
    bit_count_ = 0;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  int bit_count_ = 0;
};

/// Compact non-negative float encoding for CONGEST messages: value =
/// mantissa * 2^exponent with `mantissa_bits` of precision and a signed
/// `exponent_bits` exponent.  Shortest-path counts sigma_st can be
/// exponential in n, so exact transmission would need Omega(n) bits; the
/// ICDCS'16 companion paper's (1 +/- 1/n^c) approximation is exactly this
/// bounded-precision trade, here with relative error 2^-mantissa_bits.
/// Encoded width = mantissa_bits + exponent_bits.  Values outside the
/// exponent range are clamped (and 0 encodes exactly).
std::uint64_t encode_approx_float(double value, int mantissa_bits,
                                  int exponent_bits);
double decode_approx_float(std::uint64_t encoded, int mantissa_bits,
                           int exponent_bits);

/// Sequential reader over a BitWriter payload.  Stores a raw pointer to the
/// payload bytes (not a copy): the storage — a BitWriter buffer, a message
/// arena slice, a checkpoint blob — must outlive the reader.
class BitReader {
 public:
  BitReader(const std::vector<std::uint8_t>& bytes, int bit_count)
      : bytes_(bytes.data()), bit_count_(bit_count) {}

  /// Reader over raw payload bytes (e.g. an arena-backed message slice);
  /// `bytes` must cover at least ceil(bit_count / 8) bytes.
  BitReader(const std::uint8_t* bytes, int bit_count)
      : bytes_(bytes), bit_count_(bit_count) {}

  /// Reads `width` bits; throws if the payload is exhausted.
  std::uint64_t read(int width);

  /// Bits not yet consumed.
  int remaining() const { return bit_count_ - cursor_; }

 private:
  const std::uint8_t* bytes_;
  int bit_count_;
  int cursor_ = 0;
};

/// Elias-gamma codes a POSITIVE value: k = floor(log2 v) zero bits, a one
/// bit, then the k low-order bits of v — 2*floor(log2 v) + 1 bits total.
/// Small values are cheap (1 encodes in a single bit), which is what makes
/// delta-coded token batches competitive with fixed-width records.
void write_gamma(BitWriter& w, std::uint64_t value);

/// Inverse of write_gamma.  Throws rwbc::Error on exhausted or malformed
/// payloads (a run of 64+ zero bits cannot be a valid prefix).
std::uint64_t read_gamma(BitReader& r);

}  // namespace rwbc
