#include "common/error.hpp"

#include <sstream>

namespace rwbc::detail {

namespace {
std::string format(const char* kind, const char* condition, const char* file,
                   int line, const std::string& message) {
  std::ostringstream os;
  os << kind << ": " << message << " [failed: " << condition << " at " << file
     << ":" << line << "]";
  return os.str();
}
}  // namespace

void throw_error(const char* condition, const char* file, int line,
                 const std::string& message) {
  throw Error(format("precondition violation", condition, file, line, message));
}

void throw_internal(const char* condition, const char* file, int line,
                    const std::string& message) {
  throw InternalError(
      format("internal invariant violation", condition, file, line, message));
}

}  // namespace rwbc::detail
