// A fixed-size fork-join thread pool with static index partitioning.
//
// Built for the CONGEST simulator's round loop, whose determinism contract
// forbids any scheduling-dependent behaviour: parallel_for(count, body)
// splits [0, count) into size() contiguous chunks decided by arithmetic
// alone (chunk t covers [t*count/size(), (t+1)*count/size())), so which
// thread runs which index is a pure function of (count, size()) — no work
// stealing, no dynamic load balancing.  Callers that need identical results
// across thread counts must therefore make body(i) independent of execution
// order, which the simulator guarantees by giving every node its own RNG,
// mailboxes, and metric tallies (see congest/network.cpp).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rwbc {

/// A reusable fork-join pool.  parallel_for blocks the caller until every
/// index ran; the calling thread itself executes chunk 0, so a pool of size
/// 1 degenerates to an inline loop with zero synchronisation.
///
/// Thread-compatibility: one parallel_for at a time (the simulator drives
/// one round at a time); nested parallel_for calls from inside a body are
/// not supported and deadlock by design rather than silently oversubscribe.
class ThreadPool {
 public:
  /// Creates a pool running bodies on `num_threads` threads total: the
  /// caller plus num_threads - 1 persistent workers.  Requires
  /// num_threads >= 1 (throws rwbc::Error otherwise).
  explicit ThreadPool(std::size_t num_threads);

  /// Joins all workers.  Must not race with an in-flight parallel_for.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute bodies (caller included).
  std::size_t size() const { return thread_count_; }

  /// Invokes body(i) for every i in [0, count) and blocks until done.
  ///
  /// Exceptions: if any body throws, the exception raised at the SMALLEST
  /// failing index is rethrown here — the same exception a serial
  /// `for (i = 0; i < count; ++i) body(i)` loop would surface — and the
  /// chunk that threw stops at its failure point (other chunks still run
  /// to completion, so shared state they touch stays consistent).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Range flavour for cheap per-index work (the arena's counting and
  /// prefix passes): each chunk invokes body(begin, end) ONCE over its
  /// contiguous index range, so the per-index cost is a plain loop
  /// iteration instead of a std::function call.  Chunk boundaries are the
  /// same arithmetic as parallel_for.  A throwing body is reported at its
  /// chunk's begin index (the body owns the range; the pool cannot know
  /// which index failed) and the smallest such index's exception wins.
  void parallel_for_ranges(
      std::size_t count,
      const std::function<void(std::size_t, std::size_t)>& body);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to return 0 when unknown).
  static std::size_t hardware_threads();

 private:
  void worker_main(std::size_t chunk);
  void run_chunk(std::size_t chunk);
  void record_failure(std::size_t index);

  const std::size_t thread_count_;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  bool stop_ = false;
  std::uint64_t generation_ = 0;    // bumped once per parallel_for
  std::size_t pending_workers_ = 0; // workers not yet finished this generation
  std::size_t count_ = 0;
  const std::function<void(std::size_t)>* body_ = nullptr;
  const std::function<void(std::size_t, std::size_t)>* range_body_ = nullptr;
  std::size_t failed_index_ = 0;
  std::exception_ptr failure_;
};

/// Deterministic map-reduce over [0, count): `map(begin, end)` produces one
/// partial per fixed-width chunk (width independent of the pool size), and
/// the partials are combined left-to-right in ascending chunk order — so
/// the result is bit-identical at every thread count, including for
/// non-associative combines like double addition.  A null pool (or a pool
/// of size 1) folds the same chunks serially in the same order.
///
/// This is the REDUCTION idiom the counting phase uses to merge per-node
/// tallies: each map chunk owns a disjoint index range (no shared writes),
/// and the combine order is a pure function of `count` and `chunk_width`.
template <typename T, typename Map, typename Combine>
T parallel_reduce(ThreadPool* pool, std::size_t count, T identity,
                  const Map& map, const Combine& combine,
                  std::size_t chunk_width = 2048) {
  if (count == 0) return identity;
  const std::size_t chunks = (count + chunk_width - 1) / chunk_width;
  if (pool == nullptr || pool->size() == 1 || chunks == 1) {
    T acc = identity;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t begin = c * chunk_width;
      const std::size_t end = begin + chunk_width < count
                                  ? begin + chunk_width
                                  : count;
      acc = combine(acc, map(begin, end));
    }
    return acc;
  }
  std::vector<T> partials(chunks, identity);
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = c * chunk_width;
    const std::size_t end =
        begin + chunk_width < count ? begin + chunk_width : count;
    partials[c] = map(begin, end);
  });
  T acc = identity;
  for (std::size_t c = 0; c < chunks; ++c) acc = combine(acc, partials[c]);
  return acc;
}

}  // namespace rwbc
