#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rwbc {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.count = values.size();
  s.min = *std::min_element(values.begin(), values.end());
  s.max = *std::max_element(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.count);
  if (s.count >= 2) {
    double ss = 0.0;
    for (double v : values) ss += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.count - 1));
  }
  return s;
}

LinearFit fit_line(std::span<const double> xs, std::span<const double> ys) {
  RWBC_REQUIRE(xs.size() == ys.size(), "fit_line needs equal-length samples");
  RWBC_REQUIRE(xs.size() >= 2, "fit_line needs at least 2 points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  RWBC_REQUIRE(std::abs(denom) > 1e-30, "fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 1e-30) {
    fit.r_squared = 1.0;
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += r * r;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  RWBC_REQUIRE(xs.size() == ys.size(), "fit_power needs equal-length samples");
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    RWBC_REQUIRE(xs[i] > 0 && ys[i] > 0, "fit_power needs positive samples");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit line = fit_line(lx, ly);
  PowerFit fit;
  fit.exponent = line.slope;
  fit.coefficient = std::exp(line.intercept);
  fit.r_squared = line.r_squared;
  return fit;
}

namespace {
double relative_error(double exact, double approx, double floor) {
  const double scale = std::max(std::abs(exact), floor);
  return std::abs(approx - exact) / scale;
}
}  // namespace

double max_relative_error(std::span<const double> exact,
                          std::span<const double> approx, double floor) {
  RWBC_REQUIRE(exact.size() == approx.size(),
               "max_relative_error needs equal-length samples");
  double worst = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, relative_error(exact[i], approx[i], floor));
  }
  return worst;
}

double mean_relative_error(std::span<const double> exact,
                           std::span<const double> approx, double floor) {
  RWBC_REQUIRE(exact.size() == approx.size(),
               "mean_relative_error needs equal-length samples");
  if (exact.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    sum += relative_error(exact[i], approx[i], floor);
  }
  return sum / static_cast<double>(exact.size());
}

}  // namespace rwbc
