#include "common/table.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace rwbc {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt(std::int64_t value) { return std::to_string(value); }
std::string Table::fmt(std::uint64_t value) { return std::to_string(value); }
std::string Table::fmt(int value) { return std::to_string(value); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace rwbc
