#include "common/rng.hpp"

// Rng is fully inline; this translation unit exists so the target has a
// stable object file for the header's ODR-used constants if any appear later.
namespace rwbc {
static_assert(Rng::min() == 0);
}  // namespace rwbc
