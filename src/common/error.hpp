// Error handling for the rwbc library.
//
// The library reports contract violations (bad arguments, malformed graphs,
// out-of-range parameters) by throwing `rwbc::Error`, and internal logic
// failures by throwing `rwbc::InternalError`.  Both derive from
// `std::runtime_error` so callers can catch either granularly or wholesale.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace rwbc {

/// Thrown when a caller violates a documented precondition (e.g. passing a
/// disconnected graph to an algorithm that requires connectivity).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when external input (an edge-list file, a CLI argument) fails to
/// parse.  Carries the 1-based line number when one is known so tools can
/// point the user at the offending line; line() is 0 when not applicable.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what, std::size_t line = 0)
      : Error(line == 0 ? what : "line " + std::to_string(line) + ": " + what),
        line_(line) {}

  std::size_t line() const { return line_; }

 private:
  std::size_t line_ = 0;
};

/// Thrown when a checkpoint file is missing, truncated, corrupted (checksum
/// mismatch), from an unsupported format version, or incompatible with the
/// run being resumed.  Distinct from Error so recovery code (RunSupervisor)
/// can fall back to an older snapshot on exactly these failures while still
/// propagating genuine usage errors.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* condition, const char* file, int line,
                              const std::string& message);
[[noreturn]] void throw_internal(const char* condition, const char* file,
                                 int line, const std::string& message);
}  // namespace detail

}  // namespace rwbc

/// Validates a documented precondition; throws rwbc::Error on failure.
#define RWBC_REQUIRE(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rwbc::detail::throw_error(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                    \
  } while (false)

/// Validates an internal invariant; throws rwbc::InternalError on failure.
#define RWBC_ASSERT(cond, msg)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rwbc::detail::throw_internal(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                    \
  } while (false)
