// Error handling for the rwbc library.
//
// The library reports contract violations (bad arguments, malformed graphs,
// out-of-range parameters) by throwing `rwbc::Error`, and internal logic
// failures by throwing `rwbc::InternalError`.  Both derive from
// `std::runtime_error` so callers can catch either granularly or wholesale.
#pragma once

#include <stdexcept>
#include <string>

namespace rwbc {

/// Thrown when a caller violates a documented precondition (e.g. passing a
/// disconnected graph to an algorithm that requires connectivity).
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated; indicates a library bug.
class InternalError : public std::runtime_error {
 public:
  explicit InternalError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* condition, const char* file, int line,
                              const std::string& message);
[[noreturn]] void throw_internal(const char* condition, const char* file,
                                 int line, const std::string& message);
}  // namespace detail

}  // namespace rwbc

/// Validates a documented precondition; throws rwbc::Error on failure.
#define RWBC_REQUIRE(cond, msg)                                          \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rwbc::detail::throw_error(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                    \
  } while (false)

/// Validates an internal invariant; throws rwbc::InternalError on failure.
#define RWBC_ASSERT(cond, msg)                                           \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::rwbc::detail::throw_internal(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                    \
  } while (false)
