// Set-disjointness instance generation for the lower-bound experiments.
//
// Theorem 8 / Corollary 1: deciding whether Alice's family X and Bob's
// family Y intersect costs Omega(N log N) communicated bits.  The
// experiment pipeline is: draw an instance -> wire it into the Fig. 2
// gadget -> compute (exactly, or with the distributed algorithm while
// metering the cut) node P's betweenness -> check Lemma 4's separation.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"

namespace rwbc {

/// A two-party disjointness instance in the gadget's encoding: families of
/// rails/2-sized subsets of [0, rails).
struct DisjointnessInstance {
  int rails = 0;                     ///< M (even)
  std::vector<std::vector<int>> x;   ///< Alice's family, |x| = N
  std::vector<std::vector<int>> y;   ///< Bob's family, |y| = N
};

/// True iff every X_i is disjoint from every Y_j — the Fig. 2 condition
/// under which b_P is minimal ("each S_i is equal to all T_j").
bool instance_is_disjoint(const DisjointnessInstance& instance);

/// Draws a YES instance: a random half H of the rails; every X_i = H and
/// every Y_j = complement(H) (the only way same-size halves can be pairwise
/// disjoint).
DisjointnessInstance make_disjoint_instance(int rails, int family_size,
                                            Rng& rng);

/// Draws a NO instance: starts from a YES instance and swaps `overlap`
/// elements of one random Y_j into Alice's half, creating that many
/// collisions.  Requires 1 <= overlap <= rails/2.
DisjointnessInstance make_intersecting_instance(int rails, int family_size,
                                                Rng& rng, int overlap = 1);

/// The communication lower bound Theorem 8 assigns to an N-set instance:
/// Omega(N log N) bits, reported with constant 1 (shape comparisons only).
double disjointness_bits_lower_bound(int family_size);

}  // namespace rwbc
