#include "lowerbound/gadget.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace rwbc {

GadgetLayout build_gadget(int rails,
                          const std::vector<std::vector<int>>& s_links,
                          const std::vector<std::vector<int>>& t_links) {
  RWBC_REQUIRE(rails >= 1, "gadget needs at least one rail");
  RWBC_REQUIRE(!s_links.empty() && !t_links.empty(),
               "gadget needs at least one S and one T node");
  auto validate = [rails](const std::vector<std::vector<int>>& links) {
    for (const auto& list : links) {
      RWBC_REQUIRE(!list.empty(), "every S/T node needs at least one edge");
      for (int j : list) {
        RWBC_REQUIRE(j >= 0 && j < rails, "rail index out of range");
      }
    }
  };
  validate(s_links);
  validate(t_links);

  GadgetLayout layout;
  const auto m = static_cast<std::size_t>(rails);
  NodeId next = 0;
  layout.left.resize(m);
  layout.right.resize(m);
  for (std::size_t i = 0; i < m; ++i) layout.left[i] = next++;
  for (std::size_t i = 0; i < m; ++i) layout.right[i] = next++;
  layout.sources.resize(s_links.size());
  for (auto& s : layout.sources) s = next++;
  layout.sinks.resize(t_links.size());
  for (auto& t : layout.sinks) t = next++;
  layout.a = next++;
  layout.b = next++;
  layout.p = next++;

  GraphBuilder builder(next);
  for (std::size_t i = 0; i < m; ++i) {
    builder.add_edge(layout.left[i], layout.right[i]);  // rails
    builder.add_edge(layout.a, layout.left[i]);
    builder.add_edge(layout.b, layout.right[i]);
  }
  builder.add_edge(layout.a, layout.b);
  for (std::size_t i = 0; i < s_links.size(); ++i) {
    for (int j : s_links[i]) {
      builder.add_edge(layout.sources[i],
                       layout.left[static_cast<std::size_t>(j)]);
    }
    builder.add_edge(layout.p, layout.sources[i]);
  }
  for (std::size_t i = 0; i < t_links.size(); ++i) {
    for (int j : t_links[i]) {
      builder.add_edge(layout.sinks[i],
                       layout.right[static_cast<std::size_t>(j)]);
    }
    builder.add_edge(layout.p, layout.sinks[i]);
  }
  layout.graph = builder.build();
  return layout;
}

GadgetLayout build_disjointness_gadget(int rails,
                                       const std::vector<std::vector<int>>& x,
                                       const std::vector<std::vector<int>>& y) {
  RWBC_REQUIRE(rails >= 2 && rails % 2 == 0,
               "Fig. 2 wiring needs an even rail count");
  const auto half = static_cast<std::size_t>(rails / 2);
  for (const auto& xi : x) {
    RWBC_REQUIRE(xi.size() == half, "|X_i| must equal rails/2");
  }
  std::vector<std::vector<int>> t_links;
  t_links.reserve(y.size());
  for (const auto& yi : y) {
    RWBC_REQUIRE(yi.size() == half, "|Y_i| must equal rails/2");
    // T_i joins the complement of Y_i (Fig. 2: edge when Y_i does NOT
    // contain the rail).
    std::vector<bool> in_y(static_cast<std::size_t>(rails), false);
    for (int j : yi) {
      RWBC_REQUIRE(j >= 0 && j < rails, "rail index out of range");
      RWBC_REQUIRE(!in_y[static_cast<std::size_t>(j)],
                   "duplicate rail index in Y_i");
      in_y[static_cast<std::size_t>(j)] = true;
    }
    std::vector<int> complement;
    complement.reserve(half);
    for (int j = 0; j < rails; ++j) {
      if (!in_y[static_cast<std::size_t>(j)]) complement.push_back(j);
    }
    t_links.push_back(std::move(complement));
  }
  return build_gadget(rails, x, t_links);
}

std::vector<Edge> gadget_cut_edges(const GadgetLayout& layout) {
  std::vector<Edge> cut;
  cut.reserve(layout.left.size() + 1);
  for (std::size_t i = 0; i < layout.left.size(); ++i) {
    cut.push_back(Edge{std::min(layout.left[i], layout.right[i]),
                       std::max(layout.left[i], layout.right[i])});
  }
  cut.push_back(Edge{std::min(layout.a, layout.b),
                     std::max(layout.a, layout.b)});
  return cut;
}

}  // namespace rwbc
