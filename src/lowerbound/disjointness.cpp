#include "lowerbound/disjointness.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace rwbc {

bool instance_is_disjoint(const DisjointnessInstance& instance) {
  std::vector<bool> in_x(static_cast<std::size_t>(instance.rails), false);
  for (const auto& xi : instance.x) {
    for (int j : xi) in_x[static_cast<std::size_t>(j)] = true;
  }
  for (const auto& yj : instance.y) {
    for (int j : yj) {
      if (in_x[static_cast<std::size_t>(j)]) return false;
    }
  }
  return true;
}

namespace {
std::vector<int> random_half(int rails, Rng& rng) {
  std::vector<int> all(static_cast<std::size_t>(rails));
  for (int j = 0; j < rails; ++j) all[static_cast<std::size_t>(j)] = j;
  // Partial Fisher-Yates: first rails/2 entries become a uniform half.
  const auto half = static_cast<std::size_t>(rails / 2);
  for (std::size_t i = 0; i < half; ++i) {
    const std::size_t j = i + rng.next_below(all.size() - i);
    std::swap(all[i], all[j]);
  }
  std::vector<int> picked(all.begin(), all.begin() + static_cast<long>(half));
  std::sort(picked.begin(), picked.end());
  return picked;
}
}  // namespace

DisjointnessInstance make_disjoint_instance(int rails, int family_size,
                                            Rng& rng) {
  RWBC_REQUIRE(rails >= 2 && rails % 2 == 0, "rails must be even and >= 2");
  RWBC_REQUIRE(family_size >= 1, "family size must be >= 1");
  DisjointnessInstance instance;
  instance.rails = rails;
  const std::vector<int> alice_half = random_half(rails, rng);
  std::vector<bool> in_alice(static_cast<std::size_t>(rails), false);
  for (int j : alice_half) in_alice[static_cast<std::size_t>(j)] = true;
  std::vector<int> bob_half;
  for (int j = 0; j < rails; ++j) {
    if (!in_alice[static_cast<std::size_t>(j)]) bob_half.push_back(j);
  }
  instance.x.assign(static_cast<std::size_t>(family_size), alice_half);
  instance.y.assign(static_cast<std::size_t>(family_size), bob_half);
  return instance;
}

DisjointnessInstance make_intersecting_instance(int rails, int family_size,
                                                Rng& rng, int overlap) {
  RWBC_REQUIRE(overlap >= 1 && overlap <= rails / 2,
               "overlap must be in [1, rails/2]");
  DisjointnessInstance instance =
      make_disjoint_instance(rails, family_size, rng);
  // Swap `overlap` of one random Y_j's elements for elements of X's half,
  // creating exactly that many collisions while keeping |Y_j| = rails/2.
  auto& victim =
      instance.y[rng.next_below(instance.y.size())];
  const auto& alice_half = instance.x[0];
  for (int k = 0; k < overlap; ++k) {
    victim[static_cast<std::size_t>(k)] =
        alice_half[static_cast<std::size_t>(k)];
  }
  std::sort(victim.begin(), victim.end());
  RWBC_ASSERT(!instance_is_disjoint(instance),
              "intersecting instance construction failed");
  return instance;
}

double disjointness_bits_lower_bound(int family_size) {
  RWBC_REQUIRE(family_size >= 1, "family size must be >= 1");
  const double n = static_cast<double>(family_size);
  return n * std::log2(std::max(2.0, n));
}

}  // namespace rwbc
