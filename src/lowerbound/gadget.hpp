// The Section VIII lower-bound construction (Figs. 2-5).
//
// The gadget reduces two-party set disjointness to deciding node P's exact
// random-walk betweenness: Alice's input becomes the S-side wiring, Bob's
// the T-side wiring, and Lemma 4 says b_P attains its minimum exactly when
// the inputs are disjoint.  Any exact distributed algorithm therefore
// pushes Omega(N log N) bits through the M+1-edge cut between the halves,
// giving Omega(n / log n) rounds (Theorem 6).
//
// Layout (matching Fig. 2):
//   L_1..L_M  --- R_1..R_M      one "rail" edge L_i - R_i each
//   A - B                       A also joins every L_i, B every R_i
//   S_1..S_Ns                   S_i - L_j for each j in s_links[i]
//   T_1..T_Nt                   T_i - R_j for each j in t_links[i]
//   P                           P - S_i and P - T_i for every i
//
// `build_gadget` takes the already-resolved neighbour lists so the Lemma 5
// and Lemma 6 micro-cases (single-edge S/T nodes) use the same builder;
// `build_disjointness_gadget` applies the paper's Fig. 2 convention where
// T_j is wired to the *complement* of Y_j.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace rwbc {

/// Node-id bookkeeping for a built gadget.
struct GadgetLayout {
  Graph graph;
  std::vector<NodeId> left;     ///< L_1..L_M
  std::vector<NodeId> right;    ///< R_1..R_M
  std::vector<NodeId> sources;  ///< S_1..S_Ns (Alice's side)
  std::vector<NodeId> sinks;    ///< T_1..T_Nt (Bob's side)
  NodeId a = -1;
  NodeId b = -1;
  NodeId p = -1;
};

/// Builds the gadget from explicit neighbour lists: s_links[i] (t_links[i])
/// are the rail indices in [0, M) that S_i (T_i) joins.  Every list must be
/// non-empty; at least one S and one T node are required.
GadgetLayout build_gadget(int rails,
                          const std::vector<std::vector<int>>& s_links,
                          const std::vector<std::vector<int>>& t_links);

/// The paper's Fig. 2 wiring: S_i joins X[i]; T_j joins the complement of
/// Y[j] within [0, M).  |X[i]| and |Y[j]| must equal rails/2 (rails even),
/// so S_i "equals" T_j (Fig. 2's notation) iff X[i] and Y[j] are disjoint.
GadgetLayout build_disjointness_gadget(int rails,
                                       const std::vector<std::vector<int>>& x,
                                       const std::vector<std::vector<int>>& y);

/// The Alice/Bob cut of the construction: the M rail edges plus A-B.
/// (P is shared; its S- and T-side edges are charged to neither party,
/// matching the proof where Alice and Bob jointly simulate P.)
std::vector<Edge> gadget_cut_edges(const GadgetLayout& layout);

}  // namespace rwbc
