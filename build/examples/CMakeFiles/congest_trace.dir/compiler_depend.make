# Empty compiler generated dependencies file for congest_trace.
# This may be replaced when dependencies are built.
