# Empty compiler generated dependencies file for weighted_network.
# This may be replaced when dependencies are built.
