file(REMOVE_RECURSE
  "CMakeFiles/weighted_network.dir/weighted_network.cpp.o"
  "CMakeFiles/weighted_network.dir/weighted_network.cpp.o.d"
  "weighted_network"
  "weighted_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/weighted_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
