# Empty dependencies file for rwbc_cli.
# This may be replaced when dependencies are built.
