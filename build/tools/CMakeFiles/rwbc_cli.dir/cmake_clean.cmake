file(REMOVE_RECURSE
  "CMakeFiles/rwbc_cli.dir/rwbc_cli.cpp.o"
  "CMakeFiles/rwbc_cli.dir/rwbc_cli.cpp.o.d"
  "rwbc_cli"
  "rwbc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rwbc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
