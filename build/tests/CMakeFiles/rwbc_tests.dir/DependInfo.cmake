
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/alpha_cfb_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/alpha_cfb_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/alpha_cfb_test.cpp.o.d"
  "/root/repo/tests/brandes_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/brandes_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/brandes_test.cpp.o.d"
  "/root/repo/tests/classic_centrality_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/classic_centrality_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/classic_centrality_test.cpp.o.d"
  "/root/repo/tests/common_bitcodec_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/common_bitcodec_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/common_bitcodec_test.cpp.o.d"
  "/root/repo/tests/common_rng_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/common_rng_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/common_rng_test.cpp.o.d"
  "/root/repo/tests/common_stats_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/common_stats_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/common_stats_test.cpp.o.d"
  "/root/repo/tests/common_table_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/common_table_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/common_table_test.cpp.o.d"
  "/root/repo/tests/compute_phase_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/compute_phase_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/compute_phase_test.cpp.o.d"
  "/root/repo/tests/congest_network_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/congest_network_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/congest_network_test.cpp.o.d"
  "/root/repo/tests/congest_protocols_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/congest_protocols_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/congest_protocols_test.cpp.o.d"
  "/root/repo/tests/counting_phase_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/counting_phase_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/counting_phase_test.cpp.o.d"
  "/root/repo/tests/current_flow_exact_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/current_flow_exact_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/current_flow_exact_test.cpp.o.d"
  "/root/repo/tests/current_flow_mc_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/current_flow_mc_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/current_flow_mc_test.cpp.o.d"
  "/root/repo/tests/distributed_alpha_cfb_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/distributed_alpha_cfb_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/distributed_alpha_cfb_test.cpp.o.d"
  "/root/repo/tests/distributed_pagerank_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/distributed_pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/distributed_pagerank_test.cpp.o.d"
  "/root/repo/tests/distributed_rwbc_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/distributed_rwbc_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/distributed_rwbc_test.cpp.o.d"
  "/root/repo/tests/distributed_spbc_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/distributed_spbc_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/distributed_spbc_test.cpp.o.d"
  "/root/repo/tests/flow_betweenness_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/flow_betweenness_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/flow_betweenness_test.cpp.o.d"
  "/root/repo/tests/gather_exact_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/gather_exact_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/gather_exact_test.cpp.o.d"
  "/root/repo/tests/generators_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/generators_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/generators_test.cpp.o.d"
  "/root/repo/tests/graph_io_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/graph_io_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/graph_io_test.cpp.o.d"
  "/root/repo/tests/graph_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/graph_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/graph_test.cpp.o.d"
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/integration_test.cpp.o.d"
  "/root/repo/tests/linalg_csr_cg_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/linalg_csr_cg_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/linalg_csr_cg_test.cpp.o.d"
  "/root/repo/tests/linalg_dense_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/linalg_dense_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/linalg_dense_test.cpp.o.d"
  "/root/repo/tests/linalg_laplacian_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/linalg_laplacian_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/linalg_laplacian_test.cpp.o.d"
  "/root/repo/tests/linalg_lu_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/linalg_lu_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/linalg_lu_test.cpp.o.d"
  "/root/repo/tests/lowerbound_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/lowerbound_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/lowerbound_test.cpp.o.d"
  "/root/repo/tests/maxflow_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/maxflow_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/maxflow_test.cpp.o.d"
  "/root/repo/tests/pagerank_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/pagerank_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/pagerank_test.cpp.o.d"
  "/root/repo/tests/properties_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/properties_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/properties_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/ranking_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/ranking_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/ranking_test.cpp.o.d"
  "/root/repo/tests/resistance_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/resistance_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/resistance_test.cpp.o.d"
  "/root/repo/tests/rwbc_params_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/rwbc_params_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/rwbc_params_test.cpp.o.d"
  "/root/repo/tests/sarma_walk_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/sarma_walk_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/sarma_walk_test.cpp.o.d"
  "/root/repo/tests/weighted_test.cpp" "tests/CMakeFiles/rwbc_tests.dir/weighted_test.cpp.o" "gcc" "tests/CMakeFiles/rwbc_tests.dir/weighted_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rwbc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
