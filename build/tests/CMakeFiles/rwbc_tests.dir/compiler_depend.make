# Empty compiler generated dependencies file for rwbc_tests.
# This may be replaced when dependencies are built.
