# Empty compiler generated dependencies file for rwbc.
# This may be replaced when dependencies are built.
