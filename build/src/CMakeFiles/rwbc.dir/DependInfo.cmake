
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/centrality/alpha_cfb.cpp" "src/CMakeFiles/rwbc.dir/centrality/alpha_cfb.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/alpha_cfb.cpp.o.d"
  "/root/repo/src/centrality/brandes.cpp" "src/CMakeFiles/rwbc.dir/centrality/brandes.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/brandes.cpp.o.d"
  "/root/repo/src/centrality/classic.cpp" "src/CMakeFiles/rwbc.dir/centrality/classic.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/classic.cpp.o.d"
  "/root/repo/src/centrality/current_flow_exact.cpp" "src/CMakeFiles/rwbc.dir/centrality/current_flow_exact.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/current_flow_exact.cpp.o.d"
  "/root/repo/src/centrality/current_flow_mc.cpp" "src/CMakeFiles/rwbc.dir/centrality/current_flow_mc.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/current_flow_mc.cpp.o.d"
  "/root/repo/src/centrality/current_flow_weighted.cpp" "src/CMakeFiles/rwbc.dir/centrality/current_flow_weighted.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/current_flow_weighted.cpp.o.d"
  "/root/repo/src/centrality/flow_betweenness.cpp" "src/CMakeFiles/rwbc.dir/centrality/flow_betweenness.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/flow_betweenness.cpp.o.d"
  "/root/repo/src/centrality/maxflow.cpp" "src/CMakeFiles/rwbc.dir/centrality/maxflow.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/maxflow.cpp.o.d"
  "/root/repo/src/centrality/pagerank.cpp" "src/CMakeFiles/rwbc.dir/centrality/pagerank.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/pagerank.cpp.o.d"
  "/root/repo/src/centrality/ranking.cpp" "src/CMakeFiles/rwbc.dir/centrality/ranking.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/centrality/ranking.cpp.o.d"
  "/root/repo/src/common/bitcodec.cpp" "src/CMakeFiles/rwbc.dir/common/bitcodec.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/common/bitcodec.cpp.o.d"
  "/root/repo/src/common/error.cpp" "src/CMakeFiles/rwbc.dir/common/error.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/common/error.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/rwbc.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/rwbc.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/rwbc.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/common/table.cpp.o.d"
  "/root/repo/src/congest/metrics.cpp" "src/CMakeFiles/rwbc.dir/congest/metrics.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/metrics.cpp.o.d"
  "/root/repo/src/congest/network.cpp" "src/CMakeFiles/rwbc.dir/congest/network.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/network.cpp.o.d"
  "/root/repo/src/congest/protocols/bfs_tree.cpp" "src/CMakeFiles/rwbc.dir/congest/protocols/bfs_tree.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/protocols/bfs_tree.cpp.o.d"
  "/root/repo/src/congest/protocols/broadcast.cpp" "src/CMakeFiles/rwbc.dir/congest/protocols/broadcast.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/protocols/broadcast.cpp.o.d"
  "/root/repo/src/congest/protocols/convergecast.cpp" "src/CMakeFiles/rwbc.dir/congest/protocols/convergecast.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/protocols/convergecast.cpp.o.d"
  "/root/repo/src/congest/protocols/leader_election.cpp" "src/CMakeFiles/rwbc.dir/congest/protocols/leader_election.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/congest/protocols/leader_election.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/rwbc.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/rwbc.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/rwbc.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/properties.cpp" "src/CMakeFiles/rwbc.dir/graph/properties.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/graph/properties.cpp.o.d"
  "/root/repo/src/graph/weighted.cpp" "src/CMakeFiles/rwbc.dir/graph/weighted.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/graph/weighted.cpp.o.d"
  "/root/repo/src/linalg/cg.cpp" "src/CMakeFiles/rwbc.dir/linalg/cg.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/cg.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/CMakeFiles/rwbc.dir/linalg/csr.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/csr.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/rwbc.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/laplacian.cpp" "src/CMakeFiles/rwbc.dir/linalg/laplacian.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/laplacian.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/rwbc.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/resistance.cpp" "src/CMakeFiles/rwbc.dir/linalg/resistance.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/linalg/resistance.cpp.o.d"
  "/root/repo/src/lowerbound/disjointness.cpp" "src/CMakeFiles/rwbc.dir/lowerbound/disjointness.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/lowerbound/disjointness.cpp.o.d"
  "/root/repo/src/lowerbound/gadget.cpp" "src/CMakeFiles/rwbc.dir/lowerbound/gadget.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/lowerbound/gadget.cpp.o.d"
  "/root/repo/src/rwbc/compute_node.cpp" "src/CMakeFiles/rwbc.dir/rwbc/compute_node.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/compute_node.cpp.o.d"
  "/root/repo/src/rwbc/counting_node.cpp" "src/CMakeFiles/rwbc.dir/rwbc/counting_node.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/counting_node.cpp.o.d"
  "/root/repo/src/rwbc/distributed_alpha_cfb.cpp" "src/CMakeFiles/rwbc.dir/rwbc/distributed_alpha_cfb.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/distributed_alpha_cfb.cpp.o.d"
  "/root/repo/src/rwbc/distributed_pagerank.cpp" "src/CMakeFiles/rwbc.dir/rwbc/distributed_pagerank.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/distributed_pagerank.cpp.o.d"
  "/root/repo/src/rwbc/distributed_rwbc.cpp" "src/CMakeFiles/rwbc.dir/rwbc/distributed_rwbc.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/distributed_rwbc.cpp.o.d"
  "/root/repo/src/rwbc/distributed_spbc.cpp" "src/CMakeFiles/rwbc.dir/rwbc/distributed_spbc.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/distributed_spbc.cpp.o.d"
  "/root/repo/src/rwbc/gather_exact.cpp" "src/CMakeFiles/rwbc.dir/rwbc/gather_exact.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/gather_exact.cpp.o.d"
  "/root/repo/src/rwbc/params.cpp" "src/CMakeFiles/rwbc.dir/rwbc/params.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/params.cpp.o.d"
  "/root/repo/src/rwbc/sarma_walk.cpp" "src/CMakeFiles/rwbc.dir/rwbc/sarma_walk.cpp.o" "gcc" "src/CMakeFiles/rwbc.dir/rwbc/sarma_walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
