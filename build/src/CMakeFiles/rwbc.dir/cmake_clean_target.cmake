file(REMOVE_RECURSE
  "librwbc.a"
)
