# Empty dependencies file for bench_e5_congest.
# This may be replaced when dependencies are built.
