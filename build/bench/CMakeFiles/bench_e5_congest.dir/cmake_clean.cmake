file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_congest.dir/bench_e5_congest.cpp.o"
  "CMakeFiles/bench_e5_congest.dir/bench_e5_congest.cpp.o.d"
  "bench_e5_congest"
  "bench_e5_congest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_congest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
