file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_sarma.dir/bench_e11_sarma.cpp.o"
  "CMakeFiles/bench_e11_sarma.dir/bench_e11_sarma.cpp.o.d"
  "bench_e11_sarma"
  "bench_e11_sarma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_sarma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
