file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_lowerbound.dir/bench_e6_lowerbound.cpp.o"
  "CMakeFiles/bench_e6_lowerbound.dir/bench_e6_lowerbound.cpp.o.d"
  "bench_e6_lowerbound"
  "bench_e6_lowerbound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_lowerbound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
