file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_measures.dir/bench_e9_measures.cpp.o"
  "CMakeFiles/bench_e9_measures.dir/bench_e9_measures.cpp.o.d"
  "bench_e9_measures"
  "bench_e9_measures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_measures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
