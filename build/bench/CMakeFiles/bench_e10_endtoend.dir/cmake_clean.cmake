file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_endtoend.dir/bench_e10_endtoend.cpp.o"
  "CMakeFiles/bench_e10_endtoend.dir/bench_e10_endtoend.cpp.o.d"
  "bench_e10_endtoend"
  "bench_e10_endtoend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_endtoend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
