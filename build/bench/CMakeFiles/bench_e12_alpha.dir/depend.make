# Empty dependencies file for bench_e12_alpha.
# This may be replaced when dependencies are built.
