file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_alpha.dir/bench_e12_alpha.cpp.o"
  "CMakeFiles/bench_e12_alpha.dir/bench_e12_alpha.cpp.o.d"
  "bench_e12_alpha"
  "bench_e12_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
