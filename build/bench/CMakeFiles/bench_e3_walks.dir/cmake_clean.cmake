file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_walks.dir/bench_e3_walks.cpp.o"
  "CMakeFiles/bench_e3_walks.dir/bench_e3_walks.cpp.o.d"
  "bench_e3_walks"
  "bench_e3_walks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_walks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
