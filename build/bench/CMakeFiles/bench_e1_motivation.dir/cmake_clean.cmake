file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_motivation.dir/bench_e1_motivation.cpp.o"
  "CMakeFiles/bench_e1_motivation.dir/bench_e1_motivation.cpp.o.d"
  "bench_e1_motivation"
  "bench_e1_motivation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
