file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_cutoff.dir/bench_e2_cutoff.cpp.o"
  "CMakeFiles/bench_e2_cutoff.dir/bench_e2_cutoff.cpp.o.d"
  "bench_e2_cutoff"
  "bench_e2_cutoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_cutoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
