# Empty dependencies file for bench_e2_cutoff.
# This may be replaced when dependencies are built.
