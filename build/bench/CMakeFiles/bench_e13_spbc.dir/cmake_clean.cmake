file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_spbc.dir/bench_e13_spbc.cpp.o"
  "CMakeFiles/bench_e13_spbc.dir/bench_e13_spbc.cpp.o.d"
  "bench_e13_spbc"
  "bench_e13_spbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_spbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
