# Empty dependencies file for bench_e13_spbc.
# This may be replaced when dependencies are built.
