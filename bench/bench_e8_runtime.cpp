// E8 — wall-clock comparison (google-benchmark).
//
// Paper context: Newman's centralized algorithm is O((n+m) n^2) — "could be
// O(n^4), unacceptable" (Section I).  We measure the local-machine cost of
// every solver in the library: exact dense LU, exact sparse CG, centralized
// Monte-Carlo, and the full CONGEST simulation, plus the linear-algebra
// kernels underneath.  (Simulated rounds, not wall-clock, are the paper's
// cost model — see E4 — but a practitioner picking a solver wants this.)
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "centrality/brandes.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "linalg/cg.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace {

using namespace rwbc;

Graph bench_graph(std::int64_t n) {
  return bench::make_family("er", static_cast<NodeId>(n), 29);
}

void BM_ExactDenseLu(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  CurrentFlowOptions options;
  options.solver = CurrentFlowOptions::Solver::kDenseLu;
  for (auto _ : state) {
    benchmark::DoNotOptimize(current_flow_betweenness(g, options));
  }
}
BENCHMARK(BM_ExactDenseLu)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_ExactSparseCg(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  CurrentFlowOptions options;
  options.solver = CurrentFlowOptions::Solver::kSparseCg;
  for (auto _ : state) {
    benchmark::DoNotOptimize(current_flow_betweenness(g, options));
  }
}
BENCHMARK(BM_ExactSparseCg)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_CentralizedMc(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  McOptions options;
  options.walks_per_source = default_walks_per_source(g.node_count());
  options.cutoff = default_cutoff(g.node_count());
  options.target = 0;
  options.seed = 31;
  for (auto _ : state) {
    benchmark::DoNotOptimize(current_flow_betweenness_mc(g, options));
  }
}
BENCHMARK(BM_CentralizedMc)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_DistributedSimulation(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    DistributedRwbcOptions options;  // theorem defaults
    options.congest.seed = 31;
    options.congest.num_threads = rwbc::bench::threads_from_env();
    benchmark::DoNotOptimize(distributed_rwbc(g, options));
  }
}
BENCHMARK(BM_DistributedSimulation)->Arg(32)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

void BM_PivotSampled(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  // 2n sampled pairs: enough for ranking-quality estimates (tests pin the
  // 1/sqrt(pairs) error law).
  const auto pairs = static_cast<std::size_t>(2 * g.node_count());
  for (auto _ : state) {
    benchmark::DoNotOptimize(current_flow_betweenness_pivots(g, pairs, 47));
  }
}
BENCHMARK(BM_PivotSampled)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_BrandesSpbc(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(brandes_betweenness(g));
  }
}
BENCHMARK(BM_BrandesSpbc)->Arg(64)->Arg(256)->Unit(benchmark::kMillisecond);

void BM_LuInverse(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const DenseMatrix reduced = reduced_laplacian_matrix(g, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu_inverse(reduced));
  }
}
BENCHMARK(BM_LuInverse)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_CgSolve(benchmark::State& state) {
  const Graph g = bench_graph(state.range(0));
  const CsrMatrix reduced = reduced_laplacian_csr(g, 0);
  Vector b(reduced.rows(), 0.0);
  b[0] = 1.0;
  Vector x(reduced.rows(), 0.0);
  for (auto _ : state) {
    std::fill(x.begin(), x.end(), 0.0);
    benchmark::DoNotOptimize(conjugate_gradient(reduced, b, x));
  }
}
BENCHMARK(BM_CgSolve)->Arg(64)->Arg(256)->Arg(1024)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
