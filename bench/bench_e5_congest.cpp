// E5 — Theorem 4: CONGEST compliance.
//
// Paper claim: every message is O(log n) bits and each edge carries O(1)
// messages per round.  The simulator meters every bit; here we run the full
// pipeline across families and sizes and report the peak per-edge-per-round
// traffic against the budget (8 * ceil(log2 n) bits by default) — and show
// the peak grows with log n, not with n.
#include <iostream>

#include "bench_common.hpp"
#include "common/bitcodec.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E5: CONGEST compliance (Theorem 4)",
                "claim: peak per-edge traffic is O(log n) bits and O(1) "
                "messages per round, at every size and topology");

  Table table({"family", "n", "budget (bits)", "peak bits", "peak msgs",
               "compliant", "peak/log2(n)"});
  for (const std::string& family : {std::string("er"), std::string("ba"),
                                    std::string("star"), std::string("grid"),
                                    std::string("cycle")}) {
    for (NodeId n : {32, 128, 512}) {
      const Graph g = bench::make_family(family, n, 9);
      DistributedRwbcOptions options;  // theorem defaults: l = 2n, K = 4logn
      options.compute_scores = false;
      options.congest.seed = 13;
      options.congest.num_threads = bench::threads_from_env();
      const auto r = distributed_rwbc(g, options);
      Network probe(g, options.congest);
      const double log_n = static_cast<double>(
          bits_for(static_cast<std::uint64_t>(g.node_count())));
      table.add_row(
          {family, Table::fmt(g.node_count()),
           Table::fmt(probe.bit_budget()),
           Table::fmt(r.report.metrics.max_bits_per_edge_round),
           Table::fmt(r.report.metrics.max_messages_per_edge_round),
           r.report.metrics.max_bits_per_edge_round <= probe.bit_budget() ? "yes"
                                                                 : "NO",
           Table::fmt(
               static_cast<double>(r.report.metrics.max_bits_per_edge_round) / log_n,
               2)});
    }
  }
  table.print(std::cout);
  std::cout << "\nReading: peak bits stay a small constant multiple of "
               "log2(n) as n grows 16x — the Theorem 4 property.\n\n";
  return 0;
}
