// E13 — the companion result [5] (Section I): distributed shortest-path
// betweenness in O(n) rounds with a (1 +/- eps) sigma-precision trade.
//
// Claims regenerated: (a) the distributed SPBC matches Brandes to the
// 22-bit mantissa precision; (b) its rounds grow near-linearly in n;
// (c) the paper's overall narrative — BOTH betweenness flavours are
// computable in ~linear rounds under CONGEST, with RWBC paying an extra
// log factor (and a Monte-Carlo error) for the harder, all-paths measure.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/brandes.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E13: distributed SPBC, the companion result [5]",
                "claims: exact-to-precision agreement with Brandes; O(n) "
                "rounds; the SPBC/RWBC round-cost relationship of Sec. I");

  std::cout << "(a) agreement with Brandes (max |diff|, no sampling — only "
               "the 22-bit sigma mantissa):\n";
  Table agree({"family", "n", "max abs diff"});
  for (const std::string& family : {std::string("er"), std::string("ba"),
                                    std::string("grid")}) {
    const Graph g = bench::make_family(family, 48, 67);
    DistributedSpbcOptions options;
    options.congest.seed = 1;
    const auto distributed = distributed_spbc(g, options);
    const auto exact = brandes_betweenness(g);
    double worst = 0.0;
    for (std::size_t v = 0; v < exact.size(); ++v) {
      worst = std::max(worst,
                       std::abs(distributed.report.scores[v] - exact[v]));
    }
    agree.add_row({family, Table::fmt(g.node_count()), Table::fmt(worst, 9)});
  }
  agree.print(std::cout);

  std::cout << "\n(b) rounds vs n (fit must be near-linear):\n";
  Table rounds_table({"n", "m", "forward rounds", "backward rounds",
                      "total"});
  std::vector<double> ns, rounds;
  for (NodeId n : {32, 64, 128, 256, 512}) {
    const Graph g = bench::make_family("er", n, 67);
    DistributedSpbcOptions options;
    options.congest.seed = 2;
    const auto r = distributed_spbc(g, options);
    ns.push_back(static_cast<double>(g.node_count()));
    rounds.push_back(static_cast<double>(r.report.metrics.rounds));
    rounds_table.add_row(
        {Table::fmt(g.node_count()),
         Table::fmt(static_cast<std::uint64_t>(g.edge_count())),
         Table::fmt(r.forward_metrics.rounds),
         Table::fmt(r.backward_metrics.rounds), Table::fmt(r.report.metrics.rounds)});
  }
  rounds_table.print(std::cout);
  const PowerFit fit = fit_power(ns, rounds);
  std::cout << "rounds ~ n^" << Table::fmt(fit.exponent, 2)
            << " (R^2 = " << Table::fmt(fit.r_squared, 3)
            << "); [5] claims O(n)\n";

  std::cout << "\n(c) the Section I narrative, in rounds (er family):\n";
  Table narrative({"n", "SPBC rounds (exact-to-precision)",
                   "RWBC rounds (Monte-Carlo, K = log n)"});
  for (NodeId n : {64, 256}) {
    const Graph g = bench::make_family("er", n, 67);
    DistributedSpbcOptions spbc_options;
    spbc_options.congest.seed = 3;
    const auto spbc = distributed_spbc(g, spbc_options);
    DistributedRwbcOptions rwbc_options;
    rwbc_options.walks_per_source = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    rwbc_options.compute_scores = false;
    rwbc_options.congest.seed = 3;
    const auto rwbc = distributed_rwbc(g, rwbc_options);
    narrative.add_row({Table::fmt(n), Table::fmt(spbc.report.metrics.rounds),
                       Table::fmt(rwbc.report.metrics.rounds)});
  }
  narrative.print(std::cout);
  std::cout << "\nReading: shortest-path betweenness admits an (almost) "
               "exact linear-round distributed algorithm because sigma "
               "flows along BFS DAGs; random-walk betweenness must sample "
               "all paths, costing the extra K = O(log n) factor and a "
               "Monte-Carlo error — the gap the paper's title prices in.\n\n";
  return 0;
}
