// E1 — Fig. 1 / Section I motivation.
//
// Paper claim: in a two-community graph, node C (on a parallel inter-
// community path) has ZERO shortest-path betweenness but substantial
// random-walk betweenness; the bridge heads A and B score high under both.
// We regenerate the figure's numbers across community sizes, plus a barbell
// control where the bridge nodes dominate both measures.
#include <iostream>

#include "bench_common.hpp"
#include "centrality/brandes.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/ranking.hpp"
#include "common/table.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E1: Fig. 1 motivating example",
                "claim: SPBC(C) = 0 while RWBC(C) is well above the 2/n "
                "endpoint floor; A and B top both rankings");

  Table table({"community size", "n", "SPBC(A)", "SPBC(C)", "RWBC(A)",
               "RWBC(C)", "RWBC floor 2/n", "C's RWBC rank"});
  for (NodeId group : {3, 5, 8, 12}) {
    const Fig1Layout layout = make_fig1_graph(group);
    const auto sp = brandes_betweenness(layout.graph);
    const auto rw = current_flow_betweenness(layout.graph);
    const auto order = rank_order(rw);
    std::size_t c_rank = 0;
    for (std::size_t r = 0; r < order.size(); ++r) {
      if (order[r] == static_cast<std::size_t>(layout.c)) c_rank = r + 1;
    }
    const auto a = static_cast<std::size_t>(layout.a);
    const auto c = static_cast<std::size_t>(layout.c);
    table.add_row(
        {Table::fmt(group), Table::fmt(layout.graph.node_count()),
         Table::fmt(sp[a]), Table::fmt(sp[c]), Table::fmt(rw[a]),
         Table::fmt(rw[c]),
         Table::fmt(2.0 / static_cast<double>(layout.graph.node_count())),
         Table::fmt(static_cast<std::uint64_t>(c_rank)) + "/" +
             Table::fmt(layout.graph.node_count())});
  }
  table.print(std::cout);

  std::cout << "\nBarbell control (no parallel path: both measures agree the "
               "bridge dominates):\n";
  Table control({"k", "bridge node SPBC rank", "bridge node RWBC rank",
                 "Kendall tau(SPBC, RWBC)"});
  for (NodeId k : {5, 8, 12}) {
    const Graph g = make_barbell(k, 2);
    const auto sp = brandes_betweenness(g);
    const auto rw = current_flow_betweenness(g);
    const auto bridge = static_cast<std::size_t>(k);  // first path node
    const auto sp_order = rank_order(sp);
    const auto rw_order = rank_order(rw);
    auto rank_of = [&](const std::vector<std::size_t>& order) {
      for (std::size_t r = 0; r < order.size(); ++r) {
        if (order[r] == bridge) return r + 1;
      }
      return std::size_t{0};
    };
    control.add_row({Table::fmt(k),
                     Table::fmt(static_cast<std::uint64_t>(rank_of(sp_order))),
                     Table::fmt(static_cast<std::uint64_t>(rank_of(rw_order))),
                     Table::fmt(kendall_tau(sp, rw))});
  }
  control.print(std::cout);
  std::cout << "\n";
  return 0;
}
