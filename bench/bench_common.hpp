// Shared helpers for the experiment harness: the workload families used
// across E2-E10 and a tiny header printer so every binary's output is
// self-describing and diffable.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace rwbc::bench {

/// Builds a named family member at (approximately) n nodes.
inline Graph make_family(const std::string& family, NodeId n,
                         std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "complete") return make_complete(n);
  if (family == "barbell") return make_barbell(n / 2, 2);
  if (family == "er") {
    return make_erdos_renyi(n, std::min(1.0, 4.0 / static_cast<double>(n)),
                            rng);
  }
  if (family == "ba") return make_barabasi_albert(n, 2, rng);
  if (family == "ws") return make_watts_strogatz(n, 4, 0.2, rng);
  throw Error("unknown family: " + family);
}

/// The default family list for accuracy sweeps.
inline std::vector<std::string> accuracy_families() {
  return {"er", "ba", "ws", "grid", "cycle"};
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================\n"
            << id << "\n" << claim << "\n"
            << "==================================================\n\n";
}

}  // namespace rwbc::bench
