// Shared helpers for the experiment harness: the workload families used
// across E2-E10 and a tiny header printer so every binary's output is
// self-describing and diffable.
#pragma once

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "rwbc/pipeline.hpp"

namespace rwbc::bench {

/// Simulator threads for the experiment harness, from the RWBC_THREADS
/// environment variable (0 = serial, N = pool of N, -1 = hardware).
/// Results are bit-identical across settings (the scheduler's determinism
/// contract), so sweeping RWBC_THREADS re-times E4/E5/E8/E10/E14 without
/// perturbing any measured round or bit count.  Parsing lives with the
/// --threads flag in rwbc/pipeline.hpp.
inline int threads_from_env() { return pipeline_threads_from_env(); }

/// Thread-count sweep for E14: RWBC_THREAD_SWEEP as a comma-separated list
/// (e.g. "0,2,4,8"); default {0, 2, 4, 8}.
inline std::vector<int> thread_sweep_from_env() {
  const char* value = std::getenv("RWBC_THREAD_SWEEP");
  if (value == nullptr) return {0, 2, 4, 8};
  std::vector<int> sweep;
  std::stringstream stream(value);
  std::string item;
  while (std::getline(stream, item, ',')) {
    if (!item.empty()) sweep.push_back(std::atoi(item.c_str()));
  }
  if (sweep.empty()) sweep.push_back(0);
  return sweep;
}

/// Builds a named family member at (approximately) n nodes.
inline Graph make_family(const std::string& family, NodeId n,
                         std::uint64_t seed) {
  Rng rng(seed);
  if (family == "path") return make_path(n);
  if (family == "cycle") return make_cycle(n);
  if (family == "star") return make_star(n);
  if (family == "grid") {
    NodeId side = 1;
    while ((side + 1) * (side + 1) <= n) ++side;
    return make_grid(side, side);
  }
  if (family == "tree") return make_binary_tree(n);
  if (family == "complete") return make_complete(n);
  if (family == "barbell") return make_barbell(n / 2, 2);
  if (family == "er") {
    return make_erdos_renyi(n, std::min(1.0, 4.0 / static_cast<double>(n)),
                            rng);
  }
  if (family == "ba") return make_barabasi_albert(n, 2, rng);
  if (family == "ws") return make_watts_strogatz(n, 4, 0.2, rng);
  throw Error("unknown family: " + family);
}

/// The default family list for accuracy sweeps.
inline std::vector<std::string> accuracy_families() {
  return {"er", "ba", "ws", "grid", "cycle"};
}

/// Prints the experiment banner.
inline void banner(const std::string& id, const std::string& claim) {
  std::cout << "==================================================\n"
            << id << "\n" << claim << "\n"
            << "==================================================\n\n";
}

}  // namespace rwbc::bench
