// E7 — design-choice ablations for Algorithm 1's congestion rule (line 6).
//
// The paper says: send one walk per edge per round, chosen at random; we
// queue the losers (DESIGN.md resolution 1).  Ablated here:
//   (a) strict CONGEST queueing vs ideal (unbounded) bandwidth — accuracy
//       must be statistically identical (queueing only delays, never
//       biases, because a redraw is the same uniform choice), while rounds
//       drop sharply without the cap;
//   (b) walk slots per edge per round (1, 2, 4) — more slots trade per-edge
//       bits for rounds on hub-heavy graphs.
#include <iostream>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E7: congestion-rule ablation (Alg. 1 line 6)",
                "claims: queueing delays but does not bias; extra walk "
                "slots buy rounds with bits");

  const NodeId n = 48;
  for (const std::string& family :
       {std::string("star"), std::string("ba"), std::string("er")}) {
    const Graph g = bench::make_family(family, n, 17);
    const auto exact = current_flow_betweenness(g);
    std::cout << "family = " << family << " (n = " << g.node_count()
              << ", max degree = " << g.max_degree() << ")\n";
    Table table({"mode", "slots/edge", "counting rounds", "max rel err",
                 "peak bits/edge"});
    for (const bool strict : {true, false}) {
      for (const std::size_t slots : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}}) {
        if (!strict && slots > 1) continue;  // unbounded: slots irrelevant
        DistributedRwbcOptions options;
        options.walks_per_source = 64;
        options.cutoff = 4 * static_cast<std::size_t>(g.node_count());
        options.walks_per_edge_per_round = slots;
        options.run_leader_election = false;
        options.congest.seed = 23;
        options.congest.enforce_bandwidth = strict;
        if (strict) {
          // Each extra slot adds one walk token (~2 log n bits) per round.
          options.congest.bit_floor = 64 + 64 * slots;
        } else {
          options.walks_per_edge_per_round = 1'000'000;  // never queue
        }
        const auto r = distributed_rwbc(g, options);
        table.add_row(
            {strict ? "strict CONGEST" : "ideal bandwidth",
             strict ? Table::fmt(static_cast<std::uint64_t>(slots)) : "inf",
             Table::fmt(r.counting_metrics.rounds),
             Table::fmt(max_relative_error(exact, r.report.scores)),
             Table::fmt(r.report.metrics.max_bits_per_edge_round)});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "Reading: accuracy is flat across all modes (the estimator "
               "is congestion-oblivious); rounds fall as slots rise, "
               "fastest on the star whose hub serialises every walk.\n\n";

  // (b) Length policy: per-move (paper) vs per-round (no termination
  // detection needed, but congestion truncates walks early).
  std::cout << "(b) length policy ablation (DESIGN.md resolution 1):\n";
  Table policy_table({"family", "policy", "counting rounds", "max rel err"});
  for (const std::string& family :
       {std::string("star"), std::string("er")}) {
    const Graph g = bench::make_family(family, n, 17);
    const auto exact = current_flow_betweenness(g);
    for (const LengthPolicy policy :
         {LengthPolicy::kPerMove, LengthPolicy::kPerRound}) {
      DistributedRwbcOptions options;
      options.walks_per_source = 64;
      options.cutoff = 4 * static_cast<std::size_t>(g.node_count());
      options.length_policy = policy;
      options.run_leader_election = false;
      options.congest.seed = 29;
      options.congest.bit_floor = 64;
      const auto r = distributed_rwbc(g, options);
      policy_table.add_row(
          {family,
           policy == LengthPolicy::kPerMove ? "per-move (paper)"
                                            : "per-round",
           Table::fmt(r.counting_metrics.rounds),
           Table::fmt(max_relative_error(exact, r.report.scores))});
    }
  }
  policy_table.print(std::cout);
  std::cout << "Reading: per-round spending caps the phase at ~l rounds. "
               "Counter-intuitively it also LOWERS total error at this "
               "moderate K: queued walks losing budget acts as an implicit "
               "cutoff reduction, and (per E2's U-shape) shorter effective "
               "walks mean less visit variance for Eq. 6's |.| to rectify "
               "into bias.  The paper's per-move semantics is the unbiased-"
               "in-expectation choice — its advantage shows once K is "
               "large enough for truncation bias, not variance, to "
               "dominate.\n\n";

  // (c) Algorithm 2 batching: counts per message.
  std::cout << "(c) Algorithm 2 batching (counts per message):\n";
  Table batch_table({"batch", "computing rounds", "peak bits/edge",
                     "max rel err"});
  {
    const Graph g = bench::make_family("er", 96, 17);
    const auto exact = current_flow_betweenness(g);
    for (const std::uint64_t batch : {std::uint64_t{1}, std::uint64_t{2},
                                      std::uint64_t{4}, std::uint64_t{0}}) {
      DistributedRwbcOptions options;
      options.walks_per_source = 64;
      options.cutoff = 2 * static_cast<std::size_t>(g.node_count());
      options.counts_per_message = batch;
      options.run_leader_election = false;
      options.congest.seed = 31;
      options.congest.bit_floor = 128;
      const auto r = distributed_rwbc(g, options);
      batch_table.add_row(
          {batch == 0 ? "auto" : Table::fmt(batch),
           Table::fmt(r.computing_metrics.rounds),
           Table::fmt(r.report.metrics.max_bits_per_edge_round),
           Table::fmt(max_relative_error(exact, r.report.scores))});
    }
  }
  batch_table.print(std::cout);
  std::cout << "Reading: scores are bit-identical across batch sizes; the "
               "phase shrinks from n rounds toward n/b while peak traffic "
               "stays inside the O(log n) budget.\n\n";
  return 0;
}
