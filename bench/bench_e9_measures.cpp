// E9 — Section II: RWBC against the related centrality measures.
//
// Regenerates the related-work comparison as data: degree, shortest-path
// betweenness (Brandes), random-walk betweenness (Newman exact), network-
// flow betweenness (Freeman/Edmonds-Karp), PageRank, and alpha-current-flow
// betweenness, on the Fig. 1 graph and a scale-free graph, with the full
// pairwise Kendall-tau matrix.
#include <iostream>

#include "bench_common.hpp"
#include "centrality/alpha_cfb.hpp"
#include "centrality/brandes.hpp"
#include "centrality/classic.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/flow_betweenness.hpp"
#include "centrality/pagerank.hpp"
#include "centrality/ranking.hpp"
#include "common/table.hpp"

namespace {

using namespace rwbc;

void compare(const Graph& g, const std::string& label) {
  std::cout << "graph = " << label << " (n = " << g.node_count()
            << ", m = " << g.edge_count() << ")\n";
  std::vector<double> degree(static_cast<std::size_t>(g.node_count()));
  for (NodeId v = 0; v < g.node_count(); ++v) {
    degree[static_cast<std::size_t>(v)] = static_cast<double>(g.degree(v));
  }
  const std::vector<std::pair<std::string, std::vector<double>>> measures{
      {"degree", degree},
      {"SPBC", brandes_betweenness(g)},
      {"RWBC", current_flow_betweenness(g)},
      {"flow", flow_betweenness(g)},
      {"pagerank", pagerank_power(g)},
      {"aCFB(.9)", alpha_current_flow_betweenness(g, 0.9)},
  };

  Table tau_matrix({"tau", "degree", "SPBC", "RWBC", "flow", "pagerank",
                    "aCFB(.9)"});
  for (const auto& [name_a, a] : measures) {
    std::vector<std::string> row{name_a};
    for (const auto& [name_b, b] : measures) {
      (void)name_b;
      row.push_back(Table::fmt(kendall_tau(a, b), 3));
    }
    tau_matrix.add_row(std::move(row));
  }
  tau_matrix.print(std::cout);

  // Top-3 by each measure.
  Table tops({"measure", "#1", "#2", "#3"});
  for (const auto& [name, scores] : measures) {
    const auto order = rank_order(scores);
    tops.add_row({name, Table::fmt(static_cast<std::uint64_t>(order[0])),
                  Table::fmt(static_cast<std::uint64_t>(order[1])),
                  Table::fmt(static_cast<std::uint64_t>(order[2]))});
  }
  tops.print(std::cout);

  // The classic panel against RWBC.
  const auto& rwbc_scores = measures[2].second;
  const std::vector<std::pair<std::string, std::vector<double>>> classic{
      {"closeness", closeness_centrality(g)},
      {"harmonic", harmonic_centrality(g)},
      {"eigenvector", eigenvector_centrality(g)},
      {"katz", katz_centrality(g)},
  };
  Table classic_table({"classic measure", "tau vs RWBC", "top-3"});
  for (const auto& [name, scores] : classic) {
    const auto order = rank_order(scores);
    classic_table.add_row(
        {name, Table::fmt(kendall_tau(scores, rwbc_scores), 3),
         Table::fmt(static_cast<std::uint64_t>(order[0])) + ", " +
             Table::fmt(static_cast<std::uint64_t>(order[1])) + ", " +
             Table::fmt(static_cast<std::uint64_t>(order[2]))});
  }
  classic_table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace rwbc;
  bench::banner("E9: RWBC vs related measures (Section II)",
                "claims: RWBC correlates with, but differs from, SPBC / "
                "flow / PageRank; alpha-CFB at high alpha tracks RWBC best");

  const Fig1Layout layout = make_fig1_graph(5);
  compare(layout.graph, "Fig. 1 (two communities, bridge A-B, parallel C)");
  std::cout << "Fig. 1 node ids: A = " << layout.a << ", B = " << layout.b
            << ", C = " << layout.c << "\n\n";

  compare(bench::make_family("ba", 40, 37), "Barabasi-Albert(40, 2)");
  return 0;
}
