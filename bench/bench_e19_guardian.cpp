// E19 — guardian handoff overhead: replication bandwidth and round cost.
//
// The guardian protocol (DESIGN.md §10) mirrors every held walk to a
// BFS-tree guardian through compact replica-delta frames.  Fault-free that
// buys nothing — the point of this bench is to price the insurance
// premium:
//
//   1. bandwidth — replica bits as a fraction of all counting-phase bits,
//      and replica messages per counting round;
//   2. rounds — the counting phase's round count with and without the
//      mirror channel (replica frames ride an urgent side channel, so the
//      walk schedule is identical and any delta is pure drain time);
//   3. wall clock of both runs.
//
// Swept at walks_per_edge_per_round in {1, 8}: wider walk traffic amortises
// the replica channel's fixed header cost, so the overhead ratio should
// FALL as wpepr grows.  Fault-free guardian runs score bit-identically to
// guardian-off runs (tests/guardian_test.cpp pins this), so only cost
// columns are printed.
//
// Usage: bench_e19_guardian [--n N]   (default n = 64; RWBC_THREADS
// re-times without changing any metered column)
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace {

using namespace rwbc;

struct RunCost {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t replica_messages = 0;
  std::uint64_t replica_bits = 0;
  double wall_ms = 0.0;
};

RunCost run_once(const Graph& g, bool guardian, std::size_t wpepr,
                 int threads) {
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 0;  // Theorem 1 default, scales with n
  options.walks_per_edge_per_round = wpepr;
  options.guardian_handoff = guardian;
  options.congest.seed = 19;
  options.congest.bit_floor = 128;
  options.congest.num_threads = threads;
  const auto start = std::chrono::steady_clock::now();
  const DistributedRwbcResult result = distributed_rwbc(g, options);
  const auto stop = std::chrono::steady_clock::now();
  RunCost cost;
  cost.rounds = result.counting_metrics.rounds;
  cost.messages = result.counting_metrics.total_messages;
  cost.total_bits = result.counting_metrics.total_bits;
  cost.replica_messages = result.counting_metrics.replica_messages;
  cost.replica_bits = result.counting_metrics.replica_bits;
  cost.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  return cost;
}

int bench_main(int argc, char** argv) {
  NodeId n = 64;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::string(argv[i]) == "--n") n = std::atoi(argv[i + 1]);
  }
  const int threads = bench::threads_from_env();
  bench::banner("E19 — guardian replication overhead",
                "replica-channel bandwidth and round cost of crash-lossless "
                "counting, fault-free (the insurance premium)");

  Table table({"family", "wpepr", "guardian", "rounds", "msgs",
               "replica msgs", "replica bits", "bits total", "replica %",
               "round overhead %", "wall ms"});
  for (const std::string& family : {std::string("er"), std::string("ba"),
                                    std::string("grid")}) {
    const Graph g = bench::make_family(family, n, 19);
    for (std::size_t wpepr : {std::size_t{1}, std::size_t{8}}) {
      const RunCost off = run_once(g, false, wpepr, threads);
      const RunCost on = run_once(g, true, wpepr, threads);
      const double replica_pct =
          on.total_bits == 0
              ? 0.0
              : 100.0 * static_cast<double>(on.replica_bits) /
                    static_cast<double>(on.total_bits);
      const double round_overhead =
          off.rounds == 0
              ? 0.0
              : 100.0 *
                    (static_cast<double>(on.rounds) /
                         static_cast<double>(off.rounds) -
                     1.0);
      table.add_row({family, Table::fmt(static_cast<std::uint64_t>(wpepr)),
                     "off", Table::fmt(off.rounds), Table::fmt(off.messages),
                     "-", "-", Table::fmt(off.total_bits), "-", "-",
                     Table::fmt(off.wall_ms, 1)});
      table.add_row({family, Table::fmt(static_cast<std::uint64_t>(wpepr)),
                     "on", Table::fmt(on.rounds), Table::fmt(on.messages),
                     Table::fmt(on.replica_messages),
                     Table::fmt(on.replica_bits), Table::fmt(on.total_bits),
                     Table::fmt(replica_pct, 1),
                     Table::fmt(round_overhead, 1),
                     Table::fmt(on.wall_ms, 1)});
    }
  }
  table.print(std::cout);
  std::cout << "\ncolumns: replica % = replica bits / all counting-phase "
               "bits; round overhead % vs the guardian-off run.\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) { return bench_main(argc, argv); }
