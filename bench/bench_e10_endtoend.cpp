// E10 — the headline, end to end.
//
// Paper claim (Theorem 5): each node computes a (1 - epsilon)-approximate
// random-walk betweenness in O(n log n) rounds under CONGEST.  We run the
// complete pipeline at the theorem parameters (l = 2n, K = 4 log2 n) over
// every family and three seeds, and report accuracy, rank agreement, round
// cost against n log n, and CONGEST compliance in one table — the
// reproduction's bottom line.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/ranking.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rwbc/pipeline.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E10: end-to-end (Theorem 5)",
                "claim: (1-eps)-approximate RWBC for every node in "
                "O(n log n) CONGEST rounds");

  const NodeId n = 48;
  // Two parameter tiers: the theorem orders with a small constant
  // (K = 4 log2 n) and with a large constant (K = 64 log2 n).  Theorems 1-3
  // fix the ORDERS; the Chernoff constant in K controls the absolute error
  // (E3 charts the 1/sqrt(K) decay between these tiers).
  struct Tier {
    const char* label;
    double walks_multiplier;
    std::uint64_t bit_floor;
  };
  const Tier tiers[] = {{"K = 4 log2 n (theorem constant)", 4.0, 32},
                        {"K = 64 log2 n (accuracy constant)", 64.0, 128}};
  for (const Tier& tier : tiers) {
    std::cout << tier.label << ":\n";
    Table table({"family", "n", "m", "max rel err (3 seeds)", "mean rel err",
                 "tau*", "top-5 overlap", "rounds", "rounds/(n log2 n)",
                 "congest ok"});
    for (const std::string& family : bench::accuracy_families()) {
      const Graph g = bench::make_family(family, n, 41);
      const auto exact = current_flow_betweenness(g);
      std::vector<double> max_errs, mean_errs, taus, tops;
      std::uint64_t rounds = 0;
      bool compliant = true;
      for (std::uint64_t seed : {1u, 2u, 3u}) {
        PipelineSpec spec;  // algorithm "rwbc", l = 2n default
        spec.rwbc.walks_multiplier = tier.walks_multiplier;
        spec.seed = seed;
        spec.threads = pipeline_threads_from_env();
        spec.bit_floor = tier.bit_floor;
        DistributedRwbcResult r;
        spec.rwbc_result = &r;
        const RunReport report = run_pipeline(g, spec);
        max_errs.push_back(max_relative_error(exact, report.scores));
        mean_errs.push_back(mean_relative_error(exact, report.scores));
        taus.push_back(kendall_tau(exact, report.scores));
        tops.push_back(top_k_overlap(exact, report.scores, 5));
        rounds = report.rounds;
        CongestConfig probe_config;
        probe_config.seed = seed;
        probe_config.bit_floor = tier.bit_floor;
        Network probe(g, probe_config);
        compliant = compliant &&
                    report.metrics.max_bits_per_edge_round <=
                        probe.bit_budget();
      }
      const double nl = static_cast<double>(g.node_count()) *
                        std::log2(static_cast<double>(g.node_count()));
      table.add_row(
          {family, Table::fmt(g.node_count()),
           Table::fmt(static_cast<std::uint64_t>(g.edge_count())),
           Table::fmt(summarize(max_errs).mean) + " +/- " +
               Table::fmt(summarize(max_errs).stddev, 3),
           Table::fmt(summarize(mean_errs).mean),
           Table::fmt(summarize(taus).mean, 3),
           Table::fmt(summarize(tops).mean, 2), Table::fmt(rounds),
           Table::fmt(static_cast<double>(rounds) / nl, 2),
           compliant ? "yes" : "NO"});
    }
    table.print(std::cout);
    std::cout << "\n";
  }
  std::cout << "(*) tau on vertex-transitive families (cycle) is "
               "meaningless: exact scores are tied and noise breaks the "
               "ties arbitrarily; the error columns carry the claim there.\n"
            << "\nReading: the theorem-order parameters deliver the "
               "promised shape (rounds a small constant times n log2 n, "
               "CONGEST-compliant everywhere); absolute error tracks the "
               "Chernoff constant in K — 16x more walks cut max error "
               "roughly 4x (E3's 1/sqrt(K) law) at 16x the rounds in the "
               "counting phase.\n\n";
  return 0;
}
