// E3 — Theorem 3: the walk count K.
//
// Paper claim: K = O(log n) walks per source concentrate every visit count
// within (1 +/- delta) w.h.p.  We sweep K as multiples of log2(n) and watch
// the max/mean relative error fall like 1/sqrt(K) while rank agreement
// saturates; a second table verifies the 1/sqrt(K) slope by log-log fit.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "centrality/ranking.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E3: walks per source K (Theorem 3)",
                "claim: error concentrates at K = O(log n); it shrinks "
                "like 1/sqrt(K) and ranking saturates early");

  const NodeId n = 48;
  const std::uint64_t seed = 11;
  const double log_n = std::log2(static_cast<double>(n));
  const std::vector<double> multipliers{1, 2, 4, 8, 16, 32};

  for (const std::string& family : {std::string("er"), std::string("ba"),
                                    std::string("grid")}) {
    const Graph g = bench::make_family(family, n, seed);
    const auto exact = current_flow_betweenness(g);
    std::cout << "family = " << family << " (n = " << g.node_count()
              << ", m = " << g.edge_count() << ")\n";
    Table table({"K/log2(n)", "K", "max rel err", "mean rel err",
                 "Kendall tau", "top-5 overlap"});
    std::vector<double> ks, errs;
    for (double mult : multipliers) {
      McOptions options;
      options.walks_per_source =
          std::max<std::size_t>(1, static_cast<std::size_t>(mult * log_n));
      options.cutoff = 8 * static_cast<std::size_t>(g.node_count());
      options.target = 0;
      options.seed = seed + static_cast<std::uint64_t>(mult);
      const McResult mc = current_flow_betweenness_mc(g, options);
      const double err = max_relative_error(exact, mc.betweenness);
      ks.push_back(static_cast<double>(options.walks_per_source));
      errs.push_back(err);
      table.add_row({Table::fmt(mult, 1),
                     Table::fmt(static_cast<std::uint64_t>(
                         options.walks_per_source)),
                     Table::fmt(err),
                     Table::fmt(mean_relative_error(exact, mc.betweenness)),
                     Table::fmt(kendall_tau(exact, mc.betweenness)),
                     Table::fmt(top_k_overlap(exact, mc.betweenness, 5))});
    }
    table.print(std::cout);
    const PowerFit fit = fit_power(ks, errs);
    std::cout << "error ~ K^" << Table::fmt(fit.exponent, 2)
              << "  (Theorem 3 / Chernoff predicts -0.5; R^2 = "
              << Table::fmt(fit.r_squared, 3) << ")\n\n";
  }
  return 0;
}
