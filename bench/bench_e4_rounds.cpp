// E4 — Lemmas 2-3 / Theorem 5: round complexity.
//
// Paper claim: the whole pipeline takes O(K n + l) = O(n log n) rounds.
// We sweep n, run with the theorem parameters (l = 2n, K = ceil(log2 n) —
// a smaller constant than the accuracy default, since only growth matters
// here), and fit the exponent of rounds vs n (expected ~1 plus log factor).
// Comparators: the trivial gather-exact baseline, which is Theta(m) across
// a bottleneck (barbell family), and distributed PageRank, whose rounds
// stay polylogarithmic — the separation argued in Sections I-II.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/gather_exact.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E4: round complexity (Lemmas 2-3, Theorem 5)",
                "claim: rounds = O(K n + l) = O(n log n); trivial gather is "
                "Theta(m) across bottlenecks; PageRank is polylog");

  const std::vector<NodeId> sizes{32, 64, 128, 256, 512};
  for (const std::string& family :
       {std::string("cycle"), std::string("er"), std::string("ba")}) {
    std::cout << "family = " << family << "\n";
    Table table({"n", "m", "K", "l", "rounds", "rounds/(n log2 n)",
                 "counting", "computing"});
    std::vector<double> ns, rounds;
    for (NodeId n : sizes) {
      const Graph g = bench::make_family(family, n, 3);
      DistributedRwbcOptions options;
      options.walks_per_source = static_cast<std::size_t>(
          std::ceil(std::log2(static_cast<double>(g.node_count()))));
      options.cutoff = 2 * static_cast<std::size_t>(g.node_count());
      options.compute_scores = false;
      options.congest.seed = 5;
      options.congest.num_threads = bench::threads_from_env();
      const auto r = distributed_rwbc(g, options);
      const double nl = static_cast<double>(g.node_count()) *
                        std::log2(static_cast<double>(g.node_count()));
      ns.push_back(static_cast<double>(g.node_count()));
      rounds.push_back(static_cast<double>(r.report.metrics.rounds));
      table.add_row({Table::fmt(g.node_count()),
                     Table::fmt(static_cast<std::uint64_t>(g.edge_count())),
                     Table::fmt(static_cast<std::uint64_t>(
                         r.params.walks_per_source)),
                     Table::fmt(static_cast<std::uint64_t>(r.params.cutoff)),
                     Table::fmt(r.report.metrics.rounds),
                     Table::fmt(static_cast<double>(r.report.metrics.rounds) / nl, 2),
                     Table::fmt(r.counting_metrics.rounds),
                     Table::fmt(r.computing_metrics.rounds)});
    }
    table.print(std::cout);
    const PowerFit fit = fit_power(ns, rounds);
    std::cout << "rounds ~ n^" << Table::fmt(fit.exponent, 2)
              << " (R^2 = " << Table::fmt(fit.r_squared, 3)
              << "); O(n log n) predicts an exponent slightly above 1\n\n";
  }

  std::cout << "Trivial gather-exact on the barbell family (bottleneck -> "
               "Theta(m)):\n";
  Table gather_table({"k", "n", "m", "gather rounds", "approx rounds",
                      "gather/approx"});
  std::vector<double> ms, gather_rounds;
  for (NodeId k : {16, 24, 32, 48, 64}) {
    const Graph g = make_barbell(k, 2);
    GatherExactOptions gather_options;
    gather_options.run_leader_election = false;
    const auto gather = gather_exact_rwbc(g, gather_options);
    DistributedRwbcOptions approx_options;
    approx_options.walks_per_source = 4;
    approx_options.cutoff = 2 * static_cast<std::size_t>(g.node_count());
    approx_options.run_leader_election = false;
    approx_options.compute_scores = false;
    approx_options.congest.seed = 5;
    approx_options.congest.num_threads = bench::threads_from_env();
    const auto approx = distributed_rwbc(g, approx_options);
    ms.push_back(static_cast<double>(g.edge_count()));
    gather_rounds.push_back(static_cast<double>(gather.total.rounds));
    gather_table.add_row(
        {Table::fmt(k), Table::fmt(g.node_count()),
         Table::fmt(static_cast<std::uint64_t>(g.edge_count())),
         Table::fmt(gather.total.rounds), Table::fmt(approx.report.metrics.rounds),
         Table::fmt(static_cast<double>(gather.total.rounds) /
                        static_cast<double>(approx.report.metrics.rounds),
                    2)});
  }
  gather_table.print(std::cout);
  const PowerFit gather_fit = fit_power(ms, gather_rounds);
  std::cout << "gather rounds ~ m^" << Table::fmt(gather_fit.exponent, 2)
            << " (R^2 = " << Table::fmt(gather_fit.r_squared, 3)
            << "); the crossover (approx wins) appears once m >> n log n\n\n";

  std::cout << "Distributed PageRank rounds stay polylogarithmic:\n";
  Table pr_table({"n", "pagerank rounds", "RWBC rounds (cycle)"});
  for (NodeId n : sizes) {
    const Graph g = bench::make_family("cycle", n, 3);
    DistributedPagerankOptions pr_options;
    pr_options.walks_per_node = 32;
    pr_options.congest.seed = 5;
    pr_options.congest.num_threads = bench::threads_from_env();
    const auto pr = distributed_pagerank(g, pr_options);
    DistributedRwbcOptions options;
    options.walks_per_source = static_cast<std::size_t>(
        std::ceil(std::log2(static_cast<double>(n))));
    options.cutoff = 2 * static_cast<std::size_t>(n);
    options.compute_scores = false;
    options.congest.seed = 5;
    const auto rw = distributed_rwbc(g, options);
    pr_table.add_row({Table::fmt(n), Table::fmt(pr.report.metrics.rounds),
                      Table::fmt(rw.report.metrics.rounds)});
  }
  pr_table.print(std::cout);
  std::cout << "\n";
  return 0;
}
