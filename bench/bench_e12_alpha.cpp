// E12 — Section II-C: distributed alpha-current-flow betweenness.
//
// Claim regenerated: because alpha-CFB's walks evaporate after 1/(1-alpha)
// expected steps, PageRank-style techniques compute it distributively in
// O(log n / (1 - alpha)) rounds — flat in n, unlike RWBC's Theta(n)-type
// counting phase.  We sweep alpha (rounds ~ 1/(1-alpha)) and n (rounds
// flat), check accuracy against the exact regularised solver, and show the
// alpha -> 1 tension: approaching RWBC's measure blows the round count up.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/alpha_cfb.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/ranking.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_rwbc.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E12: distributed alpha-CFB (Section II-C)",
                "claims: rounds ~ 1/(1-alpha), flat in n; alpha -> 1 "
                "approaches RWBC's ranking at exploding round cost");

  std::cout << "(a) rounds vs alpha (er, n = 64, K = 24):\n";
  Table alpha_table({"alpha", "counting rounds", "1/(1-alpha)",
                     "max rel err vs exact aCFB",
                     "tau vs exact RWBC"});
  {
    const Graph g = bench::make_family("er", 64, 53);
    const auto exact_rwbc = current_flow_betweenness(g);
    for (double alpha : {0.5, 0.7, 0.85, 0.95}) {
      DistributedAlphaCfbOptions options;
      options.alpha = alpha;
      options.walks_per_source = 24;
      options.congest.seed = 59;
      options.congest.bit_floor = 64;
      const auto r = distributed_alpha_cfb(g, options);
      const auto exact = alpha_current_flow_betweenness(g, alpha);
      alpha_table.add_row(
          {Table::fmt(alpha, 2), Table::fmt(r.counting_metrics.rounds),
           Table::fmt(1.0 / (1.0 - alpha), 1),
           Table::fmt(max_relative_error(exact, r.report.scores)),
           Table::fmt(kendall_tau(exact_rwbc, r.report.scores), 3)});
    }
  }
  alpha_table.print(std::cout);

  std::cout << "\n(b) rounds vs n at alpha = 0.8 — flat, unlike RWBC's "
               "counting phase:\n";
  Table n_table({"n", "aCFB counting rounds", "RWBC counting rounds"});
  for (NodeId n : {32, 128, 512}) {
    const Graph g = bench::make_family("er", n, 53);
    DistributedAlphaCfbOptions options;
    options.alpha = 0.8;
    options.walks_per_source = 8;
    options.compute_scores = false;
    options.congest.seed = 61;
    const auto acfb = distributed_alpha_cfb(g, options);
    DistributedRwbcOptions rwbc_options;
    rwbc_options.walks_per_source = 8;
    rwbc_options.compute_scores = false;
    rwbc_options.run_leader_election = false;
    rwbc_options.congest.seed = 61;
    const auto rwbc = distributed_rwbc(g, rwbc_options);
    n_table.add_row({Table::fmt(n), Table::fmt(acfb.counting_metrics.rounds),
                     Table::fmt(rwbc.counting_metrics.rounds)});
  }
  n_table.print(std::cout);
  std::cout << "\nReading: alpha-CFB's evaporating walks make it a "
               "polylog-round measure, but its tau against true RWBC only "
               "approaches 1 as alpha -> 1 — where its rounds diverge like "
               "1/(1-alpha).  That trade is exactly why the paper's "
               "O(n log n) RWBC algorithm is not subsumed by the PageRank "
               "toolbox.\n\n";
  return 0;
}
