// E17 — the arena message path at scale.
//
// The arena rewrite (congest/arena.hpp, DESIGN.md section 8) exists so the
// simulator's per-round cost is linear in delivered traffic with no
// per-message allocation — the regime the paper's O(n log n)-round claim
// needs at n >= 10^5.  This bench runs the counting phase (Algorithm 1's
// message-heavy inner loop) alone at n = 50k (--quick) and n = 100k over
// ws / grid / ba, with the BFS tree built centrally (setup phases are not
// what scales) and CountingNodeConfig::track_visits off (the per-node
// visit table is O(n) words per node — Theta(n^2) total — and the outputs
// here are round/bit/wall metrics, not scores).
//
// Output: a table plus optional machine-readable JSON (--json FILE).  With
// --baseline FILE (the committed bench/baselines/e17_scale_baseline.json)
// the run gates itself: any family whose wall-clock exceeds gate x baseline
// (--gate, default 2.0 — CI machines are noisy) fails the process, which is
// the scheduled "scale smoke" CI job's regression signal.
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <queue>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "congest/network.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "rwbc/counting_node.hpp"

namespace {

using namespace rwbc;

/// Central BFS from `root`, producing the same min-id-parent layered tree
/// the distributed protocol converges to (neighbors() is sorted, so the
/// first discoverer at the shallower layer is the minimum-id parent).
SpanningTree central_bfs_tree(const Graph& g, NodeId root) {
  SpanningTree tree;
  tree.root = root;
  const std::size_t n = static_cast<std::size_t>(g.node_count());
  tree.parent.assign(n, -1);
  tree.children.assign(n, {});
  tree.depth.assign(n, -1);
  std::queue<NodeId> frontier;
  tree.depth[static_cast<std::size_t>(root)] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    tree.height = std::max(tree.height, tree.depth[static_cast<std::size_t>(u)]);
    for (const NodeId v : g.neighbors(u)) {
      if (tree.depth[static_cast<std::size_t>(v)] >= 0) continue;
      tree.depth[static_cast<std::size_t>(v)] =
          tree.depth[static_cast<std::size_t>(u)] + 1;
      tree.parent[static_cast<std::size_t>(v)] = u;
      tree.children[static_cast<std::size_t>(u)].push_back(v);
      frontier.push(v);
    }
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (tree.depth[static_cast<std::size_t>(v)] < 0) {
      throw Error("E17 needs a connected graph; family member is not");
    }
  }
  return tree;
}

struct ScaleResult {
  std::string family;
  NodeId n = 0;
  std::size_t m = 0;
  RunMetrics metrics;
  double wall_ms = 0.0;
  double ms_per_round() const {
    return metrics.rounds == 0 ? 0.0
                               : wall_ms / static_cast<double>(metrics.rounds);
  }
};

/// Counting phase only: K walks per source toward a fixed target, central
/// tree, visit tallies off.  (K, l) are kept small — the bench measures the
/// simulator's per-round delivery cost, not estimator accuracy.
ScaleResult run_counting_phase(const std::string& family, NodeId n,
                               int threads) {
  ScaleResult result;
  result.family = family;
  const Graph g = bench::make_family(family, n, 17);
  result.n = g.node_count();
  result.m = g.edge_count();
  const SpanningTree tree = central_bfs_tree(g, 0);

  const std::uint64_t walks_per_source = 2;
  std::uint64_t cutoff = 2;
  while ((1ull << cutoff) < static_cast<std::uint64_t>(g.node_count())) {
    ++cutoff;  // l = 2 log2 n: enough rounds to flood traffic, not O(n)
  }
  cutoff *= 2;

  CongestConfig config;
  config.seed = 17;
  config.bit_floor = 128;
  config.num_threads = threads;
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    CountingNodeConfig node_config;
    node_config.target = 1;
    node_config.walks_per_source = walks_per_source;
    node_config.cutoff = cutoff;
    // The coalesced hot path: all tokens crossing one directed edge in a
    // round ride one packed payload.  8 is a ceiling — CountingNode clamps
    // the actual batch to what the per-edge bit budget fits (batch_cap_).
    node_config.walks_per_edge_per_round = 8;
    node_config.tree_parent = tree.parent[static_cast<std::size_t>(v)];
    node_config.tree_children = tree.children[static_cast<std::size_t>(v)];
    node_config.track_visits = false;
    return std::make_unique<CountingNode>(std::move(node_config));
  });

  const auto start = std::chrono::steady_clock::now();
  result.metrics = net.run();
  result.wall_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

void write_json(const std::string& path, bool quick, NodeId n,
                const std::vector<ScaleResult>& results) {
  std::ofstream out(path);
  if (!out.good()) throw Error("cannot write JSON to " + path);
  out << "{\n  \"bench\": \"e17_scale\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"n\": " << n << ",\n  \"entries\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const ScaleResult& r = results[i];
    out << "    {\"family\": \"" << r.family << "\", \"n\": " << r.n
        << ", \"rounds\": " << r.metrics.rounds
        << ", \"messages\": " << r.metrics.total_messages
        << ", \"bits\": " << r.metrics.total_bits
        << ", \"wall_ms\": " << r.wall_ms << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Minimal reader for the baseline file: extracts ("family", wall_ms)
/// pairs from the fixed format write_json produces.  No JSON library — the
/// file is ours, one entry per line.
std::vector<std::pair<std::string, double>> read_baseline(
    const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) throw Error("cannot read baseline " + path);
  std::vector<std::pair<std::string, double>> entries;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t fam_key = line.find("\"family\": \"");
    const std::size_t ms_key = line.find("\"wall_ms\": ");
    if (fam_key == std::string::npos || ms_key == std::string::npos) continue;
    const std::size_t fam_start = fam_key + 11;
    const std::size_t fam_end = line.find('"', fam_start);
    const std::string family = line.substr(fam_start, fam_end - fam_start);
    const double ms = std::strtod(line.c_str() + ms_key + 11, nullptr);
    entries.emplace_back(family, ms);
  }
  if (entries.empty()) throw Error("no entries in baseline " + path);
  return entries;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path, baseline_path;
  double gate = 2.0;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) throw Error(flag + " requires a value");
      return argv[++i];
    };
    if (flag == "--quick") {
      quick = true;
    } else if (flag == "--json") {
      json_path = value();
    } else if (flag == "--baseline") {
      baseline_path = value();
    } else if (flag == "--gate") {
      gate = std::strtod(value().c_str(), nullptr);
    } else {
      std::cerr << "error: unknown flag: " << flag << "\n"
                << "usage: bench_e17_scale [--quick] [--json FILE] "
                   "[--baseline FILE] [--gate FACTOR]\n";
      return 2;
    }
  }

  const NodeId n = quick ? 50000 : 100000;
  bench::banner("E17: arena message path at scale",
                "claim: the arena delivery path holds linear per-round cost "
                "at n >= 10^5\n(counting phase only, central BFS tree, "
                "visit tallies off)");
  const int threads = bench::threads_from_env();
  std::cout << "n = " << n << (quick ? " (--quick)" : "") << ", threads = "
            << threads << " (RWBC_THREADS)\n\n";

  std::vector<ScaleResult> results;
  Table table({"family", "n", "m", "rounds", "messages", "total bits",
               "wall ms", "ms/round", "msgs/ms"});
  for (const std::string& family :
       {std::string("ws"), std::string("grid"), std::string("ba")}) {
    const ScaleResult r = run_counting_phase(family, n, threads);
    table.add_row(
        {r.family, Table::fmt(r.n),
         Table::fmt(static_cast<std::uint64_t>(r.m)),
         Table::fmt(r.metrics.rounds), Table::fmt(r.metrics.total_messages),
         Table::fmt(r.metrics.total_bits), Table::fmt(r.wall_ms, 1),
         Table::fmt(r.ms_per_round(), 3),
         Table::fmt(static_cast<double>(r.metrics.total_messages) / r.wall_ms,
                    1)});
    results.push_back(r);
  }
  table.print(std::cout);

  if (!json_path.empty()) write_json(json_path, quick, n, results);

  int failures = 0;
  if (!baseline_path.empty()) {
    const auto baseline = read_baseline(baseline_path);
    std::cout << "\nregression gate (must stay under " << gate
              << "x the committed baseline):\n";
    for (const ScaleResult& r : results) {
      for (const auto& [family, ms] : baseline) {
        if (family != r.family) continue;
        const bool ok = r.wall_ms <= gate * ms;
        std::cout << "  " << family << ": " << Table::fmt(r.wall_ms, 1)
                  << " ms vs baseline " << Table::fmt(ms, 1) << " ms — "
                  << (ok ? "ok" : "REGRESSION") << "\n";
        if (!ok) ++failures;
      }
    }
  }
  std::cout << "\nReading: ms/round is the arena path's cost per delivered "
               "batch; it should track messages/round, not n^2 — the "
               "pre-arena serial merge failed this at n ~ 4096.\n";
  return failures == 0 ? 0 : 1;
}
