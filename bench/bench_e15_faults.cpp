// E15 — fault injection: estimator degradation vs the self-healing layer.
//
// The deterministic fault engine (congest/faults.hpp) drops / duplicates
// messages at the delivery point of the data phases P3/P4.  Walk tokens are
// Algorithm 1's only state, so the unreliable baseline loses walks
// permanently — visit counts bias low and the death-count termination stalls
// until the deadline backstop fires.  The self-healing transport
// (rwbc/reliable_token.hpp) retransmits lost tokens and deduplicates
// arrivals, at a constant-factor cost in rounds and bandwidth.  Claims:
//   (a) with drops in 1-5%, the self-healing pipeline's mean absolute error
//       vs exact RWBC is strictly below the baseline's;
//   (b) the reliability overhead at drop 0 is a small constant factor in
//       rounds/bits, not an asymptotic change;
//   (c) both modes stay deterministic: the fault schedule lives on its own
//       RNG stream, so every row reproduces bit-identically at any
//       RWBC_THREADS setting.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "common/table.hpp"
#include "rwbc/pipeline.hpp"

namespace {

using namespace rwbc;

double mean_abs_error(const std::vector<double>& exact,
                      const std::vector<double>& estimate) {
  double total = 0.0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    total += std::abs(exact[i] - estimate[i]);
  }
  return total / static_cast<double>(exact.size());
}

}  // namespace

int main() {
  bench::banner("E15: fault injection and self-healing walks",
                "claims: baseline RWBC biases low under message loss; the "
                "reliable transport restores accuracy for constant-factor "
                "round/bit overhead");

  const NodeId n = 32;
  const std::size_t walks = 384;
  const int fault_seeds = 3;

  for (const std::string& family : {std::string("ws"), std::string("grid")}) {
    const Graph g = bench::make_family(family, n, 17);
    const auto exact = current_flow_betweenness(g);
    std::cout << "family = " << family << " (n = " << g.node_count()
              << ", m = " << g.edge_count() << ", K = " << walks << ")\n";
    Table table({"drop", "mode", "mean |err|", "rounds", "dropped", "retx",
                 "peak bits/edge"});
    for (const double drop : {0.0, 0.01, 0.02, 0.05}) {
      for (const bool reliable : {false, true}) {
        double err_sum = 0.0;
        std::uint64_t rounds = 0, dropped = 0, retx = 0, peak = 0;
        // Average over fault schedules; walk randomness (congest.seed)
        // stays fixed so rows differ only by the faults themselves.
        for (int fs = 0; fs < fault_seeds; ++fs) {
          PipelineSpec spec;  // algorithm "rwbc"
          spec.rwbc.walks_per_source = walks;
          spec.rwbc.cutoff = 2 * static_cast<std::size_t>(g.node_count());
          spec.rwbc.run_leader_election = false;
          spec.seed = 23;
          spec.bit_floor = 128;
          spec.threads = pipeline_threads_from_env();
          spec.faults.seed = 1000 + fs;
          spec.faults.drop_prob = drop;
          spec.reliable_transport = reliable;
          // Explicit backstop (instead of the auto O(Kn) one) so the
          // baseline's stalled termination costs bounded time.
          spec.rwbc.fault_deadline_rounds = 8000;
          const RunReport r = run_pipeline(g, spec);
          err_sum += mean_abs_error(exact, r.scores);
          rounds += r.rounds;
          dropped += r.metrics.dropped_messages;
          retx += r.metrics.retransmissions;
          peak = std::max(peak, r.metrics.max_bits_per_edge_round);
          if (drop == 0.0) break;  // no faults: every seed is identical
        }
        const int runs = drop == 0.0 ? 1 : fault_seeds;
        table.add_row({Table::fmt(drop, 2),
                       reliable ? "self-healing" : "baseline",
                       Table::fmt(err_sum / runs, 5),
                       Table::fmt(rounds / static_cast<std::uint64_t>(runs)),
                       Table::fmt(dropped / static_cast<std::uint64_t>(runs)),
                       Table::fmt(retx / static_cast<std::uint64_t>(runs)),
                       Table::fmt(peak)});
      }
    }
    table.print(std::cout);
    std::cout << "\n";
  }

  // Duplication and crash-stop spot checks: dedup keeps self-healing exact
  // under dup_prob; a crash permanently costs that node's walks in either
  // mode (re-routing only heals the topology around it).
  std::cout << "spot checks (ws family):\n";
  {
    const Graph g = bench::make_family("ws", n, 17);
    const auto exact = current_flow_betweenness(g);
    Table table({"scenario", "mode", "mean |err|", "rounds", "crashed"});
    for (const bool crash : {false, true}) {
      for (const bool reliable : {false, true}) {
        PipelineSpec spec;  // algorithm "rwbc"
        spec.rwbc.walks_per_source = walks;
        spec.rwbc.cutoff = 2 * static_cast<std::size_t>(g.node_count());
        spec.rwbc.run_leader_election = false;
        spec.seed = 23;
        spec.bit_floor = 128;
        spec.threads = pipeline_threads_from_env();
        spec.faults.seed = 1000;
        if (crash) {
          spec.faults.crashes.push_back(CrashEvent{3, 60});
        } else {
          spec.faults.dup_prob = 0.05;
        }
        spec.reliable_transport = reliable;
        spec.rwbc.fault_deadline_rounds = 8000;
        const RunReport r = run_pipeline(g, spec);
        table.add_row({crash ? "crash node 3 @ round 60" : "dup 5%",
                       reliable ? "self-healing" : "baseline",
                       Table::fmt(mean_abs_error(exact, r.scores), 5),
                       Table::fmt(r.rounds),
                       Table::fmt(r.metrics.crashed_nodes)});
      }
    }
    table.print(std::cout);
  }
  std::cout << "\nReading: at 1-5% drop the self-healing error tracks the "
               "drop-free sampling error while the baseline collapses "
               "toward the uniform floor; retransmissions and the widened "
               "budget are the constant price.\n";
  return 0;
}
