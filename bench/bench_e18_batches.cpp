// E18 — coalesced walk batches: tokens-per-edge histogram and before/after
// wall clock.
//
// The coalesced hot path (rwbc/walk_token.hpp WalkBatchWire, DESIGN.md
// section 9) packs every walk token crossing one directed edge in a round
// into a single payload.  This bench quantifies what that buys on the E17
// workload (counting phase alone, central tree, visit tallies off):
//
//   1. the batch-size distribution — how many coalesced sends carried
//      1, 2, ..., wpepr tokens (CountingNodeConfig::batch_histogram);
//   2. wall clock of the coalesced wire vs the legacy one-message-per-token
//      wire at the same walks_per_edge_per_round, same trajectories aside
//      (at wpepr > 1 the two wires order receiver pools differently, so
//      message counts — not scores — are the comparable outputs).
//
// Runs serially (the histogram is collected without synchronisation).
// Usage: bench_e18_batches [--n N] [--wpepr W]
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "congest/network.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "rwbc/counting_node.hpp"

namespace {

using namespace rwbc;

/// Same central min-id-parent BFS the E17 bench uses (setup phases are not
/// what this experiment measures).
SpanningTree central_bfs_tree(const Graph& g, NodeId root) {
  SpanningTree tree;
  tree.root = root;
  const std::size_t n = static_cast<std::size_t>(g.node_count());
  tree.parent.assign(n, -1);
  tree.children.assign(n, {});
  tree.depth.assign(n, -1);
  std::queue<NodeId> frontier;
  tree.depth[static_cast<std::size_t>(root)] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    tree.height =
        std::max(tree.height, tree.depth[static_cast<std::size_t>(u)]);
    for (const NodeId v : g.neighbors(u)) {
      if (tree.depth[static_cast<std::size_t>(v)] >= 0) continue;
      tree.depth[static_cast<std::size_t>(v)] =
          tree.depth[static_cast<std::size_t>(u)] + 1;
      tree.parent[static_cast<std::size_t>(v)] = u;
      tree.children[static_cast<std::size_t>(u)].push_back(v);
      frontier.push(v);
    }
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (tree.depth[static_cast<std::size_t>(v)] < 0) {
      throw Error("E18 needs a connected graph; family member is not");
    }
  }
  return tree;
}

struct BatchRun {
  RunMetrics metrics;
  double wall_ms = 0.0;
  std::vector<std::uint64_t> histogram;  ///< empty for the legacy wire
};

BatchRun run_counting(const Graph& g, const SpanningTree& tree,
                      std::uint64_t wpepr, bool coalesce) {
  BatchRun run;
  if (coalesce) run.histogram.assign(static_cast<std::size_t>(wpepr), 0);

  const std::uint64_t walks_per_source = 2;
  std::uint64_t cutoff = 2;
  while ((1ull << cutoff) < static_cast<std::uint64_t>(g.node_count())) {
    ++cutoff;
  }
  cutoff *= 2;

  CongestConfig config;
  config.seed = 17;
  // Both wires get room for the full wpepr = 8: the legacy path needs
  // 8 separate (tag + id + length) messages per edge per round (~192 bits
  // at n = 50k), which the E17 floor of 128 cannot carry.
  config.bit_floor = 256;
  config.num_threads = 0;  // serial: the histogram is unsynchronised
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    CountingNodeConfig node_config;
    node_config.target = 1;
    node_config.walks_per_source = walks_per_source;
    node_config.cutoff = cutoff;
    node_config.walks_per_edge_per_round = wpepr;
    node_config.coalesce_walks = coalesce;
    node_config.tree_parent = tree.parent[static_cast<std::size_t>(v)];
    node_config.tree_children = tree.children[static_cast<std::size_t>(v)];
    node_config.track_visits = false;
    if (coalesce) node_config.batch_histogram = &run.histogram;
    return std::make_unique<CountingNode>(std::move(node_config));
  });

  const auto start = std::chrono::steady_clock::now();
  run.metrics = net.run();
  run.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  NodeId n = 50000;
  std::uint64_t wpepr = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "error: " << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--n") {
      n = static_cast<NodeId>(std::atoi(value()));
    } else if (flag == "--wpepr") {
      wpepr = std::strtoull(value(), nullptr, 10);
    } else {
      std::cerr << "usage: bench_e18_batches [--n N] [--wpepr W]\n";
      return 2;
    }
  }

  std::cout << "E18: coalesced batch sizes and wall clock, n = " << n
            << ", wpepr = " << wpepr << ", threads = 0 (serial)\n\n";

  Table table({"family", "wire", "rounds", "messages", "total bits",
               "wall ms", "tokens/msg"});
  for (const std::string family : {"ws", "grid", "ba"}) {
    const Graph g = bench::make_family(family, n, 17);
    const SpanningTree tree = central_bfs_tree(g, 0);

    const BatchRun legacy = run_counting(g, tree, wpepr, /*coalesce=*/false);
    const BatchRun coalesced = run_counting(g, tree, wpepr, /*coalesce=*/true);

    // Mean batch size, from the histogram (bucket i = batches of i+1).
    std::uint64_t batches = 0, tokens = 0;
    for (std::size_t i = 0; i < coalesced.histogram.size(); ++i) {
      batches += coalesced.histogram[i];
      tokens += coalesced.histogram[i] * (i + 1);
    }
    table.add_row({family, "legacy", Table::fmt(legacy.metrics.rounds),
                   Table::fmt(legacy.metrics.total_messages),
                   Table::fmt(legacy.metrics.total_bits),
                   Table::fmt(legacy.wall_ms, 1), "1.000"});
    table.add_row({family, "coalesced", Table::fmt(coalesced.metrics.rounds),
                   Table::fmt(coalesced.metrics.total_messages),
                   Table::fmt(coalesced.metrics.total_bits),
                   Table::fmt(coalesced.wall_ms, 1),
                   Table::fmt(batches == 0
                                  ? 0.0
                                  : static_cast<double>(tokens) /
                                        static_cast<double>(batches),
                              3)});

    std::cout << family << " batch-size histogram (walk sends by token "
              << "count):\n";
    for (std::size_t i = 0; i < coalesced.histogram.size(); ++i) {
      if (coalesced.histogram[i] == 0) continue;
      std::cout << "  " << (i + 1)
                << (i + 1 == coalesced.histogram.size() ? "+" : "")
                << " tokens: " << coalesced.histogram[i] << " ("
                << Table::fmt(100.0 *
                                  static_cast<double>(coalesced.histogram[i]) /
                                  static_cast<double>(batches),
                              1)
                << "%)\n";
    }
    std::cout << "\n";
  }
  table.print(std::cout);
  return 0;
}
