// E6 — Section VIII (Theorem 6, Lemmas 4-6): the lower-bound gadget.
//
// Paper claims, regenerated:
//   (Lemma 5)  with N = 1 and single links, b_P is minimal exactly when
//              T1 attaches to the rail matching S1;
//   (Lemma 4)  b_P is minimal iff the disjointness instance is a YES
//              instance, across random instances and gadget sizes;
//   (Thm 6/8)  deciding b_P exactly is as hard as set disjointness, i.e.
//              Omega(N log N) bits must cross the (M+1)-edge Alice/Bob cut;
//              we meter the cut traffic of the (approximate) distributed
//              algorithm for scale.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "lowerbound/disjointness.hpp"
#include "lowerbound/gadget.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace {

double exact_b_p(const rwbc::GadgetLayout& layout) {
  const auto b = rwbc::current_flow_betweenness(layout.graph);
  return b[static_cast<std::size_t>(layout.p)];
}

}  // namespace

int main() {
  using namespace rwbc;
  bench::banner("E6: the lower-bound gadget (Section VIII)",
                "claims: Lemma 5 single-edge minimum; Lemma 4 disjointness "
                "separation; Omega(N log N) bits across the cut");

  std::cout << "(a) Lemma 5 — N = 1, S1 on rail 0; b_P by T1's rail:\n";
  Table lemma5({"M", "T1 rail 0 (matched)", "T1 rail 1", "T1 rail M-1",
                "minimum at matched?"});
  for (int m : {4, 6, 8}) {
    const std::vector<std::vector<int>> s{{0}};
    const double matched = exact_b_p(build_gadget(m, s, {{0}}));
    const double r1 = exact_b_p(build_gadget(m, s, {{1}}));
    const double rl = exact_b_p(build_gadget(m, s, {{m - 1}}));
    lemma5.add_row({Table::fmt(m), Table::fmt(matched, 6), Table::fmt(r1, 6),
                    Table::fmt(rl, 6),
                    (matched < r1 && matched < rl) ? "yes" : "NO"});
  }
  lemma5.print(std::cout);

  std::cout << "\n(b) Lemma 4 — b_P separation over random instances "
               "(5 per class):\n";
  Table lemma4({"M", "N", "n", "max b_P (disjoint)", "min b_P (intersect)",
                "gap", "separated"});
  for (const auto& [m, fam] : std::vector<std::pair<int, int>>{
           {4, 2}, {6, 3}, {8, 4}, {10, 5}}) {
    double max_yes = -1e9, min_no = 1e9;
    int n_nodes = 0;
    for (int s = 0; s < 5; ++s) {
      Rng rng(static_cast<std::uint64_t>(s) + 1);
      const auto yes = make_disjoint_instance(m, fam, rng);
      const auto no = make_intersecting_instance(m, fam, rng);
      const auto yes_layout = build_disjointness_gadget(m, yes.x, yes.y);
      const auto no_layout = build_disjointness_gadget(m, no.x, no.y);
      n_nodes = yes_layout.graph.node_count();
      max_yes = std::max(max_yes, exact_b_p(yes_layout));
      min_no = std::min(min_no, exact_b_p(no_layout));
    }
    lemma4.add_row({Table::fmt(m), Table::fmt(fam), Table::fmt(n_nodes),
                    Table::fmt(max_yes, 6), Table::fmt(min_no, 6),
                    Table::fmt(min_no - max_yes, 6),
                    min_no > max_yes ? "yes" : "NO"});
  }
  lemma4.print(std::cout);

  std::cout << "\n(c) cut traffic of the distributed pipeline vs the "
               "disjointness bound:\n";
  Table cut_table({"M", "N", "n", "cut edges", "cut bits (pipeline)",
                   "DISJ bound N*log2(N)", "rounds", "n/log2(n)"});
  for (const auto& [m, fam] : std::vector<std::pair<int, int>>{
           {4, 2}, {8, 4}, {16, 8}, {32, 16}}) {
    Rng rng(3);
    const auto instance = make_disjoint_instance(m, fam, rng);
    const auto layout = build_disjointness_gadget(m, instance.x, instance.y);
    DistributedRwbcOptions options;
    options.walks_per_source = 8;
    options.cutoff = 2 * static_cast<std::size_t>(layout.graph.node_count());
    options.compute_scores = false;
    options.congest.seed = 21;
    options.congest.metered_cut = gadget_cut_edges(layout);
    const auto r = distributed_rwbc(layout.graph, options);
    const double n = static_cast<double>(layout.graph.node_count());
    cut_table.add_row(
        {Table::fmt(m), Table::fmt(fam),
         Table::fmt(layout.graph.node_count()),
         Table::fmt(static_cast<std::uint64_t>(m + 1)),
         Table::fmt(r.report.metrics.cut_bits),
         Table::fmt(disjointness_bits_lower_bound(fam), 1),
         Table::fmt(r.report.metrics.rounds),
         Table::fmt(n / std::log2(n), 1)});
  }
  cut_table.print(std::cout);
  std::cout << "\nReading: even the APPROXIMATE algorithm moves orders of "
               "magnitude more bits across the cut than the exact-decision "
               "bound requires — consistent with (and far above) the "
               "Omega(n/log n) floor for exact computation.\n\n";
  return 0;
}
