// E2 — Theorem 1 & 2: the walk-length cutoff l.
//
// Paper claim: after l = O(n) steps the surviving walk fraction drops below
// any constant epsilon, so truncating at l = O(n) gives a (1 - epsilon)
// approximation.  We measure (a) the surviving fraction vs steps against
// the spectral prediction rho^r, and (b) the end-to-end betweenness error
// vs l/n — the error should collapse once l reaches a small multiple of n
// (graph families with larger mixing times need larger multiples, which is
// exactly the spectral story).
#include <cmath>
#include <iostream>
#include <memory>

#include "bench_common.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "linalg/laplacian.hpp"
#include "rwbc/counting_node.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E2: truncation cutoff l (Theorems 1-2)",
                "claim: surviving fraction decays like rho(M_t)^r, so "
                "l = O(n) leaves only an epsilon of walk mass uncounted");

  const NodeId n = 48;
  const std::uint64_t seed = 7;

  std::cout << "(a) surviving-walk fraction vs steps, against rho^r:\n";
  Table survive({"family", "rho(M_t)", "r=n/2", "pred", "r=n", "pred",
                 "r=2n", "pred", "r=4n", "pred"});
  for (const std::string& family : bench::accuracy_families()) {
    const Graph g = bench::make_family(family, n, seed);
    const NodeId target = 0;
    const double rho = spectral_radius_reduced_transition(g, target);
    const auto steps = static_cast<std::size_t>(4 * g.node_count());
    const auto profile = absorption_profile(g, target, 40'000, steps, seed);
    auto at = [&](double mult) {
      return profile[static_cast<std::size_t>(
          mult * static_cast<double>(g.node_count()))];
    };
    auto pred = [&](double mult) {
      return std::pow(rho, mult * static_cast<double>(g.node_count()));
    };
    survive.add_row({family, Table::fmt(rho), Table::fmt(at(0.5)),
                     Table::fmt(pred(0.5)), Table::fmt(at(1.0)),
                     Table::fmt(pred(1.0)), Table::fmt(at(2.0)),
                     Table::fmt(pred(2.0)), Table::fmt(at(4.0)),
                     Table::fmt(pred(4.0))});
  }
  survive.print(std::cout);

  std::cout << "\n(b) PURE truncation bias vs cutoff multiple l/n — "
               "deterministic E[estimator] via the truncated power sum, no "
               "sampling noise (Theorems 1-2):\n";
  Table error({"family", "l/n=0.25", "l/n=0.5", "l/n=1", "l/n=2", "l/n=4",
               "l/n=8"});
  for (const std::string& family : bench::accuracy_families()) {
    const Graph g = bench::make_family(family, n, seed);
    const auto exact = current_flow_betweenness(g);
    std::vector<std::string> row{family};
    for (double mult : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
      const auto cutoff = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 mult * static_cast<double>(g.node_count())));
      const DenseMatrix t_l = truncated_potentials(g, 0, cutoff);
      const auto biased = betweenness_from_potentials(g, t_l);
      row.push_back(Table::fmt(max_relative_error(exact, biased)));
    }
    error.add_row(std::move(row));
  }
  error.print(std::cout);
  std::cout << "Reading: the bias decays geometrically (rate rho) and l = "
               "O(n) suffices on every family; slow-mixing families (cycle) "
               "need the larger constant, exactly as rho predicts.\n"
            << "\n(b') total error of the SAMPLED estimator at K = 600 — "
               "beyond the mixing time, longer walks only add visit "
               "variance (the |.| of Eq. 6 rectifies that noise into "
               "positive bias on near-tied pairs), so the total error is "
               "U-shaped in l on fast-mixing families:\n";
  Table mc_error({"family", "l/n=0.5", "l/n=2", "l/n=8"});
  for (const std::string& family : bench::accuracy_families()) {
    const Graph g = bench::make_family(family, n, seed);
    const auto exact = current_flow_betweenness(g);
    std::vector<std::string> row{family};
    for (double mult : {0.5, 2.0, 8.0}) {
      McOptions options;
      options.walks_per_source = 600;
      options.cutoff = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 mult * static_cast<double>(g.node_count())));
      options.target = 0;
      options.seed = seed + static_cast<std::uint64_t>(mult * 100);
      const McResult mc = current_flow_betweenness_mc(g, options);
      row.push_back(Table::fmt(max_relative_error(exact, mc.betweenness)));
    }
    mc_error.add_row(std::move(row));
  }
  mc_error.print(std::cout);

  std::cout << "\n(c') live walk traffic in the DISTRIBUTED counting phase "
               "(per-round messages via the simulator's round observer).  "
               "Two regimes: at K = 1 the traffic tracks the surviving "
               "population (rho^r decay, as in (a)); at K = 16 it pins at "
               "the per-edge capacity until enough walks die — Lemma 2's "
               "O(Kn) congestion term, visible on the wire:\n";
  for (const std::uint64_t k : {std::uint64_t{1}, std::uint64_t{16}}) {
    const Graph g = bench::make_family("ba", n, seed);
    const double rho = spectral_radius_reduced_transition(g, 0);
    std::vector<std::uint64_t> per_round;
    CongestConfig config;
    config.seed = 77;
    const auto bfs =
        run_bfs_tree(g, 0, config, static_cast<std::uint64_t>(n) + 2);
    config.round_observer = [&](const RoundSnapshot& s) {
      per_round.push_back(s.messages);
    };
    Network net(g, config);
    net.set_all_nodes([&](NodeId v) {
      CountingNodeConfig node_config;
      node_config.target = 0;
      node_config.walks_per_source = k;
      node_config.cutoff = 4 * static_cast<std::size_t>(g.node_count());
      node_config.tree_parent = bfs.tree.parent[static_cast<std::size_t>(v)];
      node_config.tree_children =
          bfs.tree.children[static_cast<std::size_t>(v)];
      return std::make_unique<CountingNode>(std::move(node_config));
    });
    net.run();
    std::cout << "K = " << k << " (2m = " << 2 * g.edge_count()
              << " walk slots per round):\n";
    Table live({"round r", "messages", "relative to r=1",
                "spectral rho^r"});
    const double base = static_cast<double>(per_round[1]);
    for (double mult : {0.25, 0.5, 1.0, 2.0}) {
      const auto r = static_cast<std::size_t>(
          mult * static_cast<double>(g.node_count()));
      if (r >= per_round.size()) continue;
      live.add_row({Table::fmt(static_cast<std::uint64_t>(r)),
                    Table::fmt(per_round[r]),
                    Table::fmt(static_cast<double>(per_round[r]) / base),
                    Table::fmt(std::pow(rho, static_cast<double>(r)))});
    }
    live.print(std::cout);
  }
  std::cout << "(late rounds also carry a floor of termination-sweep "
               "control traffic on the tree edges)\n";

  std::cout << "\n(c) truncated-walk fraction at the Theorem 1 default "
               "l = 2n:\n";
  Table trunc({"family", "truncated fraction", "spectral prediction rho^2n"});
  for (const std::string& family : bench::accuracy_families()) {
    const Graph g = bench::make_family(family, n, seed);
    McOptions options;
    options.walks_per_source = 600;
    options.cutoff = 2 * static_cast<std::size_t>(g.node_count());
    options.target = 0;
    options.seed = seed;
    const McResult mc = current_flow_betweenness_mc(g, options);
    const double fraction =
        static_cast<double>(mc.truncated_walks) /
        static_cast<double>(mc.truncated_walks + mc.absorbed_walks);
    const double rho = spectral_radius_reduced_transition(g, 0);
    trunc.add_row({family, Table::fmt(fraction, 6),
                   Table::fmt(std::pow(rho, 2.0 * g.node_count()), 6)});
  }
  trunc.print(std::cout);
  std::cout << "\n";
  return 0;
}
