// E16 — checkpointing cost.
//
// The recovery story (DESIGN.md section 7) is only usable if snapshots are
// cheap relative to the run they protect.  We run the full pipeline on ws
// and grid with the snapshot cadence swept from off to every-4-rounds,
// keeping every snapshot on disk, and report snapshot count, bytes
// written, and wall-time overhead against the checkpoint-free baseline.
// A final resume from the newest snapshot cross-checks that the measured
// artifacts actually restore bit-identically.
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "rwbc/pipeline.hpp"

int main() {
  using namespace rwbc;
  namespace fs = std::filesystem;
  using clock = std::chrono::steady_clock;

  bench::banner("E16: checkpoint cost",
                "claim: durable snapshots cost little against the "
                "O(n log n)-round run they protect");

  const NodeId n = 48;
  const std::uint64_t intervals[] = {0, 64, 16, 4};

  Table table({"family", "n", "interval", "snapshots", "total KiB",
               "mean KiB", "rounds", "wall ms", "overhead"});
  for (const std::string& family : {std::string("ws"), std::string("grid")}) {
    const Graph g = bench::make_family(family, n, 41);
    double baseline_ms = 0.0;
    std::vector<double> golden;
    for (const std::uint64_t interval : intervals) {
      const fs::path dir =
          fs::temp_directory_path() / ("rwbc-e16-" + family);
      fs::remove_all(dir);

      PipelineSpec spec;  // algorithm "rwbc"
      spec.seed = 17;
      spec.threads = pipeline_threads_from_env();
      if (interval > 0) {
        spec.checkpoint_dir = dir.string();
        spec.checkpoint_every = interval;
        spec.rwbc.checkpoint.keep = 1u << 20;  // keep all: we meter bytes
      }

      const auto start = clock::now();
      const RunReport result = run_pipeline(g, spec);
      const double ms =
          std::chrono::duration<double, std::milli>(clock::now() - start)
              .count();
      if (interval == 0) {
        baseline_ms = ms;
        golden = result.scores;
      }

      std::size_t snapshots = 0;
      std::uintmax_t bytes = 0;
      if (fs::exists(dir)) {
        for (const auto& entry : fs::directory_iterator(dir)) {
          ++snapshots;
          bytes += entry.file_size();
        }
      }

      // The artifacts must actually work: resume from the newest snapshot
      // and demand the golden scores back, bit for bit.
      bool resume_ok = true;
      if (interval > 0) {
        PipelineSpec resume = spec;
        resume.checkpoint_every = 0;
        resume.resume = true;
        resume_ok = run_pipeline(g, resume).scores == golden;
      }

      table.add_row(
          {family, Table::fmt(n),
           interval == 0 ? "off" : Table::fmt(interval),
           Table::fmt(snapshots),
           Table::fmt(static_cast<double>(bytes) / 1024.0, 1),
           snapshots == 0
               ? "-"
               : Table::fmt(static_cast<double>(bytes) / 1024.0 /
                                static_cast<double>(snapshots),
                            1),
           Table::fmt(result.rounds), Table::fmt(ms, 1),
           interval == 0
               ? "baseline"
               : Table::fmt(100.0 * (ms - baseline_ms) / baseline_ms, 1) +
                     "%" + (resume_ok ? "" : " RESUME-MISMATCH")});
      fs::remove_all(dir);
    }
  }
  table.print(std::cout);
  std::cout << "\nsnapshot size is dominated by per-node walk pools and "
               "mailboxes, so it tracks the in-flight token population, "
               "not the interval; overhead is serialization + fsync-free "
               "rotation I/O.\n";
  return 0;
}
