// E14 — the deterministic parallel round scheduler.
//
// Claim under test: CongestConfig::num_threads changes wall-clock only.
// For ER / BA / grid graphs at n in {256, 1024, 4096} we time
//
//   (a) a compute-bound synthetic protocol (every node burns a fixed
//       deterministic work quantum per round) — pure scheduler scaling,
//       the upper envelope of what round-level parallelism can give; and
//   (b) the paper's RWBC pipeline (counting + computing phases) with a
//       reduced (K, l) so the serial baseline stays in seconds — the
//       realistic walk-forwarding workload, whose per-round grain is
//       smaller and irregular.
//
// Every row cross-checks rounds and total bits against the serial run:
// a mismatch would falsify the equivalence contract (the test suite in
// tests/parallel_network_test.cpp proves it bit-for-bit; here we surface
// it next to the timings).  Sweep knobs: RWBC_THREAD_SWEEP="0,2,4,8",
// RWBC_E14_MAX_N caps the size list (e.g. 1024 for a quick pass).
#include <chrono>
#include <cstdlib>
#include <memory>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "congest/network.hpp"
#include "rwbc/pipeline.hpp"

namespace {

using namespace rwbc;

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// A node that spins a fixed deterministic work quantum each round and keeps
// one tiny message in flight so nobody halts before kRounds.
class BusyNode final : public NodeProcess {
 public:
  static constexpr std::uint64_t kRounds = 40;
  static constexpr std::uint64_t kWorkPerRound = 400;

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message>) override {
    std::uint64_t state = ctx.id() + ctx.round();
    for (std::uint64_t i = 0; i < kWorkPerRound; ++i) {
      checksum_ ^= splitmix64(state);
    }
    if (ctx.round() + 1 < kRounds) {
      BitWriter w;
      w.write(checksum_ & 1, 1);
      ctx.send(ctx.neighbors()[0], w);
    } else {
      ctx.halt();
    }
  }

 private:
  std::uint64_t checksum_ = 0;
};

struct Timed {
  double ms = 0;
  RunMetrics metrics;
};

Timed run_synthetic(const Graph& g, int threads) {
  CongestConfig config;
  config.seed = 14;
  config.num_threads = threads;
  Network net(g, config);
  net.set_all_nodes([](NodeId) { return std::make_unique<BusyNode>(); });
  const double start = now_ms();
  Timed timed;
  timed.metrics = net.run();
  timed.ms = now_ms() - start;
  return timed;
}

Timed run_rwbc_pipeline(const Graph& g, int threads) {
  PipelineSpec spec;  // algorithm "rwbc"
  spec.rwbc.walks_per_source = 4;
  spec.rwbc.cutoff = static_cast<std::size_t>(g.node_count()) / 4;
  spec.rwbc.run_leader_election = false;
  spec.rwbc.compute_scores = false;  // keep n = 4096 out of O(n^2) memory
  spec.seed = 14;
  spec.threads = threads;
  const double start = now_ms();
  Timed timed;
  timed.metrics = run_pipeline(g, spec).metrics;
  timed.ms = now_ms() - start;
  return timed;
}

void sweep(const char* workload, Timed (*run)(const Graph&, int),
           const std::vector<NodeId>& sizes, const std::vector<int>& threads) {
  Table table({"workload", "family", "n", "threads", "ms", "speedup",
               "rounds", "bits"});
  for (const std::string& family : {std::string("er"), std::string("ba"),
                                    std::string("grid")}) {
    for (NodeId n : sizes) {
      const Graph g = bench::make_family(family, n, 14);
      const Timed serial = run(g, 0);
      table.add_row({workload, family, Table::fmt(g.node_count()), "serial",
                     Table::fmt(serial.ms, 1), "1.00",
                     Table::fmt(serial.metrics.rounds),
                     Table::fmt(serial.metrics.total_bits)});
      for (int t : threads) {
        if (t == 0) continue;
        const Timed timed = run(g, t);
        const bool identical =
            timed.metrics.rounds == serial.metrics.rounds &&
            timed.metrics.total_bits == serial.metrics.total_bits;
        table.add_row({workload, family, Table::fmt(g.node_count()),
                       Table::fmt(t), Table::fmt(timed.ms, 1),
                       Table::fmt(serial.ms / timed.ms, 2),
                       Table::fmt(timed.metrics.rounds),
                       identical ? Table::fmt(timed.metrics.total_bits)
                                 : "MISMATCH"});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  bench::banner(
      "E14: deterministic parallel round execution",
      "num_threads trades wall-clock only: rounds and bits match the serial\n"
      "run exactly while on_round executes on a static-partition pool.");

  const char* cap = std::getenv("RWBC_E14_MAX_N");
  const NodeId max_n = cap != nullptr ? static_cast<NodeId>(std::atoi(cap))
                                      : 4096;
  std::vector<NodeId> sizes;
  for (NodeId n : {256, 1024, 4096}) {
    if (n <= max_n) sizes.push_back(n);
  }
  const std::vector<int> threads = bench::thread_sweep_from_env();

  std::cout << "hardware threads: " << ThreadPool::hardware_threads()
            << "\n\n";
  sweep("synthetic", run_synthetic, sizes, threads);
  sweep("rwbc", run_rwbc_pipeline, sizes, threads);
  std::cout << "Equivalence (bit-for-bit, incl. per-phase metrics and\n"
               "snapshot streams) is proven by tests/parallel_network_test\n"
               "and the ParallelScheduleFuzz sweep in tests/property_test.\n";
  return 0;
}
