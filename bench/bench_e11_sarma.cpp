// E11 — Section II-D: distributed random walks (Das Sarma et al.).
//
// Claims regenerated: a single l-step walk costs l rounds naively but
// O(sqrt(l D)) with coupon stitching — and the paper's argument for why
// the technique does NOT transfer to betweenness: RWBC needs K walks from
// EVERY source with per-node visit counts, so the stitch jumps (which skip
// the intermediate nodes' counters) are useless there.
#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "graph/properties.hpp"
#include "rwbc/sarma_walk.hpp"

int main() {
  using namespace rwbc;
  bench::banner("E11: stitched distributed random walks (Section II-D)",
                "claim: one l-step walk in ~sqrt(l*D) rounds vs l naive; "
                "speedup grows with l/D");

  const Graph g = bench::make_family("grid", 100, 47);  // 10x10, D = 18
  const NodeId diam = diameter(g);
  std::cout << "graph: 10x10 grid, n = " << g.node_count()
            << ", D = " << diam << "\n\n";

  Table table({"l", "direct rounds", "stitched rounds", "speedup",
               "stitches", "direct steps", "sqrt(l*D)"});
  for (const std::size_t length :
       {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
        std::size_t{16384}}) {
    CongestConfig direct_config;
    direct_config.seed = 7;
    const auto direct = direct_distributed_walk(g, 0, length, direct_config);
    SarmaWalkOptions options;
    options.length = length;
    options.congest.seed = 7;
    const auto stitched = sarma_distributed_walk(g, 0, options);
    table.add_row(
        {Table::fmt(static_cast<std::uint64_t>(length)),
         Table::fmt(direct.metrics.rounds),
         Table::fmt(stitched.report.metrics.rounds),
         Table::fmt(static_cast<double>(direct.metrics.rounds) /
                        static_cast<double>(stitched.report.metrics.rounds),
                    2),
         Table::fmt(stitched.stitches), Table::fmt(stitched.direct_steps),
         Table::fmt(std::sqrt(static_cast<double>(length) *
                              static_cast<double>(diam)),
                    0)});
  }
  table.print(std::cout);
  std::cout
      << "\nWhy this does not give fast RWBC (the paper's Section II-D "
         "argument, now concrete): Algorithm 1 needs K walks from EVERY "
         "source and every node must count each VISIT; a stitch jumps "
         "lambda steps without touching the intermediate counters, so the "
         "technique answers the wrong question — and betweenness walks "
         "are absorbing with unbounded length besides.\n\n";
  return 0;
}
