// The deterministic fault engine (congest/faults.hpp) and the self-healing
// transport built on top of it.
//
// Contract under test, in order:
//   1. A default FaultPlan is free: the full pipeline stays bit-identical
//      to the pre-fault-injection simulator (golden values pinned below).
//   2. Two-draw coupling makes drop counts EXACTLY monotone in drop_prob
//      under a fixed fault seed — not just in expectation.
//   3. Boundary rates behave literally: drop_prob = 1 delivers nothing,
//      dup_prob = 1 doubles every delivery.
//   4. Crash-stop is crash-stop: nothing sent at or after the crash round,
//      and RunMetrics::crashed_nodes counts each node once.
//   5. Link-down intervals drop exactly the scheduled send rounds.
//   6. The fault schedule lives on its own RNG stream drawn at the serial
//      merge point, so every observable is thread-count invariant.
//   7. The reliable transport earns its keep: under drops it terminates
//      organically and estimates strictly better than the baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "congest/network.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/pipeline.hpp"

namespace rwbc {
namespace {

// Sends one fixed 8-bit message per neighbor per round for `rounds` rounds,
// regardless of what it receives — so the send schedule (and therefore the
// fault-draw sequence) is identical across fault rates, and every observed
// difference is the faults themselves.  Records each delivery's sender and
// arrival round.
class ChatterNode final : public NodeProcess {
 public:
  explicit ChatterNode(std::uint64_t rounds) : rounds_(rounds) {}

  void on_start(NodeContext&) override {}
  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    for (const Message& msg : inbox) {
      received_.push_back({msg.from, ctx.round()});
    }
    if (ctx.round() < rounds_) {
      BitWriter w;
      w.write(static_cast<std::uint64_t>(ctx.id()) & 0xff, 8);
      for (NodeId nb : ctx.neighbors()) ctx.send(nb, w);
    } else {
      ctx.halt();
    }
  }

  std::vector<std::pair<NodeId, std::uint64_t>> received_;

 private:
  std::uint64_t rounds_;
};

struct ChatterRun {
  RunMetrics metrics;
  std::uint64_t delivered = 0;  // inbox entries summed over all nodes
  // received_[v] flattened, in (node, sender, round) order — the full
  // delivery transcript, for thread-invariance checks.
  std::vector<std::uint64_t> transcript;
};

ChatterRun run_chatter(const Graph& g, const FaultPlan& plan,
                       std::uint64_t rounds, int threads = 0) {
  CongestConfig config;
  config.seed = 5;
  config.num_threads = threads;
  config.faults = plan;
  Network net(g, config);
  net.set_all_nodes(
      [rounds](NodeId) { return std::make_unique<ChatterNode>(rounds); });
  ChatterRun run;
  run.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const ChatterNode&>(net.node(v));
    run.delivered += node.received_.size();
    for (const auto& [from, round] : node.received_) {
      run.transcript.push_back(static_cast<std::uint64_t>(v));
      run.transcript.push_back(static_cast<std::uint64_t>(from));
      run.transcript.push_back(round);
    }
  }
  return run;
}

std::uint64_t double_bits(double d) {
  std::uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// FNV-1a over the double bit patterns — pins a whole vector in one value.
std::uint64_t hash_vec(const std::vector<double>& v) {
  std::uint64_t h = 1469598103934665603ULL;
  for (double d : v) {
    const std::uint64_t u = double_bits(d);
    for (int i = 0; i < 8; ++i) {
      h ^= (u >> (8 * i)) & 0xff;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

// --- 1. Golden equivalence: no plan, no change ---------------------------
//
// The constants below were captured from the seed build (before the fault
// engine existed).  They pin that a default FaultPlan leaves the pipeline
// bit-identical: same target, same round/message/bit counts, same
// betweenness doubles.  If these fail, fault injection leaked into the
// fault-free path.

TEST(FaultGolden, DefaultPlanIsBitIdenticalToSeedBuild) {
  Rng rng(3 ^ 0x9e3779b97f4a7c15ULL);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  DistributedRwbcOptions options;
  options.congest.seed = 3;
  // A non-zero fault seed alone schedules nothing (any() is false) and must
  // not perturb the run either.
  options.congest.faults.seed = 12345;
  const auto r = distributed_rwbc(g, options);
  EXPECT_EQ(r.target, 11);
  EXPECT_EQ(r.report.metrics.rounds, 164u);
  EXPECT_EQ(r.report.metrics.total_messages, 4550u);
  EXPECT_EQ(r.report.metrics.total_bits, 44614u);
  EXPECT_EQ(hash_vec(r.report.scores), 0x5fce439209a592dcULL);
  EXPECT_EQ(double_bits(r.report.scores[0]), 0x3fdbb6db6db6db6eULL);
  EXPECT_EQ(double_bits(r.report.scores[7]), 0x3fd42df2df2df2dfULL);
  EXPECT_EQ(r.report.metrics.dropped_messages, 0u);
  EXPECT_EQ(r.report.metrics.duplicated_messages, 0u);
  EXPECT_EQ(r.report.metrics.crashed_nodes, 0u);
  EXPECT_EQ(r.report.metrics.retransmissions, 0u);
}

TEST(FaultGolden, DefaultPlanBarbellMatchesSeedBuild) {
  const Graph g = make_barbell(5, 2);
  DistributedRwbcOptions options;
  options.congest.seed = 11;
  const auto r = distributed_rwbc(g, options);
  EXPECT_EQ(r.target, 11);
  EXPECT_EQ(r.report.metrics.rounds, 191u);
  EXPECT_EQ(r.report.metrics.total_messages, 3566u);
  EXPECT_EQ(r.report.metrics.total_bits, 34556u);
  EXPECT_EQ(hash_vec(r.report.scores), 0x8a47a717bf00e5aeULL);
}

// --- 2./3. Coupled Bernoulli faults --------------------------------------

TEST(FaultInjection, DropCountIsExactlyMonotoneInDropProb) {
  Rng rng(21);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  const std::uint64_t kRounds = 10;
  std::uint64_t prev_dropped = 0;
  std::uint64_t prev_delivered = 0;
  std::uint64_t total_sent = 0;
  bool first = true;
  for (const double rate : {0.0, 0.1, 0.3, 0.6, 1.0}) {
    FaultPlan plan;
    plan.seed = 99;
    plan.drop_prob = rate;
    const ChatterRun run = run_chatter(g, plan, kRounds);
    // The send schedule is fault-independent, so totals must agree and
    // bookkeeping must balance exactly.
    if (first) {
      total_sent = run.metrics.total_messages;
      EXPECT_EQ(run.metrics.dropped_messages, 0u);
    } else {
      EXPECT_EQ(run.metrics.total_messages, total_sent);
      // Two-draw coupling: a higher rate re-reads the SAME uniform
      // sequence and can only turn more deliveries into drops.  At these
      // message counts every step strictly increases the tally.
      EXPECT_GT(run.metrics.dropped_messages, prev_dropped)
          << "rate=" << rate;
      EXPECT_LT(run.delivered, prev_delivered) << "rate=" << rate;
    }
    EXPECT_EQ(run.delivered + run.metrics.dropped_messages, total_sent)
        << "rate=" << rate;
    prev_dropped = run.metrics.dropped_messages;
    prev_delivered = run.delivered;
    first = false;
  }
  // The endpoint is literal: rate 1 drops everything.
  EXPECT_EQ(prev_dropped, total_sent);
  EXPECT_EQ(prev_delivered, 0u);
}

TEST(FaultInjection, DupProbOneDeliversEveryMessageTwice) {
  const Graph g = make_cycle(6);
  FaultPlan plan;
  plan.seed = 7;
  plan.dup_prob = 1.0;
  const ChatterRun run = run_chatter(g, plan, 5);
  EXPECT_GT(run.metrics.total_messages, 0u);
  EXPECT_EQ(run.metrics.duplicated_messages, run.metrics.total_messages);
  EXPECT_EQ(run.metrics.dropped_messages, 0u);
  EXPECT_EQ(run.delivered, 2 * run.metrics.total_messages);
}

// --- 4. Crash-stop -------------------------------------------------------

TEST(FaultInjection, CrashedNodeNeverSendsAfterItsCrashRound) {
  const Graph g = make_cycle(4);  // node 1's neighbors are 0 and 2
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, 3});
  const std::uint64_t kRounds = 6;
  CongestConfig config;
  config.seed = 5;
  config.faults = plan;
  Network net(g, config);
  net.set_all_nodes(
      [kRounds](NodeId) { return std::make_unique<ChatterNode>(kRounds); });
  const RunMetrics metrics = net.run();
  EXPECT_EQ(metrics.crashed_nodes, 1u);
  // Node 1 executes rounds 0..2 only, so its last messages arrive in round
  // 3; a live node's sends keep arriving through round kRounds.
  for (const NodeId observer : {NodeId{0}, NodeId{2}}) {
    const auto& node = static_cast<const ChatterNode&>(net.node(observer));
    std::uint64_t last_from_crashed = 0;
    std::uint64_t last_from_live = 0;
    for (const auto& [from, round] : node.received_) {
      if (from == 1) {
        last_from_crashed = std::max(last_from_crashed, round);
      } else {
        last_from_live = std::max(last_from_live, round);
      }
    }
    EXPECT_EQ(last_from_crashed, 3u) << "observer " << observer;
    EXPECT_EQ(last_from_live, kRounds) << "observer " << observer;
  }
  // Messages the live nodes kept addressing to the crashed node are
  // discarded at the delivery point and metered as drops.
  EXPECT_GT(metrics.dropped_messages, 0u);
  const auto& crashed = static_cast<const ChatterNode&>(net.node(1));
  for (const auto& [from, round] : crashed.received_) {
    EXPECT_LT(round, 3u) << "crashed node received after its crash round";
  }
}

// --- 5. Link-down intervals ----------------------------------------------

TEST(FaultInjection, LinkDownDropsExactlyTheScheduledSendRounds) {
  const Graph g = make_path(2);
  FaultPlan plan;
  plan.link_downs.push_back(LinkDownInterval{Edge{0, 1}, 2, 4});
  const std::uint64_t kRounds = 7;
  const ChatterRun run = run_chatter(g, plan, kRounds);
  // Sends happen in rounds 0..6; the interval kills send rounds 2..4 in
  // both directions, so arrivals are exactly {1, 2, 6, 7} on each side.
  EXPECT_EQ(run.metrics.dropped_messages, 6u);
  EXPECT_EQ(run.delivered, 2 * (kRounds - 3));
  std::vector<std::uint64_t> arrivals;
  for (std::size_t i = 0; i + 2 < run.transcript.size(); i += 3) {
    if (run.transcript[i] == 1) arrivals.push_back(run.transcript[i + 2]);
  }
  EXPECT_EQ(arrivals, (std::vector<std::uint64_t>{1, 2, 6, 7}));
}

// --- 5b. Message-fault windows --------------------------------------------
//
// drop_prob/dup_prob can be confined to a send-round window.  The gate must
// be literal (nothing outside the window is touched) and draw-preserving
// (the fate RNG consumes its two uniforms per message either way, so the
// fates of in-window messages are identical under any window choice).

TEST(FaultInjection, MessageFaultWindowGatesFatesWithoutPerturbingDraws) {
  Rng rng(77);
  const Graph g = make_erdos_renyi(12, 0.35, rng);
  const std::uint64_t kRounds = 10;

  // Boundary: drop everything, but only in send rounds [3, 6].  Chatter
  // sends one message per directed edge per round, so the burst eats
  // exactly four rounds' worth of traffic and nothing else.
  FaultPlan gated;
  gated.seed = 99;
  gated.drop_prob = 1.0;
  gated.message_fault_first_round = 3;
  gated.message_fault_last_round = 6;
  const ChatterRun burst = run_chatter(g, gated, kRounds);
  const std::uint64_t per_round = burst.metrics.total_messages / kRounds;
  EXPECT_EQ(burst.metrics.total_messages, per_round * kRounds);
  EXPECT_EQ(burst.metrics.dropped_messages, 4 * per_round);
  for (std::size_t i = 2; i < burst.transcript.size(); i += 3) {
    const std::uint64_t arrival = burst.transcript[i];  // send round + 1
    EXPECT_TRUE(arrival < 4 || arrival > 7)
        << "message sent inside the window delivered at round " << arrival;
  }

  // Coupling: narrowing the window must not change the fate of any message
  // inside it — the in-window delivery transcripts must match exactly.
  FaultPlan whole;
  whole.seed = 99;
  whole.drop_prob = 0.3;
  whole.dup_prob = 0.2;
  FaultPlan narrow = whole;
  narrow.message_fault_first_round = 3;
  narrow.message_fault_last_round = 6;
  const ChatterRun whole_run = run_chatter(g, whole, kRounds);
  const ChatterRun narrow_run = run_chatter(g, narrow, kRounds);
  const auto in_window = [](const ChatterRun& r) {
    std::vector<std::uint64_t> filtered;
    for (std::size_t i = 0; i + 2 < r.transcript.size(); i += 3) {
      const std::uint64_t arrival = r.transcript[i + 2];
      if (arrival >= 4 && arrival <= 7) {
        filtered.push_back(r.transcript[i]);
        filtered.push_back(r.transcript[i + 1]);
        filtered.push_back(arrival);
      }
    }
    return filtered;
  };
  EXPECT_GT(narrow_run.metrics.dropped_messages, 0u);
  EXPECT_LT(narrow_run.metrics.dropped_messages,
            whole_run.metrics.dropped_messages);
  EXPECT_EQ(in_window(whole_run), in_window(narrow_run));
}

// --- 6. Thread-count invariance ------------------------------------------
//
// Fault draws happen at the serial delivery merge point on a dedicated RNG
// stream, so the exact same messages are dropped/duplicated at every
// num_threads setting — the full delivery transcript must match, not just
// aggregate counts.

TEST(FaultInjection, FaultScheduleIsThreadCountInvariant) {
  Rng rng(31);
  const Graph g = make_erdos_renyi(12, 0.35, rng);
  FaultPlan plan;
  plan.seed = 4242;
  plan.drop_prob = 0.2;
  plan.dup_prob = 0.1;
  plan.crashes.push_back(CrashEvent{4, 5});
  const ChatterRun golden = run_chatter(g, plan, 8, /*threads=*/0);
  EXPECT_GT(golden.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.metrics.duplicated_messages, 0u);
  EXPECT_EQ(golden.metrics.crashed_nodes, 1u);
  for (const int threads : {2, -1}) {
    const ChatterRun got = run_chatter(g, plan, 8, threads);
    EXPECT_EQ(golden.metrics.dropped_messages, got.metrics.dropped_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.metrics.duplicated_messages,
              got.metrics.duplicated_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.metrics.crashed_nodes, got.metrics.crashed_nodes)
        << "threads=" << threads;
    EXPECT_EQ(golden.metrics.total_messages, got.metrics.total_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.transcript, got.transcript) << "threads=" << threads;
  }
}

TEST(FaultInjection, FaultyPipelineIsThreadCountInvariant) {
  Rng rng(3 ^ 0x9e3779b97f4a7c15ULL);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  auto run_with = [&](int threads) {
    DistributedRwbcOptions options;
    options.congest.seed = 3;
    options.congest.num_threads = threads;
    options.congest.faults.seed = 77;
    options.congest.faults.drop_prob = 0.02;
    options.reliable_transport = true;
    return distributed_rwbc(g, options);
  };
  const auto golden = run_with(0);
  EXPECT_GT(golden.report.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.report.metrics.retransmissions, 0u);
  for (const int threads : {2, -1}) {
    const auto got = run_with(threads);
    EXPECT_EQ(golden.report.scores, got.report.scores) << "threads=" << threads;
    EXPECT_EQ(golden.report.metrics.rounds, got.report.metrics.rounds) << "threads=" << threads;
    EXPECT_EQ(golden.report.metrics.dropped_messages, got.report.metrics.dropped_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.report.metrics.retransmissions, got.report.metrics.retransmissions)
        << "threads=" << threads;
  }
}

// --- 7. The self-healing transport pays off ------------------------------
//
// One row of bench_e15: Watts–Strogatz at 2% drop, where exact scores are
// dispersed enough that losing walks visibly biases the baseline.  Both
// runs are fully deterministic (fixed walk and fault seeds), so the strict
// inequality is a stable regression check, not a statistical one.

TEST(SelfHealing, BeatsBaselineAccuracyUnderDrops) {
  Rng rng(17);
  const Graph g = make_watts_strogatz(32, 4, 0.3, rng);
  const auto exact = current_flow_betweenness(g);
  auto mean_abs_error = [&](const std::vector<double>& estimate) {
    double total = 0.0;
    for (std::size_t i = 0; i < exact.size(); ++i) {
      total += std::abs(exact[i] - estimate[i]);
    }
    return total / static_cast<double>(exact.size());
  };
  auto run_with = [&](bool reliable) {
    DistributedRwbcOptions options;
    options.walks_per_source = 384;
    options.cutoff = 64;
    options.run_leader_election = false;
    options.congest.seed = 23;
    options.congest.bit_floor = 128;
    options.congest.faults.seed = 1000;
    options.congest.faults.drop_prob = 0.02;
    options.reliable_transport = reliable;
    options.fault_deadline_rounds = 8000;
    return distributed_rwbc(g, options);
  };
  const auto baseline = run_with(false);
  const auto healed = run_with(true);
  EXPECT_LT(mean_abs_error(healed.report.scores),
            mean_abs_error(baseline.report.scores));
  // The baseline loses walks for good, so its death-count termination
  // stalls until the deadline backstop; the reliable run recovers every
  // token and terminates organically, well short of it.
  EXPECT_GE(baseline.counting_metrics.rounds, 8000u);
  EXPECT_LT(healed.report.metrics.rounds, 7000u);
  EXPECT_GT(healed.report.metrics.retransmissions, 0u);
  EXPECT_EQ(baseline.report.metrics.retransmissions, 0u);
}

// --- 8. The give-up path under combined high drop + dup rates ------------
//
// The transport's only unsafe edge is a FALSE dead-slot suspicion: a frame
// whose every ack is lost gets given back to the caller and re-routed even
// though the neighbour delivered it — forking the walk and double-counting
// a death.  The tests below drive the counting phase standalone (so the
// per-node death tallies are observable) and pin that with a retry budget
// sized for the fault rate, exactly-once accounting survives drop and dup
// rates far past anything the E15 benchmarks use.

struct ReliableCountingRun {
  RunMetrics metrics;
  std::uint64_t total_died = 0;
  std::uint64_t finished_nodes = 0;
};

ReliableCountingRun run_reliable_counting(const Graph& g,
                                          const FaultPlan& plan,
                                          std::uint64_t max_retries,
                                          std::uint64_t deadline,
                                          int threads = 0) {
  const std::uint64_t k = 8;
  CongestConfig config;
  config.seed = 11;
  config.bit_floor = 128;  // reliable wrapper overhead, as the pipeline does
  config.num_threads = threads;
  const BfsTreeResult bfs = run_bfs_tree(
      g, 0, config, static_cast<std::uint64_t>(g.node_count()) + 2);
  config.faults = plan;
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    CountingNodeConfig node_config;
    node_config.target = 3;
    node_config.walks_per_source = k;
    node_config.cutoff = 40;
    node_config.tree_parent = bfs.tree.parent[static_cast<std::size_t>(v)];
    node_config.tree_children = bfs.tree.children[static_cast<std::size_t>(v)];
    node_config.fault_tolerant = plan.any();
    node_config.deadline_rounds = deadline;
    node_config.reliable_transport = true;
    node_config.reliable_link.max_retries = max_retries;
    return std::make_unique<CountingNode>(std::move(node_config));
  });
  ReliableCountingRun run;
  run.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const CountingNode&>(net.node(v));
    run.total_died += node.died_here();
    if (node.finished()) ++run.finished_nodes;
  }
  return run;
}

TEST(SelfHealingStress, ExactlyOnceUnderCombinedHighDropAndDup) {
  Rng rng(29);
  const Graph g = make_erdos_renyi(16, 0.3, rng);
  FaultPlan plan;
  plan.seed = 4242;
  plan.drop_prob = 0.25;
  plan.dup_prob = 0.25;
  // A retry budget sized for the rate: at 25% drop each attempt still goes
  // unacked with probability ~0.44, so 8 retries would falsely suspect a
  // live neighbour roughly once per few thousand frames — a double-counted
  // walk.  16 retries pushes the false-suspicion odds below one in 10^6
  // per frame, and the run below pins that NO fork happened: the death
  // total is exact, not merely >= expected.
  const ReliableCountingRun run =
      run_reliable_counting(g, plan, /*max_retries=*/16, /*deadline=*/20000);
  const auto n = static_cast<std::uint64_t>(g.node_count());
  EXPECT_EQ(run.total_died, (n - 1) * 8) << "a walk was lost or forked";
  EXPECT_EQ(run.finished_nodes, n) << "termination was not organic";
  EXPECT_LT(run.metrics.rounds, 20000u) << "deadline backstop fired";
  EXPECT_GT(run.metrics.dropped_messages, 0u);
  EXPECT_GT(run.metrics.duplicated_messages, 0u);
  EXPECT_GT(run.metrics.retransmissions, 0u);
}

TEST(SelfHealingStress, DeadSlotRedrawNeverOvercounts) {
  Rng rng(29);
  const Graph g = make_erdos_renyi(16, 0.3, rng);
  FaultPlan plan;
  plan.seed = 77;
  plan.drop_prob = 0.2;
  plan.dup_prob = 0.2;
  plan.crashes.push_back({/*node=*/7, /*round=*/6});
  // The default (small) retry budget here is deliberate: senders suspect
  // the genuinely crashed node quickly, so the give-up/redraw path runs
  // hot while drops and dups hammer the acks.  Every redraw must be a walk
  // the crashed node never processed — the tally can only fall short of
  // (n-1)K by walks the crash swallowed, never exceed it.
  const auto run_at = [&](int threads) {
    return run_reliable_counting(g, plan, /*max_retries=*/8,
                                 /*deadline=*/4000, threads);
  };
  const ReliableCountingRun run = run_at(0);
  const auto n = static_cast<std::uint64_t>(g.node_count());
  EXPECT_LE(run.total_died, (n - 1) * 8) << "a redraw double-counted a walk";
  EXPECT_GE(run.total_died, (n - 2) * 8)
      << "re-routing lost more than the crashed node's own holdings";
  EXPECT_GT(run.metrics.retransmissions, 0u);
  EXPECT_EQ(run.metrics.crashed_nodes, 1u);
  // The whole drill — crash detection, give-ups, redraws — must stay on
  // the deterministic schedule at every thread count.
  for (const int threads : {8, -1}) {
    const ReliableCountingRun again = run_at(threads);
    EXPECT_EQ(again.total_died, run.total_died) << "threads=" << threads;
    EXPECT_EQ(again.metrics.rounds, run.metrics.rounds)
        << "threads=" << threads;
    EXPECT_EQ(again.metrics.retransmissions, run.metrics.retransmissions)
        << "threads=" << threads;
  }
}

TEST(SelfHealingStress, RetransmissionsExactlyMonotoneInDropRate) {
  Rng rng(29);
  const Graph g = make_erdos_renyi(16, 0.3, rng);
  std::uint64_t previous = 0;
  bool first = true;
  for (const double rate : {0.0, 0.1, 0.2, 0.3}) {
    FaultPlan plan;
    plan.seed = 4242;  // fixed schedule stream across rates
    plan.drop_prob = rate;
    plan.dup_prob = 0.2;
    const ReliableCountingRun run =
        run_reliable_counting(g, plan, /*max_retries=*/16,
                              /*deadline=*/20000);
    if (first) {
      EXPECT_EQ(run.metrics.retransmissions, 0u)
          << "retransmissions without drops";
      first = false;
    } else {
      EXPECT_GT(run.metrics.retransmissions, previous)
          << "retransmissions not monotone at drop rate " << rate;
    }
    previous = run.metrics.retransmissions;
    // Whatever the rate, accounting stays exactly-once.
    EXPECT_EQ(run.total_died,
              (static_cast<std::uint64_t>(g.node_count()) - 1) * 8)
        << "drop rate " << rate;
  }
}

// --- 8. Weighted-pipeline parity through the unified entrypoint ----------
//
// The weighted (conductance) extension runs through the same simulator, so
// every fault contract above must hold for WeightedGraph runs too.  These
// sweeps go through run_pipeline — the entrypoint the CLI and benches use —
// so they also pin that the PipelineSpec overlay (seed, threads, faults,
// reliable transport) reaches the weighted runner unchanged.

WeightedGraph weighted_drill_graph() {
  Rng graph_rng(29);
  Graph g = make_watts_strogatz(14, 4, 0.2, graph_rng);
  Rng weight_rng(92);
  return randomly_weighted(std::move(g), 5, weight_rng);
}

PipelineSpec weighted_drill_spec(bool faults) {
  PipelineSpec spec;  // algorithm "rwbc"
  spec.rwbc.walks_per_source = 8;
  spec.rwbc.cutoff = 48;
  spec.seed = 29;
  spec.bit_floor = 128;
  if (faults) {
    spec.faults.seed = 888;
    spec.faults.drop_prob = 0.03;
    spec.faults.dup_prob = 0.02;
    spec.reliable_transport = true;
  }
  return spec;
}

TEST(WeightedPipeline, DefaultPlanMatchesDirectWeightedRun) {
  const WeightedGraph wg = weighted_drill_graph();
  // A fault seed with no scheduled faults must not perturb the weighted
  // run, and the unified entrypoint must add nothing over a direct call.
  PipelineSpec spec = weighted_drill_spec(false);
  spec.faults.seed = 5555;
  const RunReport report = run_pipeline(wg, spec);

  DistributedRwbcOptions direct;
  direct.walks_per_source = spec.rwbc.walks_per_source;
  direct.cutoff = spec.rwbc.cutoff;
  direct.congest.seed = spec.seed;
  direct.congest.bit_floor = spec.bit_floor;
  const auto golden = distributed_rwbc(wg, direct);
  EXPECT_EQ(hash_vec(report.scores), hash_vec(golden.report.scores));
  EXPECT_EQ(report.rounds, golden.report.metrics.rounds);
  EXPECT_EQ(report.bits, golden.report.metrics.total_bits);
  EXPECT_EQ(report.metrics.dropped_messages, 0u);
  EXPECT_EQ(report.metrics.duplicated_messages, 0u);
}

TEST(WeightedPipeline, FaultyWeightedSweepIsThreadCountInvariant) {
  const WeightedGraph wg = weighted_drill_graph();
  auto run_with = [&](int threads) {
    PipelineSpec spec = weighted_drill_spec(true);
    spec.threads = threads;
    return run_pipeline(wg, spec);
  };
  const RunReport golden = run_with(0);
  EXPECT_GT(golden.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.metrics.retransmissions, 0u);
  for (const int threads : {2, 8, -1}) {
    const RunReport got = run_with(threads);
    EXPECT_EQ(golden.scores, got.scores) << "threads=" << threads;
    EXPECT_EQ(golden.rounds, got.rounds) << "threads=" << threads;
    EXPECT_EQ(golden.bits, got.bits) << "threads=" << threads;
    EXPECT_EQ(golden.metrics.dropped_messages, got.metrics.dropped_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.metrics.duplicated_messages,
              got.metrics.duplicated_messages)
        << "threads=" << threads;
    EXPECT_EQ(golden.metrics.retransmissions, got.metrics.retransmissions)
        << "threads=" << threads;
  }
}

TEST(WeightedPipeline, DropCountMonotoneInDropProbOnWeightedRuns) {
  const WeightedGraph wg = weighted_drill_graph();
  std::uint64_t previous = 0;
  bool first = true;
  for (const double rate : {0.0, 0.02, 0.05, 0.10}) {
    PipelineSpec spec = weighted_drill_spec(true);
    spec.faults.drop_prob = rate;
    spec.faults.dup_prob = 0.0;
    spec.rwbc.fault_deadline_rounds = 8000;
    const RunReport report = run_pipeline(wg, spec);
    if (first) {
      EXPECT_EQ(report.metrics.dropped_messages, 0u);
      first = false;
    } else {
      EXPECT_GT(report.metrics.dropped_messages, previous)
          << "drop count not monotone at rate " << rate;
    }
    previous = report.metrics.dropped_messages;
  }
}

}  // namespace
}  // namespace rwbc
