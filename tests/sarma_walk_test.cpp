// Stitched distributed random walks (Section II-D, Das Sarma et al.):
// distributional correctness against the naive token walk and against the
// analytic l-step distribution, step accounting, the round-count advantage,
// and CONGEST compliance.
#include <gtest/gtest.h>

#include <map>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"
#include "rwbc/sarma_walk.hpp"

namespace rwbc {
namespace {

// Analytic distribution of an l-step walk from `source`: column of M^l.
std::vector<double> walk_distribution(const Graph& g, NodeId source,
                                      std::size_t length) {
  const auto n = static_cast<std::size_t>(g.node_count());
  Vector p(n, 0.0);
  p[static_cast<std::size_t>(source)] = 1.0;
  const DenseMatrix m = transition_matrix(g);
  for (std::size_t step = 0; step < length; ++step) {
    p = multiply(m, p);
  }
  return p;
}

TEST(DirectWalk, TakesExactlyLengthRoundsOfWalking) {
  const Graph g = make_cycle(12);
  CongestConfig config;
  config.seed = 1;
  const auto result = direct_distributed_walk(g, 0, 50, config);
  EXPECT_GE(result.destination, 0);
  // Token sent rounds 0..49; destination realises at round 50.
  EXPECT_GE(result.metrics.rounds, 50u);
  EXPECT_LE(result.metrics.rounds, 52u);
}

TEST(DirectWalk, MatchesAnalyticDistribution) {
  const Graph g = make_path(5);
  const std::size_t length = 6;
  const auto expected = walk_distribution(g, 2, length);
  std::map<NodeId, int> histogram;
  const int runs = 4000;
  for (int run = 0; run < runs; ++run) {
    CongestConfig config;
    config.seed = static_cast<std::uint64_t>(run) + 1;
    ++histogram[direct_distributed_walk(g, 2, length, config).destination];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double freq =
        static_cast<double>(histogram[v]) / static_cast<double>(runs);
    EXPECT_NEAR(freq, expected[static_cast<std::size_t>(v)], 0.04)
        << "node " << v;
  }
}

TEST(SarmaWalk, StepAccountingIsExact) {
  const Graph g = make_grid(4, 4);
  SarmaWalkOptions options;
  options.length = 64;
  options.short_walk_length = 8;
  options.congest.seed = 2;
  const auto result = sarma_distributed_walk(g, 3, options);
  EXPECT_GE(result.destination, 0);
  // Every step is either part of an 8-step stitch or a direct move.
  EXPECT_EQ(result.stitches * 8 + result.direct_steps, 64u);
  EXPECT_GT(result.stitches, 0u);
}

TEST(SarmaWalk, MatchesAnalyticDistribution) {
  // The stitched walk must sample the same l-step distribution as the
  // naive walk — stitching is a faithful lambda-step jump.
  const Graph g = make_cycle(6);
  const std::size_t length = 9;
  const auto expected = walk_distribution(g, 0, length);
  std::map<NodeId, int> histogram;
  const int runs = 3000;
  for (int run = 0; run < runs; ++run) {
    SarmaWalkOptions options;
    options.length = length;
    options.short_walk_length = 3;
    options.congest.seed = static_cast<std::uint64_t>(run) + 1;
    ++histogram[sarma_distributed_walk(g, 0, options).destination];
  }
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double freq =
        static_cast<double>(histogram[v]) / static_cast<double>(runs);
    EXPECT_NEAR(freq, expected[static_cast<std::size_t>(v)], 0.04)
        << "node " << v;
  }
}

TEST(SarmaWalk, BeatsDirectWalkOnLongWalks) {
  // The headline of Section II-D: O(sqrt(l D)) < l once l >> D.
  const Graph g = make_grid(8, 8);  // D = 14
  const std::size_t length = 4096;
  SarmaWalkOptions options;
  options.length = length;
  options.congest.seed = 3;
  const auto stitched = sarma_distributed_walk(g, 0, options);
  CongestConfig direct_config;
  direct_config.seed = 3;
  const auto direct = direct_distributed_walk(g, 0, length, direct_config);
  EXPECT_GT(stitched.stitches, 0u);
  EXPECT_LT(stitched.report.metrics.rounds, direct.metrics.rounds);
  EXPECT_GE(direct.metrics.rounds, length);
}

TEST(SarmaWalk, RespectsCongestBudget) {
  const Graph g = make_grid(5, 5);
  SarmaWalkOptions options;
  options.length = 256;
  options.congest.seed = 4;
  const auto result = sarma_distributed_walk(g, 7, options);
  Network probe(g, options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(SarmaWalk, DeterministicUnderSeed) {
  const Graph g = make_cycle(10);
  SarmaWalkOptions options;
  options.length = 40;
  options.congest.seed = 5;
  const auto a = sarma_distributed_walk(g, 2, options);
  const auto b = sarma_distributed_walk(g, 2, options);
  EXPECT_EQ(a.destination, b.destination);
  EXPECT_EQ(a.report.metrics.rounds, b.report.metrics.rounds);
}

TEST(SarmaWalk, HandlesExhaustedCouponsCorrectly) {
  // Force eta = 1: most of the walk must fall back to direct steps, but
  // the destination distribution (checked via accounting) stays valid.
  const Graph g = make_cycle(8);
  SarmaWalkOptions options;
  options.length = 50;
  options.short_walk_length = 4;
  options.coupons_per_node = 1;
  options.congest.seed = 6;
  const auto result = sarma_distributed_walk(g, 0, options);
  EXPECT_GE(result.destination, 0);
  EXPECT_GT(result.direct_steps, 0u);
  EXPECT_EQ(result.stitches * 4 + result.direct_steps, 50u);
}

TEST(SarmaWalk, RejectsBadInputs) {
  const Graph g = make_path(4);
  SarmaWalkOptions options;
  options.length = 0;
  EXPECT_THROW(sarma_distributed_walk(g, 0, options), Error);
  options.length = 4;
  EXPECT_THROW(sarma_distributed_walk(g, 9, options), Error);
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(sarma_distributed_walk(b.build(), 0, options), Error);
}

}  // namespace
}  // namespace rwbc
