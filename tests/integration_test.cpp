// Cross-module integration: the full distributed pipeline against the exact
// solver across every generator family, the centralized MC control arm, and
// the trivial baseline — the test-suite version of experiment E10.
#include <gtest/gtest.h>

#include <string>

#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "centrality/ranking.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/gather_exact.hpp"

namespace rwbc {
namespace {

Graph family_graph(const std::string& name) {
  Rng rng(31);
  if (name == "path") return make_path(10);
  if (name == "cycle") return make_cycle(12);
  if (name == "star") return make_star(12);
  if (name == "complete") return make_complete(8);
  if (name == "grid") return make_grid(3, 4);
  if (name == "tree") return make_binary_tree(11);
  if (name == "barbell") return make_barbell(4, 2);
  if (name == "fig1") return make_fig1_graph(3).graph;
  if (name == "er") return make_erdos_renyi(12, 0.3, rng);
  if (name == "ba") return make_barabasi_albert(12, 2, rng);
  if (name == "ws") return make_watts_strogatz(12, 4, 0.2, rng);
  throw std::runtime_error("unknown family " + name);
}

class FamilyIntegration : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyIntegration, DistributedTracksExact) {
  const Graph g = family_graph(GetParam());
  DistributedRwbcOptions options;
  options.walks_per_source = 2500;
  options.cutoff = 60 * static_cast<std::size_t>(g.node_count());
  options.run_leader_election = false;  // keep the suite fast
  options.congest.seed = 1234;
  options.congest.bit_floor = 128;  // K beyond Theorem 3 needs wider counts
  const auto distributed = distributed_rwbc(g, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, distributed.report.scores), 0.12)
      << "family " << GetParam();
  // Rank agreement is only meaningful on families with genuinely distinct
  // scores; vertex-transitive graphs (cycle, star leaves, cliques) have
  // exact ties whose noisy tie-breaks make tau ~ 0 by construction.
  const std::string family = GetParam();
  if (family == "er" || family == "ba" || family == "grid") {
    EXPECT_GT(kendall_tau(exact, distributed.report.scores), 0.8)
        << "family " << GetParam();
  }
}

TEST_P(FamilyIntegration, CentralizedMcTracksExact) {
  const Graph g = family_graph(GetParam());
  McOptions options;
  options.walks_per_source = 2500;
  options.cutoff = 60 * static_cast<std::size_t>(g.node_count());
  options.target = 0;
  options.seed = 99;
  const auto mc = current_flow_betweenness_mc(g, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, mc.betweenness), 0.12)
      << "family " << GetParam();
}

TEST_P(FamilyIntegration, TrivialBaselineIsExact) {
  const Graph g = family_graph(GetParam());
  GatherExactOptions options;
  options.run_leader_election = false;
  const auto gathered = gather_exact_rwbc(g, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, gathered.betweenness), 1e-5)
      << "family " << GetParam();
}

TEST_P(FamilyIntegration, CongestComplianceAcrossFamilies) {
  const Graph g = family_graph(GetParam());
  DistributedRwbcOptions options;
  options.walks_per_source = 24;
  options.cutoff = 4 * static_cast<std::size_t>(g.node_count());
  options.congest.seed = 7;
  const auto result = distributed_rwbc(g, options);
  Network probe(g, options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget())
      << "family " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyIntegration,
                         ::testing::Values("path", "cycle", "star", "complete",
                                           "grid", "tree", "barbell", "fig1",
                                           "er", "ba", "ws"),
                         [](const auto& suite_info) { return suite_info.param; });

TEST(Integration, Fig1StoryHoldsEndToEnd) {
  // The paper's motivating claim, reproduced on the full distributed stack:
  // node C is invisible to shortest paths but prominent under RWBC.
  const Fig1Layout layout = make_fig1_graph(3);
  DistributedRwbcOptions options;
  options.walks_per_source = 3000;
  options.cutoff = 500;
  options.run_leader_election = false;
  options.congest.seed = 5;
  options.congest.bit_floor = 128;
  const auto result = distributed_rwbc(layout.graph, options);
  const auto c = static_cast<std::size_t>(layout.c);
  const double floor =
      2.0 / static_cast<double>(layout.graph.node_count());
  EXPECT_GT(result.report.scores[c], 1.4 * floor);
}

TEST(Integration, DistributedAndCentralizedMcAgreeStatistically) {
  // Same estimator, different execution substrate: their errors against the
  // exact answer must be of the same magnitude.
  const Graph g = make_grid(3, 3);
  const auto exact = current_flow_betweenness(g);

  DistributedRwbcOptions d_options;
  d_options.walks_per_source = 1500;
  d_options.cutoff = 400;
  d_options.forced_target = 0;
  d_options.run_leader_election = false;
  d_options.congest.seed = 11;
  d_options.congest.bit_floor = 128;
  const auto distributed = distributed_rwbc(g, d_options);

  McOptions c_options;
  c_options.walks_per_source = 1500;
  c_options.cutoff = 400;
  c_options.target = 0;
  c_options.seed = 12;
  const auto centralized = current_flow_betweenness_mc(g, c_options);

  const double err_d = max_relative_error(exact, distributed.report.scores);
  const double err_c = max_relative_error(exact, centralized.betweenness);
  EXPECT_LT(err_d, 0.1);
  EXPECT_LT(err_c, 0.1);
  EXPECT_LT(err_d, 5 * err_c + 0.02);  // congestion adds no systematic bias
}

TEST(Integration, RoundsOrderingMatchesTheComplexityStory) {
  // The paper's O(n log n) vs O(m) separation needs m >> n AND a narrow
  // funnel (on a high-degree BFS tree the gather parallelises across the
  // root's edges).  A barbell delivers both: all right-clique edges must
  // cross the single bridge, so gather pays Theta(m) there while the
  // approximation algorithm stays near-linear in n.
  const Graph g = make_barbell(64, 2);  // n = 130, m = 4035
  DistributedRwbcOptions approx_options;
  approx_options.walks_per_source = 4;
  approx_options.cutoff = 260;  // 2n
  approx_options.run_leader_election = false;
  approx_options.compute_scores = false;
  approx_options.congest.seed = 13;
  const auto approx = distributed_rwbc(g, approx_options);
  GatherExactOptions gather_options;
  gather_options.run_leader_election = false;
  const auto gather = gather_exact_rwbc(g, gather_options);
  EXPECT_LT(approx.report.metrics.rounds, gather.total.rounds);
}

}  // namespace
}  // namespace rwbc
