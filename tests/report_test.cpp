// The unified RunReport API (rwbc/report.hpp).
//
// PR 5 introduced RunReport as the one result surface every pipeline
// publishes; this PR deletes the deprecated per-result aliases
// (`betweenness`, `total`, `pagerank`, `metrics`).  This suite is the
// compile-coverage backstop for that removal: it reads EVERY RunReport
// accessor through each of the five pipelines, so a future rename or
// removal of an accessor breaks here first, not in a downstream consumer.
// The cross-checks (rounds/bits mirror metrics, seed echoes the config,
// resumed_from_round is the fresh-run sentinel) pin the make_run_report
// contract itself.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"
#include "rwbc/report.hpp"
#include "rwbc/sarma_walk.hpp"

namespace rwbc {
namespace {

// Touches every field of a report and checks the invariants shared by all
// pipelines.  `expect_scores` distinguishes score-producing pipelines from
// the Sarma walk (destination only).
void check_report(const RunReport& report, const std::string& algorithm,
                  std::uint64_t seed, std::size_t n, bool expect_scores) {
  EXPECT_EQ(report.algorithm, algorithm);
  if (expect_scores) {
    EXPECT_EQ(report.scores.size(), n);
  } else {
    EXPECT_TRUE(report.scores.empty());
  }
  EXPECT_GT(report.metrics.rounds, 0u);
  EXPECT_GT(report.metrics.total_messages, 0u);
  EXPECT_GT(report.metrics.total_bits, 0u);
  EXPECT_EQ(report.rounds, report.metrics.rounds);
  EXPECT_EQ(report.bits, report.metrics.total_bits);
  EXPECT_EQ(report.seed, seed);
  EXPECT_EQ(report.resumed_from_round, -1);
}

TEST(RunReportCoverage, Rwbc) {
  const Graph g = make_complete(5);
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 20;
  options.congest.seed = 11;
  const auto result = distributed_rwbc(g, options);
  check_report(result.report, "rwbc", 11, 5, /*expect_scores=*/true);
  // The per-phase metrics stay on the result; the report totals them.
  EXPECT_EQ(result.report.metrics.rounds,
            result.election_metrics.rounds + result.bfs_metrics.rounds +
                result.dissemination_metrics.rounds +
                result.counting_metrics.rounds +
                result.computing_metrics.rounds);
}

TEST(RunReportCoverage, RwbcWithoutScores) {
  const Graph g = make_cycle(6);
  DistributedRwbcOptions options;
  options.walks_per_source = 8;
  options.cutoff = 20;
  options.compute_scores = false;
  options.congest.seed = 12;
  const auto result = distributed_rwbc(g, options);
  check_report(result.report, "rwbc", 12, 6, /*expect_scores=*/false);
}

TEST(RunReportCoverage, Spbc) {
  const Graph g = make_grid(3, 3);
  DistributedSpbcOptions options;
  options.congest.seed = 13;
  options.congest.bit_floor = 64;  // updates carry 2 log n + 30 bits
  const auto result = distributed_spbc(g, options);
  check_report(result.report, "spbc", 13, 9, /*expect_scores=*/true);
  EXPECT_EQ(result.report.metrics.rounds,
            result.forward_metrics.rounds + result.backward_metrics.rounds);
}

TEST(RunReportCoverage, AlphaCfb) {
  const Graph g = make_complete(5);
  DistributedAlphaCfbOptions options;
  options.walks_per_source = 8;
  options.congest.seed = 14;
  const auto result = distributed_alpha_cfb(g, options);
  check_report(result.report, "alpha-cfb", 14, 5, /*expect_scores=*/true);
  EXPECT_EQ(result.report.metrics.rounds,
            result.counting_metrics.rounds + result.computing_metrics.rounds);
}

TEST(RunReportCoverage, Pagerank) {
  const Graph g = make_star(6);
  DistributedPagerankOptions options;
  options.walks_per_node = 16;
  options.congest.seed = 15;
  const auto result = distributed_pagerank(g, options);
  check_report(result.report, "pagerank", 15, 6, /*expect_scores=*/true);
}

TEST(RunReportCoverage, SarmaWalk) {
  const Graph g = make_grid(4, 4);
  SarmaWalkOptions options;
  options.length = 64;
  options.congest.seed = 16;
  const auto result = sarma_distributed_walk(g, 0, options);
  check_report(result.report, "sarma-walk", 16, 16, /*expect_scores=*/false);
  EXPECT_EQ(result.report.metrics.rounds,
            result.bfs_metrics.rounds + result.walk_metrics.rounds);
}

// make_run_report in isolation: the mirrors are copies taken at assembly
// time, and the resumed_from_round pass-through lands verbatim.
TEST(RunReportCoverage, MakeRunReportMirrorsMetrics) {
  RunMetrics metrics;
  metrics.rounds = 42;
  metrics.total_bits = 1234;
  metrics.total_messages = 99;
  std::vector<double> scores = {0.5, 1.5};
  const RunReport report =
      make_run_report("rwbc", std::move(scores), metrics, 777, 21);
  EXPECT_EQ(report.algorithm, "rwbc");
  EXPECT_EQ(report.scores, (std::vector<double>{0.5, 1.5}));
  EXPECT_EQ(report.metrics.total_messages, 99u);
  EXPECT_EQ(report.rounds, 42u);
  EXPECT_EQ(report.bits, 1234u);
  EXPECT_EQ(report.seed, 777u);
  EXPECT_EQ(report.resumed_from_round, 21);
}

}  // namespace
}  // namespace rwbc
