// Dense matrix/vector operations used by the exact solver.
#include <gtest/gtest.h>

#include "linalg/dense.hpp"

namespace rwbc {
namespace {

TEST(DenseMatrix, IdentityAndIndexing) {
  const DenseMatrix i3 = DenseMatrix::identity(3);
  EXPECT_EQ(i3.rows(), 3u);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
}

TEST(DenseMatrix, MultiplyMatrices) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1; a(0, 1) = 2; a(0, 2) = 3;
  a(1, 0) = 4; a(1, 1) = 5; a(1, 2) = 6;
  DenseMatrix b(3, 2);
  b(0, 0) = 7;  b(0, 1) = 8;
  b(1, 0) = 9;  b(1, 1) = 10;
  b(2, 0) = 11; b(2, 1) = 12;
  const DenseMatrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 58);
  EXPECT_DOUBLE_EQ(c(0, 1), 64);
  EXPECT_DOUBLE_EQ(c(1, 0), 139);
  EXPECT_DOUBLE_EQ(c(1, 1), 154);
}

TEST(DenseMatrix, MultiplyVector) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 3; a(1, 1) = 4;
  const Vector x{5, 6};
  const Vector y = multiply(a, x);
  EXPECT_DOUBLE_EQ(y[0], 17);
  EXPECT_DOUBLE_EQ(y[1], 39);
}

TEST(DenseMatrix, ShapeMismatchThrows) {
  const DenseMatrix a(2, 3), b(2, 2);
  EXPECT_THROW(multiply(a, b), Error);
  EXPECT_THROW(add(a, b), Error);
  EXPECT_THROW(subtract(a, b), Error);
  const Vector x{1, 2};
  EXPECT_THROW(multiply(a, x), Error);
}

TEST(DenseMatrix, AddSubtractScaleTranspose) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  const DenseMatrix sum = add(a, a);
  EXPECT_DOUBLE_EQ(sum(1, 0), 6);
  const DenseMatrix zero = subtract(a, a);
  EXPECT_DOUBLE_EQ(zero.max_abs(), 0.0);
  const DenseMatrix half = scale(a, 0.5);
  EXPECT_DOUBLE_EQ(half(1, 1), 2.0);
  const DenseMatrix t = a.transposed();
  EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
}

TEST(DenseMatrix, OneNormIsMaxColumnSum) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = -5;
  a(1, 0) = 2; a(1, 1) = 3;
  EXPECT_DOUBLE_EQ(a.one_norm(), 8.0);  // column 1: |-5| + |3|
}

TEST(DenseMatrix, RemoveAndInsertRowColAreInverse) {
  DenseMatrix a(3, 3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      a(r, c) = static_cast<double>(r * 3 + c + 1);
    }
  }
  const DenseMatrix reduced = remove_row_col(a, 1);
  ASSERT_EQ(reduced.rows(), 2u);
  EXPECT_DOUBLE_EQ(reduced(0, 0), 1);
  EXPECT_DOUBLE_EQ(reduced(0, 1), 3);
  EXPECT_DOUBLE_EQ(reduced(1, 0), 7);
  EXPECT_DOUBLE_EQ(reduced(1, 1), 9);
  const DenseMatrix padded = insert_zero_row_col(reduced, 1);
  ASSERT_EQ(padded.rows(), 3u);
  EXPECT_DOUBLE_EQ(padded(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(padded(0, 0), 1);
  EXPECT_DOUBLE_EQ(padded(2, 2), 9);
  EXPECT_DOUBLE_EQ(padded(0, 1), 0.0);
}

TEST(DenseVector, DotAndNorm) {
  const Vector a{3, 4};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  const Vector b{1};
  EXPECT_THROW(dot(a, b), Error);
}

}  // namespace
}  // namespace rwbc
