// Weighted (conductance) extension: the WeightedGraph view, weighted exact
// current-flow betweenness, the weighted Monte-Carlo estimator, and the
// weighted distributed pipeline — all cross-validated against closed forms
// and against the unweighted code at weight 1.
#include <gtest/gtest.h>

#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_weighted.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace rwbc {
namespace {

TEST(WeightedGraph, BasicAccessors) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  WeightedGraph wg(b.build(), {2.0, 5.0});
  EXPECT_DOUBLE_EQ(wg.edge_weight(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(wg.edge_weight(2, 1), 5.0);
  EXPECT_DOUBLE_EQ(wg.strength(1), 7.0);
  EXPECT_DOUBLE_EQ(wg.strength(0), 2.0);
  EXPECT_TRUE(wg.has_integer_weights());
  EXPECT_DOUBLE_EQ(wg.max_weight(), 5.0);
  const auto weights = wg.neighbor_weights(1);  // neighbours sorted: 0, 2
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_DOUBLE_EQ(weights[0], 2.0);
  EXPECT_DOUBLE_EQ(weights[1], 5.0);
}

TEST(WeightedGraph, ValidatesInput) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  EXPECT_THROW(WeightedGraph(b.build(), {1.0}), Error);          // count
  EXPECT_THROW(WeightedGraph(b.build(), {1.0, 0.0}), Error);     // zero
  EXPECT_THROW(WeightedGraph(b.build(), {1.0, -2.0}), Error);    // negative
  WeightedGraph fractional(b.build(), {1.0, 2.5});
  EXPECT_FALSE(fractional.has_integer_weights());
}

TEST(WeightedGraph, SamplingFollowsWeights) {
  GraphBuilder b(3);
  b.add_edge(1, 0).add_edge(1, 2);
  WeightedGraph wg(b.build(), {3.0, 1.0});  // edges (0,1) w=3, (1,2) w=1
  Rng rng(7);
  int to_zero = 0;
  const int draws = 40'000;
  for (int i = 0; i < draws; ++i) {
    if (wg.sample_neighbor(1, rng.next_double()) == 0) ++to_zero;
  }
  EXPECT_NEAR(static_cast<double>(to_zero) / draws, 0.75, 0.01);
}

TEST(WeightedExact, UnitWeightsReduceToUnweighted) {
  Rng rng(3);
  const Graph g = make_erdos_renyi(12, 0.35, rng);
  const WeightedGraph wg = WeightedGraph::uniform(g);
  const auto weighted = current_flow_betweenness(wg);
  const auto unweighted = current_flow_betweenness(g);
  for (std::size_t v = 0; v < weighted.size(); ++v) {
    EXPECT_NEAR(weighted[v], unweighted[v], 1e-9);
  }
}

TEST(WeightedExact, ConductanceSplitsCurrentOnParallelPaths) {
  // 0 - 1 - 3 and 0 - 2 - 3: two parallel 2-hop paths.  With conductances
  // 3 on the top path and 1 on the bottom, the top path's series
  // conductance is 3/2 vs 1/2: node 1 carries 3/4 of the 0->3 current.
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(1, 3).add_edge(0, 2).add_edge(2, 3);
  // canonical edge order: (0,1), (0,2), (1,3), (2,3)
  WeightedGraph wg(b.build(), {3.0, 1.0, 3.0, 1.0});
  const DenseMatrix t = exact_potentials(wg, 3);
  const double v0 = t(0, 0);
  const double v1 = t(1, 0);
  // current through 1 = w01 * (V0 - V1) must be 3/4.
  EXPECT_NEAR(3.0 * (v0 - v1), 0.75, 1e-9);
  // And the betweenness of node 1 exceeds node 2's.
  const auto scores = current_flow_betweenness(wg);
  EXPECT_GT(scores[1], scores[2]);
}

TEST(WeightedExact, HeavyEdgeAttractsFlow) {
  // On a cycle, making one arc heavy pulls current (and betweenness)
  // toward the nodes on that arc.
  const Graph g = make_cycle(6);
  std::vector<double> weights(6, 1.0);
  // canonical edges of C6: (0,1),(0,5),(1,2),(2,3),(3,4),(4,5)
  weights[0] = 10.0;  // (0,1)
  weights[2] = 10.0;  // (1,2)
  const WeightedGraph wg(g, weights);
  const auto scores = current_flow_betweenness(wg);
  EXPECT_GT(scores[1], scores[4]);  // node 1 sits on the superhighway
}

TEST(WeightedExact, GroundingInvariance) {
  Rng rng(11);
  const WeightedGraph wg = randomly_weighted(make_grid(3, 3), 5, rng);
  const auto a = current_flow_betweenness(wg, 0);
  const auto b = current_flow_betweenness(wg, 8);
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], 1e-8);
  }
}

TEST(WeightedMc, ConvergesToWeightedExact) {
  Rng rng(13);
  const WeightedGraph wg = randomly_weighted(make_complete(5), 4, rng);
  McOptions options;
  options.walks_per_source = 40'000;
  options.cutoff = 300;
  options.target = 0;
  options.seed = 17;
  const McResult mc = current_flow_betweenness_mc(wg, options);
  const auto exact = current_flow_betweenness(wg);
  EXPECT_LT(max_relative_error(exact, mc.betweenness), 0.05);
  // And the potentials estimate matches entrywise.
  const DenseMatrix t = exact_potentials(wg, 0);
  EXPECT_LT(subtract(mc.scaled_visits, t).max_abs(), 0.02);
}

TEST(WeightedDistributed, MatchesWeightedExact) {
  Rng rng(19);
  const WeightedGraph wg = randomly_weighted(make_cycle(6), 3, rng);
  DistributedRwbcOptions options;
  options.walks_per_source = 3000;
  options.cutoff = 600;
  options.congest.seed = 23;
  options.congest.bit_floor = 128;
  const auto result = distributed_rwbc(wg, options);
  const auto exact = current_flow_betweenness(wg);
  EXPECT_LT(max_relative_error(exact, result.report.scores), 0.10);
}

TEST(WeightedDistributed, ScaledVisitsMatchWeightedPotentials) {
  Rng rng(29);
  const WeightedGraph wg = randomly_weighted(make_complete(4), 4, rng);
  DistributedRwbcOptions options;
  options.walks_per_source = 20'000;
  options.cutoff = 200;
  options.forced_target = 3;
  options.congest.seed = 31;
  options.congest.bit_floor = 128;
  const auto result = distributed_rwbc(wg, options);
  const DenseMatrix t = exact_potentials(wg, 3);
  EXPECT_LT(subtract(result.scaled_visits, t).max_abs(), 0.02);
}

TEST(WeightedDistributed, UnitWeightsMatchUnweightedPipeline) {
  // With weight 1 the weighted pipeline must follow the same code paths
  // statistically: compare both against exact with the same tolerance.
  const Graph g = make_grid(3, 3);
  const WeightedGraph wg = WeightedGraph::uniform(g);
  DistributedRwbcOptions options;
  options.walks_per_source = 2000;
  options.cutoff = 300;
  options.forced_target = 0;
  options.congest.seed = 37;
  options.congest.bit_floor = 128;
  const auto weighted = distributed_rwbc(wg, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, weighted.report.scores), 0.1);
}

TEST(WeightedDistributed, RejectsFractionalWeights) {
  GraphBuilder b(3);
  b.add_edge(0, 1).add_edge(1, 2);
  const WeightedGraph wg(b.build(), {1.0, 2.5});
  EXPECT_THROW(distributed_rwbc(wg, {}), Error);
}

TEST(WeightedDistributed, RespectsCongestBudget) {
  Rng rng(41);
  const WeightedGraph wg = randomly_weighted(make_grid(4, 4), 7, rng);
  DistributedRwbcOptions options;
  options.walks_per_source = 16;
  options.cutoff = 64;
  options.congest.seed = 43;
  const auto result = distributed_rwbc(wg, options);
  Network probe(wg.topology(), options.congest);
  EXPECT_LE(result.report.metrics.max_bits_per_edge_round, probe.bit_budget());
}

}  // namespace
}  // namespace rwbc
