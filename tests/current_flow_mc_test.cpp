// Centralized Monte-Carlo estimator: convergence to the exact potentials
// and betweenness (Theorems 1-3 in miniature), bookkeeping invariants, and
// determinism.
#include <gtest/gtest.h>

#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(CurrentFlowMc, ScaledVisitsConvergeToExactPotentials) {
  const Graph g = make_complete(4);
  McOptions options;
  options.walks_per_source = 60'000;
  options.cutoff = 200;
  options.target = 3;
  options.seed = 42;
  const McResult mc = current_flow_betweenness_mc(g, options);
  CurrentFlowOptions exact_options;
  exact_options.grounding = 3;
  const DenseMatrix t = exact_potentials(g, exact_options);
  for (std::size_t v = 0; v < t.rows(); ++v) {
    for (std::size_t s = 0; s < t.cols(); ++s) {
      EXPECT_NEAR(mc.scaled_visits(v, s), t(v, s), 0.02)
          << "entry (" << v << ", " << s << ")";
    }
  }
}

TEST(CurrentFlowMc, BetweennessConvergesToExact) {
  const Graph g = make_path(6);
  McOptions options;
  options.walks_per_source = 20'000;
  options.cutoff = 600;  // path mixing is slow; generous cutoff
  options.target = 0;
  options.seed = 7;
  const McResult mc = current_flow_betweenness_mc(g, options);
  const auto exact = current_flow_betweenness(g);
  EXPECT_LT(max_relative_error(exact, mc.betweenness), 0.05);
}

TEST(CurrentFlowMc, WalkAccountingIsExact) {
  const Graph g = make_cycle(8);
  McOptions options;
  options.walks_per_source = 50;
  options.cutoff = 64;
  options.target = 2;
  options.seed = 3;
  const McResult mc = current_flow_betweenness_mc(g, options);
  EXPECT_EQ(mc.absorbed_walks + mc.truncated_walks,
            static_cast<std::uint64_t>(g.node_count() - 1) *
                options.walks_per_source);
}

TEST(CurrentFlowMc, LargeCutoffAbsorbsNearlyEverything) {
  const Graph g = make_complete(6);
  McOptions options;
  options.walks_per_source = 500;
  options.cutoff = 2000;  // >> mixing time of K_6
  options.target = 0;
  options.seed = 9;
  const McResult mc = current_flow_betweenness_mc(g, options);
  EXPECT_EQ(mc.truncated_walks, 0u);
}

TEST(CurrentFlowMc, TinyCutoffTruncatesWalks) {
  const Graph g = make_path(10);
  McOptions options;
  options.walks_per_source = 100;
  options.cutoff = 1;  // one hop cannot reach a distant absorber
  options.target = 9;
  options.seed = 5;
  const McResult mc = current_flow_betweenness_mc(g, options);
  EXPECT_GT(mc.truncated_walks, 0u);
}

TEST(CurrentFlowMc, TargetColumnAndRowStayZero) {
  const Graph g = make_complete(5);
  McOptions options;
  options.walks_per_source = 200;
  options.cutoff = 100;
  options.target = 2;
  options.seed = 1;
  const McResult mc = current_flow_betweenness_mc(g, options);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(mc.scaled_visits(2, i), 0.0);  // absorbed: no visits
    EXPECT_DOUBLE_EQ(mc.scaled_visits(i, 2), 0.0);  // no walks from target
  }
}

TEST(CurrentFlowMc, DeterministicUnderSeed) {
  const Graph g = make_grid(3, 3);
  McOptions options;
  options.walks_per_source = 64;
  options.cutoff = 128;
  options.target = 4;
  options.seed = 1234;
  const McResult a = current_flow_betweenness_mc(g, options);
  const McResult b = current_flow_betweenness_mc(g, options);
  EXPECT_EQ(a.total_moves, b.total_moves);
  EXPECT_EQ(a.betweenness, b.betweenness);
}

TEST(CurrentFlowMc, RandomTargetIsDrawnWhenUnset) {
  const Graph g = make_cycle(6);
  McOptions options;
  options.walks_per_source = 8;
  options.cutoff = 32;
  options.seed = 99;
  const McResult mc = current_flow_betweenness_mc(g, options);
  EXPECT_GE(mc.target, 0);
  EXPECT_LT(mc.target, g.node_count());
}

TEST(AbsorptionProfile, StartsAtOneAndDecreases) {
  const Graph g = make_complete(8);
  const auto profile = absorption_profile(g, 0, 20'000, 60, 11);
  EXPECT_DOUBLE_EQ(profile[0], 1.0);
  for (std::size_t r = 1; r < profile.size(); ++r) {
    EXPECT_LE(profile[r], profile[r - 1] + 1e-12);
  }
  // K_8 mixes fast: essentially everything absorbed within 60 steps.
  EXPECT_LT(profile.back(), 0.01);
}

TEST(AbsorptionProfile, GeometricDecayOnCompleteGraph) {
  // On K_n the survival probability per step is exactly (n-2)/(n-1) from
  // any non-target node.
  const NodeId n = 10;
  const Graph g = make_complete(n);
  const auto profile = absorption_profile(g, 0, 200'000, 20, 21);
  const double rate = static_cast<double>(n - 2) / static_cast<double>(n - 1);
  double expected = 1.0;
  for (std::size_t r = 1; r <= 10; ++r) {
    expected *= rate;
    EXPECT_NEAR(profile[r], expected, 0.01) << "step " << r;
  }
}

}  // namespace
}  // namespace rwbc
