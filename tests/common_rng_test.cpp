// Deterministic RNG: reproducibility, stream independence, range
// correctness, and rough uniformity.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace rwbc {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamsAreIndependent) {
  Rng a(7, 0), b(7, 1), c(7, 0);
  EXPECT_NE(a(), b());
  Rng a2(7, 0);
  EXPECT_EQ(a2(), c());
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(9);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  const std::uint64_t bound = 5;
  std::vector<int> hist(bound, 0);
  const int draws = 50'000;
  for (int i = 0; i < draws; ++i) ++hist[rng.next_below(bound)];
  for (std::uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(static_cast<double>(hist[b]), draws / 5.0, draws * 0.02);
  }
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.01);
}

}  // namespace
}  // namespace rwbc
