// The trivial gather-exact baseline: answer correctness (to fixed-point
// resolution) and the Theta(m) round cost the paper attributes to it.
#include <gtest/gtest.h>

#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "rwbc/gather_exact.hpp"

namespace rwbc {
namespace {

TEST(GatherExact, ReproducesExactScoresOnSmallGraphs) {
  for (const Graph& g : {make_path(8), make_cycle(9), make_star(7),
                         make_grid(3, 4), make_complete(6)}) {
    const GatherExactResult result = gather_exact_rwbc(g);
    const auto exact = current_flow_betweenness(g);
    ASSERT_EQ(result.betweenness.size(), exact.size());
    for (std::size_t v = 0; v < exact.size(); ++v) {
      EXPECT_NEAR(result.betweenness[v], exact[v], 1e-6)  // 24-bit quantised
          << "node " << v;
    }
  }
}

TEST(GatherExact, ReproducesExactScoresOnRandomGraph) {
  Rng rng(4);
  const Graph g = make_erdos_renyi(24, 0.25, rng);
  const GatherExactResult result = gather_exact_rwbc(g);
  const auto exact = current_flow_betweenness(g);
  for (std::size_t v = 0; v < exact.size(); ++v) {
    EXPECT_NEAR(result.betweenness[v], exact[v], 1e-6);
  }
}

TEST(GatherExact, RoundsScaleWithEdgeCountThroughABottleneck) {
  // On barbells every right-clique edge report crosses the single bridge,
  // so the gather cost is Theta(m): fitting rounds against m across the
  // family must give a near-linear exponent.  (On high-degree BFS trees the
  // gather parallelises and is *cheaper* than Theta(m) — see DESIGN.md.)
  std::vector<double> ms, rounds;
  GatherExactOptions options;
  options.run_leader_election = false;
  for (NodeId k : {8, 12, 16, 24, 32}) {
    const Graph g = make_barbell(k, 2);
    const auto r = gather_exact_rwbc(g, options);
    ms.push_back(static_cast<double>(g.edge_count()));
    rounds.push_back(static_cast<double>(r.main_metrics.rounds));
  }
  const PowerFit fit = fit_power(ms, rounds);
  EXPECT_GT(fit.exponent, 0.6);
  EXPECT_LT(fit.exponent, 1.3);
  EXPECT_GT(fit.r_squared, 0.95);
  EXPECT_GT(rounds.back(), 2.5 * rounds.front());
}

TEST(GatherExact, RespectsCongestBudget) {
  const Graph g = make_grid(4, 5);
  const GatherExactResult result = gather_exact_rwbc(g);
  CongestConfig config;
  Network probe(g, config);
  EXPECT_LE(result.total.max_bits_per_edge_round, probe.bit_budget());
}

TEST(GatherExact, PhaseMetricsAddUp) {
  const Graph g = make_cycle(12);
  const GatherExactResult r = gather_exact_rwbc(g);
  EXPECT_EQ(r.total.rounds, r.election_metrics.rounds +
                                r.bfs_metrics.rounds + r.main_metrics.rounds);
  EXPECT_EQ(r.leader, 0);
}

TEST(GatherExact, RejectsBadInputs) {
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(gather_exact_rwbc(b.build()), Error);
}

}  // namespace
}  // namespace rwbc
