// Edge-list IO: round trips, comments/blank lines, and malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace rwbc {
namespace {

TEST(GraphIo, StreamRoundTripPreservesStructure) {
  Rng rng(1);
  const Graph g = make_erdos_renyi(20, 0.2, rng);
  std::stringstream buffer;
  write_edge_list(g, buffer);
  const Graph parsed = read_edge_list(buffer);
  EXPECT_EQ(parsed.node_count(), g.node_count());
  ASSERT_EQ(parsed.edge_count(), g.edge_count());
  for (std::size_t i = 0; i < g.edge_count(); ++i) {
    EXPECT_EQ(parsed.edges()[i], g.edges()[i]);
  }
}

TEST(GraphIo, SkipsCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "3 2\n"
      "  # another\n"
      "0 1\n"
      "\n"
      "1 2\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 3);
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(GraphIo, FileRoundTrip) {
  const Graph g = make_cycle(7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "rwbc_io_test.txt").string();
  save_edge_list(g, path);
  const Graph loaded = load_edge_list(path);
  EXPECT_EQ(loaded.edge_count(), 7u);
  std::remove(path.c_str());
}

TEST(GraphIo, MalformedInputsThrow) {
  {
    std::stringstream in("");
    EXPECT_THROW(read_edge_list(in), Error);
  }
  {
    std::stringstream in("not numbers\n");
    EXPECT_THROW(read_edge_list(in), Error);
  }
  {
    std::stringstream in("3 2\n0 1\n");  // fewer edges than declared
    EXPECT_THROW(read_edge_list(in), Error);
  }
  {
    std::stringstream in("2 1\n0 5\n");  // endpoint out of range
    EXPECT_THROW(read_edge_list(in), Error);
  }
  {
    std::stringstream in("2 1\n1 1\n");  // self loop
    EXPECT_THROW(read_edge_list(in), Error);
  }
}

TEST(GraphIo, MissingFileThrows) {
  EXPECT_THROW(load_edge_list("/nonexistent/rwbc.txt"), Error);
}

TEST(GraphIo, DotExportBareGraph) {
  const Graph g = make_path(3);
  std::ostringstream out;
  write_dot(g, out);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(GraphIo, DotExportWithScores) {
  const Graph g = make_path(3);
  const std::vector<double> scores{0.1, 0.9, 0.1};
  std::ostringstream out;
  write_dot(g, out, scores);
  const std::string dot = out.str();
  EXPECT_NE(dot.find("label=\"1\\n0.9\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"grey40\""), std::string::npos);  // peak
}

TEST(GraphIo, DotExportRejectsWrongScoreCount) {
  const Graph g = make_path(3);
  const std::vector<double> wrong{1.0};
  std::ostringstream out;
  EXPECT_THROW(write_dot(g, out, wrong), Error);
}

}  // namespace
}  // namespace rwbc
