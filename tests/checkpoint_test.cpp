// Checkpoint/restore: envelope integrity, supervisor rotation and
// degradation, bit-identical resume of the full RWBC pipeline at every
// thread count (with and without faults + reliable transport), and the
// generic label-selective resume path used by the family pipelines.
//
// The in-process analogue of the CLI kill drill: a round_observer that
// throws after N cumulative rounds aborts the run exactly where
// `rwbc_cli --kill-at-round N` would SIGKILL it; the checkpoint directory
// left behind is then resumed and the result compared field-by-field
// against an uninterrupted golden run.
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "congest/checkpoint.hpp"
#include "congest/supervisor.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_alpha_cfb.hpp"
#include "rwbc/distributed_pagerank.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/distributed_spbc.hpp"
#include "rwbc/pipeline.hpp"
#include "rwbc/sarma_walk.hpp"

namespace rwbc {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (removed up-front so reruns start clean).
fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("rwbc-ckpt-test-" + tag);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void flip_byte(const fs::path& path, std::size_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  f.get(byte);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(byte ^ 0x5a));
}

void expect_metrics_eq(const RunMetrics& a, const RunMetrics& b,
                       const char* what) {
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.total_messages, b.total_messages) << what;
  EXPECT_EQ(a.total_bits, b.total_bits) << what;
  EXPECT_EQ(a.max_bits_per_edge_round, b.max_bits_per_edge_round) << what;
  EXPECT_EQ(a.max_messages_per_edge_round, b.max_messages_per_edge_round)
      << what;
  EXPECT_EQ(a.cut_bits, b.cut_bits) << what;
  EXPECT_EQ(a.cut_messages, b.cut_messages) << what;
  EXPECT_EQ(a.dropped_messages, b.dropped_messages) << what;
  EXPECT_EQ(a.duplicated_messages, b.duplicated_messages) << what;
  EXPECT_EQ(a.crashed_nodes, b.crashed_nodes) << what;
  EXPECT_EQ(a.retransmissions, b.retransmissions) << what;
}

// ---------------------------------------------------------------------------
// Envelope: seal/open round trip and every rejection path.
// ---------------------------------------------------------------------------

TEST(CheckpointEnvelope, RoundTripsAllPrimitives) {
  CheckpointWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.f64(-0.0);
  w.boolean(true);
  w.boolean(false);
  w.blob(std::vector<std::uint8_t>{1, 2, 3});
  w.str("rwbc-counting");

  const auto sealed = seal_checkpoint(w);
  CheckpointReader r = open_checkpoint(sealed, "unit");
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_EQ(r.f64(), 3.25);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit pattern, not just value
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.blob(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.str(), "rwbc-counting");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CheckpointEnvelope, RejectsPayloadBitFlip) {
  CheckpointWriter w;
  w.u64(7);
  w.str("state");
  auto sealed = seal_checkpoint(w);
  // Envelope header is magic[8] + version u32 + payload_len u64 + crc u32.
  const std::size_t header = 8 + 4 + 8 + 4;
  ASSERT_GT(sealed.size(), header);
  sealed[header] ^= 0x01;
  EXPECT_THROW(open_checkpoint(sealed, "unit"), CheckpointError);
}

TEST(CheckpointEnvelope, RejectsBadMagicWrongVersionAndTruncation) {
  CheckpointWriter w;
  w.u64(7);
  const auto sealed = seal_checkpoint(w);

  auto bad_magic = sealed;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(open_checkpoint(bad_magic, "unit"), CheckpointError);

  auto bad_version = sealed;
  bad_version[8] ^= 0x02;  // version field, not covered by the payload CRC
  EXPECT_THROW(open_checkpoint(bad_version, "unit"), CheckpointError);

  auto truncated = sealed;
  truncated.pop_back();
  EXPECT_THROW(open_checkpoint(truncated, "unit"), CheckpointError);

  auto stub = sealed;
  stub.resize(10);
  EXPECT_THROW(open_checkpoint(stub, "unit"), CheckpointError);
}

TEST(CheckpointEnvelope, ReaderOverrunThrowsInsteadOfMisparsing) {
  CheckpointReader r(std::vector<std::uint8_t>{0x01, 0x02});
  EXPECT_EQ(r.u8(), 0x01);
  EXPECT_THROW(r.u32(), CheckpointError);
}

TEST(CheckpointEnvelope, TornWriteEveryPrefixRejected) {
  // A torn write leaves an arbitrary prefix of the sealed bytes on disk.
  // Whatever the cut point — inside the magic, the length field, or the
  // payload — the reader must throw CheckpointError, never accept or crash.
  CheckpointWriter w;
  w.u64(42);
  w.str("torn-write sweep payload");
  for (std::uint64_t i = 0; i < 8; ++i) w.u64(i * 0x0123456789abcdefULL);
  const auto sealed = seal_checkpoint(w);
  for (std::size_t len = 0; len < sealed.size(); ++len) {
    auto prefix = sealed;
    prefix.resize(len);
    EXPECT_THROW(open_checkpoint(prefix, "unit"), CheckpointError)
        << "prefix of " << len << " bytes accepted";
  }
  EXPECT_NO_THROW(open_checkpoint(sealed, "unit"));
}

TEST(CheckpointEnvelope, AnySingleByteFlipRejected) {
  // Every byte of the envelope is load-bearing: magic and version by direct
  // comparison, payload length by the size check, payload and CRC field by
  // the checksum.  Flip each one in turn and expect a clean rejection.
  CheckpointWriter w;
  w.u64(42);
  w.str("bit-flip sweep payload");
  auto sealed = seal_checkpoint(w);
  for (std::size_t offset = 0; offset < sealed.size(); ++offset) {
    auto corrupt = sealed;
    corrupt[offset] ^= 0x5a;
    EXPECT_THROW(open_checkpoint(corrupt, "unit"), CheckpointError)
        << "flip at byte " << offset << " accepted";
  }
}

// ---------------------------------------------------------------------------
// RunSupervisor: rotation, newest-first load, corrupt-candidate fallback.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> sealed_marker(std::uint64_t round) {
  CheckpointWriter w;
  w.u64(round);
  return seal_checkpoint(w);
}

TEST(RunSupervisorTest, RotatesToKeepAndLoadsNewest) {
  const fs::path dir = scratch_dir("rotation");
  RunSupervisor sup(dir, 3);
  for (const std::uint64_t round : {10u, 20u, 30u, 40u, 50u}) {
    sup.write_snapshot(round, sealed_marker(round));
  }
  EXPECT_EQ(sup.snapshots().size(), 3u);

  const auto latest = sup.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 50u);
  EXPECT_EQ(latest->skipped, 0u);
  CheckpointReader r = open_checkpoint(latest->sealed, "unit");
  EXPECT_EQ(r.u64(), 50u);
}

TEST(RunSupervisorTest, SkipsCorruptNewestAndFallsBack) {
  const fs::path dir = scratch_dir("fallback");
  RunSupervisor sup(dir, 3);
  fs::path newest;
  for (const std::uint64_t round : {100u, 200u, 300u}) {
    newest = sup.write_snapshot(round, sealed_marker(round));
  }
  flip_byte(newest, 24);  // first payload byte -> CRC mismatch

  const auto latest = sup.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 200u);
  EXPECT_EQ(latest->skipped, 1u);
  CheckpointReader r = open_checkpoint(latest->sealed, "unit");
  EXPECT_EQ(r.u64(), 200u);
}

TEST(RunSupervisorTest, TornAndPartiallyFlushedNewestFallsBack) {
  // Two flavours of interrupted write on the newest snapshot: a torn write
  // (file cut mid-payload) and a partial flush (correct length, but the
  // unflushed tail reads back as zeros).  Both must be skipped in favour of
  // the previous good snapshot.
  const fs::path dir = scratch_dir("torn-flush");
  RunSupervisor sup(dir, 4);
  fs::path newest;
  for (const std::uint64_t round : {100u, 200u, 300u}) {
    newest = sup.write_snapshot(round, sealed_marker(round));
  }

  const auto full_size = fs::file_size(newest);
  fs::resize_file(newest, full_size / 2);  // torn mid-payload
  auto latest = sup.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 200u);
  EXPECT_EQ(latest->skipped, 1u);

  // Rebuild the newest file at its declared size with a zeroed tail.
  {
    auto sealed = sealed_marker(300u);
    std::fill(sealed.begin() + static_cast<std::ptrdiff_t>(sealed.size() / 2),
              sealed.end(), std::uint8_t{0});
    std::ofstream f(newest, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(sealed.data()),
            static_cast<std::streamsize>(sealed.size()));
  }
  latest = sup.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->round, 200u);
  EXPECT_EQ(latest->skipped, 1u);
  CheckpointReader r = open_checkpoint(latest->sealed, "unit");
  EXPECT_EQ(r.u64(), 200u);
}

TEST(RunSupervisorTest, AllCorruptOrEmptyYieldsNullopt) {
  const fs::path dir = scratch_dir("all-corrupt");
  RunSupervisor sup(dir, 3);
  EXPECT_FALSE(sup.load_latest().has_value());  // empty dir

  for (const std::uint64_t round : {1u, 2u}) {
    const fs::path path = sup.write_snapshot(round, sealed_marker(round));
    fs::resize_file(path, 5);  // truncate below the envelope header
  }
  EXPECT_FALSE(sup.load_latest().has_value());
}

// ---------------------------------------------------------------------------
// Full-pipeline resume: kill mid-phase, resume, compare against golden.
// ---------------------------------------------------------------------------

/// Thrown by the round observer to abort a run at an exact cumulative round
/// (the in-process stand-in for the CLI drill's SIGKILL).
struct AbortRun {};

Graph drill_graph() {
  Rng rng(7);
  return make_watts_strogatz(16, 4, 0.2, rng);
}

DistributedRwbcOptions drill_options(bool faults) {
  DistributedRwbcOptions options;
  options.walks_per_source = 4;
  options.cutoff = 30;
  options.congest.seed = 9;
  options.congest.bit_floor = 128;
  if (faults) {
    options.congest.faults.seed = 321;
    options.congest.faults.drop_prob = 0.05;
    options.congest.faults.dup_prob = 0.05;
    options.reliable_transport = true;
  }
  return options;
}

void expect_same_run(const DistributedRwbcResult& golden,
                     const DistributedRwbcResult& resumed) {
  EXPECT_EQ(resumed.leader, golden.leader);
  EXPECT_EQ(resumed.target, golden.target);
  EXPECT_EQ(resumed.params.cutoff, golden.params.cutoff);
  EXPECT_EQ(resumed.params.walks_per_source, golden.params.walks_per_source);
  ASSERT_EQ(resumed.report.scores.size(), golden.report.scores.size());
  for (std::size_t i = 0; i < golden.report.scores.size(); ++i) {
    EXPECT_EQ(resumed.report.scores[i], golden.report.scores[i]) << "node " << i;
  }
  ASSERT_EQ(resumed.scaled_visits.rows(), golden.scaled_visits.rows());
  ASSERT_EQ(resumed.scaled_visits.cols(), golden.scaled_visits.cols());
  for (std::size_t r = 0; r < golden.scaled_visits.rows(); ++r) {
    for (std::size_t c = 0; c < golden.scaled_visits.cols(); ++c) {
      EXPECT_EQ(resumed.scaled_visits(r, c), golden.scaled_visits(r, c));
    }
  }
  expect_metrics_eq(resumed.counting_metrics, golden.counting_metrics,
                    "counting");
  expect_metrics_eq(resumed.computing_metrics, golden.computing_metrics,
                    "computing");
  expect_metrics_eq(resumed.report.metrics, golden.report.metrics, "total");
}

/// Runs with checkpointing on and aborts after `kill_round` cumulative
/// rounds (counted across all phases, exactly like --kill-at-round).
void run_killed(const Graph& g, DistributedRwbcOptions options,
                const fs::path& dir, std::uint64_t kill_round) {
  options.checkpoint.dir = dir.string();
  options.checkpoint.interval = 8;
  auto seen = std::make_shared<std::uint64_t>(0);
  options.congest.round_observer = [seen, kill_round](const RoundSnapshot&) {
    if (++*seen == kill_round) throw AbortRun{};
  };
  bool aborted = false;
  try {
    distributed_rwbc(g, options);
  } catch (const AbortRun&) {
    aborted = true;
  }
  ASSERT_TRUE(aborted) << "kill round " << kill_round
                       << " was past the end of the run";
  ASSERT_FALSE(fs::is_empty(dir)) << "no snapshot written before the kill";
}

DistributedRwbcResult run_resumed(const Graph& g,
                                  DistributedRwbcOptions options,
                                  const fs::path& dir, int threads) {
  options.checkpoint.dir = dir.string();
  options.checkpoint.resume = true;
  options.congest.num_threads = threads;
  return distributed_rwbc(g, options);
}

TEST(CheckpointResume, KillMidCountingResumesBitIdenticalAcrossThreads) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, drill_options(false));

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  ASSERT_GT(golden.counting_metrics.rounds, 16u);
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("kill-p3");
  run_killed(g, drill_options(false), dir, kill);
  for (const int threads : {1, 8, -1}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    expect_same_run(golden, run_resumed(g, drill_options(false), dir, threads));
  }
}

TEST(CheckpointResume, KillMidComputingSkipsCountingOnResume) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, drill_options(false));

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  ASSERT_GT(golden.computing_metrics.rounds, 10u);
  const std::uint64_t kill =
      setup + golden.counting_metrics.rounds + 10;

  const fs::path dir = scratch_dir("kill-p4");
  run_killed(g, drill_options(false), dir, kill);
  for (const int threads : {1, -1}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    expect_same_run(golden, run_resumed(g, drill_options(false), dir, threads));
  }
}

TEST(CheckpointResume, KillUnderFaultsWithReliableTransportResumesBitIdentical) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, drill_options(true));
  EXPECT_GT(golden.report.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.report.metrics.retransmissions, 0u);

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  ASSERT_GT(golden.counting_metrics.rounds, 16u);
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("kill-faulty");
  run_killed(g, drill_options(true), dir, kill);
  for (const int threads : {1, 8, -1}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    expect_same_run(golden, run_resumed(g, drill_options(true), dir, threads));
  }
}

// ---------------------------------------------------------------------------
// Coalesced-path resume (wpepr > 1): multi-token batches ride each edge and
// — under the reliable transport — sit in retransmission windows across
// round boundaries.  A snapshot sealed mid-counting must carry the SoA
// pools and those in-flight packed payloads byte-for-byte, or the resumed
// trajectories fork.  The shell drill (recovery_drill.sh scenario 4) runs
// the same shape end to end with a real SIGKILL.
// ---------------------------------------------------------------------------

DistributedRwbcOptions coalesced_drill_options(bool faults) {
  DistributedRwbcOptions options = drill_options(faults);
  options.walks_per_edge_per_round = 8;
  return options;
}

TEST(CoalescedCheckpointResume, KillMidCountingResumesBitIdenticalAcrossThreads) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, coalesced_drill_options(false));

  // The workload must actually coalesce: the same run over the legacy
  // one-message-per-token wire takes strictly more counting messages.
  DistributedRwbcOptions legacy = coalesced_drill_options(false);
  legacy.coalesce_walks = false;
  const auto unbatched = distributed_rwbc(g, legacy);
  ASSERT_LT(golden.counting_metrics.total_messages,
            unbatched.counting_metrics.total_messages)
      << "wpepr = 8 produced no multi-token batches; the drill is vacuous";

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  ASSERT_GT(golden.counting_metrics.rounds, 16u)
      << "counting too short for a mid-phase snapshot at interval 8";
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("kill-coalesced");
  run_killed(g, coalesced_drill_options(false), dir, kill);
  for (const int threads : {1, 8, -1}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    expect_same_run(golden,
                    run_resumed(g, coalesced_drill_options(false), dir, threads));
  }
}

TEST(CoalescedCheckpointResume,
     KillWithBatchesInReliableWindowsResumesBitIdentical) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, coalesced_drill_options(true));
  // Drops force retransmissions, so packed batch payloads are parked in
  // the reliable windows at snapshot time — the "non-empty coalesced
  // inbox" state the checkpoint must reproduce.
  EXPECT_GT(golden.report.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.report.metrics.retransmissions, 0u);

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  ASSERT_GT(golden.counting_metrics.rounds, 16u);
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("kill-coalesced-faulty");
  run_killed(g, coalesced_drill_options(true), dir, kill);
  for (const int threads : {1, 8, -1}) {
    SCOPED_TRACE("threads = " + std::to_string(threads));
    expect_same_run(golden,
                    run_resumed(g, coalesced_drill_options(true), dir, threads));
  }
}

// Weighted-pipeline parity: the same kill/resume drill on a WeightedGraph,
// driven entirely through the unified run_pipeline entrypoint (the spec's
// checkpoint knobs, observer, and thread overlay — not hand-built options).
TEST(CheckpointResume, WeightedPipelineResumesBitIdenticalAcrossThreads) {
  Rng graph_rng(7);
  Graph base = make_watts_strogatz(16, 4, 0.2, graph_rng);
  Rng weight_rng(70);
  const WeightedGraph wg = randomly_weighted(std::move(base), 5, weight_rng);

  auto make_spec = [](bool faults) {
    PipelineSpec spec;  // algorithm "rwbc"
    spec.rwbc.walks_per_source = 4;
    spec.rwbc.cutoff = 30;
    spec.seed = 9;
    spec.bit_floor = 128;
    if (faults) {
      spec.faults.seed = 321;
      spec.faults.drop_prob = 0.05;
      spec.faults.dup_prob = 0.05;
      spec.reliable_transport = true;
    }
    return spec;
  };

  for (const bool faults : {false, true}) {
    SCOPED_TRACE(faults ? "with fault plan" : "fault-free");
    DistributedRwbcResult golden_full;
    PipelineSpec golden_spec = make_spec(faults);
    golden_spec.rwbc_result = &golden_full;
    const RunReport golden = run_pipeline(wg, golden_spec);
    EXPECT_EQ(golden.resumed_from_round, -1);

    const std::uint64_t setup = golden_full.election_metrics.rounds +
                                golden_full.bfs_metrics.rounds +
                                golden_full.dissemination_metrics.rounds;
    ASSERT_GT(golden_full.counting_metrics.rounds, 16u);
    const std::uint64_t kill =
        setup + golden_full.counting_metrics.rounds / 2;

    const fs::path dir =
        scratch_dir(faults ? "weighted-kill-faulty" : "weighted-kill");
    {
      PipelineSpec spec = make_spec(faults);
      spec.checkpoint_dir = dir.string();
      spec.checkpoint_every = 8;
      auto seen = std::make_shared<std::uint64_t>(0);
      spec.round_observer = [seen, kill](const RoundSnapshot&) {
        if (++*seen == kill) throw AbortRun{};
      };
      bool aborted = false;
      try {
        run_pipeline(wg, spec);
      } catch (const AbortRun&) {
        aborted = true;
      }
      ASSERT_TRUE(aborted) << "kill round " << kill << " past end of run";
      ASSERT_FALSE(fs::is_empty(dir)) << "no snapshot before the kill";
    }

    for (const int threads : {1, 8, -1}) {
      SCOPED_TRACE("threads = " + std::to_string(threads));
      DistributedRwbcResult resumed_full;
      PipelineSpec resume = make_spec(faults);
      resume.checkpoint_dir = dir.string();
      resume.resume = true;
      resume.threads = threads;
      resume.rwbc_result = &resumed_full;
      const RunReport resumed = run_pipeline(wg, resume);
      EXPECT_GE(resumed.resumed_from_round, 0);
      EXPECT_EQ(resumed.scores, golden.scores);
      EXPECT_EQ(resumed.rounds, golden.rounds);
      EXPECT_EQ(resumed.bits, golden.bits);
      expect_same_run(golden_full, resumed_full);
    }
    fs::remove_all(dir);
  }
}

TEST(CheckpointResume, CorruptNewestSnapshotFallsBackToPreviousGood) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, drill_options(false));

  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("corrupt-fallback");
  run_killed(g, drill_options(false), dir, kill);

  RunSupervisor sup(dir);
  const auto files = sup.snapshots();
  ASSERT_GE(files.size(), 2u) << "need a previous snapshot to fall back to";
  flip_byte(files.back(), 40);  // newest, somewhere inside the payload

  const auto resumed = run_resumed(g, drill_options(false), dir, 1);
  expect_same_run(golden, resumed);
  const auto latest = sup.load_latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->skipped, 1u);
}

TEST(CheckpointResume, MissingCheckpointThrows) {
  const Graph g = drill_graph();
  const fs::path dir = scratch_dir("missing");
  DistributedRwbcOptions options = drill_options(false);
  options.checkpoint.dir = dir.string();
  options.checkpoint.resume = true;
  EXPECT_THROW(distributed_rwbc(g, options), CheckpointError);
}

TEST(CheckpointResume, MismatchedParametersRejected) {
  const Graph g = drill_graph();
  const auto golden = distributed_rwbc(g, drill_options(false));
  const std::uint64_t setup = golden.election_metrics.rounds +
                              golden.bfs_metrics.rounds +
                              golden.dissemination_metrics.rounds;
  const std::uint64_t kill = setup + golden.counting_metrics.rounds / 2;

  const fs::path dir = scratch_dir("mismatch");
  run_killed(g, drill_options(false), dir, kill);

  DistributedRwbcOptions other = drill_options(false);
  other.walks_per_source = 5;  // K disagrees with the snapshot prologue
  other.checkpoint.dir = dir.string();
  other.checkpoint.resume = true;
  EXPECT_THROW(distributed_rwbc(g, other), CheckpointError);
}

// ---------------------------------------------------------------------------
// Generic label-selective resume: each family pipeline restores only the
// phase that wrote the snapshot; earlier phases re-run deterministically.
// ---------------------------------------------------------------------------

/// Captures every sealed snapshot a pipeline run emits.
std::function<void(std::uint64_t, const std::vector<std::uint8_t>&)>
capture_into(std::shared_ptr<std::vector<std::vector<std::uint8_t>>> snaps) {
  return [snaps](std::uint64_t, const std::vector<std::uint8_t>& sealed) {
    snaps->push_back(sealed);
  };
}

TEST(LabelSelectiveResume, PagerankResumesBitIdentical) {
  Rng rng(11);
  const Graph g = make_erdos_renyi(14, 0.35, rng);
  DistributedPagerankOptions options;
  options.walks_per_node = 16;
  options.congest.seed = 5;
  const auto golden = distributed_pagerank(g, options);

  auto snaps = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  DistributedPagerankOptions capture = options;
  capture.congest.checkpoint_interval = 5;
  capture.congest.checkpoint_sink = capture_into(snaps);
  const auto captured = distributed_pagerank(g, capture);
  ASSERT_FALSE(snaps->empty());
  EXPECT_EQ(captured.report.scores, golden.report.scores);

  DistributedPagerankOptions resume = options;
  resume.congest.resume_checkpoint = snaps->at(snaps->size() / 2);
  const auto resumed = distributed_pagerank(g, resume);
  EXPECT_EQ(resumed.report.scores, golden.report.scores);
  expect_metrics_eq(resumed.report.metrics, golden.report.metrics, "pagerank");
}

TEST(LabelSelectiveResume, SarmaWalkResumesBitIdentical) {
  Rng rng(12);
  const Graph g = make_erdos_renyi(14, 0.35, rng);
  SarmaWalkOptions options;
  options.length = 64;
  options.congest.seed = 6;
  const auto golden = sarma_distributed_walk(g, 0, options);

  auto snaps = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  SarmaWalkOptions capture = options;
  capture.congest.checkpoint_interval = 5;
  capture.congest.checkpoint_sink = capture_into(snaps);
  const auto captured = sarma_distributed_walk(g, 0, capture);
  ASSERT_FALSE(snaps->empty());
  EXPECT_EQ(captured.destination, golden.destination);

  SarmaWalkOptions resume = options;
  resume.congest.resume_checkpoint = snaps->back();
  const auto resumed = sarma_distributed_walk(g, 0, resume);
  EXPECT_EQ(resumed.destination, golden.destination);
  EXPECT_EQ(resumed.stitches, golden.stitches);
  EXPECT_EQ(resumed.direct_steps, golden.direct_steps);
  expect_metrics_eq(resumed.walk_metrics, golden.walk_metrics, "walk");
}

TEST(LabelSelectiveResume, SpbcBackwardPhaseSnapshotSkipsForwardRestore) {
  Rng rng(13);
  const Graph g = make_erdos_renyi(12, 0.4, rng);
  DistributedSpbcOptions options;
  options.congest.seed = 7;
  options.congest.bit_floor = 128;  // SPBC updates need ~2 log n + 30 bits
  const auto golden = distributed_spbc(g, options);

  auto snaps = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  DistributedSpbcOptions capture = options;
  capture.congest.checkpoint_interval = 4;
  capture.congest.checkpoint_sink = capture_into(snaps);
  const auto captured = distributed_spbc(g, capture);
  ASSERT_FALSE(snaps->empty());
  EXPECT_EQ(captured.report.scores, golden.report.scores);

  // The last snapshot belongs to the backward phase (labels differ per
  // phase): the forward network must ignore it and re-run, the backward
  // network must restore from it.  First snapshot exercises the converse.
  for (const auto& snapshot : {snaps->front(), snaps->back()}) {
    DistributedSpbcOptions resume = options;
    resume.congest.resume_checkpoint = snapshot;
    const auto resumed = distributed_spbc(g, resume);
    EXPECT_EQ(resumed.report.scores, golden.report.scores);
    expect_metrics_eq(resumed.forward_metrics, golden.forward_metrics,
                      "forward");
    expect_metrics_eq(resumed.backward_metrics, golden.backward_metrics,
                      "backward");
  }
}

TEST(LabelSelectiveResume, AlphaCfbResumesBitIdentical) {
  Rng rng(14);
  const Graph g = make_erdos_renyi(12, 0.4, rng);
  DistributedAlphaCfbOptions options;
  options.walks_per_source = 4;
  options.congest.seed = 8;
  const auto golden = distributed_alpha_cfb(g, options);

  auto snaps = std::make_shared<std::vector<std::vector<std::uint8_t>>>();
  DistributedAlphaCfbOptions capture = options;
  capture.congest.checkpoint_interval = 4;
  capture.congest.checkpoint_sink = capture_into(snaps);
  const auto captured = distributed_alpha_cfb(g, capture);
  ASSERT_FALSE(snaps->empty());
  EXPECT_EQ(captured.report.scores, golden.report.scores);

  DistributedAlphaCfbOptions resume = options;
  resume.congest.resume_checkpoint = snaps->at(snaps->size() / 2);
  const auto resumed = distributed_alpha_cfb(g, resume);
  EXPECT_EQ(resumed.report.scores, golden.report.scores);
  EXPECT_EQ(resumed.capped_walks, golden.capped_walks);
  expect_metrics_eq(resumed.counting_metrics, golden.counting_metrics,
                    "counting");
  expect_metrics_eq(resumed.computing_metrics, golden.computing_metrics,
                    "computing");
}

}  // namespace
}  // namespace rwbc
