// Bit-level codec: widths, round trips, and exhaustion errors — the
// foundation of the simulator's per-bit CONGEST accounting.
#include <gtest/gtest.h>

#include "common/bitcodec.hpp"

namespace rwbc {
namespace {

TEST(BitsFor, KnownValues) {
  EXPECT_EQ(bits_for(1), 0);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(1024), 10);
  EXPECT_EQ(bits_for(1025), 11);
  EXPECT_EQ(bits_for(1ULL << 63), 63);
}

TEST(BitsFor, RejectsZero) { EXPECT_THROW(bits_for(0), Error); }

TEST(BitCodec, RoundTripsMixedWidths) {
  BitWriter w;
  w.write(0b101, 3);
  w.write(0, 0);  // zero-width write is a no-op
  w.write(0xdead, 16);
  w.write(1, 1);
  w.write(0x123456789abcdefULL, 57);
  EXPECT_EQ(w.bit_count(), 77);

  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(3), 0b101u);
  EXPECT_EQ(r.read(0), 0u);
  EXPECT_EQ(r.read(16), 0xdeadu);
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_EQ(r.read(57), 0x123456789abcdefULL);
  EXPECT_EQ(r.remaining(), 0);
}

TEST(BitCodec, FullWidthValue) {
  BitWriter w;
  w.write(~0ULL, 64);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(64), ~0ULL);
}

TEST(BitCodec, WriterRejectsOverflowingValue) {
  BitWriter w;
  EXPECT_THROW(w.write(4, 2), Error);   // 4 needs 3 bits
  EXPECT_THROW(w.write(0, 65), Error);  // width out of range
  EXPECT_THROW(w.write(0, -1), Error);
}

TEST(BitCodec, ReaderRejectsExhaustion) {
  BitWriter w;
  w.write(3, 2);
  BitReader r(w.bytes(), w.bit_count());
  EXPECT_EQ(r.read(1), 1u);
  EXPECT_THROW(r.read(2), Error);  // only 1 bit left
}

TEST(BitCodec, PayloadIsCompact) {
  BitWriter w;
  w.write(0x7, 3);
  EXPECT_EQ(w.bytes().size(), 1u);
  w.write(0x1f, 5);
  EXPECT_EQ(w.bytes().size(), 1u);  // exactly 8 bits: still one byte
  w.write(1, 1);
  EXPECT_EQ(w.bytes().size(), 2u);
}

}  // namespace
}  // namespace rwbc
