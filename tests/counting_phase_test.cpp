// Algorithm 1 (counting phase) in isolation: walk conservation, the
// estimator identity E[xi_v^s] = K d(v) T_vs, target bookkeeping, and
// termination detection on a hand-built tree.
#include <gtest/gtest.h>

#include <memory>

#include "centrality/current_flow_exact.hpp"
#include "congest/protocols/bfs_tree.hpp"
#include "graph/generators.hpp"
#include "rwbc/counting_node.hpp"

namespace rwbc {
namespace {

struct CountingRun {
  std::vector<std::vector<std::uint64_t>> visits;  // [node][source]
  std::uint64_t total_died = 0;
  RunMetrics metrics;
};

CountingRun run_counting(const Graph& g, NodeId target, std::uint64_t k,
                         std::uint64_t cutoff, std::uint64_t seed,
                         std::uint64_t bit_floor = 32,
                         LengthPolicy policy = LengthPolicy::kPerMove) {
  CongestConfig config;
  config.seed = seed;
  config.bit_floor = bit_floor;  // raised only for far-beyond-theorem K
  const BfsTreeResult bfs = run_bfs_tree(
      g, 0, config, static_cast<std::uint64_t>(g.node_count()) + 2);
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    CountingNodeConfig node_config;
    node_config.target = target;
    node_config.walks_per_source = k;
    node_config.cutoff = cutoff;
    node_config.tree_parent = bfs.tree.parent[static_cast<std::size_t>(v)];
    node_config.tree_children = bfs.tree.children[static_cast<std::size_t>(v)];
    node_config.length_policy = policy;
    return std::make_unique<CountingNode>(std::move(node_config));
  });
  CountingRun run;
  run.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const CountingNode&>(net.node(v));
    EXPECT_TRUE(node.finished()) << "node " << v << " never saw DONE";
    run.visits.push_back(node.visits());
    run.total_died += node.died_here();
  }
  return run;
}

TEST(CountingPhase, EveryWalkDiesExactlyOnce) {
  const Graph g = make_cycle(9);
  const std::uint64_t k = 20;
  const CountingRun run = run_counting(g, 4, k, 50, 1);
  EXPECT_EQ(run.total_died, static_cast<std::uint64_t>(8) * k);
}

TEST(CountingPhase, TargetCountsStayZero) {
  const Graph g = make_complete(6);
  const NodeId target = 3;
  const CountingRun run = run_counting(g, target, 16, 64, 2);
  for (NodeId s = 0; s < 6; ++s) {
    // Absorbed walks never score a visit at the target...
    EXPECT_EQ(run.visits[static_cast<std::size_t>(target)]
                        [static_cast<std::size_t>(s)], 0u);
    // ...and the target launches no walks.
    EXPECT_EQ(run.visits[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(target)], 0u);
  }
}

TEST(CountingPhase, SourcesCountTheirOwnBirths) {
  const Graph g = make_path(5);
  const std::uint64_t k = 10;
  const CountingRun run = run_counting(g, 4, k, 40, 3);
  for (NodeId s = 0; s < 4; ++s) {
    EXPECT_GE(run.visits[static_cast<std::size_t>(s)]
                        [static_cast<std::size_t>(s)], k)
        << "the r=0 occupancy of source " << s;
  }
}

TEST(CountingPhase, CutoffOneMeansAtMostOneMove) {
  // With l = 1 a walk contributes its birth plus at most one arrival.
  const Graph g = make_cycle(6);
  const std::uint64_t k = 50;
  const CountingRun run = run_counting(g, 0, k, 1, 4);
  for (NodeId s = 1; s < 6; ++s) {
    std::uint64_t total = 0;
    for (NodeId v = 0; v < 6; ++v) {
      total += run.visits[static_cast<std::size_t>(v)]
                         [static_cast<std::size_t>(s)];
    }
    EXPECT_GE(total, k);      // births
    EXPECT_LE(total, 2 * k);  // births + one move each
  }
}

TEST(CountingPhase, VisitExpectationMatchesExactPotentials) {
  // E[xi_v^s] = K * d(v) * T_vs; a triangle with large K pins this tightly.
  const Graph g = make_complete(3);
  const NodeId target = 2;
  const std::uint64_t k = 60'000;
  const CountingRun run = run_counting(g, target, k, 400, 5, 128);
  CurrentFlowOptions exact_options;
  exact_options.grounding = target;
  const DenseMatrix t = exact_potentials(g, exact_options);
  for (NodeId v = 0; v < 3; ++v) {
    for (NodeId s = 0; s < 3; ++s) {
      const double estimate =
          static_cast<double>(run.visits[static_cast<std::size_t>(v)]
                                        [static_cast<std::size_t>(s)]) /
          (static_cast<double>(k) * static_cast<double>(g.degree(v)));
      EXPECT_NEAR(estimate,
                  t(static_cast<std::size_t>(v), static_cast<std::size_t>(s)),
                  0.02)
          << "entry (" << v << ", " << s << ")";
    }
  }
}

TEST(CountingPhase, QueueingDelaysButNeverLosesWalks) {
  // A star funnels every walk through the hub edge-by-edge: heavy
  // congestion, yet conservation must hold and the run must end.
  const Graph g = make_star(12);
  const std::uint64_t k = 30;
  const CountingRun run = run_counting(g, 6, k, 40, 6);
  EXPECT_EQ(run.total_died, static_cast<std::uint64_t>(11) * k);
  EXPECT_GT(run.metrics.rounds, 0u);
}

TEST(CountingPhase, RespectsBitBudget) {
  Rng rng(99);
  const Graph g = make_barabasi_albert(18, 2, rng);
  const CountingRun run = run_counting(g, 1, 12, 36, 7);
  CongestConfig config;
  Network probe(g, config);
  EXPECT_LE(run.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(CountingPhase, PerRoundPolicyConservesWalksAndBoundsRounds) {
  // Per-round length spending: everything dies by round l, conservation
  // still holds, and the phase ends within l plus one detection sweep.
  const Graph g = make_star(10);  // heavy hub congestion
  const std::uint64_t k = 40, cutoff = 30;
  const CountingRun run =
      run_counting(g, 3, k, cutoff, 8, 32, LengthPolicy::kPerRound);
  EXPECT_EQ(run.total_died, static_cast<std::uint64_t>(9) * k);
  // Rounds: at most cutoff + one full sweep (2 * height + slack).
  EXPECT_LE(run.metrics.rounds, cutoff + 12);
}

TEST(CountingPhase, PerRoundPolicyUndercountsUnderCongestion) {
  // Queued walks burn budget without moving, so total visits must be
  // strictly lower than under the paper's per-move policy.
  // Target must be a LEAF: with the hub absorbing, every walk dies after
  // one hop and congestion never materialises.
  const Graph g = make_star(12);
  const std::uint64_t k = 40, cutoff = 24;
  const CountingRun per_move = run_counting(g, 5, k, cutoff, 9);
  const CountingRun per_round =
      run_counting(g, 5, k, cutoff, 9, 32, LengthPolicy::kPerRound);
  auto total_visits = [](const CountingRun& run) {
    std::uint64_t total = 0;
    for (const auto& row : run.visits) {
      for (std::uint64_t v : row) total += v;
    }
    return total;
  };
  EXPECT_LT(total_visits(per_round), total_visits(per_move));
}

TEST(CountingNodeConfigValidation, RejectsZeroParameters) {
  CountingNodeConfig config;
  config.cutoff = 0;
  config.walks_per_source = 1;
  EXPECT_THROW(CountingNode{config}, Error);
  config.cutoff = 1;
  config.walks_per_source = 0;
  EXPECT_THROW(CountingNode{config}, Error);
}

}  // namespace
}  // namespace rwbc
