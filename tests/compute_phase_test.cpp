// Algorithm 2 (computing phase) in isolation: the distributed per-node
// accumulation must equal the global betweenness_from_potentials on the
// same counts, whatever the counts are.
#include <gtest/gtest.h>

#include <memory>

#include "centrality/current_flow_exact.hpp"
#include "common/rng.hpp"
#include "congest/network.hpp"
#include "graph/generators.hpp"
#include "rwbc/compute_node.hpp"

namespace rwbc {
namespace {

struct ComputeRun {
  std::vector<double> betweenness;
  RunMetrics metrics;
};

// Runs Algorithm 2 with an arbitrary synthetic count matrix xi[v][s].
ComputeRun run_compute(const Graph& g,
                       const std::vector<std::vector<std::uint64_t>>& counts,
                       std::uint64_t k, std::uint64_t cutoff,
                       std::uint64_t counts_per_message = 1) {
  CongestConfig config;
  config.seed = 5;
  Network net(g, config);
  net.set_all_nodes([&](NodeId v) {
    ComputeNodeConfig node_config;
    node_config.visits = counts[static_cast<std::size_t>(v)];
    node_config.walks_per_source = k;
    node_config.cutoff = cutoff;
    node_config.counts_per_message = counts_per_message;
    return std::make_unique<ComputeNode>(std::move(node_config));
  });
  ComputeRun run;
  run.metrics = net.run();
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const auto& node = static_cast<const ComputeNode&>(net.node(v));
    EXPECT_TRUE(node.finished());
    run.betweenness.push_back(node.betweenness());
  }
  return run;
}

// The reference: scale counts into potentials and run the global formula.
std::vector<double> reference_scores(
    const Graph& g, const std::vector<std::vector<std::uint64_t>>& counts,
    std::uint64_t k) {
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix t(n, n);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    const double scale =
        1.0 / (static_cast<double>(k) * static_cast<double>(g.degree(v)));
    for (std::size_t s = 0; s < n; ++s) {
      t(static_cast<std::size_t>(v), s) =
          static_cast<double>(counts[static_cast<std::size_t>(v)][s]) * scale;
    }
  }
  return betweenness_from_potentials(g, t);
}

std::vector<std::vector<std::uint64_t>> random_counts(const Graph& g,
                                                      std::uint64_t bound,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));
  for (auto& row : counts) {
    for (auto& cell : row) cell = rng.next_below(bound);
  }
  return counts;
}

TEST(ComputePhase, MatchesGlobalFormulaOnRandomCounts) {
  Rng rng(1);
  const Graph g = make_erdos_renyi(10, 0.4, rng);
  const std::uint64_t k = 7, cutoff = 30;
  const auto counts = random_counts(g, k * (cutoff + 1), 2);
  const ComputeRun run = run_compute(g, counts, k, cutoff);
  const auto reference = reference_scores(g, counts, k);
  for (std::size_t v = 0; v < reference.size(); ++v) {
    EXPECT_NEAR(run.betweenness[v], reference[v], 1e-9) << "node " << v;
  }
}

TEST(ComputePhase, MatchesGlobalFormulaOnStar) {
  const Graph g = make_star(9);
  const std::uint64_t k = 3, cutoff = 10;
  const auto counts = random_counts(g, k * (cutoff + 1), 3);
  const ComputeRun run = run_compute(g, counts, k, cutoff);
  const auto reference = reference_scores(g, counts, k);
  for (std::size_t v = 0; v < reference.size(); ++v) {
    EXPECT_NEAR(run.betweenness[v], reference[v], 1e-9);
  }
}

TEST(ComputePhase, ZeroCountsGiveEndpointFloor) {
  // All-zero counts: every pair's flow is zero, only Eq. 7's endpoint units
  // remain: b_i = (n-1) / (n(n-1)/2) = 2/n for every node.
  const Graph g = make_cycle(8);
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 0));
  const ComputeRun run = run_compute(g, counts, 4, 16);
  for (double b : run.betweenness) {
    EXPECT_NEAR(b, 2.0 / static_cast<double>(n), 1e-12);
  }
}

TEST(ComputePhase, TakesLinearlyManyRounds) {
  const Graph g = make_cycle(20);
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<std::vector<std::uint64_t>> counts(
      n, std::vector<std::uint64_t>(n, 1));
  const ComputeRun run = run_compute(g, counts, 1, 1);
  // n + 2 rounds: degree round, n count rounds, final local round.
  EXPECT_GE(run.metrics.rounds, static_cast<std::uint64_t>(n));
  EXPECT_LE(run.metrics.rounds, static_cast<std::uint64_t>(n) + 3);
}

TEST(ComputePhase, RespectsBitBudget) {
  const Graph g = make_grid(4, 4);
  const std::uint64_t k = 16, cutoff = 64;
  const auto counts = random_counts(g, k * (cutoff + 1), 4);
  const ComputeRun run = run_compute(g, counts, k, cutoff);
  CongestConfig config;
  Network probe(g, config);
  EXPECT_LE(run.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(ComputePhase, BatchedMessagesGiveIdenticalScoresInFewerRounds) {
  Rng rng(6);
  const Graph g = make_erdos_renyi(17, 0.3, rng);
  const std::uint64_t k = 5, cutoff = 20;
  const auto counts = random_counts(g, k * (cutoff + 1), 7);
  const ComputeRun one = run_compute(g, counts, k, cutoff, 1);
  const ComputeRun four = run_compute(g, counts, k, cutoff, 4);
  const ComputeRun autofit = run_compute(g, counts, k, cutoff, 0);
  for (std::size_t v = 0; v < one.betweenness.size(); ++v) {
    EXPECT_NEAR(one.betweenness[v], four.betweenness[v], 1e-12);
    EXPECT_NEAR(one.betweenness[v], autofit.betweenness[v], 1e-12);
  }
  EXPECT_LT(four.metrics.rounds, one.metrics.rounds);
  EXPECT_LE(autofit.metrics.rounds, four.metrics.rounds);
}

TEST(ComputePhase, AutoBatchStillRespectsBitBudget) {
  const Graph g = make_grid(4, 4);
  const std::uint64_t k = 16, cutoff = 64;
  const auto counts = random_counts(g, k * (cutoff + 1), 8);
  const ComputeRun run = run_compute(g, counts, k, cutoff, 0);
  CongestConfig config;
  Network probe(g, config);
  EXPECT_LE(run.metrics.max_bits_per_edge_round, probe.bit_budget());
}

TEST(ComputePhase, RejectsWrongSizedCounts) {
  const Graph g = make_cycle(5);
  CongestConfig config;
  Network net(g, config);
  net.set_all_nodes([&](NodeId) {
    ComputeNodeConfig node_config;
    node_config.visits = {1, 2, 3};  // wrong length (n = 5)
    node_config.walks_per_source = 1;
    node_config.cutoff = 1;
    return std::make_unique<ComputeNode>(std::move(node_config));
  });
  EXPECT_THROW(net.run(), Error);
}

}  // namespace
}  // namespace rwbc
