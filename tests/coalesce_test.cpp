// Differential golden-equivalence of the coalesced walk-step hot path.
//
// The counting phase has two wire paths (rwbc/counting_node.cpp):
// `coalesce_walks = true` packs every token crossing a directed edge in a
// round into one WalkBatchWire payload; `false` is the legacy
// one-message-per-token path.  At the paper's walks_per_edge_per_round = 1
// the batch header is zero bits wide, so the two paths must be
// BYTE-IDENTICAL end to end — same scores, same scaled visits, same
// per-phase metrics down to every bit count — and that identity must
// survive the whole execution matrix: 7 graph families × 4 seeds,
// weighted and unweighted, threads {1, 2, 8, -1}, faults {off,
// drop 0.25 + dup 0.25}, reliable transport {off, on}.
//
// At wpepr > 1 the wires genuinely differ (one batch vs many messages), so
// the contract weakens to trajectory equivalence: identical walk schedules
// — hence identical scores and visit counts — with strictly fewer
// messages, checked fault-free where the per-message fault draw cannot
// skew the two message streams differently.
//
// Property tests pin the two mechanisms the equivalence rests on:
// WalkBatchWire's canonical sort makes payload bytes a pure function of
// the token multiset (shuffling the pool never changes the wire), and the
// parallel scheduler's canonical-order reduction reproduces serial
// accumulation exactly at every thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "common/bitcodec.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/weighted.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/walk_token.hpp"

namespace rwbc {
namespace {

const int kThreadCounts[] = {1, 2, 8, -1};
const std::uint64_t kSeeds[] = {0u, 1u, 0xdeadbeefULL,
                                0xffffffffffffffffULL};

Graph family_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  if (family == "cycle") return make_cycle(14);
  throw std::runtime_error("unknown family " + family);
}

struct Scenario {
  bool faults = false;
  bool reliable = false;
  const char* label = "";
};

const Scenario kScenarios[] = {
    {false, false, "clean"},
    {false, true, "reliable"},
    {true, false, "faulty"},
    {true, true, "faulty+reliable"},
};

// Small but non-trivial walk load; the fault deadline bounds the lossy
// runs (drop 0.25 without a reliable layer never converges the death
// count, so termination comes from the deadline either way).
DistributedRwbcOptions scenario_options(std::uint64_t seed, bool coalesce,
                                        int threads,
                                        const Scenario& scenario) {
  DistributedRwbcOptions options;
  options.walks_per_source = 4;
  options.cutoff = 20;
  options.coalesce_walks = coalesce;
  options.congest.seed = seed;
  options.congest.num_threads = threads;
  if (scenario.faults) {
    options.congest.faults.seed = seed ^ 0xfau;
    options.congest.faults.drop_prob = 0.25;
    options.congest.faults.dup_prob = 0.25;
    options.fault_deadline_rounds = 300;
  }
  options.reliable_transport = scenario.reliable;
  return options;
}

// Byte-level digest of a run's outputs: every score and visit double by
// bit pattern, plus the headline metrics.  One number per run makes the
// sweep's failure output readable; the EXPECT_EQs below give the detail.
std::uint64_t run_digest(const DistributedRwbcResult& result) {
  std::uint64_t d = 0x5eedULL;
  const auto fold = [&d](std::uint64_t v) {
    std::uint64_t state = d ^ v;
    d = splitmix64(state);
  };
  for (double s : result.report.scores) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(s));
    std::memcpy(&bits, &s, sizeof(bits));
    fold(bits);
  }
  for (std::size_t r = 0; r < result.scaled_visits.rows(); ++r) {
    for (std::size_t c = 0; c < result.scaled_visits.cols(); ++c) {
      std::uint64_t bits;
      const double v = result.scaled_visits(r, c);
      std::memcpy(&bits, &v, sizeof(bits));
      fold(bits);
    }
  }
  fold(result.report.metrics.rounds);
  fold(result.report.metrics.total_messages);
  fold(result.report.metrics.total_bits);
  fold(result.report.metrics.dropped_messages);
  fold(result.report.metrics.retransmissions);
  return d;
}

void expect_byte_identical(const DistributedRwbcResult& golden,
                           const DistributedRwbcResult& got,
                           const std::string& label) {
  EXPECT_EQ(golden.target, got.target) << label;
  EXPECT_EQ(golden.report.scores, got.report.scores) << label;
  EXPECT_EQ(golden.scaled_visits, got.scaled_visits) << label;
  EXPECT_EQ(golden.counting_metrics.rounds, got.counting_metrics.rounds)
      << label;
  EXPECT_EQ(golden.counting_metrics.total_messages,
            got.counting_metrics.total_messages)
      << label;
  EXPECT_EQ(golden.counting_metrics.total_bits,
            got.counting_metrics.total_bits)
      << label;
  EXPECT_EQ(golden.counting_metrics.max_bits_per_edge_round,
            got.counting_metrics.max_bits_per_edge_round)
      << label;
  EXPECT_EQ(golden.report.metrics.rounds, got.report.metrics.rounds) << label;
  EXPECT_EQ(golden.report.metrics.total_messages,
            got.report.metrics.total_messages)
      << label;
  EXPECT_EQ(golden.report.metrics.total_bits, got.report.metrics.total_bits)
      << label;
  EXPECT_EQ(golden.report.metrics.dropped_messages,
            got.report.metrics.dropped_messages)
      << label;
  EXPECT_EQ(golden.report.metrics.duplicated_messages,
            got.report.metrics.duplicated_messages)
      << label;
  EXPECT_EQ(golden.report.metrics.retransmissions,
            got.report.metrics.retransmissions)
      << label;
  EXPECT_EQ(run_digest(golden), run_digest(got)) << label;
}

using FamilySeed = std::tuple<const char*, std::uint64_t>;

class CoalesceEquivalence : public ::testing::TestWithParam<FamilySeed> {};

// The headline matrix at the paper's wpepr = 1: for every scenario the
// legacy serial run is the golden, and the coalesced path must reproduce
// it byte-identically at every thread count.
TEST_P(CoalesceEquivalence, UnweightedMatchesLegacyByteForByte) {
  const auto& [family, seed] = GetParam();
  const Graph g = family_graph(family, seed);
  for (const Scenario& scenario : kScenarios) {
    const auto golden =
        distributed_rwbc(g, scenario_options(seed, false, 0, scenario));
    for (int threads : kThreadCounts) {
      const auto got =
          distributed_rwbc(g, scenario_options(seed, true, threads, scenario));
      expect_byte_identical(golden, got,
                            std::string(family) + " " + scenario.label +
                                " threads=" + std::to_string(threads));
    }
  }
}

TEST_P(CoalesceEquivalence, WeightedMatchesLegacyByteForByte) {
  const auto& [family, seed] = GetParam();
  Rng wrng(seed + 17);
  const WeightedGraph wg =
      randomly_weighted(family_graph(family, seed), 5, wrng);
  for (const Scenario& scenario : kScenarios) {
    const auto golden =
        distributed_rwbc(wg, scenario_options(seed, false, 0, scenario));
    for (int threads : kThreadCounts) {
      const auto got = distributed_rwbc(
          wg, scenario_options(seed, true, threads, scenario));
      expect_byte_identical(golden, got,
                            std::string(family) + " weighted " +
                                scenario.label +
                                " threads=" + std::to_string(threads));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CoalesceEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "grid", "tree",
                                         "barbell", "cycle"),
                       ::testing::ValuesIn(kSeeds)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param) & 0xffffffffULL);
    });

// wpepr > 1: the batch encoder's canonical (source, remaining) sort means
// tokens sharing an edge arrive in sorted order rather than the legacy
// winner order, so the commit draws land on a different (equally uniform)
// walk schedule — the two paths are DISTRIBUTIONALLY equivalent, not
// bitwise.  The checkable contract: the coalesced path moves the same
// walk population (both estimators agree within sampling noise) for
// strictly fewer messages and bits.  Bitwise determinism at wpepr > 1 is
// pinned against the coalesced path's own serial golden below.
TEST(CoalesceMultiToken, AgreesStatisticallyWithStrictlyFewerMessages) {
  Rng rng(21 ^ 0x9e3779b97f4a7c15ULL);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  auto run_with = [&](bool coalesce) {
    DistributedRwbcOptions options;
    options.walks_per_source = 1024;  // sampling noise ~ 1/sqrt(K)
    options.cutoff = 48;
    options.walks_per_edge_per_round = 8;
    options.congest.bit_floor = 128;  // fits an 8-token batch either way
    options.coalesce_walks = coalesce;
    options.congest.seed = 21;
    return distributed_rwbc(g, options);
  };
  const auto legacy = run_with(false);
  const auto coalesced = run_with(true);
  ASSERT_EQ(legacy.report.scores.size(), coalesced.report.scores.size());
  for (std::size_t v = 0; v < legacy.report.scores.size(); ++v) {
    const double a = legacy.report.scores[v];
    const double b = coalesced.report.scores[v];
    EXPECT_NEAR(a, b, 0.2 * std::max(a, b)) << "node " << v;
  }
  EXPECT_LT(coalesced.counting_metrics.total_messages,
            legacy.counting_metrics.total_messages);
  EXPECT_LT(coalesced.counting_metrics.total_bits,
            legacy.counting_metrics.total_bits);
}

// The multi-token batch wire under the full adversarial stack: coalesced
// wpepr = 8 with drops, duplications, and the reliable transport must
// stay bit-identical across thread counts (its own serial run is the
// golden here — there is no legacy twin at wpepr > 1 under faults).
TEST(CoalesceMultiToken, FaultyReliableBatchesBitIdenticalAcrossThreads) {
  Rng rng(22 ^ 0x9e3779b97f4a7c15ULL);
  const Graph g = make_watts_strogatz(14, 4, 0.3, rng);
  auto run_with = [&](int threads) {
    DistributedRwbcOptions options;
    options.walks_per_source = 8;
    options.cutoff = 20;
    options.walks_per_edge_per_round = 8;
    options.congest.bit_floor = 128;
    options.congest.seed = 22;
    options.congest.num_threads = threads;
    options.congest.faults.seed = 220;
    options.congest.faults.drop_prob = 0.25;
    options.congest.faults.dup_prob = 0.25;
    options.fault_deadline_rounds = 300;
    options.reliable_transport = true;
    return distributed_rwbc(g, options);
  };
  const auto golden = run_with(0);
  EXPECT_GT(golden.report.metrics.dropped_messages, 0u);
  EXPECT_GT(golden.report.metrics.retransmissions, 0u);
  for (int threads : kThreadCounts) {
    expect_byte_identical(golden, run_with(threads),
                          "wpepr=8 faulty+reliable threads=" +
                              std::to_string(threads));
  }
}

// --- Property: payload bytes are a pure function of the token multiset --
//
// WalkBatchWire::encode sorts by (source, remaining) before writing, so no
// ordering the sender's pool happens to be in can leak into the wire.
TEST(CoalesceProperty, ShuffledPoolOrderNeverChangesPayloadBytes) {
  const NodeId n = 50'000;
  const std::uint64_t cutoff = 34;
  const std::uint64_t wpepr = 8;
  const WalkBatchWire wire(n, cutoff, wpepr);
  Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count =
        1 + static_cast<std::size_t>(rng.next_below(wpepr));
    std::vector<WalkToken> batch;
    for (std::size_t i = 0; i < count; ++i) {
      // Skewed sources exercise both delta and fixed id modes; duplicate
      // (source, remaining) pairs are legal and must stay canonical.
      const NodeId source =
          rng.next_below(2) == 0
              ? static_cast<NodeId>(rng.next_below(64))
              : static_cast<NodeId>(rng.next_below(n));
      batch.push_back(
          WalkToken{source, 1 + rng.next_below(cutoff)});
    }
    BitWriter golden;
    {
      std::vector<WalkToken> copy = batch;
      wire.encode(golden, copy);
    }
    for (int shuffle = 0; shuffle < 8; ++shuffle) {
      std::vector<WalkToken> copy = batch;
      for (std::size_t i = copy.size(); i > 1; --i) {
        std::swap(copy[i - 1], copy[rng.next_below(i)]);
      }
      BitWriter w;
      wire.encode(w, copy);
      ASSERT_EQ(w.bit_count(), golden.bit_count())
          << "trial " << trial << " shuffle " << shuffle;
      ASSERT_EQ(w.bytes(), golden.bytes())
          << "trial " << trial << " shuffle " << shuffle;
    }
  }
}

// --- Property: per-thread reduction equals serial accumulation ----------
//
// The parallel scheduler accumulates per-context tallies and per-thread
// partial metrics, then reduces in canonical node-id order.  Running the
// coalesced counting phase at every thread count must therefore reproduce
// the serial visit counts EXACTLY (double ==), not just statistically.
TEST(CoalesceProperty, ParallelReductionEqualsSerialAccumulation) {
  const Graph g = make_grid(4, 4);
  auto run_with = [&](int threads) {
    DistributedRwbcOptions options;
    options.walks_per_source = 16;
    options.cutoff = 24;
    options.walks_per_edge_per_round = 8;
    options.congest.bit_floor = 128;
    options.congest.seed = 23;
    options.congest.num_threads = threads;
    return distributed_rwbc(g, options);
  };
  const auto serial = run_with(0);
  for (int threads : kThreadCounts) {
    const auto pooled = run_with(threads);
    EXPECT_EQ(serial.report.scores, pooled.report.scores)
        << "threads=" << threads;
    EXPECT_EQ(serial.scaled_visits, pooled.scaled_visits)
        << "threads=" << threads;
    EXPECT_EQ(serial.report.metrics.total_bits, pooled.report.metrics.total_bits)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace rwbc
