// Property-based sweeps: invariants that must hold on every topology and
// seed — symmetry, grounding invariance, bounds, conservation, and
// estimator consistency (parameterised gtest per the paper's Section IV
// identities).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "centrality/brandes.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"
#include "common/bitcodec.hpp"
#include "common/error.hpp"
#include "rwbc/distributed_rwbc.hpp"
#include "rwbc/walk_token.hpp"

namespace rwbc {
namespace {

Graph seeded_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  throw std::runtime_error("unknown family " + family);
}

using FamilySeed = std::tuple<const char*, std::uint64_t>;

class ExactInvariants : public ::testing::TestWithParam<FamilySeed> {
 protected:
  Graph graph() const {
    return seeded_graph(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(ExactInvariants, PotentialsSymmetric) {
  const Graph g = graph();
  const DenseMatrix t = exact_potentials(g);
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = i + 1; j < t.cols(); ++j) {
      EXPECT_NEAR(t(i, j), t(j, i), 1e-8);
    }
  }
}

TEST_P(ExactInvariants, GroundingInvariance) {
  const Graph g = graph();
  CurrentFlowOptions g0, g1;
  g0.grounding = 0;
  g1.grounding = g.node_count() / 2;
  const auto a = current_flow_betweenness(g, g0);
  const auto b = current_flow_betweenness(g, g1);
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], 1e-8);
  }
}

TEST_P(ExactInvariants, BoundsAndEndpointFloor) {
  const Graph g = graph();
  const auto b = current_flow_betweenness(g);
  const double floor = 2.0 / static_cast<double>(g.node_count());
  for (double v : b) {
    EXPECT_GE(v, floor - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST_P(ExactInvariants, DominatesShortestPathOnCutVertices) {
  // Any node with SPBC == 1 (a universal cut vertex) must also maximise
  // RWBC; weaker but universal: RWBC >= normalised SPBC is NOT a theorem,
  // so we check the robust property instead: the SPBC argmax node is in the
  // top-3 of RWBC (current flow concentrates on bridges too).
  const Graph g = graph();
  const auto sp = brandes_betweenness(g);
  const auto cf = current_flow_betweenness(g);
  std::size_t sp_best = 0;
  for (std::size_t v = 1; v < sp.size(); ++v) {
    if (sp[v] > sp[sp_best]) sp_best = v;
  }
  std::size_t better = 0;
  for (std::size_t v = 0; v < cf.size(); ++v) {
    if (cf[v] > cf[sp_best]) ++better;
  }
  EXPECT_LE(better, 3u);
}

TEST_P(ExactInvariants, PairThroughflowConservation) {
  // For any pair (s, t), summing Eq. 6 currents with sign over the
  // neighbours of any interior node gives zero net flow (Kirchhoff), and
  // the throughflow never exceeds 1.
  const Graph g = graph();
  const DenseMatrix t = exact_potentials(g);
  Rng rng(std::get<1>(GetParam()) + 100);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    auto tt = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    if (s == tt) tt = (tt + 1) % g.node_count();
    for (NodeId i = 0; i < g.node_count(); ++i) {
      if (i == s || i == tt) continue;
      double net = 0.0;
      const auto ii = static_cast<std::size_t>(i);
      for (NodeId j : g.neighbors(i)) {
        const auto ji = static_cast<std::size_t>(j);
        net += (t(ii, static_cast<std::size_t>(s)) -
                t(ii, static_cast<std::size_t>(tt))) -
               (t(ji, static_cast<std::size_t>(s)) -
                t(ji, static_cast<std::size_t>(tt)));
      }
      EXPECT_NEAR(net, 0.0, 1e-8);
      EXPECT_LE(pair_throughflow(g, t, i, s, tt), 1.0 + 1e-9);
    }
  }
}

TEST_P(ExactInvariants, ReducedLaplacianTimesPotentialsIsIdentity) {
  const Graph g = graph();
  const NodeId ground = g.node_count() - 1;
  CurrentFlowOptions options;
  options.grounding = ground;
  const DenseMatrix t = exact_potentials(g, options);
  const DenseMatrix reduced_t =
      remove_row_col(t, static_cast<std::size_t>(ground));
  const DenseMatrix l = reduced_laplacian_matrix(g, ground);
  const DenseMatrix prod = multiply(l, reduced_t);
  EXPECT_LT(subtract(prod, DenseMatrix::identity(prod.rows())).max_abs(),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactInvariants,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "grid", "tree",
                                         "barbell"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param));
    });

class EstimatorInvariants : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(EstimatorInvariants, VisitMatrixIsUnbiasedUnderAveraging) {
  // Average of the MC potentials over independent seeds converges to the
  // exact potentials (the estimator identity of DESIGN.md).
  const Graph g =
      seeded_graph(std::get<0>(GetParam()), std::get<1>(GetParam()));
  CurrentFlowOptions exact_options;
  exact_options.grounding = 0;
  const DenseMatrix t = exact_potentials(g, exact_options);
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix mean(n, n);
  const int replicas = 4;
  for (int r = 0; r < replicas; ++r) {
    McOptions options;
    options.walks_per_source = 800;
    options.cutoff = 50 * n;
    options.target = 0;
    options.seed = 1000 * std::get<1>(GetParam()) + static_cast<std::uint64_t>(r);
    const McResult mc = current_flow_betweenness_mc(g, options);
    mean = add(mean, mc.scaled_visits);
  }
  mean = scale(mean, 1.0 / replicas);
  EXPECT_LT(subtract(mean, t).max_abs(), 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorInvariants,
    ::testing::Combine(::testing::Values("er", "grid", "tree"),
                       ::testing::Values(1u, 2u)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param));
    });

// Fuzz: on random small graphs, the DISTRIBUTED counting phase's scaled
// visits must match the deterministic truncated potentials (the estimator's
// exact expectation) within sampling noise — at ANY cutoff, not just large
// ones.  This pins the full chain: walk semantics, queueing policy, visit
// bookkeeping, count exchange, and scaling.
class DistributedEstimatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedEstimatorFuzz, ScaledVisitsMatchTruncatedPotentials) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(6 + rng.next_below(5));
  const Graph g = make_erdos_renyi(n, 0.5, rng);
  const auto target = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(n)));
  const std::size_t cutoff = 1 + rng.next_below(3 * static_cast<std::uint64_t>(n));

  DistributedRwbcOptions options;
  options.walks_per_source = 4000;
  options.cutoff = cutoff;
  options.forced_target = target;
  options.run_leader_election = false;
  options.congest.seed = seed * 31 + 7;
  options.congest.bit_floor = 128;
  const auto result = distributed_rwbc(g, options);

  const DenseMatrix expected = truncated_potentials(g, target, cutoff);
  EXPECT_LT(subtract(result.scaled_visits, expected).max_abs(), 0.05)
      << "n=" << n << " target=" << target << " cutoff=" << cutoff;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DistributedEstimatorFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

// Randomized-seed invariant sweep for the parallel scheduler: on 25 random
// (generator, seed, n) triples, the parallel pipeline must reproduce the
// serial pipeline exactly — same round count, same bit volume, same scores.
// This complements parallel_network_test.cpp's fixed-family golden sweep
// with topologies and sizes drawn at random each from its own seed.
class ParallelScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelScheduleFuzz, ParallelAndSerialRunsAreIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 77 + 13);
  const NodeId n = static_cast<NodeId>(8 + rng.next_below(10));
  const char* families[] = {"er", "ba", "ws", "grid", "tree", "barbell"};
  const std::string family = families[rng.next_below(6)];
  Graph g = [&] {
    if (family == "er") return make_erdos_renyi(n, 0.4, rng);
    if (family == "ba") return make_barabasi_albert(n, 2, rng);
    if (family == "ws") return make_watts_strogatz(n, 4, 0.3, rng);
    if (family == "grid") return make_grid(3, 1 + n / 3);
    if (family == "tree") return make_binary_tree(n);
    return make_barbell(4, static_cast<NodeId>(rng.next_below(4)));
  }();

  DistributedRwbcOptions options;
  options.congest.seed = seed;
  auto run_with = [&](int threads) {
    options.congest.num_threads = threads;
    return distributed_rwbc(g, options);
  };
  const auto serial = run_with(0);
  const int threads = 1 + static_cast<int>(rng.next_below(8));
  const auto parallel = run_with(threads);
  EXPECT_EQ(serial.report.metrics.rounds, parallel.report.metrics.rounds)
      << family << " n=" << n << " threads=" << threads;
  EXPECT_EQ(serial.report.metrics.total_bits, parallel.report.metrics.total_bits)
      << family << " n=" << n << " threads=" << threads;
  EXPECT_EQ(serial.report.scores, parallel.report.scores)
      << family << " n=" << n << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ParallelScheduleFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{26}));

// ---------------------------------------------------------------------------
// WalkBatchWire codec fuzz (rwbc/walk_token.hpp).
//
// The decode side consumes bytes straight off a (possibly faulty) link, so
// beyond round-trip fidelity the contract is: a truncated or bit-flipped
// payload surfaces as a clean rwbc::Error — never out-of-range tokens and
// never UB (this file runs under the ASan/UBSan/TSan CI legs).

struct CodecConfig {
  WalkBatchWire wire;
  NodeId n = 0;
  std::uint64_t cutoff = 0;
  std::uint64_t wpepr = 0;
};

// Random wire geometry spanning the paper's wpepr = 1 zero-bit-header fast
// path, tiny id/length fields, and wide multi-token batches.
CodecConfig random_codec_config(Rng& rng) {
  CodecConfig c;
  c.n = static_cast<NodeId>(2 + rng.next_below(1 << 16));
  c.cutoff = 1 + rng.next_below(1 << 12);
  c.wpepr = 1 + rng.next_below(64);
  c.wire = WalkBatchWire(c.n, c.cutoff, c.wpepr);
  return c;
}

// Half the batches cluster sources near a random base (delta/gamma mode
// wins), half spread them over [0, n) (fixed-width mode wins).
std::vector<WalkToken> random_batch(Rng& rng, const CodecConfig& c,
                                    std::size_t count) {
  std::vector<WalkToken> batch(count);
  const bool clustered = rng.next_below(2) == 0;
  const auto base = rng.next_below(static_cast<std::uint64_t>(c.n));
  for (WalkToken& t : batch) {
    const std::uint64_t source =
        clustered ? std::min<std::uint64_t>(base + rng.next_below(8),
                                            static_cast<std::uint64_t>(c.n) - 1)
                  : rng.next_below(static_cast<std::uint64_t>(c.n));
    t.source = static_cast<NodeId>(source);
    t.remaining = rng.next_below(c.cutoff + 1);
  }
  return batch;
}

// Consumes the type tag (the pipeline's dispatcher does this) and decodes
// one batch; `bit_count` below the full payload length simulates truncation.
std::vector<WalkToken> decode_payload(const WalkBatchWire& wire,
                                      const std::vector<std::uint8_t>& bytes,
                                      int bit_count) {
  BitReader r(bytes, bit_count);
  r.read(wire.type_bits);
  std::vector<WalkToken> out;
  wire.decode(r, out);
  return out;
}

bool same_token_multiset(std::vector<WalkToken> a, std::vector<WalkToken> b) {
  const auto by_fields = [](const WalkToken& x, const WalkToken& y) {
    return x.source != y.source ? x.source < y.source
                                : x.remaining < y.remaining;
  };
  std::sort(a.begin(), a.end(), by_fields);
  std::sort(b.begin(), b.end(), by_fields);
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].source != b[i].source || a[i].remaining != b[i].remaining) {
      return false;
    }
  }
  return true;
}

TEST(WalkBatchCodecFuzz, RoundTripsRandomBatches) {
  Rng rng(0xc0dec);
  for (int trial = 0; trial < 500; ++trial) {
    const CodecConfig c = random_codec_config(rng);
    const std::size_t count = 1 + rng.next_below(c.wpepr);
    std::vector<WalkToken> batch = random_batch(rng, c, count);
    BitWriter w;
    c.wire.encode(w, batch);
    ASSERT_LE(w.bit_count(), c.wire.max_bits(count))
        << "trial " << trial << ": mode selection exceeded the mode-1 bound";
    BitReader r(w.bytes(), w.bit_count());
    ASSERT_EQ(r.read(c.wire.type_bits),
              static_cast<std::uint64_t>(CountingMsg::kWalk));
    std::vector<WalkToken> decoded;
    c.wire.decode(r, decoded);
    EXPECT_EQ(r.remaining(), 0) << "trial " << trial;
    EXPECT_TRUE(same_token_multiset(batch, decoded))
        << "trial " << trial << " n=" << c.n << " cutoff=" << c.cutoff
        << " count=" << count;
  }
}

// max_batch_for_budget is what the counting phase trusts to never overrun
// an edge's bit budget: the returned cap must fit even in worst-case mode,
// be maximal, and degrade to the 0-token "send nothing this round" edge
// when the budget cannot carry a single token.
TEST(WalkBatchCodecFuzz, MaxBandwidthBudgetEdgesAlwaysFit) {
  Rng rng(0xb0d9e7);
  for (int trial = 0; trial < 500; ++trial) {
    const CodecConfig c = random_codec_config(rng);
    const std::uint64_t budget =
        rng.next_below(static_cast<std::uint64_t>(c.wire.max_bits(c.wpepr)) +
                       32);
    const std::uint64_t cap = c.wire.max_batch_for_budget(budget);
    ASSERT_LE(cap, c.wpepr);
    if (cap == 0) {
      // 0-token edge: not even one token fits; the sender must hold back.
      EXPECT_GT(static_cast<std::uint64_t>(c.wire.max_bits(1)), budget);
      continue;
    }
    EXPECT_LE(static_cast<std::uint64_t>(c.wire.max_bits(cap)), budget);
    if (cap < c.wpepr) {
      EXPECT_GT(static_cast<std::uint64_t>(c.wire.max_bits(cap + 1)), budget)
          << "cap not maximal at trial " << trial;
    }
    std::vector<WalkToken> batch = random_batch(rng, c, cap);
    BitWriter w;
    c.wire.encode(w, batch);
    EXPECT_LE(static_cast<std::uint64_t>(w.bit_count()), budget)
        << "trial " << trial << ": encoded batch of the advertised cap "
        << cap << " overran the budget";
    EXPECT_TRUE(
        same_token_multiset(batch, decode_payload(c.wire, w.bytes(),
                                                  w.bit_count())));
  }
}

TEST(WalkBatchCodecFuzz, RejectsOutOfRangeBatchSizes) {
  const WalkBatchWire wire(100, 20, 4);
  BitWriter w;
  std::vector<WalkToken> empty;
  EXPECT_THROW(wire.encode(w, empty), Error);
  std::vector<WalkToken> oversized(5, WalkToken{1, 1});
  EXPECT_THROW(wire.encode(w, oversized), Error);
}

// Every strict bit-prefix of a valid payload must throw: decode's read
// sequence is determined by the (unchanged) bits it has already consumed,
// so a shortened payload always exhausts the reader mid-field.
TEST(WalkBatchCodecFuzz, TruncatedPayloadsThrowCleanly) {
  Rng rng(0x7f0bc);
  for (int trial = 0; trial < 100; ++trial) {
    const CodecConfig c = random_codec_config(rng);
    const std::size_t count = 1 + rng.next_below(c.wpepr);
    std::vector<WalkToken> batch = random_batch(rng, c, count);
    BitWriter w;
    c.wire.encode(w, batch);
    const int total = w.bit_count();
    // All prefixes for short payloads, a random sample for long ones.
    std::vector<int> cuts;
    if (total <= 128) {
      for (int t = 0; t < total; ++t) cuts.push_back(t);
    } else {
      for (int i = 0; i < 64; ++i) {
        cuts.push_back(static_cast<int>(
            rng.next_below(static_cast<std::uint64_t>(total))));
      }
    }
    for (const int cut : cuts) {
      EXPECT_THROW(decode_payload(c.wire, w.bytes(), cut), Error)
          << "trial " << trial << ": truncation to " << cut << " of "
          << total << " bits decoded without error";
    }
  }
}

// Bit flips anywhere in the payload either still decode to in-range tokens
// (flips confined to id/length payload bits produce a different but valid
// batch) or throw rwbc::Error — nothing else may escape, and the sanitizer
// legs confirm no silent out-of-bounds reads.
TEST(WalkBatchCodecFuzz, CorruptPayloadsDecodeInRangeOrThrow) {
  Rng rng(0xbadb17);
  int threw = 0;
  for (int trial = 0; trial < 500; ++trial) {
    const CodecConfig c = random_codec_config(rng);
    const std::size_t count = 1 + rng.next_below(c.wpepr);
    std::vector<WalkToken> batch = random_batch(rng, c, count);
    BitWriter w;
    c.wire.encode(w, batch);
    std::vector<std::uint8_t> corrupt = w.bytes();
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int i = 0; i < flips; ++i) {
      const std::uint64_t bit =
          rng.next_below(static_cast<std::uint64_t>(w.bit_count()));
      corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    try {
      const std::vector<WalkToken> decoded =
          decode_payload(c.wire, corrupt, w.bit_count());
      ASSERT_LE(decoded.size(), c.wpepr) << "trial " << trial;
      for (const WalkToken& t : decoded) {
        ASSERT_GE(t.source, 0) << "trial " << trial;
        ASSERT_LT(t.source, c.n) << "trial " << trial;
        ASSERT_LE(t.remaining, c.cutoff) << "trial " << trial;
      }
    } catch (const Error&) {
      ++threw;  // the clean rejection path
    }
  }
  // With random geometries a healthy share of flips must hit validation;
  // if none throw, the corrupt-rejection path is dead and untested.
  EXPECT_GT(threw, 0);
}

}  // namespace
}  // namespace rwbc
