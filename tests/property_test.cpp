// Property-based sweeps: invariants that must hold on every topology and
// seed — symmetry, grounding invariance, bounds, conservation, and
// estimator consistency (parameterised gtest per the paper's Section IV
// identities).
#include <gtest/gtest.h>

#include <tuple>

#include "centrality/brandes.hpp"
#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "linalg/laplacian.hpp"
#include "linalg/lu.hpp"
#include "rwbc/distributed_rwbc.hpp"

namespace rwbc {
namespace {

Graph seeded_graph(const std::string& family, std::uint64_t seed) {
  Rng rng(seed);
  if (family == "er") return make_erdos_renyi(14, 0.3, rng);
  if (family == "ba") return make_barabasi_albert(14, 2, rng);
  if (family == "ws") return make_watts_strogatz(14, 4, 0.3, rng);
  if (family == "grid") return make_grid(3, 5);
  if (family == "tree") return make_binary_tree(13);
  if (family == "barbell") return make_barbell(4, 3);
  throw std::runtime_error("unknown family " + family);
}

using FamilySeed = std::tuple<const char*, std::uint64_t>;

class ExactInvariants : public ::testing::TestWithParam<FamilySeed> {
 protected:
  Graph graph() const {
    return seeded_graph(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(ExactInvariants, PotentialsSymmetric) {
  const Graph g = graph();
  const DenseMatrix t = exact_potentials(g);
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = i + 1; j < t.cols(); ++j) {
      EXPECT_NEAR(t(i, j), t(j, i), 1e-8);
    }
  }
}

TEST_P(ExactInvariants, GroundingInvariance) {
  const Graph g = graph();
  CurrentFlowOptions g0, g1;
  g0.grounding = 0;
  g1.grounding = g.node_count() / 2;
  const auto a = current_flow_betweenness(g, g0);
  const auto b = current_flow_betweenness(g, g1);
  for (std::size_t v = 0; v < a.size(); ++v) {
    EXPECT_NEAR(a[v], b[v], 1e-8);
  }
}

TEST_P(ExactInvariants, BoundsAndEndpointFloor) {
  const Graph g = graph();
  const auto b = current_flow_betweenness(g);
  const double floor = 2.0 / static_cast<double>(g.node_count());
  for (double v : b) {
    EXPECT_GE(v, floor - 1e-9);
    EXPECT_LE(v, 1.0 + 1e-9);
  }
}

TEST_P(ExactInvariants, DominatesShortestPathOnCutVertices) {
  // Any node with SPBC == 1 (a universal cut vertex) must also maximise
  // RWBC; weaker but universal: RWBC >= normalised SPBC is NOT a theorem,
  // so we check the robust property instead: the SPBC argmax node is in the
  // top-3 of RWBC (current flow concentrates on bridges too).
  const Graph g = graph();
  const auto sp = brandes_betweenness(g);
  const auto cf = current_flow_betweenness(g);
  std::size_t sp_best = 0;
  for (std::size_t v = 1; v < sp.size(); ++v) {
    if (sp[v] > sp[sp_best]) sp_best = v;
  }
  std::size_t better = 0;
  for (std::size_t v = 0; v < cf.size(); ++v) {
    if (cf[v] > cf[sp_best]) ++better;
  }
  EXPECT_LE(better, 3u);
}

TEST_P(ExactInvariants, PairThroughflowConservation) {
  // For any pair (s, t), summing Eq. 6 currents with sign over the
  // neighbours of any interior node gives zero net flow (Kirchhoff), and
  // the throughflow never exceeds 1.
  const Graph g = graph();
  const DenseMatrix t = exact_potentials(g);
  Rng rng(std::get<1>(GetParam()) + 100);
  for (int trial = 0; trial < 5; ++trial) {
    const auto s = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    auto tt = static_cast<NodeId>(
        rng.next_below(static_cast<std::uint64_t>(g.node_count())));
    if (s == tt) tt = (tt + 1) % g.node_count();
    for (NodeId i = 0; i < g.node_count(); ++i) {
      if (i == s || i == tt) continue;
      double net = 0.0;
      const auto ii = static_cast<std::size_t>(i);
      for (NodeId j : g.neighbors(i)) {
        const auto ji = static_cast<std::size_t>(j);
        net += (t(ii, static_cast<std::size_t>(s)) -
                t(ii, static_cast<std::size_t>(tt))) -
               (t(ji, static_cast<std::size_t>(s)) -
                t(ji, static_cast<std::size_t>(tt)));
      }
      EXPECT_NEAR(net, 0.0, 1e-8);
      EXPECT_LE(pair_throughflow(g, t, i, s, tt), 1.0 + 1e-9);
    }
  }
}

TEST_P(ExactInvariants, ReducedLaplacianTimesPotentialsIsIdentity) {
  const Graph g = graph();
  const NodeId ground = g.node_count() - 1;
  CurrentFlowOptions options;
  options.grounding = ground;
  const DenseMatrix t = exact_potentials(g, options);
  const DenseMatrix reduced_t =
      remove_row_col(t, static_cast<std::size_t>(ground));
  const DenseMatrix l = reduced_laplacian_matrix(g, ground);
  const DenseMatrix prod = multiply(l, reduced_t);
  EXPECT_LT(subtract(prod, DenseMatrix::identity(prod.rows())).max_abs(),
            1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactInvariants,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "grid", "tree",
                                         "barbell"),
                       ::testing::Values(1u, 2u, 3u)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param));
    });

class EstimatorInvariants : public ::testing::TestWithParam<FamilySeed> {};

TEST_P(EstimatorInvariants, VisitMatrixIsUnbiasedUnderAveraging) {
  // Average of the MC potentials over independent seeds converges to the
  // exact potentials (the estimator identity of DESIGN.md).
  const Graph g =
      seeded_graph(std::get<0>(GetParam()), std::get<1>(GetParam()));
  CurrentFlowOptions exact_options;
  exact_options.grounding = 0;
  const DenseMatrix t = exact_potentials(g, exact_options);
  const auto n = static_cast<std::size_t>(g.node_count());
  DenseMatrix mean(n, n);
  const int replicas = 4;
  for (int r = 0; r < replicas; ++r) {
    McOptions options;
    options.walks_per_source = 800;
    options.cutoff = 50 * n;
    options.target = 0;
    options.seed = 1000 * std::get<1>(GetParam()) + static_cast<std::uint64_t>(r);
    const McResult mc = current_flow_betweenness_mc(g, options);
    mean = add(mean, mc.scaled_visits);
  }
  mean = scale(mean, 1.0 / replicas);
  EXPECT_LT(subtract(mean, t).max_abs(), 0.15);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorInvariants,
    ::testing::Combine(::testing::Values("er", "grid", "tree"),
                       ::testing::Values(1u, 2u)),
    [](const auto& suite_info) {
      return std::string(std::get<0>(suite_info.param)) + "_s" +
             std::to_string(std::get<1>(suite_info.param));
    });

// Fuzz: on random small graphs, the DISTRIBUTED counting phase's scaled
// visits must match the deterministic truncated potentials (the estimator's
// exact expectation) within sampling noise — at ANY cutoff, not just large
// ones.  This pins the full chain: walk semantics, queueing policy, visit
// bookkeeping, count exchange, and scaling.
class DistributedEstimatorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DistributedEstimatorFuzz, ScaledVisitsMatchTruncatedPotentials) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const NodeId n = static_cast<NodeId>(6 + rng.next_below(5));
  const Graph g = make_erdos_renyi(n, 0.5, rng);
  const auto target = static_cast<NodeId>(
      rng.next_below(static_cast<std::uint64_t>(n)));
  const std::size_t cutoff = 1 + rng.next_below(3 * static_cast<std::uint64_t>(n));

  DistributedRwbcOptions options;
  options.walks_per_source = 4000;
  options.cutoff = cutoff;
  options.forced_target = target;
  options.run_leader_election = false;
  options.congest.seed = seed * 31 + 7;
  options.congest.bit_floor = 128;
  const auto result = distributed_rwbc(g, options);

  const DenseMatrix expected = truncated_potentials(g, target, cutoff);
  EXPECT_LT(subtract(result.scaled_visits, expected).max_abs(), 0.05)
      << "n=" << n << " target=" << target << " cutoff=" << cutoff;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, DistributedEstimatorFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{13}));

// Randomized-seed invariant sweep for the parallel scheduler: on 25 random
// (generator, seed, n) triples, the parallel pipeline must reproduce the
// serial pipeline exactly — same round count, same bit volume, same scores.
// This complements parallel_network_test.cpp's fixed-family golden sweep
// with topologies and sizes drawn at random each from its own seed.
class ParallelScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParallelScheduleFuzz, ParallelAndSerialRunsAreIdentical) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed * 77 + 13);
  const NodeId n = static_cast<NodeId>(8 + rng.next_below(10));
  const char* families[] = {"er", "ba", "ws", "grid", "tree", "barbell"};
  const std::string family = families[rng.next_below(6)];
  Graph g = [&] {
    if (family == "er") return make_erdos_renyi(n, 0.4, rng);
    if (family == "ba") return make_barabasi_albert(n, 2, rng);
    if (family == "ws") return make_watts_strogatz(n, 4, 0.3, rng);
    if (family == "grid") return make_grid(3, 1 + n / 3);
    if (family == "tree") return make_binary_tree(n);
    return make_barbell(4, static_cast<NodeId>(rng.next_below(4)));
  }();

  DistributedRwbcOptions options;
  options.congest.seed = seed;
  auto run_with = [&](int threads) {
    options.congest.num_threads = threads;
    return distributed_rwbc(g, options);
  };
  const auto serial = run_with(0);
  const int threads = 1 + static_cast<int>(rng.next_below(8));
  const auto parallel = run_with(threads);
  EXPECT_EQ(serial.total.rounds, parallel.total.rounds)
      << family << " n=" << n << " threads=" << threads;
  EXPECT_EQ(serial.total.total_bits, parallel.total.total_bits)
      << family << " n=" << n << " threads=" << threads;
  EXPECT_EQ(serial.betweenness, parallel.betweenness)
      << family << " n=" << n << " threads=" << threads;
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ParallelScheduleFuzz,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{26}));

}  // namespace
}  // namespace rwbc
