// Exact current-flow betweenness (Newman / Section IV): closed-form cases,
// grounding invariance, solver agreement, and the sorted-prefix pair
// accumulation against a naive O(n^2 m) reference.
#include <gtest/gtest.h>

#include <cmath>

#include "centrality/current_flow_exact.hpp"
#include "centrality/current_flow_mc.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "linalg/dense.hpp"

namespace rwbc {
namespace {

constexpr double kTol = 1e-9;

TEST(CurrentFlowExact, PathOfThreeHasKnownValues) {
  const Graph g = make_path(3);
  const auto b = current_flow_betweenness(g);
  // Middle node carries every pair: ((0,2) -> 1) + 2 endpoint pairs = 3,
  // normalised by n(n-1)/2 = 3.
  EXPECT_NEAR(b[1], 1.0, kTol);
  // End nodes only appear as endpoints: 2 / 3.
  EXPECT_NEAR(b[0], 2.0 / 3.0, kTol);
  EXPECT_NEAR(b[2], 2.0 / 3.0, kTol);
}

TEST(CurrentFlowExact, StarHubIsMaximal) {
  const NodeId n = 7;
  const Graph g = make_star(n);
  const auto b = current_flow_betweenness(g);
  EXPECT_NEAR(b[0], 1.0, kTol);  // hub carries everything
  for (NodeId v = 1; v < n; ++v) {
    EXPECT_NEAR(b[static_cast<std::size_t>(v)],
                2.0 / static_cast<double>(n), kTol);
  }
}

TEST(CurrentFlowExact, CompleteGraphIsSymmetric) {
  const Graph g = make_complete(5);
  const auto b = current_flow_betweenness(g);
  for (std::size_t v = 1; v < b.size(); ++v) {
    EXPECT_NEAR(b[v], b[0], kTol);
  }
  EXPECT_GT(b[0], 2.0 / 5.0);  // strictly above the endpoint floor
  EXPECT_LT(b[0], 1.0);
}

TEST(CurrentFlowExact, CycleFourPairThroughflowSplitsEvenly) {
  const Graph g = make_cycle(4);
  const DenseMatrix t = exact_potentials(g);
  // Unit current 0 -> 2 splits half/half over the two parallel paths.
  EXPECT_NEAR(pair_throughflow(g, t, 1, 0, 2), 0.5, kTol);
  EXPECT_NEAR(pair_throughflow(g, t, 3, 0, 2), 0.5, kTol);
  // Endpoints carry the full unit (Eq. 7).
  EXPECT_NEAR(pair_throughflow(g, t, 0, 0, 2), 1.0, kTol);
  EXPECT_NEAR(pair_throughflow(g, t, 2, 0, 2), 1.0, kTol);
}

TEST(CurrentFlowExact, PathPairThroughflowIsUnitOnTheLine) {
  const Graph g = make_path(5);
  const DenseMatrix t = exact_potentials(g);
  // Every interior node of the unique 0..4 path carries the full current.
  EXPECT_NEAR(pair_throughflow(g, t, 1, 0, 4), 1.0, kTol);
  EXPECT_NEAR(pair_throughflow(g, t, 2, 0, 4), 1.0, kTol);
  EXPECT_NEAR(pair_throughflow(g, t, 3, 0, 4), 1.0, kTol);
}

TEST(CurrentFlowExact, PotentialsMatrixIsSymmetric) {
  Rng rng(7);
  const Graph g = make_erdos_renyi(12, 0.3, rng);
  const DenseMatrix t = exact_potentials(g);
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = 0; j < t.cols(); ++j) {
      EXPECT_NEAR(t(i, j), t(j, i), 1e-9);
    }
  }
}

TEST(CurrentFlowExact, GroundingChoiceDoesNotChangeBetweenness) {
  Rng rng(11);
  const Graph g = make_erdos_renyi(10, 0.4, rng);
  CurrentFlowOptions a;
  a.grounding = 0;
  CurrentFlowOptions b;
  b.grounding = g.node_count() - 1;
  const auto ba = current_flow_betweenness(g, a);
  const auto bb = current_flow_betweenness(g, b);
  for (std::size_t v = 0; v < ba.size(); ++v) {
    EXPECT_NEAR(ba[v], bb[v], 1e-8);
  }
}

TEST(CurrentFlowExact, DenseAndCgSolversAgree) {
  Rng rng(13);
  const Graph g = make_erdos_renyi(14, 0.3, rng);
  CurrentFlowOptions dense;
  dense.solver = CurrentFlowOptions::Solver::kDenseLu;
  CurrentFlowOptions sparse;
  sparse.solver = CurrentFlowOptions::Solver::kSparseCg;
  const auto bd = current_flow_betweenness(g, dense);
  const auto bs = current_flow_betweenness(g, sparse);
  for (std::size_t v = 0; v < bd.size(); ++v) {
    EXPECT_NEAR(bd[v], bs[v], 1e-7);
  }
}

// Naive O(n^2 m) accumulation of Eq. 6-8 used to validate the sorted-prefix
// trick in betweenness_from_potentials.
std::vector<double> naive_betweenness(const Graph& g, const DenseMatrix& t) {
  const auto n = static_cast<std::size_t>(g.node_count());
  std::vector<double> result(n, 0.0);
  for (NodeId i = 0; i < g.node_count(); ++i) {
    double sum = 0.0;
    for (NodeId s = 0; s < g.node_count(); ++s) {
      for (NodeId tt = s + 1; tt < g.node_count(); ++tt) {
        sum += pair_throughflow(g, t, i, s, tt);
      }
    }
    result[static_cast<std::size_t>(i)] =
        sum / (0.5 * static_cast<double>(n) * static_cast<double>(n - 1));
  }
  return result;
}

TEST(CurrentFlowExact, SortedPrefixAccumulationMatchesNaive) {
  Rng rng(17);
  const Graph g = make_erdos_renyi(11, 0.35, rng);
  const DenseMatrix t = exact_potentials(g);
  const auto fast = betweenness_from_potentials(g, t);
  const auto naive = naive_betweenness(g, t);
  for (std::size_t v = 0; v < fast.size(); ++v) {
    EXPECT_NEAR(fast[v], naive[v], 1e-9);
  }
}

TEST(CurrentFlowExact, Fig1NodeCHasSubstantialCentrality) {
  const Fig1Layout layout = make_fig1_graph(5);
  const auto b = current_flow_betweenness(layout.graph);
  const auto c = static_cast<std::size_t>(layout.c);
  const auto a = static_cast<std::size_t>(layout.a);
  // C (on the parallel A-C-B path) carries real random-walk traffic: well
  // above the 2/n endpoint floor...
  EXPECT_GT(b[c], 1.5 * 2.0 / static_cast<double>(layout.graph.node_count()));
  // ...while the bridge heads A and B dominate.
  EXPECT_GT(b[a], b[c]);
}

TEST(PivotSampling, ConvergesToExact) {
  Rng rng(37);
  const Graph g = make_erdos_renyi(16, 0.3, rng);
  const auto exact = current_flow_betweenness(g);
  const auto sampled = current_flow_betweenness_pivots(g, 8000, 41);
  double worst = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    worst = std::max(worst, std::abs(sampled[v] - exact[v]) / exact[v]);
  }
  EXPECT_LT(worst, 0.06);
}

TEST(PivotSampling, ErrorShrinksWithMorePairs) {
  const Fig1Layout layout = make_fig1_graph(4);
  const auto exact = current_flow_betweenness(layout.graph);
  auto error_at = [&](std::size_t pairs) {
    const auto sampled =
        current_flow_betweenness_pivots(layout.graph, pairs, 43);
    double worst = 0.0;
    for (std::size_t v = 0; v < exact.size(); ++v) {
      worst = std::max(worst, std::abs(sampled[v] - exact[v]) / exact[v]);
    }
    return worst;
  };
  // 64x more pairs should cut the error by roughly 8x; demand at least 2x.
  EXPECT_LT(error_at(12'800), error_at(200) / 2.0);
}

TEST(PivotSampling, ExactOnPairCountEqualToAllPairsStatistically) {
  // Sampling with replacement never reproduces the exact value, but on the
  // 3-node path every pair's I is known; the estimate must sit in range.
  const Graph g = make_path(3);
  const auto sampled = current_flow_betweenness_pivots(g, 5000, 5);
  EXPECT_NEAR(sampled[1], 1.0, 0.05);       // every pair crosses the middle
  EXPECT_NEAR(sampled[0], 2.0 / 3.0, 0.05);
}

TEST(PivotSampling, RejectsBadInputs) {
  const Graph g = make_path(4);
  EXPECT_THROW(current_flow_betweenness_pivots(g, 0, 1), Error);
  GraphBuilder b(4);
  b.add_edge(0, 1).add_edge(2, 3);
  EXPECT_THROW(current_flow_betweenness_pivots(b.build(), 10, 1), Error);
}

TEST(TruncatedPotentials, ConvergesToExactAsCutoffGrows) {
  Rng rng(29);
  const Graph g = make_erdos_renyi(10, 0.4, rng);
  CurrentFlowOptions options;
  options.grounding = 0;
  const DenseMatrix exact = exact_potentials(g, options);
  const DenseMatrix coarse = truncated_potentials(g, 0, 4);
  const DenseMatrix fine = truncated_potentials(g, 0, 2000);
  EXPECT_LT(subtract(fine, exact).max_abs(), 1e-9);
  // Truncation only removes mass: T_l <= T entrywise, monotone in l.
  for (std::size_t i = 0; i < exact.rows(); ++i) {
    for (std::size_t j = 0; j < exact.cols(); ++j) {
      EXPECT_LE(coarse(i, j), fine(i, j) + 1e-12);
      EXPECT_LE(fine(i, j), exact(i, j) + 1e-12);
    }
  }
}

TEST(TruncatedPotentials, CutoffZeroIsJustTheBirthOccupancy) {
  const Graph g = make_cycle(5);
  const DenseMatrix t0 = truncated_potentials(g, 4, 0);
  for (std::size_t v = 0; v < 5; ++v) {
    for (std::size_t s = 0; s < 5; ++s) {
      const double expected =
          (v == s && s != 4) ? 1.0 / static_cast<double>(g.degree(
                                         static_cast<NodeId>(v)))
                             : 0.0;
      EXPECT_NEAR(t0(v, s), expected, 1e-12);
    }
  }
}

TEST(TruncatedPotentials, MatchesMcEstimatorExpectation) {
  // The Monte-Carlo scaled visits are an unbiased sample of T_l: with a
  // large K they must straddle the deterministic truncated potentials.
  const Graph g = make_complete(4);
  const std::size_t cutoff = 6;
  const DenseMatrix t_l = truncated_potentials(g, 3, cutoff);
  McOptions options;
  options.walks_per_source = 80'000;
  options.cutoff = cutoff;
  options.target = 3;
  options.seed = 31;
  const McResult mc = current_flow_betweenness_mc(g, options);
  EXPECT_LT(subtract(mc.scaled_visits, t_l).max_abs(), 0.01);
}

TEST(CurrentFlowExact, RejectsDisconnectedGraphs) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1).add_edge(2, 3);
  const Graph g = builder.build();
  EXPECT_THROW(current_flow_betweenness(g), Error);
}

TEST(CurrentFlowExact, RejectsTinyGraphs) {
  const Graph g = GraphBuilder(1).build();
  EXPECT_THROW(current_flow_betweenness(g), Error);
}

TEST(CurrentFlowExact, BetweennessBoundsHold) {
  Rng rng(23);
  const Graph g = make_barabasi_albert(20, 2, rng);
  const auto b = current_flow_betweenness(g);
  const double floor = 2.0 / static_cast<double>(g.node_count());
  for (double v : b) {
    EXPECT_GE(v, floor - kTol);  // endpoint pairs alone contribute 2/n
    EXPECT_LE(v, 1.0 + kTol);    // unit current cannot exceed 1 per pair
  }
}

}  // namespace
}  // namespace rwbc
