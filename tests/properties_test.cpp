// Structural queries: BFS distances, components, diameter, degree stats.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace rwbc {
namespace {

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[static_cast<std::size_t>(v)], v);
  }
}

TEST(Properties, BfsMarksUnreachableAsMinusOne) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], -1);
  EXPECT_EQ(dist[3], -1);
}

TEST(Properties, ConnectedComponentsLabels) {
  GraphBuilder b(6);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
  const Graph g = b.build();
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[1], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
  EXPECT_NE(comp[5], comp[3]);
}

TEST(Properties, IsConnectedCases) {
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
  EXPECT_TRUE(is_connected(GraphBuilder(1).build()));
  EXPECT_TRUE(is_connected(make_cycle(4)));
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(is_connected(b.build()));
}

TEST(Properties, DiameterKnownValues) {
  EXPECT_EQ(diameter(make_path(7)), 6);
  EXPECT_EQ(diameter(make_cycle(8)), 4);
  EXPECT_EQ(diameter(make_star(10)), 2);
  EXPECT_EQ(diameter(make_complete(5)), 1);
  EXPECT_EQ(diameter(GraphBuilder(1).build()), 0);
}

TEST(Properties, EccentricityOnPath) {
  const Graph g = make_path(5);
  EXPECT_EQ(eccentricity(g, 0), 4);
  EXPECT_EQ(eccentricity(g, 2), 2);
}

TEST(Properties, EccentricityRequiresConnectivity) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(eccentricity(b.build(), 0), Error);
}

TEST(Properties, DegreeStats) {
  const Graph g = make_star(5);
  const DegreeStats stats = degree_stats(g);
  EXPECT_EQ(stats.min, 1);
  EXPECT_EQ(stats.max, 4);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
}

TEST(Properties, RequireConnectedThrowsWithAlgorithmName) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  try {
    require_connected(b.build(), "unit-test-algo");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unit-test-algo"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rwbc
