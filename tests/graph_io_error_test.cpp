// Malformed-input hardening for the edge-list reader (graph/io.hpp).
//
// Table-driven: each case is one malformed input document plus a fragment
// its ParseError message must contain.  The reader's contract is typed,
// line-numbered errors — never a silent mis-parse, a crash, or a partially
// constructed graph.
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "graph/io.hpp"

namespace rwbc {
namespace {

struct BadInputCase {
  const char* name;
  const char* input;
  const char* expect_fragment;  // must appear in the ParseError message
  std::size_t expect_line;      // 0 = unchecked (e.g. EOF-truncation cases)
};

class GraphIoErrorTest : public ::testing::TestWithParam<BadInputCase> {};

TEST_P(GraphIoErrorTest, RejectsWithTypedLineNumberedError) {
  const BadInputCase& c = GetParam();
  std::istringstream in(c.input);
  try {
    read_edge_list(in);
    FAIL() << "expected ParseError for case: " << c.name;
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find(c.expect_fragment), std::string::npos)
        << "case " << c.name << ": message was '" << e.what() << "'";
    if (c.expect_line != 0) {
      EXPECT_EQ(e.line(), c.expect_line) << "case " << c.name;
      EXPECT_NE(std::string(e.what()).find(
                    "line " + std::to_string(c.expect_line)),
                std::string::npos)
          << "case " << c.name << ": message was '" << e.what() << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MalformedEdgeLists, GraphIoErrorTest,
    ::testing::Values(
        BadInputCase{"empty_stream", "", "missing `n m` header", 0},
        BadInputCase{"comment_only", "# nothing here\n\n",
                     "missing `n m` header", 0},
        BadInputCase{"header_one_token", "5\n", "header must be exactly",
                     1},
        BadInputCase{"header_three_tokens", "5 4 1\n0 1\n",
                     "header must be exactly", 1},
        BadInputCase{"header_non_numeric", "five 4\n",
                     "node count must be a non-negative integer", 1},
        BadInputCase{"header_negative_m", "5 -1\n",
                     "edge count must be a non-negative integer", 1},
        BadInputCase{"header_float_n", "5.0 4\n",
                     "node count must be a non-negative integer", 1},
        BadInputCase{"node_count_overflow",
                     "99999999999999999 1\n0 1\n",
                     "exceeds the supported maximum", 1},
        BadInputCase{"truncated_no_edges", "3 2\n0 1\n",
                     "truncated — header declared 2 edge(s) but only 1",
                     0},
        BadInputCase{"truncated_comments_dont_count",
                     "3 2\n0 1\n# not an edge\n",
                     "truncated", 0},
        BadInputCase{"edge_one_token", "3 1\n0\n",
                     "edge line must be exactly `u v`", 2},
        BadInputCase{"edge_three_tokens", "3 1\n0 1 7\n",
                     "edge line must be exactly `u v`", 2},
        BadInputCase{"edge_non_numeric", "3 1\n0 x\n",
                     "edge endpoint must be a non-negative integer", 2},
        BadInputCase{"edge_numeric_prefix", "3 1\n0 1garbage\n",
                     "edge endpoint must be a non-negative integer", 2},
        BadInputCase{"edge_negative_endpoint", "3 1\n0 -2\n",
                     "edge endpoint must be a non-negative integer", 2},
        BadInputCase{"endpoint_out_of_range", "3 1\n0 3\n",
                     "endpoint out of range for n = 3", 2},
        BadInputCase{"endpoint_way_out_of_range", "3 1\n0 400\n",
                     "endpoint out of range", 2},
        BadInputCase{"self_loop", "3 1\n2 2\n", "self-loop at node 2", 2},
        BadInputCase{"duplicate_edge", "3 3\n0 1\n1 2\n0 1\n",
                     "duplicate edge", 4},
        BadInputCase{"duplicate_edge_reversed", "3 2\n0 1\n1 0\n",
                     "duplicate edge", 3},
        BadInputCase{"trailing_data", "2 1\n0 1\n0 1\n",
                     "trailing data after the declared 1 edge(s)", 3},
        BadInputCase{"line_numbers_skip_comments",
                     "# header next\n3 1\n# edge next\n0 zz\n",
                     "edge endpoint must be a non-negative integer", 4}),
    [](const ::testing::TestParamInfo<BadInputCase>& param_info) {
      return param_info.param.name;
    });

TEST(GraphIoErrorTest, WellFormedInputStillParses) {
  std::istringstream in(
      "# a comment\n"
      "4 3\n"
      "\n"
      "0 1\n"
      "# mid-list comment\n"
      "1 2\n"
      "2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.node_count(), 4);
  EXPECT_EQ(g.edge_count(), 3u);
}

TEST(GraphIoErrorTest, LoadEdgeListPrefixesPath) {
  try {
    load_edge_list("/nonexistent/definitely-missing.edges");
    FAIL() << "expected Error for missing file";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
  }
}

}  // namespace
}  // namespace rwbc
