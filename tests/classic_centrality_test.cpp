// Classic centrality indices: closed forms on canonical topologies.
#include <gtest/gtest.h>

#include <cmath>

#include "centrality/classic.hpp"
#include "centrality/ranking.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(DegreeCentrality, StarValues) {
  const Graph g = make_star(5);
  const auto c = degree_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  for (std::size_t v = 1; v < 5; ++v) EXPECT_DOUBLE_EQ(c[v], 0.25);
}

TEST(ClosenessCentrality, PathValues) {
  const Graph g = make_path(5);
  const auto c = closeness_centrality(g);
  // Middle node: distances 2,1,1,2 -> closeness 4/6.
  EXPECT_NEAR(c[2], 4.0 / 6.0, 1e-12);
  // End node: distances 1,2,3,4 -> 4/10.
  EXPECT_NEAR(c[0], 0.4, 1e-12);
  EXPECT_GT(c[2], c[1]);
  EXPECT_GT(c[1], c[0]);
}

TEST(ClosenessCentrality, CompleteGraphIsMaximal) {
  const auto c = closeness_centrality(make_complete(6));
  for (double v : c) EXPECT_DOUBLE_EQ(v, 1.0);
}

TEST(ClosenessCentrality, RejectsDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_THROW(closeness_centrality(b.build()), Error);
}

TEST(HarmonicCentrality, PathValues) {
  const Graph g = make_path(3);
  const auto c = harmonic_centrality(g);
  EXPECT_NEAR(c[1], 1.0, 1e-12);               // (1 + 1) / 2
  EXPECT_NEAR(c[0], (1.0 + 0.5) / 2, 1e-12);   // dist 1, 2
}

TEST(HarmonicCentrality, HandlesDisconnected) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto c = harmonic_centrality(b.build());
  EXPECT_NEAR(c[0], 0.5, 1e-12);  // only node 1 reachable
  EXPECT_DOUBLE_EQ(c[2], 0.0);
}

TEST(EigenvectorCentrality, StarHubDominates) {
  const Graph g = make_star(6);
  const auto c = eigenvector_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);  // normalised peak
  for (std::size_t v = 1; v < 6; ++v) {
    // Leaves carry hub / sqrt(n-1) of the hub weight.
    EXPECT_NEAR(c[v], 1.0 / std::sqrt(5.0), 1e-9);
  }
}

TEST(EigenvectorCentrality, RegularGraphIsUniform) {
  const auto c = eigenvector_centrality(make_cycle(8));
  for (double v : c) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(EigenvectorCentrality, SatisfiesEigenEquation) {
  Rng rng(3);
  const Graph g = make_erdos_renyi(12, 0.4, rng);
  const auto c = eigenvector_centrality(g);
  // Recover lambda from one coordinate, then check Ax = lambda x.
  double lambda = 0.0;
  for (NodeId w : g.neighbors(0)) lambda += c[static_cast<std::size_t>(w)];
  lambda /= c[0];
  for (NodeId v = 0; v < g.node_count(); ++v) {
    double sum = 0.0;
    for (NodeId w : g.neighbors(v)) sum += c[static_cast<std::size_t>(w)];
    EXPECT_NEAR(sum, lambda * c[static_cast<std::size_t>(v)], 1e-6);
  }
}

TEST(KatzCentrality, DefaultAlphaWorksAndHubDominates) {
  const Graph g = make_star(7);
  const auto c = katz_centrality(g);
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  for (std::size_t v = 1; v < 7; ++v) {
    EXPECT_LT(c[v], 1.0);
    EXPECT_GT(c[v], 0.0);
  }
}

TEST(KatzCentrality, SmallAlphaApproachesDegreeRanking) {
  Rng rng(5);
  const Graph g = make_barabasi_albert(20, 2, rng);
  const auto katz = katz_centrality(g, 0.01);
  const auto deg = degree_centrality(g);
  EXPECT_GT(kendall_tau(katz, deg), 0.85);
}

TEST(KatzCentrality, RejectsAlphaBeyondSpectralRadius) {
  const Graph g = make_complete(4);  // lambda_max = 3
  EXPECT_THROW(katz_centrality(g, 0.4), Error);
}

TEST(ClassicCentrality, TinyGraphValidation) {
  const Graph g = GraphBuilder(1).build();
  EXPECT_THROW(degree_centrality(g), Error);
  EXPECT_THROW(closeness_centrality(g), Error);
  EXPECT_THROW(harmonic_centrality(g), Error);
  EXPECT_THROW(eigenvector_centrality(g), Error);
  EXPECT_THROW(katz_centrality(g), Error);
}

}  // namespace
}  // namespace rwbc
