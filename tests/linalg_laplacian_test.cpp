// Graph-matrix bridges: structure of A, D, M, L and their reduced forms,
// plus the spectral machinery behind Theorem 1's cutoff prediction.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "linalg/laplacian.hpp"

namespace rwbc {
namespace {

TEST(Laplacian, AdjacencyAndDegreeStructure) {
  const Graph g = make_path(3);
  const DenseMatrix a = adjacency_matrix(g);
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(a(0, 2), 0.0);
  const DenseMatrix d = degree_matrix(g);
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Laplacian, TransitionColumnsSumToOne) {
  const Graph g = make_star(6);
  const DenseMatrix m = transition_matrix(g);
  for (std::size_t j = 0; j < m.cols(); ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < m.rows(); ++i) sum += m(i, j);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
  // M_ij = A_ij / d(j): hub column splits 1/5 to each leaf.
  EXPECT_NEAR(m(1, 0), 0.2, 1e-12);
  EXPECT_NEAR(m(0, 1), 1.0, 1e-12);
}

TEST(Laplacian, TransitionRequiresMinDegreeOne) {
  const Graph g = GraphBuilder(2).build();  // two isolated nodes
  EXPECT_THROW(transition_matrix(g), Error);
}

TEST(Laplacian, LaplacianRowsSumToZero) {
  const Graph g = make_cycle(5);
  const DenseMatrix l = laplacian_matrix(g);
  for (std::size_t r = 0; r < l.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < l.cols(); ++c) sum += l(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
}

TEST(Laplacian, ReducedFormsDropTheTarget) {
  const Graph g = make_cycle(4);
  const DenseMatrix mt = reduced_transition_matrix(g, 2);
  EXPECT_EQ(mt.rows(), 3u);
  const DenseMatrix lt = reduced_laplacian_matrix(g, 2);
  EXPECT_EQ(lt.rows(), 3u);
  EXPECT_DOUBLE_EQ(lt(0, 0), 2.0);  // degrees survive the removal
}

TEST(Laplacian, ReducedCsrMatchesDense) {
  const Graph g = make_grid(3, 3);
  const NodeId target = 4;
  const DenseMatrix dense = reduced_laplacian_matrix(g, target);
  const DenseMatrix sparse = reduced_laplacian_csr(g, target).to_dense();
  EXPECT_LT(subtract(dense, sparse).max_abs(), 1e-12);
}

TEST(Laplacian, ReducedIndexMapping) {
  EXPECT_EQ(reduced_index(0, 3), 0u);
  EXPECT_EQ(reduced_index(2, 3), 2u);
  EXPECT_EQ(reduced_index(4, 3), 3u);
  EXPECT_THROW(reduced_index(3, 3), Error);
}

TEST(Spectral, CompleteGraphHasKnownSurvivalRate) {
  // On K_n, survival per step from any node is (n-2)/(n-1) — the dominant
  // eigenvalue of M_t.
  const NodeId n = 8;
  const Graph g = make_complete(n);
  const double rho = spectral_radius_reduced_transition(g, 0);
  EXPECT_NEAR(rho, static_cast<double>(n - 2) / static_cast<double>(n - 1),
              1e-6);
}

TEST(Spectral, RadiusIsBelowOneOnConnectedGraphs) {
  for (const Graph& g : {make_path(10), make_cycle(9), make_grid(3, 4)}) {
    const double rho = spectral_radius_reduced_transition(g, 0);
    EXPECT_GT(rho, 0.0);
    EXPECT_LT(rho, 1.0);
  }
}

TEST(Spectral, StarWithHubTargetIsNilpotent) {
  // Removing the hub isolates every leaf: M_t = 0, walks die in one step.
  const Graph g = make_star(7);
  EXPECT_DOUBLE_EQ(spectral_radius_reduced_transition(g, 0), 0.0);
  // With a leaf target the chain survives through the hub.
  const double rho = spectral_radius_reduced_transition(g, 1);
  EXPECT_GT(rho, 0.0);
  EXPECT_LT(rho, 1.0);
}

TEST(Spectral, PredictedCutoffBehaviour) {
  // Smaller epsilon or slower mixing -> longer cutoff.
  EXPECT_GE(predicted_cutoff_for_epsilon(0.9, 0.01),
            predicted_cutoff_for_epsilon(0.9, 0.1));
  EXPECT_GE(predicted_cutoff_for_epsilon(0.99, 0.1),
            predicted_cutoff_for_epsilon(0.5, 0.1));
  // Exact check: rho^l <= eps at the returned l.
  const std::size_t l = predicted_cutoff_for_epsilon(0.8, 0.05);
  EXPECT_LE(std::pow(0.8, static_cast<double>(l)), 0.05 + 1e-12);
  EXPECT_GT(std::pow(0.8, static_cast<double>(l - 1)), 0.05 - 1e-12);
}

TEST(Spectral, PredictedCutoffEdgeCases) {
  EXPECT_EQ(predicted_cutoff_for_epsilon(0.0, 0.1), 1u);
  EXPECT_EQ(predicted_cutoff_for_epsilon(0.999999, 0.5, 100), 100u);  // cap
  EXPECT_THROW(predicted_cutoff_for_epsilon(1.0, 0.1), Error);
  EXPECT_THROW(predicted_cutoff_for_epsilon(0.5, 0.0), Error);
}

}  // namespace
}  // namespace rwbc
