// LU factorisation: solves, inverses, determinants, pivoting, singularity.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "linalg/dense.hpp"
#include "linalg/lu.hpp"

namespace rwbc {
namespace {

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const Vector b{5, 10};
  const Vector x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, RequiresPivoting) {
  // Zero on the first diagonal: naive elimination would divide by zero.
  DenseMatrix a(2, 2);
  a(0, 0) = 0; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 0;
  const Vector b{2, 3};
  const Vector x = lu_solve(a, b);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Lu, InverseOnRandomMatrix) {
  Rng rng(5);
  const std::size_t n = 12;
  DenseMatrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = rng.next_double() - 0.5;
    }
    a(r, r) += static_cast<double>(n);  // diagonally dominant: nonsingular
  }
  const DenseMatrix inv = lu_inverse(a);
  const DenseMatrix prod = multiply(a, inv);
  const DenseMatrix diff = subtract(prod, DenseMatrix::identity(n));
  EXPECT_LT(diff.max_abs(), 1e-10);
}

TEST(Lu, DeterminantKnownValues) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3; a(0, 1) = 8;
  a(1, 0) = 4; a(1, 1) = 6;
  EXPECT_NEAR(LuDecomposition(a).determinant(), -14.0, 1e-10);
  EXPECT_NEAR(LuDecomposition(DenseMatrix::identity(5)).determinant(), 1.0,
              1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2;
  a(1, 0) = 2; a(1, 1) = 4;  // rank 1
  EXPECT_THROW(LuDecomposition{a}, Error);
}

TEST(Lu, NonSquareThrows) {
  const DenseMatrix a(2, 3);
  EXPECT_THROW(LuDecomposition{a}, Error);
}

TEST(Lu, MatrixRhsSolve) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 1;
  a(1, 0) = 1; a(1, 1) = 3;
  const LuDecomposition lu(a);
  const DenseMatrix x = lu.solve(DenseMatrix::identity(2));
  const DenseMatrix check = multiply(a, x);
  EXPECT_LT(subtract(check, DenseMatrix::identity(2)).max_abs(), 1e-12);
}

TEST(Lu, RhsSizeMismatchThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(1, 1) = 1;
  const LuDecomposition lu(a);
  const Vector wrong{1, 2, 3};
  EXPECT_THROW(lu.solve(wrong), Error);
}

}  // namespace
}  // namespace rwbc
