// Statistics helpers: summaries, linear/power fits, and relative errors.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace rwbc {
namespace {

TEST(Summarize, BasicMoments) {
  const std::vector<double> values{1, 2, 3, 4, 5};
  const Summary s = summarize(values);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Summarize, EmptyAndSingleton) {
  EXPECT_EQ(summarize({}).count, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarize(one);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(FitLine, RecoversExactLine) {
  const std::vector<double> xs{1, 2, 3, 4};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(2.5 * x - 1.0);
  const LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, -1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, RejectsDegenerateInput) {
  const std::vector<double> xs{1.0, 1.0};
  const std::vector<double> ys{2.0, 3.0};
  EXPECT_THROW(fit_line(xs, ys), Error);
  const std::vector<double> one{1.0};
  EXPECT_THROW(fit_line(one, one), Error);
}

TEST(FitPower, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x : {8.0, 16.0, 32.0, 64.0, 128.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 1.5));
  }
  const PowerFit fit = fit_power(xs, ys);
  EXPECT_NEAR(fit.exponent, 1.5, 1e-10);
  EXPECT_NEAR(fit.coefficient, 3.0, 1e-8);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitPower, RejectsNonPositive) {
  const std::vector<double> xs{1.0, -2.0};
  const std::vector<double> ys{1.0, 2.0};
  EXPECT_THROW(fit_power(xs, ys), Error);
}

TEST(RelativeError, MaxAndMean) {
  const std::vector<double> exact{1.0, 2.0, 4.0};
  const std::vector<double> approx{1.1, 2.0, 3.0};
  EXPECT_NEAR(max_relative_error(exact, approx), 0.25, 1e-12);
  EXPECT_NEAR(mean_relative_error(exact, approx), (0.1 + 0.0 + 0.25) / 3,
              1e-12);
}

TEST(RelativeError, FloorGuardsTinyExactValues) {
  const std::vector<double> exact{0.0};
  const std::vector<double> approx{1e-13};
  EXPECT_LE(max_relative_error(exact, approx, 1e-12), 0.1);
}

TEST(RelativeError, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(max_relative_error(a, b), Error);
}

}  // namespace
}  // namespace rwbc
