// PageRank: power iteration references, Monte-Carlo convergence.
#include <gtest/gtest.h>

#include <numeric>

#include "centrality/pagerank.hpp"
#include "common/stats.hpp"
#include "graph/generators.hpp"

namespace rwbc {
namespace {

TEST(PagerankPower, SumsToOne) {
  Rng rng(1);
  const Graph g = make_barabasi_albert(40, 2, rng);
  const auto pr = pagerank_power(g);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PagerankPower, UniformOnRegularGraphs) {
  // On a vertex-transitive graph every node has the same rank.
  const Graph g = make_cycle(10);
  const auto pr = pagerank_power(g);
  for (double v : pr) EXPECT_NEAR(v, 0.1, 1e-9);
}

TEST(PagerankPower, HubOutranksLeaves) {
  const Graph g = make_star(10);
  const auto pr = pagerank_power(g);
  for (std::size_t v = 1; v < pr.size(); ++v) {
    EXPECT_GT(pr[0], pr[v]);
  }
}

TEST(PagerankPower, SatisfiesFixedPointEquation) {
  Rng rng(2);
  const Graph g = make_erdos_renyi(15, 0.3, rng);
  PagerankOptions options;
  const auto pr = pagerank_power(g, options);
  const double eps = options.reset_probability;
  const auto n = static_cast<double>(g.node_count());
  for (NodeId v = 0; v < g.node_count(); ++v) {
    double incoming = 0.0;
    for (NodeId w : g.neighbors(v)) {
      incoming += pr[static_cast<std::size_t>(w)] /
                  static_cast<double>(g.degree(w));
    }
    const double expected = eps / n + (1.0 - eps) * incoming;
    EXPECT_NEAR(pr[static_cast<std::size_t>(v)], expected, 1e-8);
  }
}

TEST(PagerankPower, RejectsIsolatedNodes) {
  const Graph g = GraphBuilder(3).build();
  EXPECT_THROW(pagerank_power(g), Error);
}

TEST(PagerankMc, ConvergesToPowerIteration) {
  const Graph g = make_star(8);
  PagerankMcOptions mc_options;
  mc_options.walks_per_node = 40'000;
  mc_options.seed = 3;
  const auto mc = pagerank_monte_carlo(g, mc_options);
  const auto power = pagerank_power(g);
  EXPECT_LT(max_relative_error(power, mc), 0.05);
}

TEST(PagerankMc, EstimatesSumToOne) {
  const Graph g = make_grid(3, 3);
  PagerankMcOptions options;
  options.walks_per_node = 100;
  const auto mc = pagerank_monte_carlo(g, options);
  EXPECT_NEAR(std::accumulate(mc.begin(), mc.end(), 0.0), 1.0, 1e-12);
}

TEST(PagerankMc, DeterministicUnderSeed) {
  const Graph g = make_cycle(7);
  PagerankMcOptions options;
  options.walks_per_node = 50;
  options.seed = 77;
  EXPECT_EQ(pagerank_monte_carlo(g, options),
            pagerank_monte_carlo(g, options));
}

TEST(Pagerank, RejectsBadResetProbability) {
  const Graph g = make_cycle(4);
  PagerankOptions bad;
  bad.reset_probability = 0.0;
  EXPECT_THROW(pagerank_power(g, bad), Error);
  PagerankMcOptions bad_mc;
  bad_mc.reset_probability = 1.0;
  EXPECT_THROW(pagerank_monte_carlo(g, bad_mc), Error);
}

}  // namespace
}  // namespace rwbc
